# Convenience targets for the reproduction workflow.

.PHONY: install test bench examples table1 all outputs

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	for ex in examples/*.py; do echo "== $$ex =="; python $$ex || exit 1; done

table1:
	python -m repro table1

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench
