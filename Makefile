# Convenience targets for the reproduction workflow.

.PHONY: install test lint bench bench-engine bench-wire bench-service bench-circuits cost-atlas examples table1 trace-demo service-demo check all outputs

install:
	pip install -e .

test:
	pytest tests/

# Protocol static analysis (docs/ANALYSIS.md) plus ruff/mypy when
# installed (CI always has them via the dev extras).
lint:
	PYTHONPATH=src python -m repro.cli lint src/repro
	@command -v ruff >/dev/null 2>&1 && ruff check src tests benchmarks \
		|| echo "ruff not installed; skipping"
	@command -v mypy >/dev/null 2>&1 && mypy \
		|| echo "mypy not installed; skipping"

bench:
	pytest benchmarks/ --benchmark-only -s

# Engine throughput sweep (serial vs process pool); see docs/PERFORMANCE.md.
bench-engine:
	python benchmarks/bench_engine.py

# Wire-codec encode/decode throughput per envelope kind; see docs/WIRE.md.
bench-wire:
	python benchmarks/bench_wire.py

# Client-aided service experiment (ingest rate, online B/gate, resharing
# latency under churn + crash) -> BENCH_service.json; see docs/SERVICE.md.
bench-service:
	python benchmarks/bench_service.py

# Circuit-compiler experiment (compile gates/s, slot utilization, the
# 10^4-gate packed inference run) -> BENCH_circuits.json; see docs/CIRCUITS.md.
bench-circuits:
	python benchmarks/bench_circuits.py

# Re-render the extrapolation atlas embedded in docs/COSTMODEL.md from the
# symbolic byte formulas (between the cost-atlas markers).
cost-atlas:
	PYTHONPATH=src python benchmarks/bench_costmodel.py --write

examples:
	for ex in examples/*.py; do echo "== $$ex =="; python $$ex || exit 1; done

table1:
	python -m repro table1

# Traced quickstart-sized run; the exported JSONL is schema-validated.
trace-demo:
	python -m repro trace --n 6 --epsilon 0.2 --seed 42 --jsonl trace_demo.jsonl
	python -c "from repro.observability import validate_trace_jsonl; \
	validate_trace_jsonl(open('trace_demo.jsonl').read()); \
	print('trace_demo.jsonl: schema OK')"

# The service headline: 10^5 client submissions ingested, two aggregate
# epochs evaluated, the threshold key reshared under churn + one crash.
service-demo:
	python -m repro serve --workload statistics --clients 100000 \
		--epochs 2 --churn 0.1 --crash
	python -m repro serve --workload auction --clients 2000 \
		--epochs 2 --churn 0.1 --crash

check: lint test trace-demo

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench
