# Convenience targets for the reproduction workflow.

.PHONY: install test bench bench-engine bench-wire cost-atlas examples table1 trace-demo check all outputs

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# Engine throughput sweep (serial vs process pool); see docs/PERFORMANCE.md.
bench-engine:
	python benchmarks/bench_engine.py

# Wire-codec encode/decode throughput per envelope kind; see docs/WIRE.md.
bench-wire:
	python benchmarks/bench_wire.py

# Re-render the extrapolation atlas embedded in docs/COSTMODEL.md from the
# symbolic byte formulas (between the cost-atlas markers).
cost-atlas:
	PYTHONPATH=src python benchmarks/bench_costmodel.py --write

examples:
	for ex in examples/*.py; do echo "== $$ex =="; python $$ex || exit 1; done

table1:
	python -m repro table1

# Traced quickstart-sized run; the exported JSONL is schema-validated.
trace-demo:
	python -m repro trace --n 6 --epsilon 0.2 --seed 42 --jsonl trace_demo.jsonl
	python -c "from repro.observability import validate_trace_jsonl; \
	validate_trace_jsonl(open('trace_demo.jsonl').read()); \
	print('trace_demo.jsonl: schema OK')"

check: test trace-demo

outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

all: install test bench
