"""End-to-end honest executions of the full YOSO MPC protocol.

One dot-product run is shared session-wide for the structural assertions;
circuit-variety runs are per-test (they are the expensive part, kept small).
"""

import random

import pytest

from repro.circuits import (
    CircuitBuilder,
    dot_product_circuit,
    linear_model_circuit,
    masked_membership_circuit,
    random_circuit,
    statistics_circuit,
)
from repro.core import ProtocolParams, YosoMpc, run_mpc
from repro.errors import ProtocolAbortError


@pytest.fixture(scope="module")
def dot_result():
    circuit = dot_product_circuit(4)
    return run_mpc(
        circuit, {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]},
        n=6, epsilon=0.2, seed=99,
    )


class TestHonestExecution:
    def test_correct_output(self, dot_result):
        assert dot_result.outputs == {"alice": [70]}

    def test_phases_all_metered(self, dot_result):
        phases = dot_result.meter.by_phase()
        assert set(phases) == {"setup", "offline", "online"}
        assert all(v > 0 for v in phases.values())

    def test_offline_dominates_online(self, dot_result):
        # The whole point of the paper: pay offline, save online.
        assert dot_result.phase_bytes("offline") > dot_result.phase_bytes("online")

    def test_every_committee_spoke_once(self, dot_result):
        committees = dict(dot_result.offline.committees)
        committees.update(dot_result.online.committees)
        for committee in committees.values():
            assert all(role.spoken for role in committee)

    def test_epsilon_delta_openings_recorded(self, dot_result):
        assert set(dot_result.offline.epsilon_delta) == set(
            dot_result.circuit.multiplication_wires
        )

    def test_packed_ciphertexts_cover_batches(self, dot_result):
        for batch in dot_result.plan.mul_batches:
            for kind in ("left", "right", "gamma"):
                shares = dot_result.offline.packed_cipher[(batch.batch_id, kind)]
                assert len(shares) == dot_result.params.n

    def test_verification_chain_epochs(self, dot_result):
        # tsk travels Coff-A(0) -> Coff-dec(1) -> Coff-reenc(2) -> Con-keys(3).
        assert set(dot_result.offline.verifications) == {0, 1, 2, 3}

    def test_mu_values_consistent_with_plaintext(self, dot_result):
        # μ + λ = v must hold for every output wire (already implied by the
        # correct output, but check the tracker state is complete).
        tracker = dot_result.online.tracker
        for w in dot_result.circuit.output_wires:
            assert tracker.known(w)


class TestCircuitVariety:
    def test_linear_only_circuit(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        b.output(b.cadd(7, b.cmul(3, b.add(x, y))), "a")
        result = run_mpc(b.build(), {"a": [10], "b": [20]}, n=4, epsilon=0.2, seed=5)
        assert result.outputs["a"] == [3 * 30 + 7]

    def test_single_multiplication(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        b.output(b.mul(x, y), "a")
        result = run_mpc(b.build(), {"a": [111], "b": [222]}, n=4, epsilon=0.2, seed=6)
        assert result.outputs["a"] == [111 * 222]

    def test_deep_circuit(self):
        # x^8 via three sequential squarings: three online mul committees.
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.power(x, 8), "a")
        result = run_mpc(b.build(), {"a": [3]}, n=4, epsilon=0.2, seed=7)
        assert result.outputs["a"] == [3 ** 8]
        assert len(result.setup.mul_depths) == 3

    def test_statistics_workload(self):
        circuit = statistics_circuit(3)
        result = run_mpc(
            circuit, {f"party{i}": [v] for i, v in enumerate([5, 7, 9])},
            n=4, epsilon=0.2, seed=8,
        )
        s, q = result.outputs["analyst"]
        assert s == 21 and q == 3 * (25 + 49 + 81)

    def test_membership_workload(self):
        circuit = masked_membership_circuit(3)
        result = run_mpc(
            circuit, {"alice": [10, 20, 30, 777], "bob": [20]},
            n=4, epsilon=0.2, seed=9,
        )
        assert result.outputs["bob"] == [0]

    def test_linear_model_workload(self):
        circuit = linear_model_circuit(2)
        result = run_mpc(
            circuit, {"model": [3, 4, 5], "subject": [10, 20]},
            n=4, epsilon=0.2, seed=10,
        )
        assert result.outputs["subject"] == [3 * 10 + 4 * 20 + 5]

    def test_multi_output_multi_client(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        p = b.mul(x, y)
        b.output(p, "a")
        b.output(b.add(p, x), "b")
        result = run_mpc(b.build(), {"a": [6], "b": [7]}, n=4, epsilon=0.2, seed=11)
        assert result.outputs == {"a": [42], "b": [48]}

    def test_negative_intermediate_values(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        b.output(b.mul(b.sub(x, y), b.sub(x, y)), "a")  # (x-y)^2
        result = run_mpc(b.build(), {"a": [3], "b": [10]}, n=4, epsilon=0.2, seed=12)
        assert result.outputs["a"] == [49]

    def test_differential_against_plaintext_evaluation(self):
        rng = random.Random(77)
        circuit = random_circuit(rng, n_inputs=3, n_gates=10, n_clients=2,
                                 value_bound=50)
        inputs = {
            f"client{i}": [rng.randrange(50) for _ in circuit.inputs_of_client(f"client{i}")]
            for i in range(2)
        }
        result = run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=13)
        ring = result.setup.ring
        expected = circuit.evaluate(ring, inputs).outputs
        for client, values in result.outputs.items():
            assert values == [int(v) for v in expected[client]]


class TestInputValidation:
    def test_wrong_input_count_aborts(self):
        circuit = dot_product_circuit(2)
        params = ProtocolParams.from_gap(4, 0.2)
        with pytest.raises(ProtocolAbortError):
            YosoMpc(params, rng=random.Random(1)).run(
                circuit, {"alice": [1], "bob": [1, 2]}
            )

    def test_values_reduced_modulo_ring(self):
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.cmul(1, x), "a")
        result = run_mpc(b.build(), {"a": [-5]}, n=4, epsilon=0.2, seed=14)
        assert result.outputs["a"] == [result.setup.ring.modulus - 5]


class TestResultApi:
    def test_report_shape(self, dot_result):
        report = dot_result.report()
        assert report.n_parties == 6
        assert report.total_bytes == dot_result.meter.total_bytes()

    def test_online_mul_bytes_subset_of_online(self, dot_result):
        assert 0 < dot_result.online_mul_bytes() <= dot_result.phase_bytes("online")
