"""Tests for the publicly verifiable encrypted tsk hand-off."""

import dataclasses
import random

import pytest

from repro.core.resharing import (
    build_resharing,
    next_verifications,
    receive_share,
    verified_contributors,
    verify_resharing,
)
from repro.errors import ProtocolAbortError
from repro.nizk import ProofParams
from repro.paillier import ThresholdPaillier
from repro.paillier.paillier import _keypair_from_primes
from repro.paillier.primes import random_prime

PARAMS = ProofParams(challenge_bits=24)


def _fresh_keys(count, bits, rng):
    out = []
    for _ in range(count):
        p = random_prime(bits // 2, rng=rng)
        q = random_prime(bits // 2, rng=rng)
        while q == p:
            q = random_prime(bits // 2, rng=rng)
        out.append(_keypair_from_primes(p, q))
    return out


@pytest.fixture(scope="module")
def world(threshold_keygen):
    rng = random.Random(2024)
    tpk, shares = threshold_keygen(4, 1)
    recipients = _fresh_keys(4, 80, rng)
    pks = [kp.public for kp in recipients]
    verifications = {s.index: s.verification for s in shares}
    resharings = {
        s.index: build_resharing(tpk, s, pks, PARAMS, rng) for s in shares
    }
    return tpk, shares, recipients, pks, verifications, resharings


class TestHonestPath:
    def test_all_resharings_verify(self, world):
        tpk, shares, _, pks, verifs, resharings = world
        for s in shares:
            assert verify_resharing(tpk, resharings[s.index], verifs[s.index], pks, PARAMS)

    def test_contributor_set_is_everyone(self, world):
        tpk, _, _, pks, verifs, resharings = world
        assert verified_contributors(tpk, resharings, verifs, pks, PARAMS) == [1, 2, 3, 4]

    def test_received_shares_decrypt(self, world, rng):
        tpk, _, recipients, pks, verifs, resharings = world
        cset = [1, 2, 3, 4]
        new_shares = [
            receive_share(tpk, j, recipients[j - 1].secret, resharings, cset, 0)
            for j in range(1, 5)
        ]
        ct = tpk.encrypt(13579, rng=rng)
        assert ThresholdPaillier.decrypt(tpk, new_shares[:2], ct) == 13579
        assert all(s.epoch == 1 for s in new_shares)

    def test_partial_contributor_set(self, world, rng):
        tpk, _, recipients, pks, verifs, resharings = world
        cset = [1, 3, 4]
        partial_resh = {i: resharings[i] for i in cset}
        new_shares = [
            receive_share(tpk, j, recipients[j - 1].secret, partial_resh, cset, 0)
            for j in range(1, 5)
        ]
        ct = tpk.encrypt(8, rng=rng)
        assert ThresholdPaillier.decrypt(tpk, new_shares[1:3], ct) == 8

    def test_next_verifications_match(self, world):
        tpk, _, recipients, pks, verifs, resharings = world
        cset = [1, 2, 3, 4]
        nv = next_verifications(tpk, resharings, cset)
        new_shares = [
            receive_share(tpk, j, recipients[j - 1].secret, resharings, cset, 0)
            for j in range(1, 5)
        ]
        assert all(nv[s.index] == s.verification for s in new_shares)


class TestAdversarialPath:
    def test_swapped_verifications_rejected(self, world):
        tpk, shares, _, pks, verifs, resharings = world
        bad = dataclasses.replace(
            resharings[1], verifications=resharings[2].verifications
        )
        assert not verify_resharing(tpk, bad, verifs[1], pks, PARAMS)

    def test_tampered_limb_ciphertext_rejected(self, world):
        tpk, _, _, pks, verifs, resharings = world
        target = resharings[1]
        sub = target.subshares[0]
        wrong = dataclasses.replace(
            sub, limbs=(sub.limbs[0] * 2,) + sub.limbs[1:]
        )
        bad = dataclasses.replace(
            target, subshares=(wrong,) + target.subshares[1:]
        )
        assert not verify_resharing(tpk, bad, verifs[1], pks, PARAMS)

    def test_tampered_limb_verification_rejected(self, world):
        tpk, _, _, pks, verifs, resharings = world
        target = resharings[2]
        sub = target.subshares[1]
        wrong = dataclasses.replace(
            sub,
            limb_verifications=(sub.limb_verifications[0] * 2 % tpk.n_squared,)
            + sub.limb_verifications[1:],
        )
        bad = dataclasses.replace(
            target, subshares=target.subshares[:1] + (wrong,) + target.subshares[2:]
        )
        assert not verify_resharing(tpk, bad, verifs[2], pks, PARAMS)

    def test_wrong_offset_rejected(self, world):
        tpk, _, _, pks, verifs, resharings = world
        bad = dataclasses.replace(resharings[3], offset_bits=resharings[3].offset_bits + 1)
        assert not verify_resharing(tpk, bad, verifs[3], pks, PARAMS)

    def test_claiming_other_senders_share_rejected(self, world):
        tpk, _, _, pks, verifs, resharings = world
        # Sender 1's perfectly valid message cannot pass as sender 2's.
        assert not verify_resharing(tpk, resharings[1], verifs[2], pks, PARAMS)

    def test_bad_senders_excluded_from_set(self, world):
        tpk, _, _, pks, verifs, resharings = world
        polluted = dict(resharings)
        polluted[2] = dataclasses.replace(
            resharings[2], verifications=resharings[3].verifications
        )
        assert verified_contributors(tpk, polluted, verifs, pks, PARAMS) == [1, 3, 4]

    def test_too_few_honest_aborts(self, world):
        tpk, _, _, pks, verifs, resharings = world
        polluted = {
            i: dataclasses.replace(r, verifications=resharings[i % 4 + 1].verifications)
            for i, r in resharings.items()
        }
        with pytest.raises(ProtocolAbortError):
            verified_contributors(tpk, polluted, verifs, pks, PARAMS)

    def test_wrong_recipient_count_rejected(self, world):
        tpk, shares, _, pks, verifs, resharings = world
        bad = dataclasses.replace(resharings[1], subshares=resharings[1].subshares[:-1])
        assert not verify_resharing(tpk, bad, verifs[1], pks, PARAMS)
