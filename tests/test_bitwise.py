"""Tests for the bitwise gadgets (equality, comparison, auctions)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    CircuitBuilder,
    comparison_circuit,
    maximum_circuit,
    second_price_auction_circuit,
)
from repro.circuits.bitwise import (
    bit_and,
    bit_not,
    bit_or,
    bit_xor,
    bitness_checks,
    bits_equal,
    equality,
    from_bits,
    less_than,
    mux,
)
from repro.errors import CircuitError
from repro.fields import Zmod

F = Zmod((1 << 61) - 1)


def to_bits(v: int, n: int) -> list[int]:
    return [int(x) for x in format(v, f"0{n}b")]


def _eval_gadget(gadget, arity, values):
    b = CircuitBuilder()
    wires = b.inputs("a", arity)
    b.output(gadget(b, *wires), "a")
    ev = b.build().evaluate(F, {"a": list(values)})
    return int(ev.outputs["a"][0])


class TestBitOps:
    @pytest.mark.parametrize("x", [0, 1])
    def test_not(self, x):
        assert _eval_gadget(bit_not, 1, [x]) == 1 - x

    @pytest.mark.parametrize("x,y", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_and_or_xor(self, x, y):
        assert _eval_gadget(bit_and, 2, [x, y]) == (x & y)
        assert _eval_gadget(bit_or, 2, [x, y]) == (x | y)
        assert _eval_gadget(bit_xor, 2, [x, y]) == (x ^ y)
        assert _eval_gadget(bits_equal, 2, [x, y]) == int(x == y)

    @pytest.mark.parametrize("c,x,y", [(0, 5, 9), (1, 5, 9)])
    def test_mux(self, c, x, y):
        b = CircuitBuilder()
        cw, xw, yw = b.inputs("a", 3)
        b.output(mux(b, cw, xw, yw), "a")
        ev = b.build().evaluate(F, {"a": [c, x, y]})
        assert int(ev.outputs["a"][0]) == (x if c else y)

    def test_from_bits(self):
        b = CircuitBuilder()
        wires = b.inputs("a", 4)
        b.output(from_bits(b, wires), "a")
        ev = b.build().evaluate(F, {"a": to_bits(13, 4)})
        assert int(ev.outputs["a"][0]) == 13

    def test_bitness_checks(self):
        b = CircuitBuilder()
        wires = b.inputs("a", 2)
        for w in bitness_checks(b, wires):
            b.output(w, "a")
        ev = b.build().evaluate(F, {"a": [1, 0]})
        assert all(int(v) == 0 for v in ev.outputs["a"])
        ev = b.build().evaluate(F, {"a": [2, 0]})
        assert int(ev.outputs["a"][0]) != 0  # 2 is not a bit

    def test_validation(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            equality(b, [], [])
        with pytest.raises(CircuitError):
            less_than(b, [b.input("a")], [])
        with pytest.raises(CircuitError):
            from_bits(b, [])


class TestComparisonCircuit:
    def test_exhaustive_2bit(self):
        c = comparison_circuit(2)
        for x in range(4):
            for y in range(4):
                ev = c.evaluate(F, {"alice": to_bits(x, 2), "bob": to_bits(y, 2)})
                lt, eq = [int(v) for v in ev.outputs["alice"]]
                assert lt == int(x < y)
                assert eq == int(x == y)

    def test_bits_validated(self):
        with pytest.raises(CircuitError):
            comparison_circuit(0)


class TestMaximum:
    def test_random_cases(self):
        rng = random.Random(3)
        circuit = maximum_circuit(3, ["a", "b", "c", "d"])
        for _ in range(15):
            vals = {cl: rng.randrange(8) for cl in "abcd"}
            ev = circuit.evaluate(F, {cl: to_bits(vals[cl], 3) for cl in "abcd"})
            out = [int(v) for v in ev.outputs["auctioneer"]]
            top = max(vals.values())
            assert out[0] == top
            assert out[1:] == [int(vals[cl] == top) for cl in "abcd"]

    def test_needs_two_clients(self):
        with pytest.raises(CircuitError):
            maximum_circuit(3, ["solo"])


class TestVickreyAuction:
    CIRCUIT = second_price_auction_circuit(4, ["a", "b", "c"])

    def _run(self, vals):
        ev = self.CIRCUIT.evaluate(
            F, {cl: to_bits(vals[cl], 4) for cl in "abc"}
        )
        return [int(v) for v in ev.outputs["auctioneer"]]

    def test_distinct_bids(self):
        out = self._run({"a": 5, "b": 12, "c": 9})
        assert out == [9, 0, 1, 0]  # b wins, pays c's 9

    def test_tied_top_bids_pay_top(self):
        out = self._run({"a": 11, "b": 11, "c": 4})
        assert out == [11, 1, 1, 0]

    def test_all_zero_bids(self):
        out = self._run({"a": 0, "b": 0, "c": 0})
        assert out[0] == 0 and out[1:] == [1, 1, 1]

    def test_random_against_reference(self):
        rng = random.Random(5)
        for _ in range(20):
            vals = {cl: rng.randrange(16) for cl in "abc"}
            out = self._run(vals)
            ordered = sorted(vals.values(), reverse=True)
            price = ordered[0] if ordered[0] == ordered[1] else ordered[1]
            top = ordered[0]
            assert out[0] == price, vals
            assert out[1:] == [int(vals[cl] == top) for cl in "abc"], vals

    def test_needs_two_bidders(self):
        with pytest.raises(CircuitError):
            second_price_auction_circuit(4, ["solo"])


@settings(max_examples=30, deadline=None)
@given(
    x=st.integers(min_value=0, max_value=31),
    y=st.integers(min_value=0, max_value=31),
)
def test_comparison_property(x, y):
    c = comparison_circuit(5)
    ev = c.evaluate(F, {"alice": to_bits(x, 5), "bob": to_bits(y, 5)})
    lt, eq = [int(v) for v in ev.outputs["alice"]]
    assert lt == int(x < y) and eq == int(x == y)


def test_auction_runs_under_full_protocol():
    """A 2-bit, 2-bidder auction through the whole YOSO MPC stack."""
    from repro.core import run_mpc

    circuit = second_price_auction_circuit(2, ["a", "b"])
    result = run_mpc(
        circuit, {"a": to_bits(2, 2), "b": to_bits(3, 2)},
        n=4, epsilon=0.2, seed=44,
    )
    price, win_a, win_b = result.outputs["auctioneer"]
    assert (price, win_a, win_b) == (2, 0, 1)
