"""Tests for polynomial division (the Berlekamp–Welch workhorse)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.fields import Polynomial, Zmod

F = Zmod((1 << 61) - 1)


class TestDivmod:
    def test_exact_division(self):
        # (x+1)(x+2) / (x+1) = (x+2)
        product = Polynomial(F, [1, 1]) * Polynomial(F, [2, 1])
        q, r = product.divmod(Polynomial(F, [1, 1]))
        assert r.is_zero()
        assert q == Polynomial(F, [2, 1])

    def test_remainder(self):
        # x² + 1 = (x)(x) + 1
        q, r = Polynomial(F, [1, 0, 1]).divmod(Polynomial(F, [0, 1]))
        assert q == Polynomial(F, [0, 1])
        assert r == Polynomial(F, [1])

    def test_degree_smaller_than_divisor(self):
        q, r = Polynomial(F, [5]).divmod(Polynomial(F, [0, 0, 1]))
        assert q.is_zero()
        assert r == Polynomial(F, [5])

    def test_division_by_zero_rejected(self):
        with pytest.raises(ParameterError):
            Polynomial(F, [1]).divmod(Polynomial(F, []))

    def test_non_monic_divisor(self):
        # 6x² / 2x = 3x
        q, r = Polynomial(F, [0, 0, 6]).divmod(Polynomial(F, [0, 2]))
        assert r.is_zero()
        assert q == Polynomial(F, [0, 3])

    def test_over_rsa_ring_with_unit_leading_coeff(self):
        R = Zmod(3233 * 3499, assume_prime=False)
        a = Polynomial(R, [2, 3, 1])     # monic
        b = Polynomial(R, [7, 1])        # monic
        q, r = (a * b).divmod(b)
        assert r.is_zero() and q == a


@settings(max_examples=30, deadline=None)
@given(
    a=st.lists(st.integers(min_value=0, max_value=1 << 40), min_size=1, max_size=6),
    b=st.lists(st.integers(min_value=0, max_value=1 << 40), min_size=1, max_size=4),
    seed=st.integers(min_value=0, max_value=1 << 20),
)
def test_divmod_identity_property(a, b, seed):
    """For any A and monic B: A == Q·B + R with deg R < deg B."""
    rng = random.Random(seed)
    A = Polynomial(F, a)
    B = Polynomial(F, b + [1])  # force monic, degree len(b)
    Q, R = A.divmod(B)
    assert Q * B + R == A
    assert R.degree < B.degree
