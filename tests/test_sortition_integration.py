"""Integration: §6 sortition sampling feeding real protocol parameters.

The deployment loop the paper envisions: sample a committee by sortition,
read off its realized size and corruption count, instantiate the protocol
with a matching (n, t, k), and run — end to end.
"""

import random

import pytest

from repro.circuits import dot_product_circuit
from repro.core import ProtocolParams, run_mpc
from repro.errors import ParameterError
from repro.yoso import IdealRoleAssignment


class TestSortitionSampling:
    def test_committee_size_concentrates(self):
        rng = random.Random(7)
        assignment = IdealRoleAssignment(key_bits=32, rng=rng)
        sizes = [
            assignment.sample_by_sortition(f"C{i}", 4000, 0.2, 40).size
            for i in range(20)
        ]
        mean = sum(sizes) / len(sizes)
        assert 30 <= mean <= 50  # E[size] = C = 40

    def test_corruption_concentrates(self):
        rng = random.Random(8)
        assignment = IdealRoleAssignment(key_bits=32, rng=rng)
        ratios = []
        for i in range(20):
            committee = assignment.sample_by_sortition(f"C{i}", 4000, 0.25, 40)
            ratios.append(len(committee.corrupted_indices()) / committee.size)
        mean = sum(ratios) / len(ratios)
        assert 0.15 <= mean <= 0.35  # around f = 0.25

    def test_corruption_positions_shuffled(self):
        rng = random.Random(9)
        assignment = IdealRoleAssignment(key_bits=32, rng=rng)
        committee = assignment.sample_by_sortition("C", 1000, 0.3, 60)
        corrupted = set(committee.corrupted_indices())
        if corrupted:
            # Not all bunched at the front (machine order anonymized).
            assert corrupted != set(range(1, len(corrupted) + 1)) or len(corrupted) < 3

    def test_parameter_validation(self):
        assignment = IdealRoleAssignment(key_bits=32, rng=random.Random(1))
        with pytest.raises(ParameterError):
            assignment.sample_by_sortition("C", 100, 0.2, 0)
        with pytest.raises(ParameterError):
            assignment.sample_by_sortition("C", 100, 1.0, 10)


class TestEndToEndDeployment:
    def test_sampled_committee_sizes_drive_a_real_run(self):
        # The deployment loop: sortition -> realized (n, phi) -> parameters
        # -> protocol run.  We sample until the realized committee admits a
        # valid parameterization (as a deployment would re-draw).
        rng = random.Random(10)
        assignment = IdealRoleAssignment(key_bits=32, rng=rng)
        for attempt in range(10):
            committee = assignment.sample_by_sortition(
                f"probe{attempt}", 2000, 0.10, 8
            )
            n = committee.size
            phi = len(committee.corrupted_indices())
            epsilon = 0.2
            if n >= 4 and phi < n * (0.5 - epsilon):
                break
        else:
            pytest.skip("sortition never produced a usable committee")
        params = ProtocolParams.from_gap(n, epsilon)
        assert params.t < n * (0.5 - epsilon)
        result = run_mpc(
            dot_product_circuit(2), {"alice": [3, 4], "bob": [5, 6]},
            n=n, epsilon=epsilon, seed=11,
        )
        assert result.outputs["alice"] == [3 * 5 + 4 * 6]
