"""Tests for circuit serialization and digests."""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    circuit_from_dict,
    circuit_to_dict,
    compile_circuit,
    digest,
    dot_product_circuit,
    dumps,
    dumps_program,
    loads,
    loads_program,
    program_from_dict,
    program_to_dict,
    random_circuit,
    second_price_auction_circuit,
)
from repro.circuits.program import _CACHE_ATTR
from repro.errors import CircuitError, CircuitFormatError
from repro.fields import Zmod

F = Zmod((1 << 61) - 1)


class TestRoundtrip:
    def test_dict_roundtrip(self):
        circuit = dot_product_circuit(3)
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        assert [g.kind for g in rebuilt.gates] == [g.kind for g in circuit.gates]
        assert rebuilt.input_wires == circuit.input_wires

    def test_text_roundtrip_preserves_semantics(self):
        circuit = dot_product_circuit(4)
        rebuilt = loads(dumps(circuit))
        inputs = {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]}
        assert (
            rebuilt.evaluate(F, inputs).outputs
            == circuit.evaluate(F, inputs).outputs
        )

    def test_negative_constants_survive(self):
        from repro.circuits import CircuitBuilder

        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.cmul(-7, b.cadd(-3, x)), "a")
        rebuilt = loads(dumps(b.build()))
        assert rebuilt.evaluate(F, {"a": [1]}).outputs == b.build().evaluate(
            F, {"a": [1]}
        ).outputs


class TestCanonicalForm:
    def test_dumps_deterministic(self):
        circuit = dot_product_circuit(2)
        assert dumps(circuit) == dumps(loads(dumps(circuit)))

    def test_digest_stable_and_distinct(self):
        a, b = dot_product_circuit(2), dot_product_circuit(3)
        assert digest(a) == digest(a)
        assert digest(a) != digest(b)

    def test_digest_sensitive_to_clients(self):
        a = dot_product_circuit(2, client_x="alice")
        b = dot_product_circuit(2, client_x="eve")
        assert digest(a) != digest(b)


class TestValidation:
    def test_bad_json_rejected(self):
        with pytest.raises(CircuitError):
            loads("{not json")

    def test_missing_gates_rejected(self):
        with pytest.raises(CircuitError):
            circuit_from_dict({"version": 1})

    def test_wrong_version_rejected(self):
        doc = circuit_to_dict(dot_product_circuit(2))
        doc["version"] = 99
        with pytest.raises(CircuitError):
            circuit_from_dict(doc)

    def test_unknown_version_distinct_error(self):
        doc = circuit_to_dict(dot_product_circuit(2))
        doc["version"] = 99
        with pytest.raises(CircuitFormatError):
            circuit_from_dict(doc)

    def test_version_1_still_loads(self):
        doc = circuit_to_dict(dot_product_circuit(2))
        doc["version"] = 1
        rebuilt = circuit_from_dict(doc)
        assert len(rebuilt.gates) == len(dot_product_circuit(2).gates)

    def test_unknown_gate_kind_rejected(self):
        doc = circuit_to_dict(dot_product_circuit(2))
        doc["gates"][0]["kind"] = "teleport"
        with pytest.raises(CircuitError):
            circuit_from_dict(doc)

    def test_structural_validation_applies(self):
        # Forward references are caught by the Circuit constructor.
        doc = {"version": 1, "gates": [
            {"kind": "input", "client": "a"},
            {"kind": "add", "inputs": [0, 5]},
        ]}
        with pytest.raises(CircuitError):
            circuit_from_dict(doc)


class TestProgramDocuments:
    def test_program_roundtrip_is_exact(self):
        circuit = second_price_auction_circuit(6, ["a", "b", "c"])
        program = compile_circuit(circuit, 3)
        text = dumps_program(program)
        rebuilt = loads_program(text)
        assert rebuilt.k == program.k
        assert rebuilt.layers == program.layers
        assert rebuilt.constants == program.constants
        assert rebuilt.level_of_wire == program.level_of_wire
        assert rebuilt.plan.mul_batches == program.plan.mul_batches
        assert rebuilt.plan.input_batches == program.plan.input_batches
        assert rebuilt.mul_wires == program.mul_wires
        assert rebuilt.mask_wires == program.mask_wires
        assert rebuilt.input_segments == program.input_segments
        assert rebuilt.output_segments == program.output_segments
        assert dict(rebuilt.muls_by_depth) == dict(program.muls_by_depth)
        assert dumps_program(rebuilt) == text

    def test_loaded_program_primes_compile_cache(self):
        program = compile_circuit(dot_product_circuit(4), 2)
        rebuilt = loads_program(dumps_program(program))
        cache = rebuilt.circuit.__dict__[_CACHE_ATTR]
        assert cache[2][1] is rebuilt
        assert compile_circuit(rebuilt.circuit, 2) is rebuilt

    def test_loaded_program_evaluates_identically(self):
        circuit = dot_product_circuit(3)
        rebuilt = loads_program(dumps_program(compile_circuit(circuit, 2)))
        inputs = {"alice": [1, 2, 3], "bob": [4, 5, 6]}
        assert (
            rebuilt.evaluate(F, inputs).outputs
            == circuit.evaluate(F, inputs).outputs
        )

    def test_digest_excludes_program_section(self):
        circuit = dot_product_circuit(3)
        program = compile_circuit(circuit, 2)
        rebuilt = loads_program(dumps_program(program))
        assert digest(rebuilt.circuit) == digest(circuit)

    def test_v1_document_has_no_program(self):
        doc = circuit_to_dict(dot_product_circuit(2))
        doc["version"] = 1
        with pytest.raises(CircuitFormatError):
            program_from_dict(doc)

    def test_missing_program_section_rejected(self):
        doc = circuit_to_dict(dot_product_circuit(2))
        with pytest.raises(CircuitError):
            program_from_dict(doc)

    def test_tampered_layers_rejected(self):
        doc = program_to_dict(compile_circuit(dot_product_circuit(3), 2))
        doc["program"]["layers"][0][0]["wires"][0] = 999
        with pytest.raises(CircuitError):
            program_from_dict(doc)

    def test_tampered_batches_rejected(self):
        doc = program_to_dict(compile_circuit(dot_product_circuit(3), 2))
        doc["program"]["mul_batches"][0]["gate_wires"] = [0]
        with pytest.raises(CircuitError):
            program_from_dict(doc)

    def test_bad_program_json_rejected(self):
        with pytest.raises(CircuitError):
            loads_program("{broken")


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1 << 30),
    k=st.integers(min_value=1, max_value=4),
)
def test_program_roundtrip_property(seed, k):
    rng = random.Random(seed)
    circuit = random_circuit(rng, n_inputs=3, n_gates=15, n_clients=2)
    program = compile_circuit(circuit, k)
    text = dumps_program(program)
    rebuilt = loads_program(text)
    assert dumps_program(rebuilt) == text
    inputs = {
        f"client{i}": [
            rng.randrange(50) for _ in circuit.inputs_of_client(f"client{i}")
        ]
        for i in range(2)
    }
    assert (
        rebuilt.evaluate(F, inputs).outputs == circuit.evaluate(F, inputs).outputs
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1 << 30))
def test_serialization_roundtrip_property(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng, n_inputs=3, n_gates=12, n_clients=2)
    rebuilt = loads(dumps(circuit))
    assert digest(rebuilt) == digest(circuit)
    inputs = {
        f"client{i}": [rng.randrange(50) for _ in circuit.inputs_of_client(f"client{i}")]
        for i in range(2)
    }
    assert (
        rebuilt.evaluate(F, inputs).outputs == circuit.evaluate(F, inputs).outputs
    )
