"""Tests for circuit serialization and digests."""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    circuit_from_dict,
    circuit_to_dict,
    digest,
    dot_product_circuit,
    dumps,
    loads,
    random_circuit,
)
from repro.errors import CircuitError
from repro.fields import Zmod

F = Zmod((1 << 61) - 1)


class TestRoundtrip:
    def test_dict_roundtrip(self):
        circuit = dot_product_circuit(3)
        rebuilt = circuit_from_dict(circuit_to_dict(circuit))
        assert [g.kind for g in rebuilt.gates] == [g.kind for g in circuit.gates]
        assert rebuilt.input_wires == circuit.input_wires

    def test_text_roundtrip_preserves_semantics(self):
        circuit = dot_product_circuit(4)
        rebuilt = loads(dumps(circuit))
        inputs = {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]}
        assert (
            rebuilt.evaluate(F, inputs).outputs
            == circuit.evaluate(F, inputs).outputs
        )

    def test_negative_constants_survive(self):
        from repro.circuits import CircuitBuilder

        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.cmul(-7, b.cadd(-3, x)), "a")
        rebuilt = loads(dumps(b.build()))
        assert rebuilt.evaluate(F, {"a": [1]}).outputs == b.build().evaluate(
            F, {"a": [1]}
        ).outputs


class TestCanonicalForm:
    def test_dumps_deterministic(self):
        circuit = dot_product_circuit(2)
        assert dumps(circuit) == dumps(loads(dumps(circuit)))

    def test_digest_stable_and_distinct(self):
        a, b = dot_product_circuit(2), dot_product_circuit(3)
        assert digest(a) == digest(a)
        assert digest(a) != digest(b)

    def test_digest_sensitive_to_clients(self):
        a = dot_product_circuit(2, client_x="alice")
        b = dot_product_circuit(2, client_x="eve")
        assert digest(a) != digest(b)


class TestValidation:
    def test_bad_json_rejected(self):
        with pytest.raises(CircuitError):
            loads("{not json")

    def test_missing_gates_rejected(self):
        with pytest.raises(CircuitError):
            circuit_from_dict({"version": 1})

    def test_wrong_version_rejected(self):
        doc = circuit_to_dict(dot_product_circuit(2))
        doc["version"] = 99
        with pytest.raises(CircuitError):
            circuit_from_dict(doc)

    def test_unknown_gate_kind_rejected(self):
        doc = circuit_to_dict(dot_product_circuit(2))
        doc["gates"][0]["kind"] = "teleport"
        with pytest.raises(CircuitError):
            circuit_from_dict(doc)

    def test_structural_validation_applies(self):
        # Forward references are caught by the Circuit constructor.
        doc = {"version": 1, "gates": [
            {"kind": "input", "client": "a"},
            {"kind": "add", "inputs": [0, 5]},
        ]}
        with pytest.raises(CircuitError):
            circuit_from_dict(doc)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1 << 30))
def test_serialization_roundtrip_property(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng, n_inputs=3, n_gates=12, n_clients=2)
    rebuilt = loads(dumps(circuit))
    assert digest(rebuilt) == digest(circuit)
    inputs = {
        f"client{i}": [rng.randrange(50) for _ in circuit.inputs_of_client(f"client{i}")]
        for i in range(2)
    }
    assert (
        rebuilt.evaluate(F, inputs).outputs == circuit.evaluate(F, inputs).outputs
    )
