"""Tests for the crypto execution engine (repro.engine).

The engine's contract is strict: every backend returns results in job
order, bit-identical to ``[pow(b, e, m) ...]``, and never draws
randomness.  That contract is what lets the protocol swap worker counts
without changing a single transcript byte — the last test class checks
exactly that on a full protocol run.
"""

import random

import pytest

from repro.engine import (
    FixedBaseCache,
    ProcessPoolEngine,
    SerialEngine,
    chunk_jobs,
    compute_pows,
    encrypt_many,
    make_engine,
    partial_decrypt_many,
    run_pow_chunk,
    scalar_mul_many,
    teval_many,
)
from repro.engine import engine as engine_mod
from repro.engine.jobs import FIXEDBASE_MIN_BITS
from repro.errors import EncryptionError, ParameterError
from repro.observability import hooks as _hooks
from repro.observability.tracer import Tracer
from repro.paillier.threshold import ThresholdPaillier, teval


def _jobs(count, rng, bits=384):
    modulus = (rng.getrandbits(bits) | (1 << bits) | 1)
    return [
        (rng.getrandbits(bits) % modulus, rng.getrandbits(64), modulus)
        for _ in range(count)
    ]


class TestFixedBaseCache:
    def test_matches_builtin_pow(self, rng):
        modulus = (1 << 389) - 21  # any odd modulus works
        base = rng.getrandbits(380) % modulus
        cache = FixedBaseCache(base, modulus)
        for _ in range(20):
            exponent = rng.getrandbits(rng.randrange(1, 300))
            assert cache.pow(exponent) == pow(base, exponent, modulus)

    def test_zero_and_one(self):
        cache = FixedBaseCache(7, 1000003)
        assert cache.pow(0) == 1
        assert cache.pow(1) == 7

    def test_negative_exponent(self):
        modulus = 1000003  # prime, so 7 is invertible
        cache = FixedBaseCache(7, modulus)
        assert cache.pow(-12345) == pow(7, -12345, modulus)

    def test_cache_grows_lazily(self):
        cache = FixedBaseCache(3, (1 << 127) - 1)
        cache.pow(1 << 4)
        small = len(cache._squares)
        cache.pow(1 << 60)
        assert len(cache._squares) > small


class TestComputePows:
    def test_matches_pow_map(self, rng):
        jobs = _jobs(40, rng)
        assert compute_pows(jobs) == [pow(b, e, m) for b, e, m in jobs]

    def test_repeated_base_uses_cache_and_matches(self, rng):
        modulus = (1 << FIXEDBASE_MIN_BITS) + 7
        base = 123456789
        jobs = [(base, rng.getrandbits(128), modulus) for _ in range(10)]
        assert compute_pows(jobs) == [pow(b, e, m) for b, e, m in jobs]

    def test_small_moduli_never_cached(self, rng):
        # Below the bit floor the native pow path must be taken; results
        # are identical either way, so just pin the equality.
        jobs = [(5, rng.getrandbits(32), 10007) for _ in range(10)]
        assert compute_pows(jobs) == [pow(b, e, m) for b, e, m in jobs]

    def test_run_pow_chunk_is_compute_pows(self, rng):
        jobs = _jobs(8, rng)
        assert run_pow_chunk(jobs) == compute_pows(jobs)


class TestChunkJobs:
    def test_partition_preserves_order(self, rng):
        jobs = _jobs(23, rng)
        chunks = chunk_jobs(jobs, 5)
        assert [j for c in chunks for j in c] == jobs

    def test_balanced_sizes(self, rng):
        sizes = [len(c) for c in chunk_jobs(_jobs(23, rng), 5)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_jobs(self, rng):
        chunks = chunk_jobs(_jobs(3, rng), 10)
        assert [j for c in chunks for j in c] == [j for c in chunks for j in c]
        assert all(c for c in chunks)  # no empty chunks shipped

    def test_empty(self):
        assert chunk_jobs([], 4) == []


class TestEngines:
    def test_serial_matches_pow(self, rng):
        jobs = _jobs(10, rng)
        with SerialEngine() as engine:
            assert engine.pow_many(jobs) == [pow(b, e, m) for b, e, m in jobs]

    def test_pool_matches_serial(self, rng):
        jobs = _jobs(64, rng)
        with ProcessPoolEngine(workers=2, min_parallel=1) as pool:
            assert pool.pow_many(jobs) == SerialEngine().pow_many(jobs)

    def test_small_batch_stays_in_process(self, rng):
        jobs = _jobs(4, rng)
        tracer = Tracer()
        with ProcessPoolEngine(workers=2) as pool, _hooks.activated(tracer):
            pool.pow_many(jobs)
        totals = tracer.counter_totals()
        assert totals[_hooks.ENGINE_BATCHES] == 1
        assert totals[_hooks.ENGINE_JOBS] == 4
        assert _hooks.ENGINE_POOL_BATCHES not in totals

    def test_pool_counters(self, rng):
        jobs = _jobs(40, rng)
        tracer = Tracer()
        with ProcessPoolEngine(workers=2, min_parallel=1) as pool, \
                _hooks.activated(tracer):
            result = pool.pow_many(jobs)
        assert result == [pow(b, e, m) for b, e, m in jobs]
        totals = tracer.counter_totals()
        assert totals[_hooks.ENGINE_POOL_BATCHES] == 1
        assert totals[_hooks.ENGINE_POOL_JOBS] == 40
        assert totals[_hooks.ENGINE_CHUNKS] >= 2

    def test_broken_pool_falls_back_to_serial(self, rng):
        jobs = _jobs(64, rng)
        tracer = Tracer()
        pool = ProcessPoolEngine(workers=2, min_parallel=1,
                                 start_method="no-such-method")
        with pool, _hooks.activated(tracer):
            result = pool.pow_many(jobs)
        assert result == [pow(b, e, m) for b, e, m in jobs]
        assert tracer.counter_totals()[_hooks.ENGINE_FALLBACKS] == 1
        assert "broken" in pool.describe()

    def test_explicit_chunk_size(self, rng):
        jobs = _jobs(10, rng)
        with ProcessPoolEngine(workers=2, chunk_size=3, min_parallel=1) as pool:
            assert pool.pow_many(jobs) == [pow(b, e, m) for b, e, m in jobs]

    def test_make_engine(self):
        assert isinstance(make_engine(0), SerialEngine)
        pool = make_engine(3)
        assert isinstance(pool, ProcessPoolEngine) and pool.workers == 3
        pool.close()

    def test_activated_scopes_the_global(self):
        default = engine_mod.active()
        replacement = SerialEngine()
        with engine_mod.activated(replacement):
            assert engine_mod.active() is replacement
        assert engine_mod.active() is default

    def test_install_none_restores_default(self):
        replacement = SerialEngine()
        engine_mod.install(replacement)
        try:
            assert engine_mod.active() is replacement
        finally:
            engine_mod.install(None)
        assert isinstance(engine_mod.active(), SerialEngine)


class TestBatchApis:
    """Each batch API must be bit-identical to the single-op loop."""

    def test_encrypt_many(self, threshold_setup, rng):
        tpk, _ = threshold_setup
        pk = tpk.paillier
        messages = [rng.randrange(tpk.n) for _ in range(6)]
        randomizers = [pk.random_unit(rng) for _ in messages]
        batched = encrypt_many(pk, messages, randomizers)
        singles = [
            pk.encrypt(m, randomness=r) for m, r in zip(messages, randomizers)
        ]
        assert [c.value for c in batched] == [c.value for c in singles]

    def test_encrypt_many_via_public_key_method(self, threshold_setup, rng):
        tpk, _ = threshold_setup
        pk = tpk.paillier
        r = pk.random_unit(rng)
        assert pk.encrypt_many([5], [r])[0] == pk.encrypt(5, randomness=r)

    def test_encrypt_many_length_mismatch(self, threshold_setup):
        tpk, _ = threshold_setup
        with pytest.raises(ParameterError):
            encrypt_many(tpk.paillier, [1, 2], [3])

    def test_encrypt_many_non_unit_randomness(self, threshold_setup):
        tpk, _ = threshold_setup
        with pytest.raises(EncryptionError):
            encrypt_many(tpk.paillier, [1], [0])

    def test_partial_decrypt_many(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        cts = [tpk.encrypt(i, rng=rng) for i in (1, 22, 333)]
        batched = partial_decrypt_many(tpk, shares[0], cts)
        singles = [
            ThresholdPaillier.partial_decrypt(tpk, shares[0], ct) for ct in cts
        ]
        assert batched == singles

    def test_partial_decrypt_many_foreign_key(self, threshold_setup,
                                              threshold_setup_t1, rng):
        tpk, shares = threshold_setup
        other_tpk, _ = threshold_setup_t1
        ct = other_tpk.encrypt(1, rng=rng)
        with pytest.raises(EncryptionError):
            partial_decrypt_many(tpk, shares[0], [ct])

    def test_teval_many(self, threshold_setup, rng):
        tpk, _ = threshold_setup
        cts = [tpk.encrypt(i, rng=rng) for i in (3, 5, 7)]
        groups = [(cts, [1, 2, 3]), (cts[:2], [4, -1])]
        batched = teval_many(tpk, groups)
        singles = [teval(tpk, cs, ls) for cs, ls in groups]
        assert [c.value for c in batched] == [c.value for c in singles]

    def test_teval_many_rejects_empty_group(self, threshold_setup):
        tpk, _ = threshold_setup
        with pytest.raises(ParameterError):
            teval_many(tpk, [([], [])])

    def test_teval_many_no_groups(self, threshold_setup):
        tpk, _ = threshold_setup
        assert teval_many(tpk, []) == []

    def test_scalar_mul_many(self, threshold_setup, rng):
        tpk, _ = threshold_setup
        cts = [tpk.encrypt(i, rng=rng) for i in (2, 9)]
        scalars = [17, -4]
        batched = scalar_mul_many(cts, scalars)
        singles = [ct * s for ct, s in zip(cts, scalars)]
        assert [c.value for c in batched] == [c.value for c in singles]

    def test_batch_counters_match_single_op_semantics(
        self, threshold_setup, rng
    ):
        tpk, shares = threshold_setup
        pk = tpk.paillier
        messages = [1, 2, 3]
        randomizers = [pk.random_unit(rng) for _ in messages]
        tracer = Tracer()
        with _hooks.activated(tracer):
            cts = encrypt_many(pk, messages, randomizers)
            partial_decrypt_many(tpk, shares[0], cts)
        totals = tracer.counter_totals()
        assert totals[_hooks.PAILLIER_ENCRYPT] == 3
        assert totals[_hooks.PAILLIER_PARTIAL_DECRYPT] == 3
        assert totals[_hooks.PAILLIER_EXP] == 6
        assert totals[_hooks.ENGINE_BATCHES] == 2
        assert totals[_hooks.ENGINE_JOBS] == 6

    def test_explicit_engine_overrides_global(self, threshold_setup, rng):
        tpk, _ = threshold_setup
        pk = tpk.paillier
        r = pk.random_unit(rng)
        with ProcessPoolEngine(workers=1, min_parallel=1) as pool:
            assert encrypt_many(pk, [9], [r], engine=pool)[0] == pk.encrypt(
                9, randomness=r
            )


class TestProtocolDeterminismAcrossEngines:
    """The acceptance bar: worker count never changes a transcript byte."""

    @staticmethod
    def _run(workers):
        from repro.circuits import dot_product_circuit
        from repro.core import run_mpc

        circuit = dot_product_circuit(2)
        result = run_mpc(
            circuit, {"alice": [2, 3], "bob": [5, 7]},
            n=4, epsilon=0.13, seed=99, workers=workers,
        )
        records = [
            (r.phase, r.tag, r.sender, r.n_bytes) for r in result.meter.records
        ]
        packed = {
            key: [c.value for c in cts]
            for key, cts in result.offline.packed_cipher.items()
        }
        return result.outputs, records, packed, dict(result.offline.epsilon_delta)

    def test_serial_and_pool_runs_are_identical(self):
        serial = self._run(0)
        pooled = self._run(2)
        assert serial == pooled
