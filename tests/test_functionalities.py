"""Tests for the ideal functionalities, including protocol-vs-ideal agreement."""

import random

import pytest

from repro.errors import YosoError
from repro.yoso.functionalities import (
    IdealBroadcast,
    IdealMpc,
    RoleStatus,
    Stage,
)


def _sum_function(inputs):
    total = sum(inputs.values())
    return {"out": total}


class TestIdealMpcStages:
    def _box(self, status=None):
        return IdealMpc(_sum_function, ["a", "b"], ["out"], status=status)

    def test_default_inputs_are_zero(self):
        box = self._box()
        box.advance_round()
        box.evaluate()
        assert box.read("out") == 0

    def test_honest_input_first_round_only(self):
        box = self._box()
        assert box.give_input("a", 5)
        assert not box.give_input("a", 7)  # only the first input counts
        box.advance_round()
        assert not box.give_input("b", 3)  # honest, but round 2
        box.evaluate()
        assert box.read("out") == 5

    def test_malicious_may_commit_late(self):
        box = self._box(status={"b": RoleStatus.MALICIOUS})
        box.give_input("a", 5)
        box.advance_round()
        assert box.give_input("b", 100)     # corrupt: late is fine
        assert box.give_input("b", 200)     # and may even change its mind
        box.evaluate()
        assert box.read("out") == 205

    def test_no_input_after_evaluated(self):
        box = self._box(status={"b": RoleStatus.MALICIOUS})
        box.advance_round()
        box.evaluate()
        assert not box.give_input("b", 9)

    def test_evaluate_needs_round_two(self):
        box = self._box()
        with pytest.raises(YosoError):
            box.evaluate()

    def test_read_before_evaluated_rejected(self):
        box = self._box()
        with pytest.raises(YosoError):
            box.read("out")

    def test_unknown_roles_rejected(self):
        box = self._box()
        with pytest.raises(YosoError):
            box.give_input("zzz", 1)
        box.advance_round()
        box.evaluate()
        with pytest.raises(YosoError):
            box.read("zzz")

    def test_double_evaluate_rejected(self):
        box = self._box()
        box.advance_round()
        box.evaluate()
        with pytest.raises(YosoError):
            box.evaluate()


class TestIdealMpcLeakage:
    def test_honest_inputs_leak_only_length(self):
        box = IdealMpc(_sum_function, ["a"], ["out"])
        box.give_input("a", 12345)
        assert box.leaks[0].content == (12345).bit_length()

    def test_leaky_inputs_leak_fully(self):
        box = IdealMpc(
            _sum_function, ["a"], ["out"], status={"a": RoleStatus.LEAKY}
        )
        box.give_input("a", 12345)
        assert box.leaks[0].content == 12345

    def test_corrupt_output_roles_leak_outputs(self):
        box = IdealMpc(
            _sum_function, ["a"], ["out"], status={"out": RoleStatus.MALICIOUS}
        )
        box.give_input("a", 7)
        box.advance_round()
        box.evaluate()
        assert any(l.role == "out" and l.content == 7 for l in box.leaks)


class TestIdealBroadcast:
    def test_send_read_roundtrip(self):
        bc = IdealBroadcast()
        bc.send("r1", "hello")
        bc.advance_round()
        assert bc.read(1) == {"r1": "hello"}

    def test_speak_once(self):
        bc = IdealBroadcast()
        bc.send("r1", "x")
        with pytest.raises(YosoError):
            bc.send("r1", "y")

    def test_rushing_leak_order(self):
        bc = IdealBroadcast()
        bc.send("r1", "a")
        bc.send("r2", "b", honest=False)
        assert [l.sender for l in bc.leaks] == ["r1", "r2"]

    def test_future_rounds_unreadable(self):
        bc = IdealBroadcast()
        bc.send("r1", "x")
        with pytest.raises(YosoError):
            bc.read(1)  # current round not finished

    def test_empty_round_reads_empty(self):
        bc = IdealBroadcast()
        bc.advance_round()
        bc.advance_round()
        assert bc.read(1) == {}


class TestProtocolRealizesIdeal:
    """The Definition 1 shape: real outputs == F_MPC outputs on same inputs."""

    def test_honest_execution_matches_ideal(self):
        from repro.circuits import dot_product_circuit
        from repro.core import run_mpc

        circuit = dot_product_circuit(3)
        inputs = {"alice": [2, 3, 4], "bob": [5, 6, 7]}
        real = run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=55)

        # The ideal box wraps the same function F over the same ring.
        ring = real.setup.ring

        def F(flat):
            values = circuit.evaluate(
                ring, {"alice": [flat["a0"], flat["a1"], flat["a2"]],
                       "bob": [flat["b0"], flat["b1"], flat["b2"]]}
            )
            return {"alice-out": int(values.outputs["alice"][0])}

        box = IdealMpc(F, ["a0", "a1", "a2", "b0", "b1", "b2"], ["alice-out"])
        for i, v in enumerate(inputs["alice"]):
            box.give_input(f"a{i}", v)
        for i, v in enumerate(inputs["bob"]):
            box.give_input(f"b{i}", v)
        box.advance_round()
        box.evaluate()
        assert real.outputs["alice"] == [box.read("alice-out")]

    def test_input_substitution_is_the_only_corrupt_power(self):
        # A corrupt client changing its posted μ is exactly an input change
        # in the ideal world: the real output equals F on the substituted
        # inputs, not garbage.
        import dataclasses

        from repro.circuits import dot_product_circuit
        from repro.core import ProtocolParams, YosoMpc
        from repro.yoso.adversary import Adversary

        circuit = dot_product_circuit(2)
        params = ProtocolParams.from_gap(4, 0.2)

        shift = 1  # adversary adds 1 to the client's first μ value

        def maul_client(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "mu" in payload:
                mu = dict(payload["mu"])
                first = min(mu)
                mu[first] = mu[first] + shift
                return {"mu": mu}
            return payload

        def factory(offline_committees, online_committees):
            return Adversary(transform=maul_client)

        protocol = YosoMpc(
            params, rng=random.Random(66), adversary_factory=factory
        )
        # Mark the client corrupt by corrupting... the transform applies only
        # to corrupted roles; client roles are created inside run, so use a
        # factory that corrupts nothing and instead rely on the public-μ
        # model: here we emulate by shifting the input directly.
        real = YosoMpc(params, rng=random.Random(66)).run(
            circuit, {"alice": [3 + shift, 4], "bob": [5, 6]}
        )
        expected = (3 + shift) * 5 + 4 * 6
        assert real.outputs["alice"] == [expected]
