"""Shared fixtures.

Expensive artifacts (threshold keys, protocol runs) are session-scoped so
the suite stays fast; tests that need isolation build their own.
"""

from __future__ import annotations

import random

import pytest

from repro.fields import Zmod
from repro.nizk import ProofParams
from repro.paillier import ThresholdPaillier, generate_keypair


@pytest.fixture()
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def field():
    """A prime field big enough for any sharing test."""
    return Zmod((1 << 61) - 1)


@pytest.fixture(scope="session")
def small_field():
    return Zmod(257)


@pytest.fixture(scope="session")
def proof_params():
    return ProofParams(challenge_bits=24)


@pytest.fixture(scope="session")
def paillier_keypair():
    return generate_keypair(64)


@pytest.fixture(scope="session")
def threshold_setup():
    """(tpk, shares) for n=5, t=2 at 64-bit modulus."""
    rng = random.Random(1234)
    return ThresholdPaillier.keygen(5, 2, bits=64, rng=rng)


@pytest.fixture(scope="session")
def threshold_setup_t1():
    """(tpk, shares) for n=4, t=1 — cheaper for resharing-heavy tests."""
    rng = random.Random(4321)
    return ThresholdPaillier.keygen(4, 1, bits=64, rng=rng)
