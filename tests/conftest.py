"""Shared fixtures.

Expensive artifacts (threshold keys, protocol runs) are session-scoped so
the suite stays fast; tests that need isolation build their own.
"""

from __future__ import annotations

import random

import pytest

from repro.fields import Zmod
from repro.nizk import ProofParams
from repro.paillier import ThresholdPaillier, generate_keypair
from repro.paillier.primes import fixture_safe_prime_pair


@pytest.fixture()
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def threshold_keygen():
    """Session-cached factory for deterministic threshold-Paillier keys.

    Keygen dominates the setup cost of every crypto-heavy module, so each
    ``(n, t, bits, which)`` geometry is generated once per session — from
    the fixed safe-prime fixtures via ``keygen_from_primes``, so the keys
    are identical across runs and machines.
    """
    cache: dict[tuple[int, int, int, int], tuple] = {}

    def factory(n_parties: int, threshold: int, bits: int = 64, which: int = 0):
        key = (n_parties, threshold, bits, which)
        if key not in cache:
            p, q = fixture_safe_prime_pair(bits // 2, which=which)
            cache[key] = ThresholdPaillier.keygen_from_primes(
                p, q, n_parties, threshold,
                rng=random.Random(1000 + 7 * which),
            )
        return cache[key]

    return factory


@pytest.fixture(scope="session")
def field():
    """A prime field big enough for any sharing test."""
    return Zmod((1 << 61) - 1)


@pytest.fixture(scope="session")
def small_field():
    return Zmod(257)


@pytest.fixture(scope="session")
def proof_params():
    return ProofParams(challenge_bits=24)


@pytest.fixture(scope="session")
def paillier_keypair():
    return generate_keypair(64)


@pytest.fixture(scope="session")
def threshold_setup(threshold_keygen):
    """(tpk, shares) for n=5, t=2 at 64-bit modulus."""
    return threshold_keygen(5, 2)


@pytest.fixture(scope="session")
def threshold_setup_t1(threshold_keygen):
    """(tpk, shares) for n=4, t=1 — cheaper for resharing-heavy tests.

    Uses the second prime fixture so its modulus differs from
    ``threshold_setup`` — cross-key error paths need genuinely foreign keys.
    """
    return threshold_keygen(4, 1, which=1)
