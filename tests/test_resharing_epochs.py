"""Epoch bookkeeping across resharings: TKRes→TKRec chains and error paths.

The threshold layer scales every share by Δ per hand-off, so an epoch-e
share set decrypts through the correction factor θ_e = 4·Δ^(2+e).  These
tests walk tsk through multiple epochs — both at the threshold layer
(plain subshares) and through the encrypted, publicly verifiable hand-off
of :mod:`repro.core.resharing` — and pin down the TKRec error paths.
"""

import random

import pytest

from repro.core.resharing import (
    build_resharing,
    next_verifications,
    receive_share,
    verified_contributors,
)
from repro.errors import EncryptionError
from repro.nizk import ProofParams
from repro.paillier import ThresholdPaillier
from repro.paillier.paillier import _keypair_from_primes
from repro.paillier.primes import random_prime
from repro.paillier.threshold import recombine_with_epoch

PARAMS = ProofParams(challenge_bits=24)


def _fresh_keys(count, bits, rng):
    out = []
    for _ in range(count):
        p = random_prime(bits // 2, rng=rng)
        q = random_prime(bits // 2, rng=rng)
        while q == p:
            q = random_prime(bits // 2, rng=rng)
        out.append(_keypair_from_primes(p, q))
    return out


def _advance_epoch(tpk, shares, rng):
    """One threshold-layer resharing hop over all senders and receivers."""
    messages = {s.index: ThresholdPaillier.reshare(tpk, s, rng=rng) for s in shares}
    cset = sorted(messages)
    previous_epoch = shares[0].epoch
    return [
        recombine_with_epoch(
            tpk, j,
            {i: messages[i].subshares[j - 1] for i in cset},
            previous_epoch, cset,
        )
        for j in range(1, tpk.n_parties + 1)
    ]


class TestEpochChain:
    def test_two_hops_decrypt_with_growing_epoch(self, threshold_keygen, rng):
        tpk, shares = threshold_keygen(4, 1)
        for expected_epoch, message in ((0, 111), (1, 22222), (2, 3333333)):
            assert all(s.epoch == expected_epoch for s in shares)
            ct = tpk.encrypt(message, rng=rng)
            assert ThresholdPaillier.decrypt(tpk, shares, ct) == message
            shares = _advance_epoch(tpk, shares, rng)

    def test_partials_carry_share_epoch(self, threshold_keygen, rng):
        tpk, shares = threshold_keygen(4, 1)
        later = _advance_epoch(tpk, shares, rng)
        ct = tpk.encrypt(5, rng=rng)
        partial = ThresholdPaillier.partial_decrypt(tpk, later[0], ct)
        assert partial.epoch == 1

    def test_mixed_epoch_partials_rejected(self, threshold_keygen, rng):
        tpk, shares = threshold_keygen(4, 1)
        later = _advance_epoch(tpk, shares, rng)
        ct = tpk.encrypt(5, rng=rng)
        mixed = [
            ThresholdPaillier.partial_decrypt(tpk, shares[0], ct),
            ThresholdPaillier.partial_decrypt(tpk, later[1], ct),
        ]
        with pytest.raises(EncryptionError, match="mixed epochs"):
            ThresholdPaillier.combine(tpk, mixed)

    def test_correction_factor_grows_by_delta_per_epoch(self, threshold_keygen):
        tpk, _ = threshold_keygen(4, 1)
        for epoch in range(3):
            assert (
                tpk.correction_factor(epoch + 1)
                == tpk.correction_factor(epoch) * tpk.delta % tpk.n
            )


class TestRecombineErrorPaths:
    def test_too_few_contributions(self, threshold_keygen, rng):
        tpk, shares = threshold_keygen(4, 1)
        message = ThresholdPaillier.reshare(tpk, shares[0], rng=rng)
        with pytest.raises(EncryptionError, match="need 2 resharing contributions"):
            recombine_with_epoch(tpk, 1, {1: message.subshares[0]}, 0)

    def test_missing_contribution_from_set(self, threshold_keygen, rng):
        tpk, shares = threshold_keygen(4, 1)
        messages = {
            s.index: ThresholdPaillier.reshare(tpk, s, rng=rng) for s in shares
        }
        contributions = {i: messages[i].subshares[0] for i in (1, 2)}
        with pytest.raises(EncryptionError, match=r"missing contributions from \[3\]"):
            recombine_with_epoch(tpk, 1, contributions, 0, contributor_set=[1, 2, 3])

    def test_default_contributor_set_is_all_contributions(
        self, threshold_keygen, rng
    ):
        tpk, shares = threshold_keygen(4, 1)
        messages = {
            s.index: ThresholdPaillier.reshare(tpk, s, rng=rng) for s in shares
        }
        contributions = {i: messages[i].subshares[2] for i in sorted(messages)}
        implicit = recombine_with_epoch(tpk, 3, contributions, 0)
        explicit = recombine_with_epoch(
            tpk, 3, contributions, 0, contributor_set=sorted(contributions)
        )
        assert implicit == explicit

    def test_epoch_increments_from_previous(self, threshold_keygen, rng):
        tpk, shares = threshold_keygen(4, 1)
        messages = {
            s.index: ThresholdPaillier.reshare(tpk, s, rng=rng) for s in shares
        }
        contributions = {i: messages[i].subshares[0] for i in sorted(messages)}
        share = recombine_with_epoch(tpk, 1, contributions, previous_epoch=4)
        assert share.epoch == 5


class TestEncryptedHandoffChain:
    """Two encrypted hops through repro.core.resharing, decrypting at each."""

    def test_two_encrypted_hops(self, threshold_keygen):
        rng = random.Random(31337)
        tpk, shares = threshold_keygen(4, 1)
        verifications = {s.index: s.verification for s in shares}

        for hop in (1, 2):
            recipients = _fresh_keys(tpk.n_parties, 80, rng)
            pks = [kp.public for kp in recipients]
            resharings = {
                s.index: build_resharing(tpk, s, pks, PARAMS, rng) for s in shares
            }
            cset = verified_contributors(tpk, resharings, verifications, pks, PARAMS)
            shares = [
                receive_share(
                    tpk, j, recipients[j - 1].secret, resharings, cset,
                    previous_epoch=hop - 1,
                )
                for j in range(1, tpk.n_parties + 1)
            ]
            verifications = next_verifications(tpk, resharings, cset)
            assert all(s.epoch == hop for s in shares)
            ct = tpk.encrypt(40 + hop, rng=rng)
            assert ThresholdPaillier.decrypt(tpk, shares, ct) == 40 + hop
