"""Tests for the Fiat–Shamir transcript."""

import pytest

from repro.errors import ParameterError
from repro.nizk import FiatShamirTranscript


class TestDeterminism:
    def test_same_inputs_same_challenge(self):
        a = FiatShamirTranscript("test").absorb(1, 2, "x").challenge(64)
        b = FiatShamirTranscript("test").absorb(1, 2, "x").challenge(64)
        assert a == b

    def test_label_separates_domains(self):
        a = FiatShamirTranscript("proto-a").absorb(1).challenge(64)
        b = FiatShamirTranscript("proto-b").absorb(1).challenge(64)
        assert a != b

    def test_order_sensitivity(self):
        a = FiatShamirTranscript("t").absorb(1, 2).challenge(64)
        b = FiatShamirTranscript("t").absorb(2, 1).challenge(64)
        assert a != b

    def test_type_framing_prevents_confusion(self):
        # The int 0x61 and the byte b"a" must hash differently.
        a = FiatShamirTranscript("t").absorb(0x61).challenge(64)
        b = FiatShamirTranscript("t").absorb(b"a").challenge(64)
        c = FiatShamirTranscript("t").absorb("a").challenge(64)
        assert len({a, b, c}) == 3

    def test_concatenation_ambiguity_prevented(self):
        a = FiatShamirTranscript("t").absorb("ab", "c").challenge(64)
        b = FiatShamirTranscript("t").absorb("a", "bc").challenge(64)
        assert a != b

    def test_negative_integers_distinct(self):
        a = FiatShamirTranscript("t").absorb(-5).challenge(64)
        b = FiatShamirTranscript("t").absorb(5).challenge(64)
        assert a != b

    def test_sequential_challenges_differ(self):
        t = FiatShamirTranscript("t").absorb(1)
        assert t.challenge(64) != t.challenge(64)


class TestChallengeRange:
    def test_bit_bound(self):
        for bits in (1, 8, 30, 128, 300):
            c = FiatShamirTranscript("t").absorb(9).challenge(bits)
            assert 0 <= c < (1 << bits)

    def test_zero_bits_rejected(self):
        with pytest.raises(ParameterError):
            FiatShamirTranscript("t").challenge(0)

    def test_large_challenge_uses_multiple_blocks(self):
        c = FiatShamirTranscript("t").absorb(1).challenge(512)
        assert c.bit_length() > 256


class TestAbsorbValidation:
    def test_bool_rejected(self):
        with pytest.raises(ParameterError):
            FiatShamirTranscript("t").absorb(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(ParameterError):
            FiatShamirTranscript("t").absorb(3.14)
