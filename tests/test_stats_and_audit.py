"""Tests for circuit statistics, packing-efficiency advice, and auditing."""

import random

import pytest

from repro.circuits import CircuitBuilder, dot_product_circuit
from repro.circuits.stats import (
    batch_efficiency,
    best_packing_factor,
    circuit_stats,
    estimate_phase_bytes,
)
from repro.core import ProtocolParams, run_mpc
from repro.core.audit import audit


class TestCircuitStats:
    def test_dot_product_shape(self):
        stats = circuit_stats(dot_product_circuit(5))
        assert stats.n_multiplications == 5
        assert stats.multiplicative_depth == 1
        assert stats.width_per_depth == {1: 5}
        assert stats.max_width == 5
        assert stats.input_clients == ("alice", "bob")

    def test_deep_circuit_widths(self):
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.power(x, 8), "a")  # squarings: width 1 at depths 1..3
        stats = circuit_stats(b.build())
        assert stats.multiplicative_depth == 3
        assert all(w == 1 for w in stats.width_per_depth.values())
        assert stats.min_width == 1

    def test_linear_only(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        b.output(b.add(x, y), "a")
        stats = circuit_stats(b.build())
        assert stats.n_multiplications == 0
        assert stats.multiplicative_depth == 0
        assert stats.n_linear == 1


class TestBatchEfficiency:
    def test_perfect_fill(self):
        eff = batch_efficiency(dot_product_circuit(6), k=3)
        assert eff.n_batches == 2
        assert eff.fill_ratio == 1.0
        assert eff.underfull_batches == 0

    def test_padding_measured(self):
        eff = batch_efficiency(dot_product_circuit(5), k=3)
        assert eff.n_batches == 2
        assert eff.underfull_batches == 1
        assert eff.fill_ratio == pytest.approx(5 / 6)
        assert eff.wasted_slots == 1

    def test_best_packing_prefers_fill(self):
        params = ProtocolParams(n=12, t=2, k=4, epsilon=0.33)
        # 4 muls: k=4 gives 1 batch (best); k=3 gives 2.
        assert best_packing_factor(dot_product_circuit(4), params) == 4
        # 1 mul: any k gives 1 batch; smallest wins ties implicitly? cost
        # equal -> keeps the first minimal k.
        assert best_packing_factor(dot_product_circuit(1), params) == 1

    def test_estimate_matches_cost_model_scale(self):
        params = ProtocolParams.from_gap(6, 0.25)
        estimate = estimate_phase_bytes(dot_product_circuit(6), params)
        assert estimate["offline"] > estimate["online"] > 0


class TestAudit:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mpc(
            dot_product_circuit(3), {"alice": [1, 2, 3], "bob": [4, 5, 6]},
            n=5, epsilon=0.25, seed=301,
        )

    def test_honest_run_passes(self, result):
        report = audit(result)
        assert report.ok, report.violations
        assert report.checked_posts > 0
        assert report.committees_seen["Coff-A"] == 5

    def test_adversarial_run_still_passes(self):
        # GOD means the transcript stays structurally complete even under
        # active corruption (bad content, same shape).
        from repro.yoso.adversary import Adversary, random_corruptions

        def factory(offline_committees, online_committees):
            rng = random.Random(302)
            random_corruptions(
                list(offline_committees.values())
                + list(online_committees.values()), 1, rng,
            )
            return Adversary()

        from repro.core import YosoMpc

        params = ProtocolParams.from_gap(6, 0.2)
        result = YosoMpc(
            params, rng=random.Random(303), adversary_factory=factory
        ).run(dot_product_circuit(2), {"alice": [1, 2], "bob": [3, 4]})
        assert audit(result).ok

    @staticmethod
    def _transcript_view(result, records):
        """A lightweight stand-in exposing only what the auditor reads."""
        from types import SimpleNamespace

        from repro.accounting.comm import CommMeter

        return SimpleNamespace(
            params=result.params,
            setup=result.setup,
            meter=CommMeter(records=list(records)),
        )

    def test_tampered_transcript_flagged(self, result):
        from repro.accounting.comm import MessageRecord

        records = list(result.meter.records)
        # Inject a tsk resharing from an online mul committee.
        records.append(
            MessageRecord("online", "Con-mul-1[1]", "Con-mul-1.tsk", 100)
        )
        report = audit(self._transcript_view(result, records))
        assert not report.ok
        assert any("tsk" in v for v in report.violations)

    def test_missing_committee_flagged(self, result):
        records = [
            r for r in result.meter.records if not r.tag.startswith("Coff-B")
        ]
        report = audit(self._transcript_view(result, records))
        assert any("Coff-B" in v for v in report.violations)

    def test_fail_stop_run_respects_reduced_minimum(self):
        from repro.yoso.adversary import Adversary, CrashSpec

        params = ProtocolParams.from_gap(8, 0.25, fail_stop=True)

        def factory(offline_committees, online_committees):
            rng = random.Random(304)
            mul = next(
                c for name, c in online_committees.items()
                if name.startswith("Con-mul")
            )
            return Adversary(
                crash_spec=CrashSpec.random_honest(
                    mul, params.fail_stop_budget, rng
                )
            )

        from repro.core import YosoMpc

        result = YosoMpc(
            params, rng=random.Random(305), adversary_factory=factory
        ).run(dot_product_circuit(2), {"alice": [1, 1], "bob": [1, 1]})
        assert audit(result).ok
