"""Tests for Reed–Solomon decoding and the proof-free protocol mode."""

import dataclasses
import random

import pytest

from repro.circuits import dot_product_circuit
from repro.core import ProtocolParams, YosoMpc
from repro.errors import ParameterError, ReconstructionError
from repro.fields import Polynomial, Zmod
from repro.sharing import PackedShamirScheme
from repro.sharing.decoding import berlekamp_welch, gaussian_solve
from repro.yoso.adversary import Adversary, random_corruptions

F = Zmod((1 << 61) - 1)


class TestGaussianSolve:
    def test_unique_solution(self):
        A = [[F(2), F(1)], [F(1), F(3)]]
        b = [F(5), F(10)]
        x = gaussian_solve(F, A, b)
        assert x is not None
        assert F(2) * x[0] + x[1] == 5
        assert x[0] + F(3) * x[1] == 10

    def test_singular_returns_none_or_partial(self):
        A = [[F(1), F(2)], [F(2), F(4)]]
        assert gaussian_solve(F, A, [F(1), F(3)]) is None  # inconsistent

    def test_underdetermined_consistent(self):
        A = [[F(1), F(2)], [F(2), F(4)]]
        x = gaussian_solve(F, A, [F(3), F(6)])  # consistent, free variable
        assert x is not None
        assert x[0] + F(2) * x[1] == 3

    def test_shape_mismatch(self):
        with pytest.raises(ParameterError):
            gaussian_solve(F, [[F(1)]], [F(1), F(2)])


class TestBerlekampWelch:
    def _noisy_points(self, poly, n_points, error_positions, rng):
        points = [(x, poly(x)) for x in range(1, n_points + 1)]
        return [
            (x, y + F(rng.randrange(1, 1000)) if x in error_positions else y)
            for x, y in points
        ]

    def test_exact_decoding_no_errors(self, rng):
        poly = Polynomial(F, [3, 1, 4, 1])
        points = self._noisy_points(poly, 10, set(), rng)
        assert berlekamp_welch(F, points, 3, 2) == poly

    @pytest.mark.parametrize("n_errors", [1, 2, 3])
    def test_corrects_up_to_e_errors(self, rng, n_errors):
        poly = Polynomial(F, [9, 8, 7])
        n_points = 2 + 1 + 2 * n_errors + 1
        bad = set(rng.sample(range(1, n_points + 1), n_errors))
        points = self._noisy_points(poly, n_points, bad, rng)
        assert berlekamp_welch(F, points, 2, n_errors) == poly

    def test_too_many_errors_detected(self, rng):
        poly = Polynomial(F, [1, 2, 3])
        points = self._noisy_points(poly, 9, {1, 2, 3, 4, 5}, rng)
        with pytest.raises(ReconstructionError):
            berlekamp_welch(F, points, 2, 2)

    def test_repeated_points_rejected(self):
        with pytest.raises(ReconstructionError):
            berlekamp_welch(F, [(1, F(1)), (1, F(2))], 0, 0)

    def test_negative_error_budget_rejected(self):
        with pytest.raises(ParameterError):
            berlekamp_welch(F, [(1, F(1))], 0, -1)


class TestRobustPackedReconstruction:
    def test_corrects_wrong_shares(self, rng):
        scheme = PackedShamirScheme(F, 13, 2)
        secrets = F.elements([42, 43])
        sharing = scheme.share(secrets, degree=4, rng=rng)
        mauled = list(sharing)
        for i in (2, 8):
            mauled[i] = dataclasses.replace(
                mauled[i], value=mauled[i].value + F(999)
            )
        assert scheme.robust_reconstruct(mauled, degree=4, max_errors=2) == secrets

    def test_plain_reconstruct_would_have_failed(self, rng):
        scheme = PackedShamirScheme(F, 13, 2)
        sharing = scheme.share(F.elements([1, 2]), degree=4, rng=rng)
        mauled = [
            dataclasses.replace(sharing[0], value=sharing[0].value + F(1))
        ] + sharing[1:]
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(mauled, degree=4)  # detection only
        assert scheme.robust_reconstruct(
            mauled, degree=4, max_errors=1
        ) == F.elements([1, 2])


class TestRobustProtocolMode:
    CIRCUIT = dot_product_circuit(3)
    INPUTS = {"alice": [1, 2, 3], "bob": [4, 5, 6]}
    EXPECTED = [32]

    def test_parameter_validation(self):
        # n=8, t=1, k=2: needs 1+2+1+2 = 6 <= 8: OK.
        ProtocolParams(n=8, t=1, k=2, epsilon=0.2, robust_reconstruction=True)
        with pytest.raises(ParameterError):
            # n=5 cannot correct t=1 errors at degree 3 (needs 4+2t=6 > 5).
            ProtocolParams(n=5, t=1, k=2, epsilon=0.2,
                           robust_reconstruction=True)

    def test_honest_run(self):
        params = ProtocolParams(n=8, t=1, k=2, epsilon=0.2,
                                robust_reconstruction=True)
        result = YosoMpc(params, rng=random.Random(71)).run(
            self.CIRCUIT, self.INPUTS
        )
        assert result.outputs["alice"] == self.EXPECTED

    def test_no_proof_tokens_posted(self):
        params = ProtocolParams(n=8, t=1, k=2, epsilon=0.2,
                                robust_reconstruction=True)
        result = YosoMpc(params, rng=random.Random(72)).run(
            self.CIRCUIT, self.INPUTS
        )
        for record in result.meter.records:
            assert "proof" not in record.tag or not record.tag.startswith("Con-mul")
        # And the online μ bytes are smaller than oracle mode's.
        oracle_params = ProtocolParams(n=8, t=1, k=2, epsilon=0.2)
        oracle_run = YosoMpc(oracle_params, rng=random.Random(72)).run(
            self.CIRCUIT, self.INPUTS
        )
        assert result.online_mul_bytes() < oracle_run.online_mul_bytes() / 3

    def test_active_adversary_corrected_not_excluded(self):
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "mu_shares" in payload:
                return {
                    **payload,
                    "mu_shares": {
                        b: {"value": e["value"] + 31337}
                        for b, e in payload["mu_shares"].items()
                    },
                }
            return payload

        def factory(offline_committees, online_committees):
            rng = random.Random(73)
            random_corruptions(
                [c for name, c in online_committees.items()
                 if name.startswith("Con-mul")],
                1, rng,
            )
            return Adversary(transform=maul)

        params = ProtocolParams(n=8, t=1, k=2, epsilon=0.2,
                                robust_reconstruction=True)
        result = YosoMpc(
            params, rng=random.Random(74), adversary_factory=factory
        ).run(self.CIRCUIT, self.INPUTS)
        assert result.outputs["alice"] == self.EXPECTED
