"""Tests for the CDN and Turbopack baselines (correctness + cost shape)."""

import random

import pytest

from repro.baselines import CdnYosoMpc, TurbopackSimulator
from repro.circuits import (
    CircuitBuilder,
    dot_product_circuit,
    random_circuit,
)
from repro.core import run_mpc
from repro.errors import ParameterError, ProtocolAbortError
from repro.fields import Zmod


class TestCdnCorrectness:
    def test_dot_product(self):
        cdn = CdnYosoMpc(n=4, t=1, rng=random.Random(3))
        result = cdn.run(
            dot_product_circuit(3), {"alice": [1, 2, 3], "bob": [4, 5, 6]}
        )
        assert result.outputs["alice"] == [32]

    def test_deep_circuit(self):
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.power(x, 4), "a")
        cdn = CdnYosoMpc(n=4, t=1, rng=random.Random(4))
        assert cdn.run(b.build(), {"a": [5]}).outputs["a"] == [625]

    def test_linear_gates(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        b.output(b.cadd(-3, b.cmul(2, b.sub(x, y))), "a")
        cdn = CdnYosoMpc(n=4, t=1, rng=random.Random(5))
        result = cdn.run(b.build(), {"a": [10], "b": [4]})
        assert result.outputs["a"] == [2 * 6 - 3]

    def test_differential_against_ours(self):
        rng = random.Random(21)
        circuit = random_circuit(rng, n_inputs=3, n_gates=8, n_clients=2,
                                 value_bound=20)
        inputs = {
            f"client{i}": [rng.randrange(20) for _ in circuit.inputs_of_client(f"client{i}")]
            for i in range(2)
        }
        ours = run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=22)
        cdn = CdnYosoMpc(n=4, t=1, rng=random.Random(23)).run(circuit, inputs)
        # Each protocol computes over its own plaintext ring Z_N; compare
        # each against the reference evaluation in that same ring.
        expected_ours = circuit.evaluate(ours.setup.ring, inputs).outputs
        assert ours.outputs == {
            c: [int(v) for v in vs] for c, vs in expected_ours.items()
        }
        cdn_ring = Zmod(cdn.modulus, assume_prime=False)
        expected_cdn = circuit.evaluate(cdn_ring, inputs).outputs
        assert cdn.outputs == {
            c: [int(v) for v in vs] for c, vs in expected_cdn.items()
        }

    def test_honest_majority_required(self):
        with pytest.raises(ProtocolAbortError):
            CdnYosoMpc(n=4, t=2)

    def test_wrong_input_count(self):
        cdn = CdnYosoMpc(n=4, t=1, rng=random.Random(6))
        with pytest.raises(ProtocolAbortError):
            cdn.run(dot_product_circuit(2), {"alice": [1], "bob": [1, 2]})


class TestCdnCostShape:
    def test_online_grows_with_n(self):
        circuit = dot_product_circuit(6)
        inputs = {"alice": [1] * 6, "bob": [2] * 6}
        small = CdnYosoMpc(n=4, t=1, rng=random.Random(7)).run(circuit, inputs)
        large = CdnYosoMpc(n=8, t=3, rng=random.Random(8)).run(circuit, inputs)
        assert large.online_mul_bytes() > 1.5 * small.online_mul_bytes()


class TestTurbopack:
    def test_correctness_random_circuits(self):
        rng = random.Random(31)
        F = Zmod((1 << 61) - 1)
        for _ in range(3):
            circuit = random_circuit(rng, n_inputs=4, n_gates=12, n_clients=2)
            inputs = {
                f"client{i}": [rng.randrange(500) for _ in circuit.inputs_of_client(f"client{i}")]
                for i in range(2)
            }
            sim = TurbopackSimulator(n=9, t=2, k=3, rng=rng)
            expected = circuit.evaluate(F, inputs).outputs
            got = sim.run(circuit, inputs).outputs
            assert got == {c: [int(v) for v in vs] for c, vs in expected.items()}

    def test_parameter_constraint(self):
        with pytest.raises(ParameterError):
            TurbopackSimulator(n=6, t=2, k=3)

    def test_online_constant_in_n(self):
        circuit = dot_product_circuit(8)
        inputs = {"alice": [1] * 8, "bob": [1] * 8}
        small = TurbopackSimulator(n=7, t=1, k=2, rng=random.Random(1)).run(circuit, inputs)
        # same k, larger n: per-gate online grows ~linearly ONLY in the
        # shares-to-P1 step, which is n/k per gate; with bigger k it drops.
        large_k = TurbopackSimulator(n=13, t=1, k=5, rng=random.Random(2)).run(circuit, inputs)
        per_gate_small = small.online_bytes() / circuit.n_multiplications
        per_gate_large = large_k.online_bytes() / circuit.n_multiplications
        assert per_gate_large < per_gate_small * 1.5

    def test_packing_reduces_messages(self):
        circuit = dot_product_circuit(8)
        inputs = {"alice": [1] * 8, "bob": [1] * 8}
        k1 = TurbopackSimulator(n=9, t=2, k=1, rng=random.Random(3)).run(circuit, inputs)
        k3 = TurbopackSimulator(n=9, t=2, k=3, rng=random.Random(4)).run(circuit, inputs)
        msgs_k1 = k1.meter.messages_by_tag("online")["mu-share-to-p1"]
        msgs_k3 = k3.meter.messages_by_tag("online")["mu-share-to-p1"]
        assert msgs_k3 <= msgs_k1 / 2
