"""Tests for Lagrange coefficient machinery (modular and integer-scaled)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InterpolationError
from repro.fields import (
    Polynomial,
    Zmod,
    falling_factorial_delta,
    integer_lagrange_scaled,
    lagrange_coefficients,
)
from repro.fields.lagrange import lagrange_basis_rows

F = Zmod((1 << 61) - 1)


class TestModularLagrange:
    def test_reconstructs_constant_term(self, rng):
        p = Polynomial(F, [rng.randrange(1000) for _ in range(4)])
        xs = [1, 2, 5, 9]
        coeffs = lagrange_coefficients(F, xs, at=0)
        total = sum((c * p(x) for c, x in zip(coeffs, xs)), F.zero)
        assert total == p(0)

    def test_evaluates_at_arbitrary_point(self, rng):
        p = Polynomial(F, [rng.randrange(1000) for _ in range(3)])
        xs = [-1, 0, 4]
        coeffs = lagrange_coefficients(F, xs, at=7)
        total = sum((c * p(x) for c, x in zip(coeffs, xs)), F.zero)
        assert total == p(7)

    def test_coefficients_sum_to_one(self):
        # Interpolating the constant polynomial 1 gives 1 everywhere.
        coeffs = lagrange_coefficients(F, [1, 2, 3, 4], at=9)
        assert sum(coeffs, F.zero) == 1

    def test_duplicate_points_rejected(self):
        with pytest.raises(InterpolationError):
            lagrange_coefficients(F, [1, 1], at=0)

    def test_empty_rejected(self):
        with pytest.raises(InterpolationError):
            lagrange_coefficients(F, [], at=0)

    def test_basis_rows_shape(self):
        rows = lagrange_basis_rows(F, [0, -1, 1], targets=[2, 3])
        assert len(rows) == 2 and all(len(r) == 3 for r in rows)

    def test_composite_ring_small_points_invertible(self):
        # Z_N with N an RSA modulus: differences of small points invert fine.
        R = Zmod(3233 * 3499, assume_prime=False)  # small RSA-ish modulus
        coeffs = lagrange_coefficients(R, [1, 2, 3], at=0)
        assert sum(coeffs, R.zero) == 1


class TestIntegerScaled:
    def test_delta_is_factorial(self):
        assert falling_factorial_delta(5) == math.factorial(5)

    def test_scaled_coefficients_are_integers(self):
        scaled, delta = integer_lagrange_scaled([1, 2, 3, 5], at=0)
        assert all(isinstance(c, int) for c in scaled)
        assert delta == math.factorial(5)

    def test_scaled_interpolation_identity(self, rng):
        # Δ·f(0) = Σ Δλ_i·f(x_i) exactly over the integers.
        coeffs = [rng.randrange(1 << 20) for _ in range(3)]

        def f(x):
            return coeffs[0] + coeffs[1] * x + coeffs[2] * x * x

        xs = [1, 3, 4]
        scaled, delta = integer_lagrange_scaled(xs, at=0)
        assert sum(lam * f(x) for lam, x in zip(scaled, xs)) == delta * f(0)

    def test_explicit_delta_clears(self):
        scaled, delta = integer_lagrange_scaled([1, 2], at=0, delta=2)
        assert delta == 2
        assert scaled == [4, -2]

    def test_insufficient_delta_rejected(self):
        # λ_1 for points {1,2,4} at 0 is 8/3, so Δ=1 cannot clear it.
        with pytest.raises(InterpolationError):
            integer_lagrange_scaled([1, 2, 4], at=0, delta=1)

    def test_negative_points_supported(self):
        scaled, delta = integer_lagrange_scaled([-1, 0, 1], at=2, delta=math.factorial(4))
        def f(x):
            return 3 + 5 * x + 7 * x * x
        assert sum(lam * f(x) for lam, x in zip(scaled, [-1, 0, 1])) == delta * f(2)


@settings(max_examples=30, deadline=None)
@given(
    xs=st.lists(
        st.integers(min_value=1, max_value=12), min_size=2, max_size=6, unique=True
    ),
    coeffs=st.lists(st.integers(min_value=0, max_value=1 << 30), min_size=1, max_size=4),
)
def test_integer_scaled_property(xs, coeffs):
    coeffs = coeffs[: len(xs)]  # keep the degree interpolatable from xs

    def f(x):
        return sum(c * x ** i for i, c in enumerate(coeffs))

    scaled, delta = integer_lagrange_scaled(xs, at=0)
    assert sum(lam * f(x) for lam, x in zip(scaled, xs)) == delta * f(0)
