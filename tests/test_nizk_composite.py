"""Tests for composite proofs and the public resharing exponent checks."""


import pytest

from repro.errors import ProofError
from repro.nizk import (
    CompositeProof,
    verify_exponent_interpolates_share,
    verify_exponent_polynomial,
)
from repro.paillier import ThresholdPaillier


@pytest.fixture(scope="module")
def tkeys(threshold_keygen):
    return threshold_keygen(4, 1)


class TestCompositeProof:
    def test_build_and_lookup(self):
        cp = CompositeProof.build([("a", 1), ("b", 2)])
        assert cp.component("a") == 1
        assert cp.labels() == ["a", "b"]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ProofError):
            CompositeProof.build([("a", 1), ("a", 2)])

    def test_missing_component_rejected(self):
        cp = CompositeProof.build([("a", 1)])
        with pytest.raises(ProofError):
            cp.component("zzz")

    def test_verify_all_pass(self):
        cp = CompositeProof.build([("a", 10), ("b", 20)])
        assert cp.verify({"a": lambda p: p == 10, "b": lambda p: p == 20})

    def test_verify_one_failure_fails_bundle(self):
        cp = CompositeProof.build([("a", 10), ("b", 20)])
        assert not cp.verify({"a": lambda p: p == 10, "b": lambda p: False})

    def test_verifier_mismatch_raises(self):
        cp = CompositeProof.build([("a", 10)])
        with pytest.raises(ProofError):
            cp.verify({"a": lambda p: True, "extra": lambda p: True})
        with pytest.raises(ProofError):
            cp.verify({})


class TestExponentChecks:
    def test_honest_resharing_passes(self, tkeys, rng):
        tpk, shares = tkeys
        msg = ThresholdPaillier.reshare(tpk, shares[0], rng=rng)
        assert verify_exponent_polynomial(tpk, msg)
        assert verify_exponent_interpolates_share(tpk, msg, shares[0].verification)

    def test_accepts_raw_verification_sequences(self, tkeys, rng):
        tpk, shares = tkeys
        msg = ThresholdPaillier.reshare(tpk, shares[0], rng=rng)
        assert verify_exponent_polynomial(tpk, msg.verifications)
        assert verify_exponent_interpolates_share(
            tpk, msg.verifications, shares[0].verification
        )

    def test_off_polynomial_value_detected(self, tkeys, rng):
        tpk, shares = tkeys
        msg = ThresholdPaillier.reshare(tpk, shares[0], rng=rng)
        bad = msg.verifications[:-1] + (msg.verifications[0],)
        assert not verify_exponent_polynomial(tpk, bad)

    def test_wrong_constant_term_detected(self, tkeys, rng):
        tpk, shares = tkeys
        msg = ThresholdPaillier.reshare(tpk, shares[0], rng=rng)
        # Consistent polynomial but committed to a different share.
        assert not verify_exponent_interpolates_share(
            tpk, msg, shares[1].verification
        )

    def test_wrong_length_rejected(self, tkeys, rng):
        tpk, shares = tkeys
        msg = ThresholdPaillier.reshare(tpk, shares[0], rng=rng)
        assert not verify_exponent_polynomial(tpk, msg.verifications[:-1])
        assert not verify_exponent_interpolates_share(
            tpk, msg.verifications[:-1], shares[0].verification
        )

    def test_degenerate_values_rejected(self, tkeys):
        tpk, shares = tkeys
        zeros = (0,) * tpk.n_parties
        assert not verify_exponent_polynomial(tpk, zeros)
