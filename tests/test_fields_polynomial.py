"""Tests for polynomials: evaluation, interpolation, constrained sampling."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InterpolationError, ParameterError
from repro.fields import Polynomial, Zmod, interpolate, random_polynomial
from repro.fields.polynomial import evaluate_from_points

F = Zmod((1 << 61) - 1)


class TestPolynomialBasics:
    def test_degree_and_trailing_zeros(self):
        assert Polynomial(F, [1, 2, 0, 0]).degree == 1
        assert Polynomial(F, []).degree == -1
        assert Polynomial(F, [0, 0]).is_zero()

    def test_horner_evaluation(self):
        p = Polynomial(F, [7, 0, 2])  # 2x^2 + 7
        assert p(3) == 2 * 9 + 7
        assert p(0) == 7

    def test_evaluate_many(self):
        p = Polynomial(F, [1, 1])
        assert [int(v) for v in p.evaluate_many([0, 1, 2])] == [1, 2, 3]

    def test_addition_and_subtraction(self):
        p = Polynomial(F, [1, 2, 3])
        q = Polynomial(F, [4, 5])
        assert (p + q)(10) == p(10) + q(10)
        assert (p - q)(10) == p(10) - q(10)

    def test_addition_cancels_leading_term(self):
        p = Polynomial(F, [0, 0, 1])
        q = Polynomial(F, [0, 0, -1])
        assert (p + q).is_zero()

    def test_multiplication(self):
        p = Polynomial(F, [1, 1])     # x + 1
        q = Polynomial(F, [-1, 1])    # x − 1
        assert (p * q)(5) == 24       # x² − 1 at 5

    def test_scalar_multiplication(self):
        p = Polynomial(F, [1, 2])
        assert (p * 3)(4) == 3 * p(4)
        assert (3 * p)(4) == 3 * p(4)

    def test_zero_product(self):
        p = Polynomial(F, [1, 2])
        assert (p * Polynomial(F, [])).is_zero()

    def test_equality_and_hash(self):
        assert Polynomial(F, [1, 2]) == Polynomial(F, [1, 2, 0])
        assert hash(Polynomial(F, [1, 2])) == hash(Polynomial(F, [1, 2]))

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Polynomial(F, [1]).coefficients = ()

    def test_repr_mentions_terms(self):
        assert "x^1" in repr(Polynomial(F, [0, 5]))
        assert repr(Polynomial(F, [])) == "Polynomial(0)"


class TestInterpolation:
    def test_exact_recovery(self, rng):
        coeffs = [rng.randrange(1 << 40) for _ in range(6)]
        p = Polynomial(F, coeffs)
        points = [(x, p(x)) for x in range(-2, 4)]
        assert interpolate(F, points) == p

    def test_negative_points(self):
        p = interpolate(F, [(-1, 5), (0, 7), (2, 11)])
        assert p(-1) == 5 and p(0) == 7 and p(2) == 11

    def test_repeated_points_rejected(self):
        with pytest.raises(InterpolationError):
            interpolate(F, [(1, 2), (1, 3)])

    def test_empty_rejected(self):
        with pytest.raises(InterpolationError):
            interpolate(F, [])

    def test_evaluate_from_points_matches_interpolant(self, rng):
        p = Polynomial(F, [rng.randrange(100) for _ in range(4)])
        points = [(x, p(x)) for x in (1, 3, 5, 7)]
        assert evaluate_from_points(F, points, at=11) == p(11)


class TestRandomPolynomial:
    def test_constraints_honoured(self, rng):
        constraints = [(0, F(9)), (-1, F(4)), (-2, F(1))]
        p = random_polynomial(F, 5, constraints, rng=rng)
        assert p.degree <= 5
        for x, y in constraints:
            assert p(x) == y

    def test_fully_determined(self, rng):
        p = random_polynomial(F, 1, [(0, 3), (1, 4)], rng=rng)
        assert p == interpolate(F, [(0, 3), (1, 4)])

    def test_over_determined_rejected(self, rng):
        with pytest.raises(ParameterError):
            random_polynomial(F, 1, [(0, 1), (1, 2), (2, 3)], rng=rng)

    def test_negative_degree(self, rng):
        assert random_polynomial(F, -1, rng=rng).is_zero()
        with pytest.raises(ParameterError):
            random_polynomial(F, -2, rng=rng)

    def test_unconstrained_values_vary(self):
        values = {
            int(random_polynomial(F, 3, [(0, 1)], rng=random.Random(i))(5))
            for i in range(10)
        }
        assert len(values) > 1

    def test_repeated_constraint_points_rejected(self, rng):
        with pytest.raises(InterpolationError):
            random_polynomial(F, 3, [(0, 1), (0, 2)], rng=rng)


@settings(max_examples=30, deadline=None)
@given(
    ys=st.lists(st.integers(min_value=0, max_value=1 << 60), min_size=1, max_size=8)
)
def test_interpolation_roundtrip_property(ys):
    points = list(enumerate(ys))
    p = interpolate(F, points)
    assert p.degree <= len(points) - 1
    for x, y in points:
        assert p(x) == y


@settings(max_examples=30, deadline=None)
@given(
    degree=st.integers(min_value=0, max_value=6),
    secret=st.integers(min_value=0, max_value=1 << 60),
    seed=st.integers(min_value=0, max_value=1 << 30),
)
def test_random_polynomial_constraint_property(degree, secret, seed):
    p = random_polynomial(F, degree, [(0, secret)], rng=random.Random(seed))
    assert p(0) == secret
    assert p.degree <= degree
