"""Property-based end-to-end test: random circuits through the full stack."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuits import random_circuit
from repro.core import run_mpc


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(seed=st.integers(min_value=0, max_value=1 << 30))
def test_protocol_matches_plaintext_on_random_circuits(seed):
    """For arbitrary circuits and inputs, the MPC output equals the
    reference evaluation over the protocol's own plaintext ring."""
    rng = random.Random(seed)
    circuit = random_circuit(
        rng, n_inputs=3, n_gates=8, n_clients=2, value_bound=25
    )
    inputs = {
        f"client{i}": [
            rng.randrange(50) for _ in circuit.inputs_of_client(f"client{i}")
        ]
        for i in range(2)
    }
    result = run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=seed)
    expected = circuit.evaluate(result.setup.ring, inputs).outputs
    assert result.outputs == {
        c: [int(v) for v in vs] for c, vs in expected.items()
    }
