"""Tests for prime generation."""

import random

import pytest

from repro.errors import ParameterError
from repro.paillier import is_probable_prime, random_prime, random_safe_prime
from repro.paillier.primes import SAFE_PRIME_FIXTURES, fixture_safe_prime_pair


class TestMillerRabin:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 97, 257, 65537):
            assert is_probable_prime(p)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 15, 91, 561, 1105):  # incl. Carmichael numbers
            assert not is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        for c in (1729, 2465, 2821, 6601, 8911, 41041, 62745):
            assert not is_probable_prime(c)

    def test_large_known_prime(self):
        assert is_probable_prime((1 << 61) - 1)
        assert not is_probable_prime((1 << 61) - 3)

    def test_deterministic_with_seeded_rng(self):
        rng = random.Random(5)
        assert is_probable_prime(10**18 + 9, rng=rng)


class TestGeneration:
    def test_random_prime_exact_bits(self):
        rng = random.Random(1)
        for bits in (16, 24, 32):
            p = random_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_random_prime_too_small(self):
        with pytest.raises(ParameterError):
            random_prime(2)

    def test_random_safe_prime(self):
        rng = random.Random(2)
        p = random_safe_prime(20, rng=rng)
        assert p.bit_length() == 20
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)


class TestFixtures:
    def test_all_fixtures_are_safe_primes(self):
        for bits, pool in SAFE_PRIME_FIXTURES.items():
            for p in pool:
                assert p.bit_length() == bits
                assert is_probable_prime(p)
                assert is_probable_prime((p - 1) // 2)

    def test_pairs_distinct(self):
        for which in range(5):
            p, q = fixture_safe_prime_pair(32, which)
            assert p != q

    def test_different_indices_give_different_pairs(self):
        assert fixture_safe_prime_pair(32, 0) != fixture_safe_prime_pair(32, 1)

    def test_unknown_size_rejected(self):
        with pytest.raises(ParameterError):
            fixture_safe_prime_pair(17)
