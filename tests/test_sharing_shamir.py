"""Tests for standard Shamir sharing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError, ReconstructionError, SharingError
from repro.fields import Polynomial, Zmod
from repro.sharing import ShamirScheme, Share

F = Zmod((1 << 61) - 1)


class TestSharing:
    def test_share_reconstruct_roundtrip(self, rng):
        scheme = ShamirScheme(F, 7, 3)
        secret = F(987654321)
        shares = scheme.share(secret, rng=rng)
        assert len(shares) == 7
        assert scheme.reconstruct(shares) == secret

    def test_exactly_threshold_plus_one_suffices(self, rng):
        scheme = ShamirScheme(F, 7, 3)
        shares = scheme.share(F(42), rng=rng)
        assert scheme.reconstruct(shares[:4]) == 42
        assert scheme.reconstruct(shares[3:]) == 42

    def test_too_few_shares_rejected(self, rng):
        scheme = ShamirScheme(F, 5, 2)
        shares = scheme.share(F(1), rng=rng)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(shares[:2])

    def test_t_shares_leak_nothing(self):
        # Share two different secrets with the same randomness source; the
        # marginal distribution of any t shares is identical (here: check
        # that t shares do not determine the secret by finding two sharings
        # agreeing on t points but with different secrets).
        scheme = ShamirScheme(F, 5, 2)
        s1 = scheme.share(F(0), rng=random.Random(7))
        # Build a sharing of 1 that matches s1 on shares 1..2.
        from repro.fields import interpolate
        points = [(0, F(1))] + [(s.index, s.value) for s in s1[:2]]
        poly = interpolate(F, points)
        s2 = scheme.shares_of_polynomial(poly)
        assert [x.value for x in s2[:2]] == [x.value for x in s1[:2]]
        assert scheme.reconstruct(s2) == 1
        assert scheme.reconstruct(s1) == 0

    def test_inconsistent_extra_share_detected(self, rng):
        scheme = ShamirScheme(F, 6, 2)
        shares = scheme.share(F(5), rng=rng)
        bad = shares[:5] + [Share(6, shares[5].value + F(1))]
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(bad)

    def test_conflicting_duplicate_shares_detected(self, rng):
        scheme = ShamirScheme(F, 5, 2)
        shares = scheme.share(F(5), rng=rng)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(shares + [Share(1, shares[0].value + F(1))])

    def test_duplicate_identical_shares_deduped(self, rng):
        scheme = ShamirScheme(F, 5, 2)
        shares = scheme.share(F(5), rng=rng)
        assert scheme.reconstruct(shares[:3] + shares[:2]) == 5

    def test_polynomial_degree_enforced(self):
        scheme = ShamirScheme(F, 5, 2)
        with pytest.raises(SharingError):
            scheme.shares_of_polynomial(Polynomial(F, [1, 0, 0, 1]))


class TestLinearity:
    def test_share_addition(self, rng):
        scheme = ShamirScheme(F, 5, 2)
        a = scheme.share(F(100), rng=rng)
        b = scheme.share(F(23), rng=rng)
        assert scheme.reconstruct(ShamirScheme.add(a, b)) == 123

    def test_share_scaling(self, rng):
        scheme = ShamirScheme(F, 5, 2)
        a = scheme.share(F(10), rng=rng)
        assert scheme.reconstruct(ShamirScheme.scale(a, 7)) == 70

    def test_adding_mismatched_indices_rejected(self):
        with pytest.raises(SharingError):
            Share(1, F(1)) + Share(2, F(2))

    def test_missing_counterpart_rejected(self, rng):
        scheme = ShamirScheme(F, 5, 2)
        a = scheme.share(F(1), rng=rng)
        b = scheme.share(F(2), rng=rng)
        with pytest.raises(SharingError):
            ShamirScheme.add(a, b[:-1] and b[1:])


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ParameterError):
            ShamirScheme(F, 0, 0)
        with pytest.raises(ParameterError):
            ShamirScheme(F, 3, 3)
        with pytest.raises(ParameterError):
            ShamirScheme(Zmod(5), 5, 1)

    def test_share_index_positive(self):
        with pytest.raises(ParameterError):
            Share(0, F(1))


@settings(max_examples=25, deadline=None)
@given(
    secret=st.integers(min_value=0, max_value=(1 << 61) - 2),
    n=st.integers(min_value=2, max_value=9),
    seed=st.integers(min_value=0, max_value=1 << 30),
    data=st.data(),
)
def test_roundtrip_property(secret, n, seed, data):
    t = data.draw(st.integers(min_value=0, max_value=n - 1))
    scheme = ShamirScheme(F, n, t)
    shares = scheme.share(F(secret), rng=random.Random(seed))
    subset = data.draw(
        st.lists(st.sampled_from(shares), min_size=t + 1, max_size=n, unique=True)
    )
    assert scheme.reconstruct(subset) == secret


@settings(max_examples=25, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=1 << 60),
    b=st.integers(min_value=0, max_value=1 << 60),
    c=st.integers(min_value=0, max_value=1 << 30),
    seed=st.integers(min_value=0, max_value=1 << 30),
)
def test_linearity_property(a, b, c, seed):
    rng = random.Random(seed)
    scheme = ShamirScheme(F, 6, 2)
    sa, sb = scheme.share(F(a), rng=rng), scheme.share(F(b), rng=rng)
    combined = ShamirScheme.add(ShamirScheme.scale(sa, c), sb)
    assert scheme.reconstruct(combined) == (F(a) * c + b)
