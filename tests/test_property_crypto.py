"""Property-based tests (hypothesis) across the cryptographic stack."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.reencrypt import recover_reencrypted, reencrypt_contribution
from repro.nizk import PlaintextKnowledgeProof, ProofParams
from repro.paillier import ThresholdPaillier, generate_keypair
from repro.paillier.threshold import recombine_with_epoch, teval

PARAMS = ProofParams(challenge_bits=24)

# Session-fixed keys: hypothesis shrinks over messages, not keys.
_TPK, _SHARES = ThresholdPaillier.keygen(4, 1, bits=64, rng=random.Random(9))
_KP = generate_keypair(64)
_RECIPIENT = generate_keypair(160, rng=random.Random(10), use_fixtures=False)


@settings(max_examples=20, deadline=None)
@given(message=st.integers(min_value=0))
def test_threshold_roundtrip_property(message):
    ct = _TPK.encrypt(message)
    assert ThresholdPaillier.decrypt(_TPK, _SHARES[:2], ct) == message % _TPK.n


@settings(max_examples=20, deadline=None)
@given(
    m1=st.integers(min_value=0, max_value=1 << 50),
    m2=st.integers(min_value=0, max_value=1 << 50),
    c1=st.integers(min_value=-100, max_value=100),
    c2=st.integers(min_value=-100, max_value=100),
)
def test_teval_linear_combination_property(m1, m2, c1, c2):
    cts = [_TPK.encrypt(m1), _TPK.encrypt(m2)]
    combo = teval(_TPK, cts, [c1, c2])
    expected = (c1 * m1 + c2 * m2) % _TPK.n
    assert ThresholdPaillier.decrypt(_TPK, _SHARES[1:3], combo) == expected


@settings(max_examples=10, deadline=None)
@given(
    message=st.integers(min_value=0, max_value=1 << 60),
    subset=st.sets(st.integers(min_value=1, max_value=4), min_size=2, max_size=4),
    seed=st.integers(min_value=0, max_value=1 << 20),
)
def test_resharing_any_quorum_property(message, subset, seed):
    rng = random.Random(seed)
    cset = sorted(subset)
    msgs = {s.index: ThresholdPaillier.reshare(_TPK, s, rng=rng) for s in _SHARES}
    new_shares = [
        recombine_with_epoch(
            _TPK, j, {i: msgs[i].subshares[j - 1] for i in cset}, 0, cset
        )
        for j in range(1, 5)
    ]
    ct = _TPK.encrypt(message, rng=rng)
    assert ThresholdPaillier.decrypt(_TPK, new_shares[:2], ct) == message


@settings(max_examples=15, deadline=None)
@given(
    message=st.integers(min_value=0, max_value=1 << 60),
    seed=st.integers(min_value=0, max_value=1 << 20),
)
def test_popk_complete_for_all_messages(message, seed):
    rng = random.Random(seed)
    pk = _KP.public
    r = pk.random_unit(rng)
    ct = pk.encrypt(message, randomness=r)
    proof = PlaintextKnowledgeProof.prove(pk, ct, message, r, PARAMS, rng)
    assert proof.verify(pk, ct, PARAMS)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    message=st.integers(min_value=0, max_value=1 << 60),
    quorum=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=1 << 20),
)
def test_reencrypt_roundtrip_property(message, quorum, seed):
    rng = random.Random(seed)
    ct = _TPK.encrypt(message, rng=rng)
    verifs = {s.index: s.verification for s in _SHARES}
    contributions = [
        reencrypt_contribution(_TPK, s, ct, _RECIPIENT.public, PARAMS, rng)
        for s in _SHARES[:quorum]
    ]
    value = recover_reencrypted(
        _TPK, ct, contributions, _RECIPIENT.secret, verifs, PARAMS
    )
    assert value == message % _TPK.n


@settings(max_examples=15, deadline=None)
@given(
    target=st.integers(min_value=0, max_value=1 << 60),
    actual=st.integers(min_value=0, max_value=1 << 60),
    n_corrupt=st.integers(min_value=0, max_value=1),
    seed=st.integers(min_value=0, max_value=1 << 20),
)
def test_simtpdec_forces_any_target_property(target, actual, n_corrupt, seed):
    rng = random.Random(seed)
    ct = _TPK.encrypt(actual, rng=rng)
    corrupt = [
        ThresholdPaillier.partial_decrypt(_TPK, s, ct)
        for s in _SHARES[:n_corrupt]
    ]
    simulated = ThresholdPaillier.simulate_partials(
        _TPK, ct, target, _SHARES[n_corrupt:], corrupt
    )
    assert ThresholdPaillier.combine(_TPK, corrupt + simulated) == target % _TPK.n
