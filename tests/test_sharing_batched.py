"""Cross-path equivalence suite for the batched sharing kernel (ISSUE 10).

Pins :meth:`share_many` / :meth:`canonical_many` / :meth:`reconstruct_many`
on every backend (numpy limb kernel, blocked pure-int, legacy per-sharing)
to the legacy path: identical share values for identical RNG streams, with
the RNG left in the identical end state.  Geometries cover k=1, n<2k−1,
minimum and maximum degrees; moduli straddle the 63-bit numpy cutover.
"""

import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError, ReconstructionError
from repro.fields import Zmod
from repro.sharing import (
    BACKEND_ENV,
    NUMPY_MODULUS_BITS,
    PackedShamirScheme,
    matmul_mod,
    packed_scheme,
    selected_backend,
)
from repro.sharing.kernel import numpy_available, numpy_supports

P61 = (1 << 61) - 1  # the IT/Turbopack evaluators' Mersenne prime
P63 = (1 << 63) - 25  # largest prime below 2**63: exactly at the cutover
P127 = (1 << 127) - 1  # above the cutover: auto must fall back to int
PSMALL = 10**6 + 3

MODULI = [P61, P63, P127, PSMALL]

#: (n, k) including k=1, n<2k−1, and the degenerate single-degree n=k.
GEOMETRIES = [(11, 5), (9, 2), (5, 1), (4, 3), (7, 7)]


@contextmanager
def forced_backend(name):
    old = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = name
    try:
        yield
    finally:
        if old is None:
            del os.environ[BACKEND_ENV]
        else:
            os.environ[BACKEND_ENV] = old


def fast_backends(modulus: int, n: int) -> list[str]:
    """The non-legacy backends valid for this modulus/geometry."""
    backends = ["int"]
    if numpy_available() and numpy_supports(modulus, n):
        backends.append("numpy")
    return backends


def sample_case(n: int, k: int, modulus: int, seed: int):
    """Derive a deterministic (degrees, vectors) workload from one seed."""
    src = random.Random(seed)
    count = src.randrange(1, 6)
    # Min and max degree always present so the boundary cases never rotate
    # out of a shrunk example.
    degrees = [k - 1, n - 1] + [src.randrange(k - 1, n) for _ in range(count)]
    vectors = [
        [src.randrange(modulus) for _ in range(k)] for _ in degrees
    ]
    return degrees, vectors


def as_values(sharings):
    return [[(s.index, int(s.value), s.degree, s.k) for s in sh] for sh in sharings]


@settings(max_examples=40, deadline=None)
@given(
    geom=st.sampled_from(GEOMETRIES),
    modulus=st.sampled_from(MODULI),
    seed=st.integers(min_value=0, max_value=1 << 30),
)
def test_share_many_matches_legacy(geom, modulus, seed):
    n, k = geom
    ring = Zmod(modulus)
    degrees, vectors = sample_case(n, k, modulus, seed)
    scheme = PackedShamirScheme(ring, n, k)
    rng_legacy = random.Random(seed ^ 0x5EED)
    with forced_backend("legacy"):
        expected = scheme.share_many(vectors, degree=degrees, rng=rng_legacy)
    for backend in fast_backends(modulus, n):
        rng_fast = random.Random(seed ^ 0x5EED)
        with forced_backend(backend):
            got = scheme.share_many(vectors, degree=degrees, rng=rng_fast)
        assert as_values(got) == as_values(expected), backend
        # Same values is not enough: the batched path must consume the
        # RNG stream identically, or every downstream draw diverges.
        assert rng_fast.getstate() == rng_legacy.getstate(), backend


@settings(max_examples=40, deadline=None)
@given(
    geom=st.sampled_from(GEOMETRIES),
    modulus=st.sampled_from(MODULI),
    seed=st.integers(min_value=0, max_value=1 << 30),
)
def test_canonical_many_matches_legacy(geom, modulus, seed):
    n, k = geom
    ring = Zmod(modulus)
    _, vectors = sample_case(n, k, modulus, seed)
    scheme = PackedShamirScheme(ring, n, k)
    index = random.Random(seed).randrange(1, n + 1)
    with forced_backend("legacy"):
        expected_full = scheme.canonical_many(vectors)
        expected_one = scheme.canonical_many(vectors, index=index)
    for backend in fast_backends(modulus, n):
        with forced_backend(backend):
            got_full = scheme.canonical_many(vectors)
            got_one = scheme.canonical_many(vectors, index=index)
        assert as_values(got_full) == as_values(expected_full), backend
        assert as_values([got_one]) == as_values([expected_one]), backend


@settings(max_examples=40, deadline=None)
@given(
    geom=st.sampled_from(GEOMETRIES),
    modulus=st.sampled_from(MODULI),
    seed=st.integers(min_value=0, max_value=1 << 30),
)
def test_reconstruct_many_matches_legacy(geom, modulus, seed):
    n, k = geom
    ring = Zmod(modulus)
    degrees, vectors = sample_case(n, k, modulus, seed)
    scheme = PackedShamirScheme(ring, n, k)
    with forced_backend("legacy"):
        sharings = scheme.share_many(
            vectors, degree=degrees, rng=random.Random(seed)
        )
        expected = scheme.reconstruct_many(sharings)
    for backend in fast_backends(modulus, n):
        with forced_backend(backend):
            got = scheme.reconstruct_many(sharings)
        assert [
            [int(v) for v in row] for row in got
        ] == [[int(v) for v in row] for row in expected], backend
        for row, vec in zip(got, vectors):
            assert [int(v) for v in row] == [v % modulus for v in vec]


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=6),
    inner=st.integers(min_value=1, max_value=6),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1 << 30),
    modulus=st.sampled_from([P61, P63, PSMALL]),
)
def test_matmul_mod_numpy_matches_int(rows, inner, cols, seed, modulus):
    """The limb-split numpy product is exact right up to the 63-bit cutover."""
    if not numpy_available():
        pytest.skip("numpy not installed")
    src = random.Random(seed)
    matrix = tuple(
        tuple(src.randrange(modulus) for _ in range(inner)) for _ in range(rows)
    )
    vectors = [[src.randrange(modulus) for _ in range(inner)] for _ in range(cols)]
    assert matmul_mod(matrix, vectors, modulus, "numpy") == matmul_mod(
        matrix, vectors, modulus, "int"
    )


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with forced_backend("vectorised"):
            with pytest.raises(ParameterError):
                selected_backend()

    def test_numpy_forced_above_cutover_raises(self):
        scheme = PackedShamirScheme(Zmod(P127), 8, 3)
        with forced_backend("numpy"):
            if not numpy_available():
                pytest.skip("numpy not installed")
            with pytest.raises(ParameterError):
                scheme.share_many([[1, 2, 3]], rng=random.Random(0))

    def test_cutover_rule(self):
        # <= 63 bits: numpy eligible; above: auto must pick the int path.
        assert P63.bit_length() == NUMPY_MODULUS_BITS
        if numpy_available():
            assert numpy_supports(P63, 64)
        assert not numpy_supports(P127, 64)

    def test_auto_is_default(self):
        with forced_backend("auto"):
            assert selected_backend() == "auto"


class TestBatchedErrors:
    def test_conflicting_duplicate_detected(self, rng):
        scheme = PackedShamirScheme(Zmod(P61), 8, 2, default_degree=3)
        [sharing] = scheme.share_many([[1, 2]], rng=rng)
        forged = sharing + [
            type(sharing[0])(
                sharing[0].index,
                sharing[0].value + Zmod(P61)(1),
                sharing[0].degree,
                2,
            )
        ]
        with pytest.raises(ReconstructionError, match="conflicting"):
            scheme.reconstruct_many([forged])

    def test_redundant_share_checked(self, rng):
        scheme = PackedShamirScheme(Zmod(P61), 8, 2, default_degree=3)
        [sharing] = scheme.share_many([[5, 6]], rng=rng)
        bad_last = sharing[:-1] + [
            type(sharing[-1])(
                sharing[-1].index,
                sharing[-1].value + Zmod(P61)(1),
                sharing[-1].degree,
                2,
            )
        ]
        with pytest.raises(ReconstructionError, match="inconsistent"):
            scheme.reconstruct_many([bad_last])

    def test_degree_list_length_checked(self, rng):
        scheme = PackedShamirScheme(Zmod(P61), 8, 2)
        with pytest.raises(ParameterError):
            scheme.share_many([[1, 2], [3, 4]], degree=[3], rng=rng)


class TestMatrixCaches:
    """Fresh geometry ⇒ fresh matrices — no stale-cache reuse across shapes.

    Mirrors tests/test_program.py's cache-revalidation test: the thing that
    must never happen is an (n, d, k) change silently served by matrices of
    the old shape.
    """

    def test_fresh_scheme_has_empty_caches(self, rng):
        ring = Zmod(P61)
        a = PackedShamirScheme(ring, 8, 3)
        a.share_many([[1, 2, 3]], rng=rng)
        assert a._dealing_cache and a._eval_cache
        b = PackedShamirScheme(ring, 9, 3)
        assert not b._dealing_cache and not b._eval_cache

    def test_new_geometry_matrices_have_new_shape(self, rng):
        ring = Zmod(P61)
        a = PackedShamirScheme(ring, 8, 3)
        b = PackedShamirScheme(ring, 9, 3)
        _, rows_a = a._dealing_matrix(a.default_degree)
        _, rows_b = b._dealing_matrix(b.default_degree)
        assert len(rows_a) == 8 and len(rows_b) == 9
        # Both geometries still round-trip correctly.
        for scheme in (a, b):
            [sharing] = scheme.share_many([[7, 8, 9]], rng=rng)
            assert [
                int(v) for v in scheme.reconstruct_many([sharing])[0]
            ] == [7, 8, 9]

    def test_packed_scheme_memoizes_per_geometry(self):
        ring = Zmod(P61)
        s1 = packed_scheme(ring, 8, 3)
        assert packed_scheme(ring, 8, 3) is s1
        assert packed_scheme(ring, 9, 3) is not s1
        assert packed_scheme(ring, 8, 2) is not s1
        assert packed_scheme(Zmod(P63), 8, 3) is not s1
        assert packed_scheme(ring, 8, 3, default_degree=4) is not s1
