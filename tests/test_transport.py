"""Transport layer tests: parity, seeded loss, and §5.4 fail-stop silence.

The contract under test: a zero-loss :class:`SimTransport` is byte-identical
to :class:`InMemoryTransport` at the same protocol seed, and transport drops
surface exactly like honest crashes — tolerated up to the fail-stop budget,
a loud ``ProtocolAbortError`` beyond it.
"""

import random

import pytest

from repro.circuits import dot_product_circuit
from repro.core import run_mpc
from repro.core.params import ProtocolParams
from repro.core.protocol import YosoMpc
from repro.errors import ParameterError, ProtocolAbortError
from repro.wire import (
    DropSpec,
    Envelope,
    InMemoryTransport,
    SimTransport,
    make_transport,
)

CIRCUIT = dot_product_circuit(3)
INPUTS = {"alice": [2, 3, 5], "bob": [7, 11, 13]}
EXPECTED = [2 * 7 + 3 * 11 + 5 * 13]


def _envelope(sender="Con-mul-1[1]", phase="online"):
    return Envelope("generic", sender, 0, phase, "Con-mul-1", b"x")


class TestMakeTransport:
    def test_default_is_memory(self):
        assert isinstance(make_transport(None), InMemoryTransport)
        assert isinstance(make_transport("memory"), InMemoryTransport)

    def test_instance_passes_through(self):
        transport = SimTransport(seed=3)
        assert make_transport(transport) is transport

    def test_sim_spec_parses(self):
        t = make_transport(
            "sim:drop=0.1,seed=3,latency=0.05,jitter=0.01,"
            "bandwidth=1000000,phase=online,max-drops=2"
        )
        assert isinstance(t, SimTransport)
        assert t.seed == 3
        assert t.latency_s == 0.05
        assert t.jitter_s == 0.01
        assert t.bandwidth_bytes_per_s == 1_000_000
        assert t.drop == DropSpec(rate=0.1, phase="online", max_drops=2)

    def test_bare_sim_is_zero_loss(self):
        t = make_transport("sim")
        assert isinstance(t, SimTransport)
        assert t.drop == DropSpec()

    @pytest.mark.parametrize("spec", [
        "memory:opts",          # memory takes no options
        "tcp",                  # unknown transport
        "sim:turbo=1",          # unknown option
        "sim:drop",             # malformed option (no '=')
        "sim:drop=1.5",         # rate outside [0, 1]
        "sim:latency=-1",       # negative latency
        "sim:bandwidth=0",      # non-positive bandwidth
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ParameterError):
            make_transport(spec)


class TestDropSpec:
    def test_explicit_sender_dropped(self):
        spec = DropSpec(senders=frozenset({"Con-mul-1[1]"}), phase="online")
        rng = random.Random(0)
        assert spec.wants_drop(_envelope("Con-mul-1[1]"), rng, 0)
        assert not spec.wants_drop(_envelope("Con-mul-1[2]"), rng, 0)

    def test_phase_filter(self):
        spec = DropSpec(senders=frozenset({"Coff-A[1]"}), phase="online")
        assert not spec.wants_drop(_envelope("Coff-A[1]", phase="offline"),
                                   random.Random(0), 0)

    def test_max_drops_budget(self):
        spec = DropSpec(rate=1.0, max_drops=2)
        rng = random.Random(0)
        assert spec.wants_drop(_envelope(), rng, 0)
        assert spec.wants_drop(_envelope(), rng, 1)
        assert not spec.wants_drop(_envelope(), rng, 2)

    def test_rate_extremes(self):
        rng = random.Random(0)
        assert not DropSpec(rate=0.0).wants_drop(_envelope(), rng, 0)
        assert DropSpec(rate=1.0).wants_drop(_envelope(), rng, 0)

    def test_seeded_drops_count(self):
        # The schedule is the transport's own rng: deterministic per seed.
        transport = SimTransport(seed=5, drop=DropSpec(rate=0.5))
        kept = [transport.deliver(_envelope(), b"abc") for _ in range(40)]
        again = SimTransport(seed=5, drop=DropSpec(rate=0.5))
        kept2 = [again.deliver(_envelope(), b"abc") for _ in range(40)]
        assert kept == kept2
        assert 0 < transport.stats.dropped < 40
        assert transport.stats.delivered + transport.stats.dropped == 40


class TestSimClock:
    def test_latency_and_bandwidth_accrue(self):
        transport = SimTransport(seed=0, latency_s=0.5,
                                 bandwidth_bytes_per_s=100.0)
        transport.deliver(_envelope(), b"x" * 50)
        assert transport.stats.sim_clock_s == pytest.approx(1.0)

    def test_clock_never_affects_delivery(self):
        # Latency models waiting, not loss: everything still arrives.
        transport = SimTransport(seed=0, latency_s=1.0, jitter_s=0.3)
        for _ in range(10):
            assert transport.deliver(_envelope(), b"abc") == b"abc"
        assert transport.stats.dropped == 0


class TestParity:
    def test_zero_loss_sim_byte_identical_to_memory(self):
        runs = {
            spec: run_mpc(CIRCUIT, INPUTS, n=6, epsilon=0.25, seed=7,
                          transport=spec)
            for spec in ("memory", "sim")
        }
        mem, sim = runs["memory"], runs["sim"]
        assert mem.outputs == sim.outputs == {"alice": EXPECTED}

        def fingerprint(result):
            return [
                (r.phase, r.sender, r.tag, r.n_bytes, r.exact)
                for r in result.meter.records
            ]

        assert fingerprint(mem) == fingerprint(sim)
        assert mem.meter.total_bytes() == sim.meter.total_bytes()

    def test_meter_equals_delivered_wire_bytes(self):
        result = run_mpc(CIRCUIT, INPUTS, n=6, epsilon=0.25, seed=7,
                         transport="sim")
        stats = result.transport.stats
        assert stats.dropped == 0
        assert result.meter.total_bytes() == stats.delivered_bytes
        # Byte-real board: every byte measured from an envelope, none modeled.
        assert result.meter.exact_bytes() == result.meter.total_bytes()
        assert result.meter.estimated_bytes() == 0


class TestFailStopUnderSimTransport:
    def _run(self, drop_senders, n=8, epsilon=0.25, seed=21):
        params = ProtocolParams.from_gap(n, epsilon, fail_stop=True)
        transport = SimTransport(
            seed=1,
            drop=DropSpec(senders=frozenset(drop_senders), phase="online"),
        )
        mpc = YosoMpc(params, rng=random.Random(seed), transport=transport)
        return params, transport, mpc.run(CIRCUIT, INPUTS)

    def test_drops_within_crash_budget_tolerated(self):
        params = ProtocolParams.from_gap(8, 0.25, fail_stop=True)
        assert params.fail_stop_budget == 2
        victims = {"Con-mul-1[1]", "Con-mul-1[2]"}
        _, transport, result = self._run(victims)
        assert result.outputs["alice"] == EXPECTED
        assert transport.stats.dropped == len(victims)
        # To every observer the dropped roles simply never spoke (§5.4).
        mul = result.online.committees["Con-mul-1"]
        crashed = {str(r.id) for r in mul if r.crashed}
        assert crashed == victims

    def test_drops_beyond_budget_abort_loudly(self):
        victims = {f"Con-mul-1[{i}]" for i in range(1, 7)}
        with pytest.raises(ProtocolAbortError):
            self._run(victims)

    def test_random_loss_beyond_budget_aborts(self):
        transport = SimTransport(seed=2, drop=DropSpec(rate=1.0, phase="online"))
        params = ProtocolParams.from_gap(8, 0.25, fail_stop=True)
        mpc = YosoMpc(params, rng=random.Random(22), transport=transport)
        with pytest.raises(ProtocolAbortError):
            mpc.run(CIRCUIT, INPUTS)
