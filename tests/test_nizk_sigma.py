"""Tests for the Σ-protocols: completeness, soundness paths, HVZK shape."""

import dataclasses
import random

import pytest

from repro.nizk import (
    MultiplicationProof,
    PartialDecryptionProof,
    PlaintextDlogEqualityProof,
    PlaintextKnowledgeProof,
    ProofParams,
)
from repro.paillier import ThresholdPaillier, generate_keypair
from repro.paillier.threshold import PartialDecryption

PARAMS = ProofParams(challenge_bits=24)


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(64)


@pytest.fixture(scope="module")
def tkeys(threshold_keygen):
    return threshold_keygen(4, 1)


class TestPlaintextKnowledge:
    def test_completeness(self, keys, rng):
        pk = keys.public
        r = pk.random_unit(rng)
        c = pk.encrypt(31337, randomness=r)
        proof = PlaintextKnowledgeProof.prove(pk, c, 31337, r, PARAMS, rng)
        assert proof.verify(pk, c, PARAMS)

    def test_wrong_statement_rejected(self, keys, rng):
        pk = keys.public
        r = pk.random_unit(rng)
        c = pk.encrypt(1, randomness=r)
        proof = PlaintextKnowledgeProof.prove(pk, c, 1, r, PARAMS, rng)
        assert not proof.verify(pk, pk.encrypt(2, rng=rng), PARAMS)

    def test_mutated_proof_rejected(self, keys, rng):
        pk = keys.public
        r = pk.random_unit(rng)
        c = pk.encrypt(5, randomness=r)
        proof = PlaintextKnowledgeProof.prove(pk, c, 5, r, PARAMS, rng)
        for fld in ("commitment", "response_exponent", "response_unit"):
            bad = dataclasses.replace(proof, **{fld: getattr(proof, fld) + 1})
            assert not bad.verify(pk, c, PARAMS)

    def test_out_of_range_fields_rejected(self, keys, rng):
        pk = keys.public
        r = pk.random_unit(rng)
        c = pk.encrypt(5, randomness=r)
        proof = PlaintextKnowledgeProof.prove(pk, c, 5, r, PARAMS, rng)
        assert not dataclasses.replace(proof, response_unit=0).verify(pk, c, PARAMS)
        assert not dataclasses.replace(proof, commitment=0).verify(pk, c, PARAMS)

    def test_context_binding(self, keys, rng):
        pk = keys.public
        r = pk.random_unit(rng)
        c = pk.encrypt(5, randomness=r)
        proof = PlaintextKnowledgeProof.prove(pk, c, 5, r, PARAMS, rng, context="x")
        assert proof.verify(pk, c, PARAMS, context="x")
        assert not proof.verify(pk, c, PARAMS, context="y")
        assert not proof.verify(pk, c, PARAMS)

    def test_simulator_produces_accepting_transcript(self, keys, rng):
        # HVZK: simulated (a, e, z, w) satisfies the verification equation.
        pk = keys.public
        c = pk.encrypt(999, rng=rng)
        e = 12345
        a, z, w = PlaintextKnowledgeProof.simulate(pk, c, e, PARAMS, rng)
        n, n2 = pk.n, pk.n_squared
        lhs = (1 + z % n2 * n) % n2 * pow(w, n, n2) % n2
        assert lhs == a * pow(c.value, e, n2) % n2


class TestMultiplication:
    def _setup(self, keys, rng, a=17, b=23):
        pk = keys.public
        c_a = pk.encrypt(a, rng=rng)
        r = pk.random_unit(rng)
        c_b = pk.encrypt(b, randomness=r)
        c_c = c_a * b
        return pk, c_a, c_b, c_c, b, r

    def test_completeness(self, keys, rng):
        pk, c_a, c_b, c_c, b, r = self._setup(keys, rng)
        proof = MultiplicationProof.prove(pk, c_a, c_b, c_c, b, r, PARAMS, rng)
        assert proof.verify(pk, c_a, c_b, c_c, PARAMS)

    def test_result_actually_decrypts_to_product(self, keys, rng):
        pk, c_a, c_b, c_c, b, r = self._setup(keys, rng)
        assert keys.secret.decrypt(c_c) == 17 * 23

    def test_wrong_product_rejected(self, keys, rng):
        pk, c_a, c_b, c_c, b, r = self._setup(keys, rng)
        proof = MultiplicationProof.prove(pk, c_a, c_b, c_c, b, r, PARAMS, rng)
        assert not proof.verify(pk, c_a, c_b, c_a * (b + 1), PARAMS)

    def test_inconsistent_b_rejected(self, keys, rng):
        # Prover encrypts b but multiplies by b' != b.
        pk = keys.public
        c_a = pk.encrypt(3, rng=rng)
        r = pk.random_unit(rng)
        c_b = pk.encrypt(10, randomness=r)
        c_c = c_a * 11
        proof = MultiplicationProof.prove(pk, c_a, c_b, c_c, 10, r, PARAMS, rng)
        assert not proof.verify(pk, c_a, c_b, c_c, PARAMS)

    def test_mutation_rejected(self, keys, rng):
        pk, c_a, c_b, c_c, b, r = self._setup(keys, rng)
        proof = MultiplicationProof.prove(pk, c_a, c_b, c_c, b, r, PARAMS, rng)
        bad = dataclasses.replace(proof, response_exponent=proof.response_exponent + 1)
        assert not bad.verify(pk, c_a, c_b, c_c, PARAMS)


class TestPartialDecryption:
    def test_completeness(self, tkeys, rng):
        tpk, shares = tkeys
        ct = tpk.encrypt(55, rng=rng)
        partial = ThresholdPaillier.partial_decrypt(tpk, shares[0], ct)
        proof = PartialDecryptionProof.prove(tpk, ct, partial, shares[0], PARAMS, rng)
        assert proof.verify(tpk, ct, partial, shares[0].verification, PARAMS)

    def test_wrong_share_detected(self, tkeys, rng):
        tpk, shares = tkeys
        ct = tpk.encrypt(55, rng=rng)
        # partial computed with share 2, but claimed against share 1's key.
        partial = ThresholdPaillier.partial_decrypt(tpk, shares[1], ct)
        forged = PartialDecryption(1, partial.value, partial.epoch)
        proof = PartialDecryptionProof.prove(tpk, ct, forged, shares[1], PARAMS, rng)
        assert not proof.verify(tpk, ct, forged, shares[0].verification, PARAMS)

    def test_tampered_partial_detected(self, tkeys, rng):
        tpk, shares = tkeys
        ct = tpk.encrypt(55, rng=rng)
        partial = ThresholdPaillier.partial_decrypt(tpk, shares[0], ct)
        proof = PartialDecryptionProof.prove(tpk, ct, partial, shares[0], PARAMS, rng)
        bad = PartialDecryption(
            partial.index, partial.value * 4 % tpk.n_squared, partial.epoch
        )
        assert not proof.verify(tpk, ct, bad, shares[0].verification, PARAMS)

    def test_simulator_accepts(self, tkeys, rng):
        tpk, shares = tkeys
        ct = tpk.encrypt(55, rng=rng)
        partial = ThresholdPaillier.partial_decrypt(tpk, shares[0], ct)
        t1, t2, e, z = PartialDecryptionProof.simulate(
            tpk, ct, partial, shares[0].verification, 777,
            witness_bits=abs(shares[0].value).bit_length() + 1,
            params=PARAMS, rng=rng,
        )
        n2 = tpk.n_squared
        base_c = pow(ct.value, 4 * tpk.delta, n2)
        base_v = pow(tpk.verification_base, tpk.delta, n2)
        assert pow(base_c, z, n2) == t1 * pow(pow(partial.value, 2, n2), e, n2) % n2
        assert pow(base_v, z, n2) == t2 * pow(shares[0].verification, e, n2) % n2


class TestPlaintextDlogEquality:
    def test_completeness(self, keys, tkeys, rng):
        pk = keys.public
        tpk, _ = tkeys
        n2 = tpk.n_squared
        base = pow(tpk.verification_base, tpk.delta, n2)
        x = 424242
        value = pow(base, x, n2)
        r = pk.random_unit(rng)
        c = pk.encrypt(x, randomness=r)
        proof = PlaintextDlogEqualityProof.prove(
            pk, c, base, n2, value, x, r, PARAMS, rng
        )
        assert proof.verify(pk, c, base, n2, value, PARAMS)

    def test_mismatched_dlog_rejected(self, keys, tkeys, rng):
        pk = keys.public
        tpk, _ = tkeys
        n2 = tpk.n_squared
        base = pow(tpk.verification_base, tpk.delta, n2)
        x = 99
        r = pk.random_unit(rng)
        c = pk.encrypt(x, randomness=r)
        proof = PlaintextDlogEqualityProof.prove(
            pk, c, base, n2, pow(base, x, n2), x, r, PARAMS, rng
        )
        assert not proof.verify(pk, c, base, n2, pow(base, x + 1, n2), PARAMS)

    def test_mismatched_ciphertext_rejected(self, keys, tkeys, rng):
        pk = keys.public
        tpk, _ = tkeys
        n2 = tpk.n_squared
        base = pow(tpk.verification_base, tpk.delta, n2)
        x = 99
        r = pk.random_unit(rng)
        c = pk.encrypt(x, randomness=r)
        proof = PlaintextDlogEqualityProof.prove(
            pk, c, base, n2, pow(base, x, n2), x, r, PARAMS, rng
        )
        assert not proof.verify(
            pk, pk.encrypt(x + 1, rng=rng), base, n2, pow(base, x, n2), PARAMS
        )

    def test_witness_range_enforced(self, keys, tkeys, rng):
        pk = keys.public
        tpk, _ = tkeys
        with pytest.raises(Exception):
            PlaintextDlogEqualityProof.prove(
                pk, pk.encrypt(0, rng=rng), 2, tpk.n_squared, 4, pk.n + 1,
                pk.random_unit(rng), PARAMS, rng,
            )
