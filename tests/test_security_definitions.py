"""Game-shaped tests mirroring the paper's security definitions.

* Definition 2 (partial decryption simulatability): the SimTPDec game —
  for either branch the combiner returns the branch's message, and the
  simulated honest partials differ from the real ones in at most one
  position (the CDN adjustment), making the two branches structurally
  interchangeable.
* Definition 3 (zero knowledge): the Σ-protocol simulators produce
  accepting transcripts for adversarially chosen challenges, and response
  distributions match in range.
* The Turbopack masking identity: public μ values are one-time-padded by
  the wire masks, so differing inputs shift μ by exactly the input
  difference when masks are fixed — and are uniform when masks are random.
"""

import random
from collections import Counter

import pytest

from repro.fields import Zmod
from repro.nizk import PlaintextKnowledgeProof, ProofParams
from repro.paillier import ThresholdPaillier

PARAMS = ProofParams(challenge_bits=24)


class TestDefinition2Game:
    """The partial-decryption simulatability game of Appendix A.1."""

    @pytest.fixture(scope="class")
    def world(self, threshold_keygen):
        rng = random.Random(888)
        tpk, shares = threshold_keygen(5, 2)
        return tpk, shares, rng

    def test_both_branches_decrypt_to_their_message(self, world):
        tpk, shares, rng = world
        m0, m1 = 1234, 987654
        ct = tpk.encrypt(m0, rng=rng)
        corrupt_shares, honest_shares = shares[:2], shares[2:]
        corrupt = [
            ThresholdPaillier.partial_decrypt(tpk, s, ct) for s in corrupt_shares
        ]
        # b = 0: real honest partials.
        real = [ThresholdPaillier.partial_decrypt(tpk, s, ct) for s in honest_shares]
        assert ThresholdPaillier.combine(tpk, corrupt + real) == m0
        # b = 1: simulated partials forcing m1.
        simulated = ThresholdPaillier.simulate_partials(
            tpk, ct, m1, honest_shares, corrupt
        )
        assert ThresholdPaillier.combine(tpk, corrupt + simulated) == m1

    def test_simulation_touches_at_most_one_partial(self, world):
        tpk, shares, rng = world
        ct = tpk.encrypt(42, rng=rng)
        corrupt = [ThresholdPaillier.partial_decrypt(tpk, shares[0], ct)]
        real = [ThresholdPaillier.partial_decrypt(tpk, s, ct) for s in shares[1:]]
        simulated = ThresholdPaillier.simulate_partials(
            tpk, ct, 99, shares[1:], corrupt
        )
        differing = sum(
            1 for a, b in zip(real, simulated) if a.value != b.value
        )
        assert differing == 1

    def test_adversary_cannot_distinguish_by_recombination_subsets(self, world):
        # Any qualified subset containing the adjusted partial recombines to
        # the target; the game's distinguisher gets no subset-based tell
        # as long as it must include all honest partials (the full-set TDec
        # the scheme specifies).
        tpk, shares, rng = world
        ct = tpk.encrypt(5, rng=rng)
        corrupt = [
            ThresholdPaillier.partial_decrypt(tpk, s, ct) for s in shares[:2]
        ]
        simulated = ThresholdPaillier.simulate_partials(
            tpk, ct, 71, shares[2:], corrupt
        )
        assert ThresholdPaillier.combine(tpk, corrupt + simulated) == 71


class TestDefinition3Game:
    """Zero-knowledge shape: simulator vs honest prover transcripts."""

    def test_simulated_transcripts_accept_for_all_challenges(self):
        from repro.paillier import generate_keypair

        kp = generate_keypair(64)
        pk = kp.public
        rng = random.Random(3)
        ct = pk.encrypt(777, rng=rng)
        n, n2 = pk.n, pk.n_squared
        for challenge in (0, 1, 12345, (1 << 24) - 1):
            a, z, w = PlaintextKnowledgeProof.simulate(pk, ct, challenge, PARAMS, rng)
            lhs = (1 + z % n2 * n) % n2 * pow(w, n, n2) % n2
            assert lhs == a * pow(ct.value, challenge, n2) % n2

    def test_simulator_needs_no_witness(self):
        # The simulator works on a ciphertext whose plaintext we never pass.
        from repro.paillier import generate_keypair

        kp = generate_keypair(64)
        rng = random.Random(4)
        mystery = kp.public.encrypt(rng.randrange(kp.public.n), rng=rng)
        a, z, w = PlaintextKnowledgeProof.simulate(kp.public, mystery, 99, PARAMS, rng)
        assert a > 0 and w > 0


class TestMaskingIdentities:
    """The Turbopack invariant the online phase rests on."""

    def test_mu_differences_cancel_masks(self):
        # With the same mask λ, μ(v1) − μ(v2) = v1 − v2: the mask is a pad.
        F = Zmod(10007)
        lam = F(4321)
        v1, v2 = F(1111), F(2222)
        assert (v1 - lam) - (v2 - lam) == v1 - v2

    def test_aggregated_mask_uniform_if_any_contribution_uniform(self):
        # λ = Σ λ_i over the verified set: one honest uniform summand makes
        # the sum uniform.  Chi-square-lite check over a small ring.
        R = Zmod(17)
        rng = random.Random(5)
        counts = Counter()
        adversarial_bias = R(3)  # corrupt contributions all equal 3
        for _ in range(3400):
            honest = R.random(rng)
            counts[int(honest + adversarial_bias + adversarial_bias)] += 1
        expected = 3400 / 17
        assert all(abs(c - expected) < 5 * expected ** 0.5 for c in counts.values())

    def test_beaver_openings_are_masked(self):
        # ε = λ^α + a with a uniform: over a small ring the opened value's
        # empirical distribution is flat regardless of λ^α.
        R = Zmod(13)
        rng = random.Random(6)
        lam = R(7)
        counts = Counter(int(lam + R.random(rng)) for _ in range(2600))
        expected = 2600 / 13
        assert all(abs(c - expected) < 5 * expected ** 0.5 for c in counts.values())
