"""Tests for the ideal μ-share proof oracle."""

from repro.core.oracle import PROOF_TOKEN_BYTES, MuShareOracle


class TestOracle:
    def test_attest_verify_roundtrip(self):
        oracle = MuShareOracle()
        token = oracle.attest(3, 5, 123456)
        assert oracle.verify(3, 5, 123456, token)

    def test_token_has_snark_like_size(self):
        oracle = MuShareOracle()
        assert len(oracle.attest(0, 1, 2)) == PROOF_TOKEN_BYTES

    def test_value_mutation_rejected(self):
        oracle = MuShareOracle()
        token = oracle.attest(3, 5, 100)
        assert not oracle.verify(3, 5, 101, token)

    def test_statement_mutation_rejected(self):
        oracle = MuShareOracle()
        token = oracle.attest(3, 5, 100)
        assert not oracle.verify(4, 5, 100, token)
        assert not oracle.verify(3, 6, 100, token)

    def test_cross_oracle_tokens_rejected(self):
        a, b = MuShareOracle(), MuShareOracle()
        token = a.attest(1, 1, 1)
        assert not b.verify(1, 1, 1, token)

    def test_non_bytes_token_rejected(self):
        oracle = MuShareOracle()
        assert not oracle.verify(1, 1, 1, "not-bytes")
        assert not oracle.verify(1, 1, 1, None)

    def test_deterministic_with_fixed_key(self):
        a = MuShareOracle(key=b"k" * 32)
        b = MuShareOracle(key=b"k" * 32)
        assert a.attest(1, 2, 3) == b.attest(1, 2, 3)
