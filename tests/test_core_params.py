"""Tests for protocol parameter derivation (the §5.4 constraints)."""

import pytest

from repro.core import ProtocolParams
from repro.errors import ParameterError


class TestConstraints:
    def test_valid_basic(self):
        p = ProtocolParams(n=8, t=1, k=2, epsilon=0.2)
        assert p.sharing_degree == 2
        assert p.product_degree == 3
        assert p.reconstruction_threshold == 4
        assert p.decryption_threshold == 2

    def test_corruption_bound_enforced(self):
        with pytest.raises(ParameterError):
            ProtocolParams(n=8, t=4, k=1, epsilon=0.0)  # t >= n/2
        with pytest.raises(ParameterError):
            ProtocolParams(n=10, t=3, k=1, epsilon=0.2)  # t >= n(1/2-eps)

    def test_god_headroom_enforced(self):
        # n - t < t + 2(k-1) + 1 must be rejected.
        with pytest.raises(ParameterError):
            ProtocolParams(n=8, t=2, k=3, epsilon=0.1)

    def test_crash_budget_consumes_headroom(self):
        ProtocolParams(n=10, t=1, k=2, epsilon=0.3, fail_stop_budget=3)
        with pytest.raises(ParameterError):
            ProtocolParams(n=10, t=1, k=2, epsilon=0.3, fail_stop_budget=6)

    def test_basic_validation(self):
        with pytest.raises(ParameterError):
            ProtocolParams(n=1, t=0, k=1, epsilon=0.1)
        with pytest.raises(ParameterError):
            ProtocolParams(n=4, t=-1, k=1, epsilon=0.1)
        with pytest.raises(ParameterError):
            ProtocolParams(n=4, t=1, k=0, epsilon=0.1)
        with pytest.raises(ParameterError):
            ProtocolParams(n=4, t=1, k=1, epsilon=0.6)
        with pytest.raises(ParameterError):
            ProtocolParams(n=4, t=1, k=1, epsilon=0.1, te_bits=8)


class TestFromGap:
    def test_t_below_bound(self):
        for n in (4, 8, 16, 32):
            for eps in (0.0, 0.1, 0.25, 0.4):
                p = ProtocolParams.from_gap(n, eps)
                assert p.t < n * (0.5 - eps) or p.t == 0
                assert p.n - p.t >= p.reconstruction_threshold

    def test_packing_scales_with_gap(self):
        small = ProtocolParams.from_gap(20, 0.1)
        large = ProtocolParams.from_gap(20, 0.4)
        assert large.k > small.k

    def test_k_bounded_by_n_epsilon(self):
        p = ProtocolParams.from_gap(20, 0.25)
        assert p.k - 1 <= 20 * 0.25

    def test_zero_gap_means_no_packing(self):
        p = ProtocolParams.from_gap(9, 0.0)
        assert p.k == 1
        assert p.t == 4

    def test_fail_stop_halves_packing(self):
        normal = ProtocolParams.from_gap(16, 0.25)
        fs = ProtocolParams.from_gap(16, 0.25, fail_stop=True)
        assert fs.fail_stop_budget == 4
        assert fs.k <= normal.k
        # §5.4: k - 1 <= n*eps/2 in fail-stop mode
        assert fs.k - 1 <= 16 * 0.25 / 2

    def test_with_fail_stop_roundtrip(self):
        p = ProtocolParams.from_gap(16, 0.25)
        fs = p.with_fail_stop()
        assert fs.fail_stop_budget > 0
        assert fs.n == p.n and fs.epsilon == p.epsilon

    def test_describe_mentions_key_facts(self):
        text = ProtocolParams.from_gap(8, 0.2).describe()
        assert "n=8" in text and "k=" in text


class TestPaperIdentities:
    def test_reconstruction_threshold_formula(self):
        # §5.4: need t + 2(k-1) + 1 shares; with k-1 <= n*eps and
        # t < n(1/2-eps) this stays within the honest n - t.
        for n in (8, 12, 20, 40):
            for eps in (0.1, 0.2, 0.3):
                p = ProtocolParams.from_gap(n, eps)
                assert p.reconstruction_threshold == p.t + 2 * (p.k - 1) + 1
                assert p.reconstruction_threshold <= n - p.t

    def test_fail_stop_reconstruction_bound(self):
        # §5.4: with k = n*eps/2 + 1 the threshold stays under n/2 + 1.
        for n in (8, 16, 24):
            p = ProtocolParams.from_gap(n, 0.25, fail_stop=True)
            assert p.reconstruction_threshold + p.fail_stop_budget <= n - p.t
