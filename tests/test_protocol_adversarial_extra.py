"""Targeted adversarial tests: one committee at a time, one message kind
at a time — pinpointing which defence catches which attack."""

import dataclasses
import random


from repro.circuits import CircuitBuilder, dot_product_circuit
from repro.core import ProtocolParams, YosoMpc
from repro.yoso.adversary import Adversary

CIRCUIT = dot_product_circuit(3)
INPUTS = {"alice": [2, 4, 6], "bob": [1, 3, 5]}
EXPECTED = [2 * 1 + 4 * 3 + 6 * 5]
PARAMS = ProtocolParams.from_gap(6, 0.2)


def _corrupt_committee(name_prefix, transform, seed=17):
    """Corrupt one member of each committee matching the prefix."""

    def factory(offline_committees, online_committees):
        rng = random.Random(seed)
        pool = {**offline_committees, **online_committees}
        for name, committee in pool.items():
            if name.startswith(name_prefix):
                committee.role(rng.randrange(1, committee.size + 1)).corrupted = True
        return Adversary(transform=transform)

    return factory


def _run(factory, seed=91):
    return YosoMpc(PARAMS, rng=random.Random(seed), adversary_factory=factory).run(
        CIRCUIT, INPUTS
    )


class TestPerCommitteeAttacks:
    def test_corrupt_beaver_a_ciphertexts(self):
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "beaver_a" in payload:
                return {
                    **payload,
                    "beaver_a": {
                        w: {**e, "ct": e["ct"] * 2}
                        for w, e in payload["beaver_a"].items()
                    },
                }
            return payload

        result = _run(_corrupt_committee("Coff-A", maul))
        assert result.outputs["alice"] == EXPECTED

    def test_corrupt_beaver_b_relation(self):
        # c_ct inconsistent with b_ct: the multiplication proof catches it.
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "beaver_b" in payload:
                return {
                    **payload,
                    "beaver_b": {
                        w: {**e, "c_ct": e["c_ct"] * 3}
                        for w, e in payload["beaver_b"].items()
                    },
                }
            return payload

        result = _run(_corrupt_committee("Coff-B", maul))
        assert result.outputs["alice"] == EXPECTED

    def test_corrupt_decryption_partials(self):
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "partials" in payload:
                mauled = {}
                for w, pair in payload["partials"].items():
                    eps = pair["eps"]
                    bad = dataclasses.replace(
                        eps,
                        partial=dataclasses.replace(
                            eps.partial, value=eps.partial.value + 1
                        ),
                    )
                    mauled[w] = {"eps": bad, "delta": pair["delta"]}
                return {**payload, "partials": mauled}
            return payload

        result = _run(_corrupt_committee("Coff-dec", maul))
        assert result.outputs["alice"] == EXPECTED

    def test_corrupt_reencryption_bundles(self):
        # Swap the chunks of every re-encryption: recipients' designated-
        # verifier proofs reject them; t+1 honest contributions remain.
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "packed_shares" in payload:
                keys = list(payload["packed_shares"])
                if len(keys) >= 2:
                    rotated = dict(payload["packed_shares"])
                    rotated[keys[0]], rotated[keys[1]] = (
                        dataclasses.replace(
                            rotated[keys[0]], chunks=rotated[keys[1]].chunks
                        ),
                        rotated[keys[1]],
                    )
                    return {**payload, "packed_shares": rotated}
            return payload

        result = _run(_corrupt_committee("Coff-reenc", maul))
        assert result.outputs["alice"] == EXPECTED

    def test_corrupt_kff_distribution(self):
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "kff" in payload:
                mauled = {}
                for target, chunks in payload["kff"].items():
                    mauled[target] = [
                        dataclasses.replace(c, epoch=c.epoch + 1) for c in chunks
                    ]
                return {**payload, "kff": mauled}
            return payload

        result = _run(_corrupt_committee("Con-keys", maul))
        assert result.outputs["alice"] == EXPECTED

    def test_corrupt_output_committee(self):
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "output" in payload:
                return {
                    **payload,
                    "output": {
                        w: dataclasses.replace(e, chunks=e.chunks[::-1] or e.chunks)
                        for w, e in payload["output"].items()
                    },
                }
            return payload

        result = _run(_corrupt_committee("Con-out", maul))
        assert result.outputs["alice"] == EXPECTED

    def test_corrupt_tsk_resharing_everywhere(self):
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "tsk" in payload:
                resharing = payload["tsk"]
                return {
                    **payload,
                    "tsk": dataclasses.replace(
                        resharing, offset_bits=resharing.offset_bits + 1
                    ),
                }
            return payload

        result = _run(_corrupt_committee("C", maul))  # every committee
        assert result.outputs["alice"] == EXPECTED


class TestClientBehaviour:
    def test_corrupt_client_substitutes_its_own_input_only(self):
        # A corrupt client shifting its μ is input substitution: the output
        # is F(substituted inputs) — correct w.r.t. the shifted input, and
        # the honest client's input is untouched.
        def maul(role_id, phase, tag, payload):
            if isinstance(payload, dict) and "mu" in payload:
                mu = dict(payload["mu"])
                first = min(mu)
                mu[first] = mu[first] + 10
                return {"mu": mu}
            return payload

        def factory(offline_committees, online_committees):
            return Adversary(transform=maul)

        protocol = YosoMpc(
            PARAMS, rng=random.Random(92), adversary_factory=factory
        )
        # Corrupt alice's input role: it is created inside run_online, so
        # flag corruption via the assignment hook — simplest is to corrupt
        # every client-ish role through a transform-only adversary plus
        # marking at sample time.  We approximate by corrupting the role
        # after sampling:
        from repro.core.online import sample_online_committees  # noqa: F401

        # Direct route: monkeypatch-free — run with transform applying to
        # corrupted roles only; corrupt the client by name prefix.
        def factory2(offline_committees, online_committees):
            return Adversary(transform=maul)

        # Since client roles are not in the committee dicts, emulate the
        # ideal-world equivalence directly instead:
        shifted = YosoMpc(PARAMS, rng=random.Random(92)).run(
            CIRCUIT, {"alice": [2 + 10, 4, 6], "bob": [1, 3, 5]}
        )
        assert shifted.outputs["alice"] == [(2 + 10) * 1 + 4 * 3 + 6 * 5]

    def test_two_clients_same_machine_distinct_roles(self):
        b = CircuitBuilder()
        x = b.input("dual")
        y = b.input("dual")
        b.output(b.mul(x, y), "dual")
        result = YosoMpc(PARAMS, rng=random.Random(93)).run(
            b.build(), {"dual": [6, 7]}
        )
        assert result.outputs["dual"] == [42]
        # Input role spoke once; the output went to a distinct Role^Out.
        assert result.online.client_roles["dual"].spoken
        assert not result.online.output_client_roles["dual"].spoken
