"""Reproducibility: seeded runs are bit-for-bit deterministic."""

import random

from repro.circuits import dot_product_circuit
from repro.core import ProtocolParams, YosoMpc, run_mpc


class TestDeterminism:
    def test_same_seed_same_everything(self):
        circuit = dot_product_circuit(2)
        inputs = {"alice": [3, 1], "bob": [4, 1]}
        a = run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=7)
        b = run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=7)
        assert a.outputs == b.outputs
        assert a.setup.tpk.n == b.setup.tpk.n
        assert [r.n_bytes for r in a.meter.records] == [
            r.n_bytes for r in b.meter.records
        ]
        assert [r.tag for r in a.meter.records] == [r.tag for r in b.meter.records]

    def test_different_seeds_different_keys(self):
        circuit = dot_product_circuit(2)
        inputs = {"alice": [1, 1], "bob": [1, 1]}
        a = run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=1)
        b = run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=2)
        # Threshold modulus comes from fixtures (same), but all role keys,
        # masks and randomness differ — check a distinguishable artifact.
        a_posts = [r.n_bytes for r in a.meter.records]
        b_posts = [r.n_bytes for r in b.meter.records]
        assert a_posts != b_posts or a.offline.epsilon_delta != b.offline.epsilon_delta
        assert a.outputs == b.outputs  # correctness is seed-independent

    def test_seeded_protocol_object_reuse(self):
        circuit = dot_product_circuit(2)
        inputs = {"alice": [2, 2], "bob": [3, 3]}
        params = ProtocolParams.from_gap(4, 0.2)
        one = YosoMpc(params, rng=random.Random(5)).run(circuit, inputs)
        two = YosoMpc(params, rng=random.Random(5)).run(circuit, inputs)
        assert one.outputs == two.outputs == {"alice": [12]}
