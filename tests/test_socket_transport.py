"""Cross-process transport end-to-end tests.

The anchor property: a run whose parties decode in separate OS processes
(`SocketTransport`) is *byte-identical* to the in-memory run at the same
seed — same circuit output, same per-record meter fingerprint, same total
wire bytes.  The workers enforce this themselves: each re-encodes every
envelope from a key ring bootstrapped over the wire and errors out on any
byte difference, so a parity pass here means a fresh process really can
reconstruct the protocol's bytes from announcements alone.

Also covered: the quorum scheduler turning a silent worker into a §5.4
fail-stop crash (within and beyond the crash budget), the fresh-process
KeyRing bootstrap from a ``setup-keys`` envelope (satellite: ids stable
across processes), and the once-per-process fallback warning regression.
"""

import os
import random
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.accounting.comm import reset_fallback_warnings
from repro.circuits import dot_product_circuit
from repro.core import YosoMpc, run_mpc
from repro.core.params import ProtocolParams
from repro.errors import ParameterError, ProtocolAbortError
from repro.wire import SocketTransport, make_transport
from repro.yoso import BulletinBoard

CIRCUIT = dot_product_circuit(3)
INPUTS = {"alice": [2, 3, 5], "bob": [7, 11, 13]}
EXPECTED = [2 * 7 + 3 * 11 + 5 * 13]

SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


class TestSpecParsing:
    def test_socket_spec_options(self):
        transport = make_transport(
            "socket:workers=3,mode=pipe,timeout=12.5,mute=A[1]|B[2]"
        )
        assert isinstance(transport, SocketTransport)
        assert transport.workers == 3
        assert transport.mode == "pipe"
        assert transport.reply_timeout_s == 12.5
        assert transport.mute == frozenset({"A[1]", "B[2]"})
        transport.close()

    def test_bare_socket_spec(self):
        transport = make_transport("socket")
        assert isinstance(transport, SocketTransport)
        assert transport.mode == "auto"
        transport.close()

    def test_bad_options_rejected(self):
        with pytest.raises(ParameterError):
            make_transport("socket:workers=0")
        with pytest.raises(ParameterError):
            make_transport("socket:mode=udp")
        with pytest.raises(ParameterError):
            make_transport("socket:frobnicate=1")

    def test_unknown_transport_mentions_socket(self):
        with pytest.raises(ParameterError, match=r"memory\|sim\|socket"):
            make_transport("carrier-pigeon")


class TestCrossProcessParity:
    def test_socket_run_byte_identical_to_memory(self):
        mem = run_mpc(CIRCUIT, INPUTS, n=6, epsilon=0.25, seed=7,
                      transport="memory")
        sock = run_mpc(CIRCUIT, INPUTS, n=6, epsilon=0.25, seed=7,
                       transport="socket:workers=2")
        assert mem.outputs == sock.outputs == {"alice": EXPECTED}

        def fingerprint(result):
            return [
                (r.phase, r.sender, r.tag, r.n_bytes, r.exact)
                for r in result.meter.records
            ]

        assert fingerprint(mem) == fingerprint(sock)
        assert mem.meter.total_bytes() == sock.meter.total_bytes()
        # Byte-real both ways: exact spans only, no estimates anywhere.
        assert sock.meter.estimated_bytes() == 0
        stats = sock.transport.stats
        assert stats.dropped == 0
        assert stats.delivered_bytes == sock.meter.total_bytes()

    def test_pipe_mode_parity(self):
        mem = run_mpc(CIRCUIT, INPUTS, n=6, epsilon=0.25, seed=7)
        pipe = run_mpc(CIRCUIT, INPUTS, n=6, epsilon=0.25, seed=7,
                       transport="socket:workers=2,mode=pipe")
        assert pipe.outputs == mem.outputs
        assert pipe.meter.total_bytes() == mem.meter.total_bytes()
        assert pipe.transport.describe() == "socket(workers=2, mode=pipe)"


class TestQuorumTimeoutFailStop:
    def _run_muted(self, mute):
        params = ProtocolParams.from_gap(8, 0.25, fail_stop=True)
        transport = SocketTransport(
            workers=2, mute=frozenset(mute), reply_timeout_s=10.0
        )
        mpc = YosoMpc(
            params, rng=random.Random(21), transport=transport,
            quorum_timeout_s=1.5,
        )
        try:
            return params, transport, mpc.run(CIRCUIT, INPUTS)
        finally:
            transport.close()

    def test_silent_worker_becomes_fail_stop_crash(self):
        victims = {"Con-mul-1[1]"}
        params, transport, result = self._run_muted(victims)
        assert params.fail_stop_budget == 2
        assert result.outputs["alice"] == EXPECTED
        # The reply never arrived: a timeout drop, counted like any loss.
        assert transport.stats.dropped == len(victims)
        mul = result.online.committees["Con-mul-1"]
        crashed = {str(r.id) for r in mul if r.crashed}
        assert crashed == victims

    def test_silence_beyond_budget_aborts(self):
        victims = {f"Con-mul-1[{i}]" for i in range(1, 7)}
        with pytest.raises(ProtocolAbortError):
            self._run_muted(victims)


class TestKeyRingBootstrap:
    """A fresh process reconstructs ciphertext compression from the bytes."""

    def test_fresh_process_reencodes_setup_keys_identically(self, tmp_path):
        # Produce a real setup-keys envelope in *this* process.
        from repro.circuits.program import compile_circuit
        from repro.core.setup import run_setup
        from repro.yoso import ProtocolEnvironment

        params = ProtocolParams.from_gap(6, 0.25)
        env = ProtocolEnvironment(rng=random.Random(7))
        run_setup(env, params, compile_circuit(CIRCUIT, params.k),
                  random.Random(7))
        posts = env.bulletin.with_tag("setup-keys")
        assert len(posts) == 1
        envelope_bytes = posts[0].encoded
        blob = tmp_path / "setup-keys.bin"
        blob.write_bytes(envelope_bytes)

        # Decode + re-encode in a subprocess that shares nothing with us.
        script = (
            "import sys\n"
            "from repro.wire import WireCodec, decode_envelope, "
            "encode_envelope, kind_by_name, ensure_standard_kinds\n"
            "ensure_standard_kinds()\n"
            "raw = open(sys.argv[1], 'rb').read()\n"
            "env = decode_envelope(raw)\n"
            "codec = WireCodec()\n"
            "payload = codec.decode(env.body)\n"
            "body, _ = codec.encode_payload(payload)\n"
            "from repro.wire import Envelope\n"
            "frame = encode_envelope(Envelope(env.kind, env.sender, "
            "env.round, env.phase, env.tag, body), "
            "kind=kind_by_name(env.kind))\n"
            "assert frame == raw, 'fresh-process re-encode differs'\n"
            "ids = sorted(k.hex() for k in codec.keyring.known_ids())\n"
            "sys.stdout.write('\\n'.join(ids))\n"
        )
        child_env = dict(os.environ)
        child_env["PYTHONPATH"] = SRC_DIR
        proc = subprocess.run(
            [sys.executable, "-c", script, str(blob)],
            capture_output=True, text=True, env=child_env,
        )
        assert proc.returncode == 0, proc.stderr
        remote_ids = set(proc.stdout.split())

        # Ids are stable across processes: decoding the same envelope here
        # (with a fresh ring) learns exactly the same keys.
        from repro.wire import WireCodec

        local = WireCodec()
        local.decode(posts[0].envelope().body)
        local_ids = {k.hex() for k in local.keyring.known_ids()}
        assert remote_ids == local_ids
        assert local_ids  # the announcement path actually registered keys


class TestFallbackWarningOncePerKind:
    def test_warning_fires_once_per_kind_across_boards(self):
        class Foreign:
            """No wire codec, no sizer — the deprecated fallback path."""

        reset_fallback_warnings()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                board_a = BulletinBoard()
                board_a.post("online", "x[1]", "dbg", Foreign())
                board_b = BulletinBoard()  # a *second* board instance
                board_b.post("online", "x[2]", "dbg", Foreign())
                board_b.post("online", "x[3]", "dbg", Foreign())
            deprecations = [
                w for w in caught
                if issubclass(w.category, DeprecationWarning)
                and "no wire codec" in str(w.message)
            ]
            assert len(deprecations) == 1, (
                "the fallback warning must fire once per envelope kind, "
                f"got {len(deprecations)}"
            )
            # The message names the kind and the symbolic replacement.
            assert "generic" in str(deprecations[0].message)
            assert "repro.accounting.symbolic" in str(deprecations[0].message)
        finally:
            reset_fallback_warnings()

    def test_same_type_warns_again_under_a_different_kind(self):
        class Foreign:
            """Posted under two kinds: each kind gets its own warning."""

        reset_fallback_warnings()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                board = BulletinBoard()
                board.post("online", "x[1]", "dbg", Foreign())
                # "Con-out" is claimed by online.output — a distinct kind,
                # so the estimated-bytes flag must fire for it too.
                board.post("online", "x[1]", "Con-out", Foreign())
                board.post("online", "x[2]", "Con-out", Foreign())
            deprecations = [
                w for w in caught
                if issubclass(w.category, DeprecationWarning)
                and "no wire codec" in str(w.message)
            ]
            assert len(deprecations) == 2
        finally:
            reset_fallback_warnings()
