"""Tests for packed Shamir sharing — the paper's core primitive."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError, ReconstructionError, SharingError
from repro.fields import Zmod
from repro.sharing import PackedShamirScheme, PackedShare, secret_slots

F = Zmod((1 << 61) - 1)


class TestSlots:
    def test_slots_are_nonpositive_descending(self):
        assert secret_slots(4) == [0, -1, -2, -3]

    def test_bad_k(self):
        with pytest.raises(ParameterError):
            secret_slots(0)


class TestShareReconstruct:
    def test_roundtrip_default_degree(self, rng):
        scheme = PackedShamirScheme(F, 10, 3)
        secrets = F.elements([11, 22, 33])
        sharing = scheme.share(secrets, rng=rng)
        assert scheme.reconstruct(sharing) == secrets

    def test_roundtrip_all_valid_degrees(self, rng):
        n, k = 8, 3
        scheme = PackedShamirScheme(F, n, k)
        secrets = F.elements([5, 6, 7])
        for degree in range(k - 1, n):
            sharing = scheme.share(secrets, degree=degree, rng=rng)
            assert scheme.reconstruct(sharing[: degree + 1]) == secrets

    def test_degree_bounds_enforced(self, rng):
        scheme = PackedShamirScheme(F, 8, 3)
        with pytest.raises(ParameterError):
            scheme.share(F.elements([1, 2, 3]), degree=1, rng=rng)
        with pytest.raises(ParameterError):
            scheme.share(F.elements([1, 2, 3]), degree=8, rng=rng)

    def test_wrong_secret_count(self, rng):
        scheme = PackedShamirScheme(F, 8, 3)
        with pytest.raises(ParameterError):
            scheme.share(F.elements([1, 2]), rng=rng)

    def test_too_few_shares(self, rng):
        scheme = PackedShamirScheme(F, 8, 3)
        sharing = scheme.share(F.elements([1, 2, 3]), degree=5, rng=rng)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(sharing[:5])

    def test_privacy_margin(self, rng):
        # d − k + 1 shares are independent of the secrets: two sharings of
        # different vectors can agree on that many shares.
        n, k, d = 8, 2, 4
        scheme = PackedShamirScheme(F, n, k, default_degree=d)
        margin = d - k + 1
        s1 = scheme.share(F.elements([1, 2]), rng=random.Random(1))
        from repro.fields import interpolate
        points = list(zip(secret_slots(k), F.elements([7, 9])))
        points += [(s.index, s.value) for s in s1[:margin]]
        poly = interpolate(F, points)
        s2 = [PackedShare(i, poly(i), poly.degree if poly.degree >= k - 1 else d, k)
              for i in range(1, n + 1)]
        assert [x.value for x in s2[:margin]] == [x.value for x in s1[:margin]]

    def test_inconsistent_share_detected(self, rng):
        scheme = PackedShamirScheme(F, 8, 2, default_degree=3)
        sharing = scheme.share(F.elements([1, 2]), rng=rng)
        bad = sharing[:-1] + [
            PackedShare(8, sharing[-1].value + F(1), sharing[-1].degree, 2)
        ]
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(bad)

    def test_mixed_degrees_rejected(self, rng):
        scheme = PackedShamirScheme(F, 8, 2)
        a = scheme.share(F.elements([1, 2]), degree=3, rng=rng)
        b = scheme.share(F.elements([1, 2]), degree=4, rng=rng)
        with pytest.raises(ReconstructionError):
            scheme.reconstruct(a[:3] + b[3:])

    def test_mismatched_k_rejected(self, rng):
        scheme3 = PackedShamirScheme(F, 8, 3)
        scheme2 = PackedShamirScheme(F, 8, 2)
        sharing = scheme3.share(F.elements([1, 2, 3]), rng=rng)
        with pytest.raises(ReconstructionError):
            scheme2.reconstruct(sharing)


class TestLinearOps:
    def test_addition(self, rng):
        scheme = PackedShamirScheme(F, 9, 3)
        a = scheme.share(F.elements([1, 2, 3]), rng=rng)
        b = scheme.share(F.elements([10, 20, 30]), rng=rng)
        assert scheme.reconstruct(scheme.add(a, b)) == F.elements([11, 22, 33])

    def test_subtraction(self, rng):
        scheme = PackedShamirScheme(F, 9, 3)
        a = scheme.share(F.elements([5, 5, 5]), rng=rng)
        b = scheme.share(F.elements([1, 2, 3]), rng=rng)
        assert scheme.reconstruct(scheme.sub(a, b)) == F.elements([4, 3, 2])

    def test_scaling(self, rng):
        scheme = PackedShamirScheme(F, 9, 3)
        a = scheme.share(F.elements([1, 2, 3]), rng=rng)
        assert scheme.reconstruct(scheme.scale(a, 5)) == F.elements([5, 10, 15])

    def test_degree_mismatch_add_rejected(self, rng):
        scheme = PackedShamirScheme(F, 9, 3)
        a = scheme.share(F.elements([1, 2, 3]), degree=4, rng=rng)
        b = scheme.share(F.elements([1, 2, 3]), degree=5, rng=rng)
        with pytest.raises(SharingError):
            scheme.add(a, b)


class TestMultiplication:
    def test_sharewise_product(self, rng):
        scheme = PackedShamirScheme(F, 11, 3)
        a = scheme.share(F.elements([2, 3, 4]), degree=4, rng=rng)
        b = scheme.share(F.elements([5, 6, 7]), degree=4, rng=rng)
        product = scheme.multiply(a, b)
        assert product[0].degree == 8
        assert scheme.reconstruct(product) == F.elements([10, 18, 28])

    def test_product_degree_overflow_rejected(self, rng):
        scheme = PackedShamirScheme(F, 8, 3)
        a = scheme.share(F.elements([1, 1, 1]), degree=4, rng=rng)
        b = scheme.share(F.elements([1, 1, 1]), degree=4, rng=rng)
        with pytest.raises(SharingError):
            scheme.multiply(a, b)

    def test_public_product(self, rng):
        n, k = 10, 3
        scheme = PackedShamirScheme(F, n, k)
        sharing = scheme.share(F.elements([1, 2, 3]), degree=n - k, rng=rng)
        result = scheme.public_product([4, 5, 6], sharing)
        assert result[0].degree == (n - k) + (k - 1)
        assert scheme.reconstruct(result) == F.elements([4, 10, 18])

    def test_public_product_degree_guard(self, rng):
        n, k = 8, 3
        scheme = PackedShamirScheme(F, n, k)
        sharing = scheme.share(F.elements([1, 2, 3]), degree=n - k + 1, rng=rng)
        with pytest.raises(SharingError):
            scheme.public_product([1, 1, 1], sharing)


class TestRobustReconstruct:
    def test_duplicate_but_consistent_shares_accepted(self, rng):
        # A party's share posted twice (e.g. relayed on two channels) must
        # dedupe silently — only *conflicting* duplicates are an error.
        n, k, d = 9, 2, 3
        scheme = PackedShamirScheme(F, n, k, default_degree=d)
        sharing = scheme.share(F.elements([3, 4]), rng=rng)
        doubled = sharing + sharing[:3]
        assert scheme.robust_reconstruct(doubled, max_errors=2) == F.elements([3, 4])
        assert scheme.reconstruct(doubled) == F.elements([3, 4])
        assert scheme.reconstruct_many([doubled])[0] == F.elements([3, 4])

    def test_duplicate_conflicting_share_rejected(self, rng):
        scheme = PackedShamirScheme(F, 9, 2, default_degree=3)
        sharing = scheme.share(F.elements([3, 4]), rng=rng)
        forged = sharing + [
            PackedShare(1, sharing[0].value + F(1), sharing[0].degree, 2)
        ]
        with pytest.raises(ReconstructionError, match="conflicting"):
            scheme.robust_reconstruct(forged, max_errors=2)
        with pytest.raises(ReconstructionError, match="conflicting"):
            scheme.reconstruct_many([forged])


class TestPublicProductBoundary:
    def test_exactly_degree_n_minus_k_accepted(self, rng):
        # d = n−k is the edge of multiplication-friendliness: the product
        # has degree n−1, still reconstructable from all n shares.
        n, k = 9, 3
        scheme = PackedShamirScheme(F, n, k)
        sharing = scheme.share(F.elements([2, 3, 4]), degree=n - k, rng=rng)
        result = scheme.public_product([5, 6, 7], sharing)
        assert result[0].degree == n - 1
        assert scheme.reconstruct(result) == F.elements([10, 18, 28])

    def test_product_matches_per_party_canonical(self, rng):
        # The batched canonical sharing inside public_product must agree
        # with the per-party interpolation it replaced.
        n, k = 10, 3
        scheme = PackedShamirScheme(F, n, k)
        public = [4, 5, 6]
        sharing = scheme.share(F.elements([1, 2, 3]), degree=n - k, rng=rng)
        result = scheme.public_product(public, sharing)
        for share, original in zip(result, sharing):
            expected = scheme.canonical_share_for(public, share.index) * original
            assert share.value == expected.value
            assert share.degree == expected.degree


class TestCanonicalSharing:
    def test_canonical_is_deterministic(self):
        scheme = PackedShamirScheme(F, 8, 3)
        a = scheme.canonical_sharing(F.elements([7, 8, 9]))
        b = scheme.canonical_sharing(F.elements([7, 8, 9]))
        assert [x.value for x in a] == [x.value for x in b]
        assert a[0].degree == 2

    def test_canonical_share_for_matches_full(self):
        scheme = PackedShamirScheme(F, 8, 3)
        full = scheme.canonical_sharing(F.elements([7, 8, 9]))
        for i in (1, 4, 8):
            assert scheme.canonical_share_for(F.elements([7, 8, 9]), i).value == full[i - 1].value

    def test_canonical_reconstructs(self):
        scheme = PackedShamirScheme(F, 8, 3)
        sharing = scheme.canonical_sharing(F.elements([7, 8, 9]))
        assert scheme.reconstruct(sharing[:3]) == F.elements([7, 8, 9])


class TestShareAlgebra:
    def test_share_tag_validation(self):
        with pytest.raises(ParameterError):
            PackedShare(0, F(1), 2, 2)
        with pytest.raises(ParameterError):
            PackedShare(1, F(1), 0, 2)

    def test_cross_party_ops_rejected(self):
        a = PackedShare(1, F(1), 2, 2)
        b = PackedShare(2, F(1), 2, 2)
        with pytest.raises(SharingError):
            a + b

    def test_cross_k_ops_rejected(self):
        a = PackedShare(1, F(1), 2, 2)
        b = PackedShare(1, F(1), 2, 3)
        with pytest.raises(SharingError):
            a * b


@settings(max_examples=25, deadline=None)
@given(
    secrets=st.lists(st.integers(min_value=0, max_value=1 << 60), min_size=1, max_size=4),
    seed=st.integers(min_value=0, max_value=1 << 30),
    extra=st.integers(min_value=0, max_value=5),
)
def test_packed_roundtrip_property(secrets, seed, extra):
    k = len(secrets)
    degree = k - 1 + extra
    n = degree + 1 + 2
    scheme = PackedShamirScheme(F, n, k)
    sharing = scheme.share(F.elements(secrets), degree=degree, rng=random.Random(seed))
    assert scheme.reconstruct(sharing) == F.elements(secrets)


@settings(max_examples=25, deadline=None)
@given(
    xs=st.lists(st.integers(min_value=0, max_value=1 << 40), min_size=3, max_size=3),
    ys=st.lists(st.integers(min_value=0, max_value=1 << 40), min_size=3, max_size=3),
    seed=st.integers(min_value=0, max_value=1 << 30),
)
def test_packed_multiplication_property(xs, ys, seed):
    rng = random.Random(seed)
    scheme = PackedShamirScheme(F, 11, 3)
    a = scheme.share(F.elements(xs), degree=4, rng=rng)
    b = scheme.share(F.elements(ys), degree=4, rng=rng)
    expected = [F(x) * F(y) for x, y in zip(xs, ys)]
    assert scheme.reconstruct(scheme.multiply(a, b)) == expected
