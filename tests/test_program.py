"""Tests for the compiled circuit IR (repro.circuits.program)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    Circuit,
    CircuitBuilder,
    GateType,
    compile_circuit,
    dot_product_circuit,
    random_circuit,
    second_price_auction_circuit,
)
from repro.circuits.program import _CACHE_ATTR
from repro.errors import CircuitError
from repro.fields import Zmod

F = Zmod((1 << 61) - 1)


def deep_chain_circuit(n_muls: int) -> Circuit:
    """A maximally deep circuit: x·y·y·…·y, one MUL per depth."""
    b = CircuitBuilder()
    x = b.input("alice")
    y = b.input("bob")
    acc = x
    for _ in range(n_muls):
        acc = b.mul(acc, y)
    b.output(acc, "alice")
    return b.build()


class TestLowering:
    def test_layers_cover_every_gate_once(self):
        circuit = second_price_auction_circuit(6, ["a", "b", "c"])
        program = compile_circuit(circuit, 3)
        seen = sorted(
            w for layer in program.layers for run in layer.runs for w in run.wires
        )
        assert seen == list(range(len(circuit.gates)))

    def test_layers_respect_dependencies(self):
        circuit = second_price_auction_circuit(6, ["a", "b", "c"])
        program = compile_circuit(circuit, 3)
        level = program.level_of_wire
        for w, gate in enumerate(circuit.gates):
            for src in gate.inputs:
                assert level[src] < level[w]

    def test_runs_are_kind_homogeneous(self):
        circuit = second_price_auction_circuit(6, ["a", "b", "c"])
        program = compile_circuit(circuit, 3)
        for layer in program.layers:
            for run in layer.runs:
                for w in run.wires:
                    assert circuit.gates[w].kind is run.kind

    def test_constant_table_deduplicates(self):
        b = CircuitBuilder()
        x = b.input("a")
        y = b.cadd(7, b.cadd(7, b.cmul(7, b.cmul(-1, x))))
        b.output(y, "a")
        program = compile_circuit(b.build(), 1)
        assert sorted(program.constants) == [-1, 7]

    def test_mask_wires_are_inputs_then_muls_in_circuit_order(self):
        circuit = dot_product_circuit(4)
        program = compile_circuit(circuit, 2)
        assert program.mask_wires == (
            circuit.input_wires + circuit.multiplication_wires
        )
        assert program.mul_wires == circuit.multiplication_wires

    def test_input_segments_consumption_order(self):
        circuit = dot_product_circuit(3, client_x="alice", client_y="bob")
        program = compile_circuit(circuit, 2)
        by_client = {s.client: s.wires for s in program.input_segments}
        assert set(by_client) == {"alice", "bob"}
        for client, wires in by_client.items():
            assert list(wires) == list(circuit.inputs_of_client(client))


class TestShapes:
    def test_k1_one_gate_per_batch(self):
        circuit = dot_product_circuit(5)
        program = compile_circuit(circuit, 1)
        assert all(len(b.gate_wires) == 1 for b in program.plan.mul_batches)
        assert program.slot_utilization() == 1.0

    def test_add_only_circuit_has_no_batches(self):
        b = CircuitBuilder()
        xs = b.inputs("a", 6)
        b.output(b.sum(xs), "a")
        program = compile_circuit(b.build(), 4)
        assert program.plan.mul_batches == ()
        assert program.mul_depths == ()
        assert program.slot_utilization() == 1.0
        ev = program.evaluate(F, {"a": [1, 2, 3, 4, 5, 6]})
        assert int(ev.outputs["a"][0]) == 21

    def test_ragged_final_batch(self):
        # 7 same-depth muls at k=3: batches of 3, 3, 1.
        circuit = dot_product_circuit(7)
        program = compile_circuit(circuit, 3)
        sizes = [len(b.gate_wires) for b in program.plan.mul_batches]
        assert sizes == [3, 3, 1]
        assert program.slot_utilization() == pytest.approx(7 / 9)
        assert program.utilization_by_depth()[1] == pytest.approx(7 / 9)

    def test_deep_10k_gate_circuit_compiles(self):
        n_muls = 10_000
        circuit = deep_chain_circuit(n_muls)
        program = compile_circuit(circuit, 4)
        assert program.n_gates == n_muls + 3
        # One mul per depth: depth count equals the chain length, and each
        # batch holds a single gate no matter the packing factor.
        assert len(program.mul_depths) == n_muls
        assert len(program.plan.mul_batches) == n_muls
        assert program.n_layers == n_muls + 2  # inputs, chain, output
        ev = program.evaluate(F, {"alice": [3], "bob": [1]})
        assert int(ev.outputs["alice"][0]) == 3

    def test_invalid_k_rejected(self):
        with pytest.raises(CircuitError):
            compile_circuit(dot_product_circuit(2), 0)


class TestCache:
    def test_compile_is_memoized_per_k(self):
        circuit = dot_product_circuit(3)
        assert compile_circuit(circuit, 2) is compile_circuit(circuit, 2)
        assert compile_circuit(circuit, 2) is not compile_circuit(circuit, 3)

    def test_cache_invalidated_when_gates_replaced(self):
        circuit = dot_product_circuit(3)
        stale = compile_circuit(circuit, 2)
        # The only possible mutation of the immutable class: swapping the
        # gate tuple out from under the cache.
        other = dot_product_circuit(3)
        object.__setattr__(circuit, "gates", other.gates)
        fresh = compile_circuit(circuit, 2)
        assert fresh is not stale
        assert circuit.__dict__[_CACHE_ATTR][2][0] is circuit.gates

    def test_circuit_program_method_delegates_to_cache(self):
        circuit = dot_product_circuit(3)
        assert circuit.program(2) is compile_circuit(circuit, 2)


class TestEvaluate:
    def test_matches_circuit_evaluate_on_auction(self):
        circuit = second_price_auction_circuit(5, ["a", "b", "c"])
        program = compile_circuit(circuit, 4)
        rng = random.Random(9)
        for _ in range(5):
            inputs = {
                c: [rng.randrange(2) for _ in range(5)] for c in ("a", "b", "c")
            }
            assert (
                program.evaluate(F, inputs).outputs
                == circuit.evaluate(F, inputs).outputs
            )

    def test_missing_client_rejected(self):
        program = compile_circuit(dot_product_circuit(2), 1)
        with pytest.raises(CircuitError):
            program.evaluate(F, {"alice": [1, 2]})

    def test_input_count_mismatch_rejected(self):
        program = compile_circuit(dot_product_circuit(2), 1)
        with pytest.raises(CircuitError):
            program.evaluate(F, {"alice": [1], "bob": [3, 4]})
        with pytest.raises(CircuitError):
            program.evaluate(F, {"alice": [1, 2, 5], "bob": [3, 4]})


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1 << 30),
    k=st.integers(min_value=1, max_value=5),
)
def test_compiled_evaluation_matches_plaintext_property(seed, k):
    rng = random.Random(seed)
    circuit = random_circuit(rng, n_inputs=3, n_gates=25, n_clients=2)
    program = compile_circuit(circuit, k)
    inputs = {
        f"client{i}": [
            rng.randrange(100) for _ in circuit.inputs_of_client(f"client{i}")
        ]
        for i in range(2)
    }
    expected = circuit.evaluate(F, inputs)
    got = program.evaluate(F, inputs)
    assert got.wire_values == expected.wire_values
    assert got.outputs == expected.outputs


def test_gate_kind_coverage_random_circuits():
    # The lowering handles every gate kind the builder can emit.
    kinds = set()
    for seed in range(20):
        circuit = random_circuit(
            random.Random(seed), n_inputs=3, n_gates=30, n_clients=2
        )
        compile_circuit(circuit, 3)
        kinds |= {g.kind for g in circuit.gates}
    assert GateType.MUL in kinds and GateType.INPUT in kinds
