"""Unit tests for online-phase internals: μ tracking and state objects."""


import pytest

from repro.circuits import CircuitBuilder, dot_product_circuit
from repro.core import run_mpc
from repro.core.online import MuTracker
from repro.core.setup import SetupArtifacts
from repro.errors import ProtocolAbortError
from repro.fields import Zmod


class _FakeSetup:
    """Just enough of SetupArtifacts for MuTracker."""

    def __init__(self, modulus=10007):
        self.ring = Zmod(modulus)


class TestMuTracker:
    def _tracker(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        s = b.add(x, y)            # 2
        d = b.sub(x, y)            # 3
        ca = b.cadd(10, s)         # 4
        cm = b.cmul(3, d)          # 5
        m = b.mul(ca, cm)          # 6
        out = b.output(m, "a")     # 7
        return MuTracker(_FakeSetup(), b.build()), (x, y, s, d, ca, cm, m, out)

    def test_linear_propagation(self):
        tracker, (x, y, s, d, ca, cm, m, out) = self._tracker()
        tracker.set(x, 100)
        tracker.set(y, 30)
        tracker.propagate()
        assert int(tracker.get(s)) == 130
        assert int(tracker.get(d)) == 70
        assert int(tracker.get(ca)) == 140   # constants land in μ
        assert int(tracker.get(cm)) == 210
        assert not tracker.known(m)          # mul waits for its committee

    def test_mul_resolution_unblocks_output(self):
        tracker, (x, y, s, d, ca, cm, m, out) = self._tracker()
        tracker.set(x, 1)
        tracker.set(y, 1)
        tracker.propagate()
        assert not tracker.known(out)
        tracker.set(m, 999)
        tracker.propagate()
        assert int(tracker.get(out)) == 999

    def test_partial_knowledge_does_not_propagate(self):
        tracker, (x, y, s, *_rest) = self._tracker()
        tracker.set(x, 5)
        tracker.propagate()
        assert not tracker.known(s)

    def test_get_unknown_raises(self):
        tracker, wires = self._tracker()
        with pytest.raises(ProtocolAbortError):
            tracker.get(wires[2])

    def test_values_reduced_into_ring(self):
        tracker, (x, *_rest) = self._tracker()
        tracker.set(x, -1)
        assert int(tracker.get(x)) == tracker.ring.modulus - 1


class TestStateObjects:
    @pytest.fixture(scope="class")
    def result(self):
        return run_mpc(
            dot_product_circuit(3), {"alice": [1, 2, 3], "bob": [4, 5, 6]},
            n=5, epsilon=0.25, seed=202,
        )

    def test_setup_artifacts_shape(self, result):
        setup = result.setup
        assert isinstance(setup, SetupArtifacts)
        assert setup.ring.modulus == setup.tpk.n
        assert setup.mul_depths == (1,)
        # One KFF per online mul role plus one per input client.
        expected = len(setup.mul_depths) * setup.params.n + 2
        assert len(setup.kff) == expected

    def test_kff_lookup_validates(self, result):
        with pytest.raises(Exception):
            result.setup.kff_for("nonexistent-role")

    def test_offline_state_coverage(self, result):
        offline = result.offline
        circuit = result.circuit
        # Every wire has a mask ciphertext, every mul wire a Γ ciphertext.
        assert set(range(len(circuit.gates))) == set(offline.wire_cipher)
        assert set(circuit.multiplication_wires) == set(offline.gamma_cipher)
        # Every batch/member/kind bundle was re-encrypted.
        n = result.params.n
        for batch in result.plan.mul_batches:
            for i in range(1, n + 1):
                for kind in ("left", "right", "gamma"):
                    bundle = offline.packed_bundles[(batch.batch_id, i, kind)]
                    assert len(bundle) >= result.params.t + 1

    def test_online_state_outputs_match(self, result):
        assert result.online.outputs == result.outputs

    def test_mu_of_output_wire_consistent(self, result):
        # v = μ + λ was verified by correctness; check μ is in the tracker.
        for w in result.circuit.output_wires:
            assert result.online.tracker.known(w)


class TestLargerCommittee:
    def test_n10_t3_k2_run(self):
        # A bigger committee with t = 3 corruptions tolerated and packing.
        result = run_mpc(
            dot_product_circuit(4), {"alice": [1, 2, 3, 4], "bob": [9, 8, 7, 6]},
            n=10, epsilon=0.15, seed=203,
        )
        assert result.params.t == 3
        assert result.outputs["alice"] == [1 * 9 + 2 * 8 + 3 * 7 + 4 * 6]
