"""Tests for the batching (packing layout) planner."""

import pytest

from repro.circuits import CircuitBuilder, dot_product_circuit, plan_batches
from repro.errors import CircuitError


class TestInputBatches:
    def test_grouped_per_client_in_chunks_of_k(self):
        plan = plan_batches(dot_product_circuit(5), k=2)
        by_client = {}
        for batch in plan.input_batches:
            by_client.setdefault(batch.client, []).append(batch)
        assert len(by_client["alice"]) == 3  # 5 wires -> 2+2+1
        assert len(by_client["bob"]) == 3
        sizes = [len(b.wires) for b in by_client["alice"]]
        assert sizes == [2, 2, 1]

    def test_slot_mapping_consistent(self):
        plan = plan_batches(dot_product_circuit(4), k=3)
        for batch in plan.input_batches:
            for slot, wire in enumerate(batch.wires):
                assert plan.input_slot_of_wire[wire] == (batch.batch_id, slot)


class TestMulBatches:
    def test_depth_separation(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("a")
        m1 = b.mul(x, y)
        m2 = b.mul(x, y)
        m3 = b.mul(m1, m2)  # depth 2
        b.output(m3, "a")
        plan = plan_batches(b.build(), k=4)
        depths = [batch.depth for batch in plan.mul_batches]
        assert depths == [1, 2]
        assert len(plan.mul_batches[0].gate_wires) == 2
        assert len(plan.mul_batches[1].gate_wires) == 1

    def test_chunking_within_depth(self):
        plan = plan_batches(dot_product_circuit(7), k=3)
        sizes = [len(b.gate_wires) for b in plan.mul_batches]
        assert sizes == [3, 3, 1]

    def test_left_right_wires_match_gates(self):
        circuit = dot_product_circuit(4)
        plan = plan_batches(circuit, k=2)
        for batch in plan.mul_batches:
            for slot, wire in enumerate(batch.gate_wires):
                gate = circuit.gates[wire]
                assert gate.inputs[0] == batch.left_wires[slot]
                assert gate.inputs[1] == batch.right_wires[slot]

    def test_mul_slot_mapping(self):
        plan = plan_batches(dot_product_circuit(4), k=2)
        for batch in plan.mul_batches:
            for slot, wire in enumerate(batch.gate_wires):
                assert plan.mul_slot_of_wire[wire] == (batch.batch_id, slot)

    def test_batches_by_depth(self):
        plan = plan_batches(dot_product_circuit(4), k=2)
        by_depth = plan.batches_by_depth()
        assert set(by_depth) == {1}
        assert len(by_depth[1]) == 2

    def test_k_one_degenerates_to_per_gate(self):
        plan = plan_batches(dot_product_circuit(3), k=1)
        assert all(len(b.gate_wires) == 1 for b in plan.mul_batches)
        assert len(plan.mul_batches) == 3

    def test_bad_k_rejected(self):
        with pytest.raises(CircuitError):
            plan_batches(dot_product_circuit(2), k=0)

    def test_n_batches(self):
        plan = plan_batches(dot_product_circuit(4), k=2)
        assert plan.n_batches == len(plan.input_batches) + len(plan.mul_batches)
