"""Tests for the Section 6 analysis, Table 1 regeneration, and Monte Carlo."""

import random

import pytest

from repro.errors import ParameterError, SortitionError
from repro.sortition import (
    TABLE1_PAPER,
    SecurityParameters,
    analyze,
    epsilon_one,
    epsilon_three_bounds,
    epsilon_two,
    generate_table1,
    max_gap,
    sample_committee_sizes,
    simulate_sortition,
)
from repro.sortition.analysis import LN2, corruption_threshold
from repro.sortition.table1 import paper_row


class TestEpsilonSolutions:
    def test_epsilon_one_saturates_eq2(self):
        # ε₁ must satisfy C = (k1+k2+1)(2+ε₁)ln2/(f·ε₁²) with equality.
        C, f = 10000, 0.1
        e1 = epsilon_one(C, f)
        lhs = (64 + 128 + 1) * (2 + e1) * LN2 / (f * e1 * e1)
        assert lhs == pytest.approx(C, rel=1e-9)

    def test_epsilon_two_saturates_eq2(self):
        C, f = 10000, 0.1
        e2 = epsilon_two(C, f)
        lhs = (128 + 1) * (2 + e2) * LN2 / (f * (1 - f) * e2 * e2)
        assert lhs == pytest.approx(C, rel=1e-9)

    def test_epsilons_shrink_with_committee_size(self):
        assert epsilon_one(40000, 0.1) < epsilon_one(1000, 0.1)
        assert epsilon_two(40000, 0.1) < epsilon_two(1000, 0.1)

    def test_threshold_exceeds_expected_corruptions(self):
        # t must be above the mean number of corrupted members fC.
        for C, f in ((5000, 0.1), (20000, 0.2)):
            assert corruption_threshold(C, f) > f * C

    def test_epsilon_three_interval_ordering(self):
        lower, upper = epsilon_three_bounds(20000, 0.1, delta=1.0)
        assert 0 < lower < upper < 1

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            epsilon_one(0, 0.1)
        with pytest.raises(ParameterError):
            epsilon_one(1000, 0.0)
        with pytest.raises(ParameterError):
            epsilon_one(1000, 1.0)


class TestMaxGap:
    def test_gap_positive_when_feasible(self):
        assert 0 < max_gap(20000, 0.1) < 0.5

    def test_infeasible_raises(self):
        with pytest.raises(SortitionError):
            max_gap(1000, 0.25)

    def test_gap_shrinks_with_corruption(self):
        assert max_gap(20000, 0.2) < max_gap(20000, 0.05)

    def test_custom_security_parameters(self):
        # Weaker security -> larger feasible gap.
        weak = SecurityParameters(k1=20, k2=30, k3=30)
        assert max_gap(5000, 0.1, weak) > max_gap(5000, 0.1)

    def test_security_parameters_validated(self):
        with pytest.raises(ParameterError):
            SecurityParameters(k1=0)


class TestTable1:
    """The reproduction's headline table: every cell vs the published one."""

    @pytest.fixture(scope="class")
    def ours(self):
        return {(r.c_param, r.f): r for r in generate_table1()}

    @pytest.mark.parametrize(
        "row", TABLE1_PAPER, ids=lambda r: f"C{r.c_param}-f{r.f}"
    )
    def test_cell_matches_paper(self, ours, row):
        mine = ours[(row.c_param, row.f)]
        assert mine.feasible == row.feasible, "⊥ pattern must match"
        if not row.feasible:
            return
        assert mine.t == row.t, "corruption threshold t (floored) matches exactly"
        assert abs(mine.committee_size - row.committee_size) <= 6
        assert abs(mine.committee_size_no_gap - row.committee_size_no_gap) <= 3
        assert abs(mine.epsilon - row.epsilon) <= 0.011
        assert mine.packing_factor == row.packing_factor, "k matches exactly"

    def test_improvement_factor_claims(self):
        # §1.1.2: ≈28× at (C=1000, f=0.05) moving committees 900→1000-ish...
        g = analyze(1000, 0.05)
        assert g.packing_factor == 28
        assert 890 <= g.committee_size_no_gap <= 900
        assert 940 <= g.committee_size <= 960
        # ... and >1000× at (C=20000, f=0.20) moving ≈18k→≈20k.
        g = analyze(20000, 0.20)
        assert g.packing_factor > 1000
        assert 18000 <= g.committee_size_no_gap <= 18500
        assert 20000 <= g.committee_size <= 20600

    def test_committee_growth_marginal(self):
        # The paper's point: the committee grows by far less than the gain.
        for C, f in ((20000, 0.2), (40000, 0.25)):
            g = analyze(C, f)
            assert g.committee_growth < 1.2
            assert g.improvement_factor > 10 * (g.committee_growth - 1) * 100

    def test_paper_row_lookup(self):
        assert paper_row(1000, 0.05).t == 446
        with pytest.raises(KeyError):
            paper_row(123, 0.5)


class TestMonteCarlo:
    def test_sampler_shapes(self, rng):
        samples = sample_committee_sizes(10000, 0.2, 100, trials=50, rng=rng)
        assert len(samples) == 50
        assert all(0 <= phi <= c for c, phi in samples)

    def test_sampler_means(self):
        rng = random.Random(17)
        samples = sample_committee_sizes(100000, 0.2, 1000, trials=400, rng=rng)
        mean_c = sum(c for c, _ in samples) / len(samples)
        mean_phi = sum(phi for _, phi in samples) / len(samples)
        assert mean_c == pytest.approx(1000, rel=0.05)
        assert mean_phi == pytest.approx(200, rel=0.10)

    def test_corruption_bound_holds_empirically(self):
        # At reduced security (k1=1, k2=k3=8 -> failure prob <= 2^-8), run
        # many trials: the Eq. (2) corruption bound must hold.
        sec = SecurityParameters(k1=1, k2=8, k3=8)
        C, f = 2000, 0.1
        g = analyze(C, f, sec)
        rng = random.Random(23)
        outcome = simulate_sortition(
            n_total=100000, f=f, c_param=C,
            threshold_t=g.t, gap_epsilon=g.epsilon,
            trials=2000, rng=rng,
        )
        assert outcome.corruption_failure_rate <= 2 ** -8 + 0.01

    def test_conservative_gap_bound_holds_empirically(self):
        # REPRODUCTION FINDING (EXPERIMENTS.md): the paper's Eq. (6) gap
        # bound is optimistic at observable security levels (its ε gives a
        # ~28% empirical violation rate here), while the Chernoff-derived
        # conservative variant meets the stated 2^-k3 bound.
        sec = SecurityParameters(k1=1, k2=8, k3=8)
        C, f = 2000, 0.1
        paper = analyze(C, f, sec)
        cons = analyze(C, f, sec, conservative=True)
        assert cons.epsilon < paper.epsilon  # strictly more cautious
        rng = random.Random(23)
        paper_outcome = simulate_sortition(
            100000, f, C, paper.t, paper.epsilon, trials=2000, rng=rng,
        )
        cons_outcome = simulate_sortition(
            100000, f, C, cons.t, cons.epsilon, trials=2000, rng=rng,
        )
        assert paper_outcome.gap_failure_rate > 0.05  # the paper bound slips
        assert cons_outcome.gap_failure_rate <= 2 ** -8 + 0.01

    def test_loose_threshold_fails_often(self):
        # Sanity: with t set at the mean, ~half the trials must violate it,
        # proving the simulator actually exercises the tail.
        rng = random.Random(29)
        outcome = simulate_sortition(
            n_total=100000, f=0.2, c_param=1000,
            threshold_t=200, gap_epsilon=0.0, trials=500, rng=rng,
        )
        assert 0.3 < outcome.corruption_failure_rate < 0.7

    def test_parameter_validation(self, rng):
        with pytest.raises(ParameterError):
            sample_committee_sizes(100, 0.1, 200, trials=1, rng=rng)
        with pytest.raises(ParameterError):
            sample_committee_sizes(100, -0.1, 10, trials=1, rng=rng)
