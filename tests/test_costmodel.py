"""Tests for the analytic communication model (cross-validated vs meter)."""

import pytest

from repro.accounting import CircuitShape, CostModel, extrapolate_online_per_gate
from repro.circuits import dot_product_circuit, plan_batches
from repro.core import ProtocolParams, run_mpc
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def validated_run():
    circuit = dot_product_circuit(8)
    result = run_mpc(
        circuit, {"alice": list(range(1, 9)), "bob": [2] * 8},
        n=6, epsilon=0.25, seed=31,
    )
    model = CostModel(
        result.params, CircuitShape.of(circuit, result.plan),
        result.setup.proof_params,
    )
    return circuit, result, model


class TestShape:
    def test_circuit_shape_extraction(self):
        circuit = dot_product_circuit(5)
        plan = plan_batches(circuit, k=2)
        shape = CircuitShape.of(circuit, plan)
        assert shape.n_inputs == 10
        assert shape.n_multiplications == 5
        assert shape.n_outputs == 1
        assert shape.n_batches == 3
        assert shape.n_depths == 1
        assert shape.n_input_clients == 2


class TestCrossValidation:
    def test_offline_prediction_within_tolerance(self, validated_run):
        _, result, model = validated_run
        predicted = model.predict_offline().n_bytes
        measured = result.phase_bytes("offline")
        assert 0.80 <= predicted / measured <= 1.20

    def test_online_prediction_within_tolerance(self, validated_run):
        _, result, model = validated_run
        predicted = model.predict_online().n_bytes
        measured = result.phase_bytes("online")
        assert 0.70 <= predicted / measured <= 1.25

    def test_mu_per_gate_prediction_tight(self, validated_run):
        circuit, result, model = validated_run
        predicted = model.online_mul_bytes_per_gate()
        measured = result.online_mul_bytes() / circuit.n_multiplications
        assert 0.95 <= predicted / measured <= 1.05

    def test_offline_message_count_exact(self, validated_run):
        _, result, model = validated_run
        # 5 offline committees × n members, each speaking once.
        senders = result.meter.senders("offline")
        assert len(senders) == model.predict_offline().messages


class TestModelStructure:
    def _model(self, n, epsilon, length=8, **kw):
        params = ProtocolParams.from_gap(n, epsilon, **kw)
        circuit = dot_product_circuit(length)
        plan = plan_batches(circuit, params.k)
        return CostModel(params, CircuitShape.of(circuit, plan))

    def test_online_per_gate_flat_in_n(self):
        # With k ∝ n and a circuit wide enough for full batches (the
        # paper's width assumption), the model's per-gate online cost is
        # bounded by (1/ε)·|share| at every n — it does not grow with n.
        values = []
        for n in (8, 16, 32):
            model = self._model(n, 0.25, length=45)  # 45 = lcm-ish: full batches
            per_gate = model.online_mul_bytes_per_gate()
            bound = (1 / 0.25) * model.mu_share_bytes
            assert per_gate <= bound
            values.append(per_gate)
        assert max(values) <= min(values) * 1.5  # k-flooring wobble only

    def test_offline_per_gate_linear_in_n(self):
        small = self._model(8, 0.25).offline_bytes_per_gate()
        large = self._model(16, 0.25).offline_bytes_per_gate()
        assert 1.5 <= large / small <= 3.5

    def test_component_sizes_scale_with_moduli(self):
        small = self._model(8, 0.25, te_bits=64)
        large = self._model(8, 0.25, te_bits=128, role_key_bits=128)
        # The Z_{N²} element doubles; the wire adds a constant tag + key id.
        assert large.te_ct - large.CT_OVERHEAD == 2 * (small.te_ct - small.CT_OVERHEAD)
        assert large.popk_bytes > small.popk_bytes

    def test_empty_circuit_edge(self):
        from repro.circuits import CircuitBuilder

        b = CircuitBuilder()
        x = b.input("a")
        b.output(x, "a")
        circuit = b.build()
        params = ProtocolParams.from_gap(6, 0.2)
        model = CostModel(
            params, CircuitShape.of(circuit, plan_batches(circuit, params.k))
        )
        assert model.online_mul_bytes_per_gate() == 0.0
        assert model.offline_bytes_per_gate() == 0.0


class TestExtrapolation:
    def test_flat_at_deployment_scale(self):
        # n = 1000 vs n = 20000 at the same gap: per-gate cost identical
        # (both are share_bytes/ε up to k-flooring).
        a = extrapolate_online_per_gate(1000, 0.05)
        b = extrapolate_online_per_gate(20000, 0.05)
        assert 0.9 <= a / b <= 1.1

    def test_tracks_one_over_epsilon(self):
        wide = extrapolate_online_per_gate(20000, 0.25)
        narrow = extrapolate_online_per_gate(20000, 0.05)
        assert 4 <= narrow / wide <= 6  # ≈ 0.25/0.05

    def test_explicit_packing_override(self):
        base = extrapolate_online_per_gate(20000, 0.05)
        doubled = extrapolate_online_per_gate(20000, 0.05, gates_per_batch=2000)
        assert doubled == pytest.approx(base / 2)

    def test_epsilon_validated(self):
        with pytest.raises(ParameterError):
            extrapolate_online_per_gate(1000, 0.0)
        with pytest.raises(ParameterError):
            extrapolate_online_per_gate(1000, 0.5)
