"""Tests for the deployment-planning layer over the §6 analysis."""

import pytest

from repro.errors import ParameterError, SortitionError
from repro.sortition import (
    analyze,
    feasible_region,
    gap_series,
    max_tolerable_corruption,
    min_committee_for_gap,
    min_committee_for_packing,
    packing_series,
)


class TestInverseSearch:
    def test_min_committee_reaches_target_gap(self):
        g = min_committee_for_gap(0.10, target_epsilon=0.15)
        assert g.epsilon >= 0.15
        # Tightness: a committee 20% smaller must miss the target.
        with pytest.raises(SortitionError):
            min_committee_for_gap(0.10, 0.15, c_max=int(g.c_param * 0.8))

    def test_consistent_with_table1(self):
        # The published (C=5000, f=0.1) row has eps=0.15, so the minimal C
        # for that gap must be at most 5000.
        g = min_committee_for_gap(0.10, target_epsilon=0.15)
        assert g.c_param <= 5000

    def test_min_committee_for_packing(self):
        g = min_committee_for_packing(0.10, target_k=500)
        assert g.packing_factor >= 500
        smaller = analyze(g.c_param * 0.7, 0.10)
        assert smaller.packing_factor < 500

    def test_unreachable_targets_raise(self):
        with pytest.raises(SortitionError):
            min_committee_for_gap(0.25, 0.45, c_max=100000)
        with pytest.raises(SortitionError):
            min_committee_for_packing(0.25, 10**9, c_max=100000)

    def test_input_validation(self):
        with pytest.raises(ParameterError):
            min_committee_for_gap(0.1, 0.0)
        with pytest.raises(ParameterError):
            min_committee_for_packing(0.1, 0)

    def test_conservative_needs_bigger_committee(self):
        loose = min_committee_for_gap(0.10, 0.10)
        strict = min_committee_for_gap(0.10, 0.10, conservative=True)
        assert strict.c_param > loose.c_param


class TestSeries:
    def test_gap_series_monotone_in_f(self):
        points = gap_series(20000)
        feasible = [p for p in points if p.feasible]
        assert len(feasible) >= 4
        gaps = [p.epsilon for p in feasible]
        assert gaps == sorted(gaps, reverse=True)  # more corruption, less gap

    def test_gap_series_marks_infeasible_tail(self):
        points = gap_series(1000)
        assert points[0].feasible         # f = 0.05
        assert not points[-1].feasible    # f = 0.30

    def test_packing_series_monotone_in_c(self):
        series = packing_series(0.10)
        ks = [k for _, k in series if k is not None]
        assert ks == sorted(ks)
        assert ks[-1] > 100 * 1  # large committees, large savings

    def test_feasible_region_shape(self):
        region = feasible_region((1000, 20000), (0.05, 0.25))
        assert region[(1000, 0.05)] is True
        assert region[(1000, 0.25)] is False
        assert region[(20000, 0.05)] is True

    def test_max_tolerable_corruption(self):
        f_max = max_tolerable_corruption(20000)
        assert 0.20 < f_max < 0.25  # Table 1: 0.20 feasible, 0.25 is ⊥
        assert analyze(20000, f_max).epsilon > 0

    def test_max_tolerable_grows_with_committee(self):
        assert max_tolerable_corruption(40000) > max_tolerable_corruption(5000)

    def test_tiny_committee_infeasible(self):
        with pytest.raises(SortitionError):
            max_tolerable_corruption(50)
