"""Unit tests for Π_YOSO-Setup artifacts."""

import random

import pytest

from repro.circuits import compile_circuit, dot_product_circuit
from repro.core import ProtocolParams, client_tag, mul_committee_name, role_tag
from repro.core.setup import run_setup, trivial_zero_ciphertext
from repro.errors import ParameterError
from repro.paillier import ThresholdPaillier
from repro.yoso import IdealRoleAssignment, ProtocolEnvironment


@pytest.fixture(scope="module")
def setup_world():
    rng = random.Random(404)
    params = ProtocolParams.from_gap(5, 0.25)
    circuit = dot_product_circuit(3)
    program = compile_circuit(circuit, params.k)
    env = ProtocolEnvironment(
        assignment=IdealRoleAssignment(key_bits=64, rng=rng), rng=rng
    )
    setup = run_setup(env, params, program, rng)
    return env, params, circuit, setup


class TestSetupArtifacts:
    def test_ring_matches_threshold_key(self, setup_world):
        _, _, _, setup = setup_world
        assert setup.ring.modulus == setup.tpk.n
        assert not setup.ring.is_field()

    def test_tsk_shares_ready_for_first_committee(self, setup_world):
        _, params, _, setup = setup_world
        assert len(setup.tsk_shares) == params.n
        assert all(s.epoch == 0 for s in setup.tsk_shares)
        assert setup.tsk_verifications == {
            s.index: s.verification for s in setup.tsk_shares
        }

    def test_kff_registry_covers_online_roles_and_clients(self, setup_world):
        _, params, circuit, setup = setup_world
        for depth in setup.mul_depths:
            for i in range(1, params.n + 1):
                assert role_tag(mul_committee_name(depth), i) in setup.kff
        for client in circuit.input_clients():
            assert client_tag(client) in setup.kff
        with pytest.raises(ParameterError):
            setup.kff_for("unknown")

    def test_kff_secret_recoverable_via_threshold_decryption(self, setup_world):
        _, params, circuit, setup = setup_world
        from repro.paillier.encoding import safe_chunk_bits, unchunk_integer

        tag = client_tag(circuit.input_clients()[0])
        entry = setup.kff[tag]
        chunk_bits = safe_chunk_bits(setup.tpk.n)
        limbs = [
            ThresholdPaillier.decrypt(setup.tpk, setup.tsk_shares[:2], ct)
            for ct in entry.encrypted_prime
        ]
        prime = unchunk_integer(limbs, chunk_bits)
        sk = entry.recover_secret(prime)
        # Roundtrip under the recovered KFF secret key.
        assert sk.decrypt(entry.public_key.encrypt(12345)) == 12345

    def test_recover_secret_validates_prime(self, setup_world):
        _, _, circuit, setup = setup_world
        entry = setup.kff[client_tag(circuit.input_clients()[0])]
        with pytest.raises(ParameterError):
            entry.recover_secret(7)  # not a factor of the modulus

    def test_setup_posted_to_bulletin(self, setup_world):
        env, _, _, _ = setup_world
        assert env.meter.total_bytes("setup") > 0
        tags = set(env.meter.by_tag("setup"))
        assert any("setup-keys" in t for t in tags)

    def test_trivial_zero_ciphertext(self, setup_world):
        _, _, _, setup = setup_world
        zero = trivial_zero_ciphertext(setup.tpk)
        assert zero.value == 1
        assert ThresholdPaillier.decrypt(setup.tpk, setup.tsk_shares[:2], zero) == 0
