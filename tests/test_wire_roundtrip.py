"""Round-trip and rejection tests for the wire codec + envelope layer.

The canonical-format contract is ``encode(decode(b)) == b`` for every
accepted ``b`` and *loud* rejection of everything else.  These tests walk
every registered envelope kind with a representative payload and every
decode error path with hand-crafted malformed bytes.
"""

import zlib

import pytest

# Importing the phase modules registers every envelope kind and every
# payload dataclass — the same side effect a protocol run relies on.
import repro.baselines.cdn  # noqa: F401
import repro.core.offline  # noqa: F401
import repro.core.online  # noqa: F401
import repro.core.setup  # noqa: F401
import repro.extensions.it_yoso  # noqa: F401
import repro.service.wire  # noqa: F401

from repro.core.reencrypt import EncryptedPartial, PublicPartial
from repro.core.resharing import EncryptedResharing, EncryptedSubshare
from repro.errors import WireDecodeError, WireEncodeError
from repro.nizk.sigma import (
    MultiplicationProof,
    PartialDecryptionProof,
    PlaintextDlogEqualityProof,
    PlaintextKnowledgeProof,
)
from repro.paillier import generate_keypair
from repro.paillier.threshold import PartialDecryption
from repro.service.wire import ClientInput, EpochAnnouncement, EpochResult
from repro.wire import (
    Envelope,
    KeyAnnouncement,
    WireCodec,
    decode_envelope,
    encode_envelope,
    kind_for_tag,
    registered_kinds,
    roundtrip_check,
)
from repro.wire.codec import (
    TAG_BYTES,
    TAG_DICT,
    TAG_INT_POS,
    TAG_OBJECT,
    write_varint,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(64)


@pytest.fixture(scope="module")
def codec(keypair):
    c = WireCodec()
    c.keyring.add(keypair.public)
    return c


def _ct(keypair, value=1):
    return keypair.public.encrypt(value)


def _popk():
    return PlaintextKnowledgeProof(3, 5, 7)


def _pdec_proof():
    return PartialDecryptionProof(11, 13, 17)


def _public_partial():
    return PublicPartial(PartialDecryption(1, 9, 0), _pdec_proof())


def _encrypted_partial(keypair):
    return EncryptedPartial(2, 0, (_ct(keypair, 4), _ct(keypair, 5)), _pdec_proof())


def _resharing(keypair):
    sub = EncryptedSubshare(
        1, (_ct(keypair, 6),), (23,),
        (PlaintextDlogEqualityProof(1, 2, 3, 4),),
    )
    return EncryptedResharing(3, 1, 16, (29, 31), (sub, sub))


class TestScalarRoundTrip:
    @pytest.mark.parametrize("value", [
        None, True, False,
        0, 1, -1, 255, -256, 2**64, -(2**64), 2**521 - 1,
        b"", b"\x00", b"\x80\xff" * 9,
        "", "tag", "μ-shares ∑",
    ])
    def test_scalars(self, codec, value):
        encoded = roundtrip_check(codec, value)
        assert codec.decode(encoded) == value

    def test_containers(self, codec):
        value = {
            "list": [1, "two", None, [b"3"]],
            "tuple": (0, (1, 2), False),
            "nested": {(0, "eps"): {"ct": -5}, (0, "delta"): {}},
            "empty": [],
        }
        decoded = codec.decode(roundtrip_check(codec, value))
        assert decoded == value
        assert isinstance(decoded["tuple"], tuple)
        assert isinstance(decoded["list"], list)

    def test_dict_encoding_is_key_order_independent(self, codec):
        a = codec.encode({"x": 1, "y": 2, "z": 3})
        b = codec.encode({"z": 3, "x": 1, "y": 2})
        assert a == b

    def test_true_false_distinct_from_ints(self, codec):
        assert codec.decode(codec.encode(True)) is True
        assert codec.decode(codec.encode(1)) == 1
        assert codec.encode(True) != codec.encode(1)


class TestCiphertextRoundTrip:
    def test_roundtrip_preserves_value_and_key(self, codec, keypair):
        ct = _ct(keypair, 42)
        decoded = codec.decode(roundtrip_check(codec, ct))
        assert decoded.value == ct.value
        assert decoded.public.n == keypair.public.n

    def test_fixed_width(self, codec, keypair):
        # Same length whatever the group element: 1 tag + 8 key id + element.
        width = 1 + 8 + keypair.public.ciphertext_bytes
        for v in (1, 2**100):
            assert len(codec.encode(_ct(keypair, v))) == width

    def test_unknown_key_id_rejected(self, codec, keypair):
        encoded = codec.encode(_ct(keypair))
        with pytest.raises(WireDecodeError, match="unknown key id"):
            WireCodec().decode(encoded)  # fresh codec: empty keyring

    def test_out_of_group_value_rejected(self, codec, keypair):
        encoded = bytearray(codec.encode(_ct(keypair)))
        encoded[9:] = b"\x00" * (len(encoded) - 9)  # element := 0
        with pytest.raises(WireDecodeError, match="outside"):
            codec.decode(bytes(encoded))


class TestObjectRoundTrip:
    def test_proofs_and_partials(self, codec, keypair):
        for obj in (
            _popk(),
            MultiplicationProof(1, 2, 3, 4),
            _pdec_proof(),
            PlaintextDlogEqualityProof(5, 6, 7, 8),
            PartialDecryption(2, 99, 1),
            _public_partial(),
            _encrypted_partial(keypair),
            _resharing(keypair),
        ):
            decoded = codec.decode(roundtrip_check(codec, obj))
            assert type(decoded) is type(obj)
            assert decoded == obj

    def test_unregistered_code_rejected(self, codec):
        raw = bytearray([TAG_OBJECT])
        write_varint(raw, 200)
        write_varint(raw, 0)
        with pytest.raises(WireDecodeError, match="unregistered wire object code"):
            codec.decode(bytes(raw))

    def test_field_count_mismatch_rejected(self, codec):
        encoded = bytearray(codec.encode(_popk()))
        # Header is TAG_OBJECT, code varint, field-count varint.
        assert encoded[0] == TAG_OBJECT
        encoded[2] += 1
        with pytest.raises(WireDecodeError, match="fields, wire carries"):
            codec.decode(bytes(encoded) + codec.encode(0))

    def test_unencodable_type_rejected(self, codec):
        with pytest.raises(WireEncodeError, match="no wire codec"):
            codec.encode(object())


# -- every registered envelope kind ------------------------------------------

def _representative_payloads(keypair):
    """kind name -> (bulletin tag, payload) mirroring the protocol's posts."""
    ct, popk = _ct(keypair), _popk()
    ep, resh = _encrypted_partial(keypair), _resharing(keypair)
    return {
        "generic": ("debug-blob", {"note": "unregistered tag", "x": 1}),
        "setup.keys": ("setup-keys", {
            "te": {
                "tpk": KeyAnnouncement(keypair.public.n),
                "verification_base": 4,
                "tsk_verifications": [9, 16, 25],
            },
            "kff": {"Con-mul-1[2]": {
                "public_key": KeyAnnouncement(keypair.public.n),
                "encrypted_prime": [ct],
            }},
        }),
        "offline.beaver_a": ("Coff-A", {
            "beaver_a": {3: {"ct": ct, "proof": popk}}, "tsk": resh,
        }),
        "offline.beaver_b": ("Coff-B", {
            "beaver_b": {3: {
                "b_ct": ct, "c_ct": ct, "proof": MultiplicationProof(1, 2, 3, 4),
            }},
        }),
        "offline.masks": ("Coff-R", {
            "masks": {4: {"ct": ct, "proof": popk}},
            "helpers": {(0, "eps", 1): {"ct": ct, "proof": popk}},
        }),
        "offline.partials": ("Coff-dec", {
            "partials": {5: {"eps": _public_partial(), "delta": _public_partial()}},
            "tsk": resh,
        }),
        "offline.reencrypt": ("Coff-reenc", {
            "input_shares": {6: ep},
            "packed_shares": {(0, 1, "eps"): ep},
            "tsk": resh,
        }),
        "online.keys": ("Con-keys", {
            "kff": {"Con-mul-1[2]": [ep, ep]}, "tsk": resh,
        }),
        "online.input": ("input:alice", {"mu": {7: 123}}),
        "online.mu_shares": ("Con-mul-1", {
            "mu_shares": {0: {"value": 7, "proof": b"\x01" * 192}},
        }),
        "online.output": ("Con-out", {"output": {8: ep}}),
        "baseline.cdn": ("Cdn-triple-A", {"triples": {0: {"ct": ct, "proof": popk}}}),
        "baseline.cdn_aux": ("cdn-setup", {"tpk": KeyAnnouncement(keypair.public.n)}),
        "it.messages": ("It-mul-1", {"mu_shares": {0: 42}}),
        "service.client_input": ("svc-input:4:client-0000009", ClientInput(
            "client-0000009", 4, (ct, ct), (popk, popk),
        )),
        "service.epoch": ("svc-epoch-4", EpochAnnouncement(
            4, "statistics", 2, 1, KeyAnnouncement(keypair.public.n), 9,
        )),
        "service.result": ("svc-result-4", EpochResult(
            4, "auction", (3, 1, 2), (1, 2, 4),
        )),
        "service.reshare": ("svc-reshare-4-2", {"tsk": resh}),
    }


def test_every_registered_kind_has_a_representative(keypair):
    reps = _representative_payloads(keypair)
    missing = [k.name for k in registered_kinds() if k.name not in reps]
    assert not missing, f"add representative payloads for {missing}"


@pytest.mark.parametrize(
    "kind", registered_kinds(), ids=lambda k: k.name
)
def test_kind_payload_roundtrips(kind, codec, keypair):
    tag, payload = _representative_payloads(keypair)[kind.name]
    assert kind_for_tag(tag).name == kind.name

    body = roundtrip_check(codec, payload)
    envelope = Envelope(
        kind=kind.name, sender=f"{tag}[1]", round=3, phase="online", tag=tag,
        body=body,
    )
    data = encode_envelope(envelope, kind=kind)
    decoded = decode_envelope(data)
    assert decoded == envelope
    assert encode_envelope(decoded, kind=kind) == data  # byte-identical
    assert codec.decode(decoded.body) == codec.decode(body)


# -- rejection: codec ---------------------------------------------------------

class TestCodecRejection:
    def test_trailing_bytes(self, codec):
        with pytest.raises(WireDecodeError, match="trailing bytes"):
            codec.decode(codec.encode(1) + b"\x00")

    def test_every_strict_prefix_rejected(self, codec, keypair):
        encoded = codec.encode({
            "a": [1, (2, b"x")], "b": _ct(keypair), "c": "s",
        })
        for cut in range(len(encoded)):
            with pytest.raises(WireDecodeError):
                codec.decode(encoded[:cut])

    def test_empty_input(self, codec):
        with pytest.raises(WireDecodeError, match="missing type tag"):
            codec.decode(b"")

    def test_unknown_type_tag(self, codec):
        with pytest.raises(WireDecodeError, match="unknown wire type tag"):
            codec.decode(b"\x7f")

    def test_non_minimal_varint(self, codec):
        with pytest.raises(WireDecodeError, match="non-minimal varint"):
            codec.decode(bytes([TAG_BYTES, 0x80, 0x00]))

    def test_varint_too_long(self, codec):
        with pytest.raises(WireDecodeError, match="varint too long"):
            codec.decode(bytes([TAG_BYTES]) + b"\x80" * 9 + b"\x01")

    def test_non_minimal_integer_leading_zero(self, codec):
        raw = bytearray([TAG_INT_POS])
        write_varint(raw, 2)
        raw += b"\x00\x01"
        with pytest.raises(WireDecodeError, match="non-minimal integer"):
            codec.decode(bytes(raw))

    def test_non_minimal_integer_empty_magnitude(self, codec):
        raw = bytearray([TAG_INT_POS])
        write_varint(raw, 0)
        with pytest.raises(WireDecodeError, match="non-minimal integer"):
            codec.decode(bytes(raw))

    def test_unsorted_dict_rejected(self, codec):
        raw = bytearray([TAG_DICT])
        write_varint(raw, 2)
        for key in ("b", "a"):  # wrong canonical order
            raw += codec.encode(key)
            raw += codec.encode(0)
        with pytest.raises(WireDecodeError, match="not in canonical order"):
            codec.decode(bytes(raw))

    def test_duplicate_dict_key_rejected(self, codec):
        raw = bytearray([TAG_DICT])
        write_varint(raw, 2)
        for _ in range(2):
            raw += codec.encode("a")
            raw += codec.encode(0)
        with pytest.raises(WireDecodeError, match="not in canonical order"):
            codec.decode(bytes(raw))

    def test_container_count_bomb_guard(self, codec):
        raw = bytearray([TAG_DICT])
        write_varint(raw, 2**40)
        with pytest.raises(WireDecodeError, match="exceeds input"):
            codec.decode(bytes(raw))

    def test_invalid_utf8_rejected(self, codec):
        encoded = bytearray(codec.encode("ab"))
        encoded[-1] = 0xFF
        with pytest.raises(WireDecodeError, match="invalid utf-8"):
            codec.decode(bytes(encoded))


# -- rejection: envelope ------------------------------------------------------

def _envelope_bytes(codec):
    body = codec.encode({"mu": {1: 2}})
    return encode_envelope(
        Envelope("online.input", "input:alice[1]", 2, "online", "input:alice", body)
    )


class TestEnvelopeRejection:
    def test_bad_magic(self, codec):
        data = bytearray(_envelope_bytes(codec))
        data[0] ^= 0xFF
        with pytest.raises(WireDecodeError, match="bad magic"):
            decode_envelope(bytes(data))

    def test_unsupported_version(self, codec):
        data = bytearray(_envelope_bytes(codec))
        data[2] = 99
        with pytest.raises(WireDecodeError, match="unsupported wire version"):
            decode_envelope(bytes(data))

    def test_unknown_kind_id(self, codec):
        data = bytearray(_envelope_bytes(codec))
        data[3] = 0x7D  # an unregistered kind id (single-byte varint)
        with pytest.raises(WireDecodeError):
            decode_envelope(bytes(data))

    def test_kind_version_mismatch(self, codec):
        data = bytearray(_envelope_bytes(codec))
        data[4] = 2  # registry has version 1
        with pytest.raises(WireDecodeError, match="version mismatch"):
            decode_envelope(bytes(data))

    def test_truncated_frame(self, codec):
        data = _envelope_bytes(codec)
        with pytest.raises(WireDecodeError):
            decode_envelope(data[:-1])

    def test_trailing_garbage(self, codec):
        data = _envelope_bytes(codec)
        with pytest.raises(WireDecodeError, match="does not match frame"):
            decode_envelope(data + b"\x00")

    def test_garbled_body_fails_checksum(self, codec):
        data = bytearray(_envelope_bytes(codec))
        data[-5] ^= 0x01  # last body byte (4 CRC bytes follow)
        with pytest.raises(WireDecodeError, match="checksum mismatch"):
            decode_envelope(bytes(data))

    def test_garbled_crc_fails_checksum(self, codec):
        data = bytearray(_envelope_bytes(codec))
        data[-1] ^= 0x01
        with pytest.raises(WireDecodeError, match="checksum mismatch"):
            decode_envelope(bytes(data))

    def test_crc_covers_full_frame(self, codec):
        # v2: the checksum is over everything before it, header included.
        data = _envelope_bytes(codec)
        assert int.from_bytes(data[-4:], "big") == zlib.crc32(data[:-4])

    def test_garbled_header_fails_loudly(self, codec):
        # A header flip that still parses structurally (e.g. the round
        # varint) must hit the full-frame checksum, not decode differently.
        data = bytearray(_envelope_bytes(codec))
        for i in range(3, len(data) - 4):
            flipped = bytearray(data)
            flipped[i] ^= 0x01
            with pytest.raises(WireDecodeError):
                decode_envelope(bytes(flipped))
