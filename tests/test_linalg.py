"""Tests for the linear-algebra circuit combinators (repro.circuits.linalg)."""

import random

import pytest

from repro.circuits import (
    CircuitBuilder,
    bias_add,
    compile_circuit,
    flatten_model,
    matmul,
    matmul_circuit,
    matvec,
    mlp_circuit,
    relu_from_bits,
    square_activation,
)
from repro.circuits.workloads import run_private_inference
from repro.errors import CircuitError
from repro.fields import Zmod

F = Zmod((1 << 61) - 1)


def _plain_matmul(a, b):
    return [
        [sum(x * y for x, y in zip(row, col)) for col in zip(*b)] for row in a
    ]


class TestCombinators:
    def test_matmul_matches_plain_arithmetic(self):
        rng = random.Random(5)
        m, p, q = 3, 4, 2
        a = [[rng.randrange(20) for _ in range(p)] for _ in range(m)]
        x = [[rng.randrange(20) for _ in range(q)] for _ in range(p)]
        circuit = matmul_circuit(m, p, q)
        ev = circuit.evaluate(F, {
            "alice": [v for row in a for v in row],
            "bob": [v for row in x for v in row],
        })
        want = [v for row in _plain_matmul(a, x) for v in row]
        assert [int(v) for v in ev.outputs["bob"]] == want

    def test_matmul_single_depth(self):
        # All m·q·p products land at one multiplicative depth, so k-wide
        # batches fill completely — the shape the paper's packing targets.
        program = compile_circuit(matmul_circuit(4, 4, 4), 8)
        assert len(program.mul_depths) == 1
        assert program.slot_utilization() == 1.0

    def test_matvec_and_bias(self):
        b = CircuitBuilder()
        m = [b.inputs("w", 3) for _ in range(2)]
        x = b.inputs("x", 3)
        bias = b.inputs("w", 2)
        for wire in bias_add(b, matvec(b, m, x), bias):
            b.output(wire, "x")
        ev = b.build().evaluate(F, {
            "w": [1, 2, 3, 4, 5, 6, 10, 20], "x": [7, 8, 9],
        })
        assert [int(v) for v in ev.outputs["x"]] == [
            1 * 7 + 2 * 8 + 3 * 9 + 10,
            4 * 7 + 5 * 8 + 6 * 9 + 20,
        ]

    def test_square_activation(self):
        b = CircuitBuilder()
        xs = b.inputs("a", 3)
        for wire in square_activation(b, xs):
            b.output(wire, "a")
        ev = b.build().evaluate(F, {"a": [2, 3, 4]})
        assert [int(v) for v in ev.outputs["a"]] == [4, 9, 16]

    def test_relu_from_bits(self):
        b = CircuitBuilder()
        bits = b.inputs("a", 5)  # sign + 4 magnitude bits, MSB first
        b.output(relu_from_bits(b, bits), "a")
        circuit = b.build()
        assert int(circuit.evaluate(F, {"a": [0, 1, 0, 1, 1]}).outputs["a"][0]) == 11
        assert int(circuit.evaluate(F, {"a": [1, 1, 0, 1, 1]}).outputs["a"][0]) == 0
        assert int(circuit.evaluate(F, {"a": [0, 0, 0, 0, 0]}).outputs["a"][0]) == 0

    def test_shape_validation(self):
        b = CircuitBuilder()
        xs = b.inputs("a", 3)
        with pytest.raises(CircuitError):
            matvec(b, [xs, xs[:2]], xs)
        with pytest.raises(CircuitError):
            matvec(b, [xs], xs[:2])
        with pytest.raises(CircuitError):
            matmul(b, [xs], [xs, xs])
        with pytest.raises(CircuitError):
            bias_add(b, xs, xs[:1])
        with pytest.raises(CircuitError):
            relu_from_bits(b, xs[:1])
        with pytest.raises(CircuitError):
            matmul_circuit(0, 2, 2)
        with pytest.raises(CircuitError):
            mlp_circuit([4])


class TestMlp:
    def _reference(self, weights, biases, x):
        act = list(x)
        for i, (w, bias) in enumerate(zip(weights, biases)):
            act = [
                sum(wi * ai for wi, ai in zip(row, act)) + bb
                for row, bb in zip(w, bias)
            ]
            if i != len(weights) - 1:
                act = [v * v for v in act]
        return act

    def test_mlp_matches_reference(self):
        rng = random.Random(17)
        sizes = [4, 5, 3]
        weights = [
            [[rng.randrange(8) for _ in range(fi)] for _ in range(fo)]
            for fi, fo in zip(sizes, sizes[1:])
        ]
        biases = [[rng.randrange(8) for _ in range(fo)] for fo in sizes[1:]]
        x = [rng.randrange(8) for _ in range(sizes[0])]
        circuit = mlp_circuit(sizes)
        ev = circuit.evaluate(F, {
            "model": flatten_model(weights, biases), "subject": x,
        })
        assert [int(v) for v in ev.outputs["subject"]] == self._reference(
            weights, biases, x
        )

    def test_flatten_model_validation(self):
        with pytest.raises(CircuitError):
            flatten_model([[[1, 2]]], [])
        with pytest.raises(CircuitError):
            flatten_model([[[1, 2], [3]]], [[1, 2]])
        with pytest.raises(CircuitError):
            flatten_model([[[1, 2]]], [[1, 2]])

    def test_private_inference_end_to_end(self):
        rng = random.Random(23)
        weights = [[[rng.randrange(5) for _ in range(3)] for _ in range(4)],
                   [[rng.randrange(5) for _ in range(4)] for _ in range(2)]]
        biases = [[rng.randrange(5) for _ in range(4)],
                  [rng.randrange(5) for _ in range(2)]]
        x = [rng.randrange(5) for _ in range(3)]
        outcome = run_private_inference(
            weights, biases, x, n=5, epsilon=0.25, seed=3
        )
        want = self._reference(weights, biases, x)
        assert list(outcome.scores) == want
        assert outcome.argmax == max(range(len(want)), key=want.__getitem__)
