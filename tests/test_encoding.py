"""Tests for chunked integer encoding/encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.paillier import (
    chunk_integer,
    decrypt_integer_chunked,
    encrypt_integer_chunked,
    unchunk_integer,
)
from repro.paillier.encoding import safe_chunk_bits


class TestChunking:
    def test_zero_encodes_as_single_limb(self):
        assert chunk_integer(0, 8) == [0]

    def test_roundtrip(self):
        for value in (1, 255, 256, 12345678901234567890):
            assert unchunk_integer(chunk_integer(value, 16), 16) == value

    def test_little_endian_layout(self):
        assert chunk_integer(0x0102, 8) == [0x02, 0x01]

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            chunk_integer(-1, 8)

    def test_bad_chunk_bits(self):
        with pytest.raises(ParameterError):
            chunk_integer(1, 0)

    def test_out_of_range_limb_rejected(self):
        with pytest.raises(ParameterError):
            unchunk_integer([256], 8)
        with pytest.raises(ParameterError):
            unchunk_integer([-1], 8)

    def test_safe_chunk_bits(self):
        assert safe_chunk_bits(1 << 16) == 16
        assert (1 << safe_chunk_bits(12345678)) <= 12345678
        with pytest.raises(ParameterError):
            safe_chunk_bits(100)


class TestChunkedEncryption:
    def test_roundtrip_through_paillier(self, paillier_keypair):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        value = 2 ** 200 + 12345
        bits = safe_chunk_bits(pk.n)
        cts = encrypt_integer_chunked(pk.encrypt, value, bits)
        assert len(cts) == len(chunk_integer(value, bits))
        assert decrypt_integer_chunked(sk.decrypt, cts, bits) == value


@settings(max_examples=40, deadline=None)
@given(
    value=st.integers(min_value=0, max_value=1 << 256),
    bits=st.integers(min_value=1, max_value=64),
)
def test_chunk_roundtrip_property(value, bits):
    assert unchunk_integer(chunk_integer(value, bits), bits) == value
