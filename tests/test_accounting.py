"""Tests for communication metering and reporting."""

import pytest

from repro.accounting import (
    CommMeter,
    CommReport,
    comparison_table,
    format_table,
    measure_bytes,
    per_gate_series,
)
from repro.fields import Zmod
from repro.paillier import generate_keypair


class TestMeasureBytes:
    def test_primitives(self):
        assert measure_bytes(None) == 0
        assert measure_bytes(True) == 1
        assert measure_bytes(0) == 1  # one (empty-magnitude) byte + sign
        assert measure_bytes(1 << 16) == 4
        assert measure_bytes(b"abc") == 3
        assert measure_bytes("abc") == 3
        assert measure_bytes(1.5) == 8

    def test_containers_recurse(self):
        assert measure_bytes([1, 2]) == measure_bytes(1) + measure_bytes(2)
        assert measure_bytes({"k": 1}) == measure_bytes("k") + measure_bytes(1)
        assert measure_bytes((b"ab", b"cd")) == 4

    def test_ciphertext_measures_exact_wire_length(self):
        from repro.wire.codec import WireCodec

        kp = generate_keypair(64)
        ct = kp.public.encrypt(1)
        # A ciphertext is measured as its exact wire encoding: tag + 8-byte
        # key id + the fixed-width Z_{N²} element (no modulus repetition).
        assert measure_bytes(ct) == len(WireCodec().encode(ct))
        assert measure_bytes(ct) == 1 + 8 + kp.public.ciphertext_bytes

    def test_ring_element(self):
        F = Zmod((1 << 61) - 1)
        assert measure_bytes(F(5)) == 8

    def test_dataclass_sums_fields(self):
        from dataclasses import dataclass

        @dataclass
        class Msg:
            a: int
            b: bytes

        assert measure_bytes(Msg(1, b"xy")) == measure_bytes(1) + 2

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            measure_bytes(object())


class TestCommMeter:
    def _sample(self):
        meter = CommMeter()
        meter.record("offline", "r1", "beaver", [1, 2, 3])
        meter.record("offline", "r2", "beaver", [4])
        meter.record("online", "r1", "mu", b"x" * 10)
        return meter

    def test_totals(self):
        meter = self._sample()
        assert meter.total_messages() == 3
        assert meter.total_messages("offline") == 2
        assert meter.total_bytes("online") == 10
        assert meter.total_bytes() == meter.total_bytes("offline") + 10

    def test_groupings(self):
        meter = self._sample()
        assert set(meter.by_phase()) == {"offline", "online"}
        assert meter.by_tag("offline") == {"beaver": meter.total_bytes("offline")}
        assert meter.messages_by_tag()["beaver"] == 2
        assert meter.senders("online") == {"r1"}

    def test_merge_and_reset(self):
        a, b = self._sample(), self._sample()
        a.merge(b)
        assert a.total_messages() == 6
        a.reset()
        assert a.total_messages() == 0


class TestReports:
    def _report(self, n, per_gate):
        meter = CommMeter()
        meter.record("online", "r", "mu", b"x" * (per_gate * 10))
        return CommReport.from_meter(f"run-n{n}", n, 10, meter)

    def test_bytes_per_gate(self):
        rep = self._report(4, 7)
        assert rep.bytes_per_gate("online") == 7.0
        assert rep.bytes_per_gate("offline") == 0.0
        assert rep.total_bytes == 70

    def test_per_gate_series(self):
        reports = [self._report(n, n) for n in (4, 8)]
        assert per_gate_series(reports, "online") == [(4, 4.0), (8, 8.0)]

    def test_zero_gates(self):
        meter = CommMeter()
        rep = CommReport.from_meter("x", 4, 0, meter)
        assert rep.bytes_per_gate("online") == 0.0

    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1

    def test_comparison_table_mentions_protocols(self):
        reports = [self._report(n, n) for n in (4, 8)]
        table = comparison_table(reports, "online")
        assert "run-n4" in table and "run-n8" in table
