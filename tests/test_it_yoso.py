"""Tests for the information-theoretic YOSO extension (paper §7)."""

import random

import pytest

from repro.circuits import (
    CircuitBuilder,
    dot_product_circuit,
    random_circuit,
    statistics_circuit,
)
from repro.errors import ParameterError, ProtocolAbortError
from repro.extensions import ItYosoMpc
from repro.fields import Zmod
from repro.yoso.adversary import Adversary, CrashSpec
from repro.yoso.roles import RoleId

F = Zmod((1 << 61) - 1)


class TestParameters:
    def test_degree_constraint(self):
        with pytest.raises(ParameterError):
            ItYosoMpc(n=8, t=2, k=3)  # 2(t+k-1) = 8 >= n

    def test_boundary_accepted(self):
        ItYosoMpc(n=9, t=2, k=3)


class TestCorrectness:
    def test_dot_product(self):
        it = ItYosoMpc(n=9, t=2, k=2, rng=random.Random(1))
        result = it.run(
            dot_product_circuit(4), {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]}
        )
        assert result.outputs["alice"] == [70]

    def test_deep_circuit(self):
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.power(x, 5), "a")
        it = ItYosoMpc(n=9, t=2, k=2, rng=random.Random(2))
        assert it.run(b.build(), {"a": [3]}).outputs["a"] == [243]

    def test_linear_only(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        b.output(b.cadd(5, b.cmul(3, b.sub(x, y))), "a")
        it = ItYosoMpc(n=7, t=1, k=2, rng=random.Random(3))
        assert it.run(b.build(), {"a": [10], "b": [4]}).outputs["a"] == [23]

    def test_statistics_workload(self):
        it = ItYosoMpc(n=9, t=2, k=2, rng=random.Random(4))
        result = it.run(
            statistics_circuit(3),
            {f"party{i}": [v] for i, v in enumerate([2, 4, 6])},
        )
        s, q = result.outputs["analyst"]
        assert s == 12 and q == 3 * (4 + 16 + 36)

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_differential_random_circuits(self, seed):
        rng = random.Random(seed)
        circuit = random_circuit(rng, n_inputs=4, n_gates=14, n_clients=2,
                                 value_bound=40)
        inputs = {
            f"client{i}": [rng.randrange(80) for _ in circuit.inputs_of_client(f"client{i}")]
            for i in range(2)
        }
        expected = circuit.evaluate(F, inputs).outputs
        got = ItYosoMpc(n=11, t=2, k=3, rng=rng).run(circuit, inputs).outputs
        assert got == {c: [int(v) for v in vs] for c, vs in expected.items()}

    def test_wrong_input_count(self):
        it = ItYosoMpc(n=7, t=1, k=2, rng=random.Random(5))
        with pytest.raises(ProtocolAbortError):
            it.run(dot_product_circuit(2), {"alice": [1], "bob": [1, 2]})


class TestFailStop:
    def test_online_crashes_within_margin_tolerated(self):
        # n - (t + 2(k-1) + 1) members of an online committee may vanish.
        n, t, k = 11, 2, 2
        margin = n - (t + 2 * (k - 1) + 1)
        assert margin > 0

        def factory_crash(seed):
            rng = random.Random(seed)
            ids = frozenset(
                RoleId("It-mul-1", i)
                for i in rng.sample(range(1, n + 1), margin)
            )
            return Adversary(crash_spec=CrashSpec(ids, phase="online"))

        it = ItYosoMpc(n=n, t=t, k=k, rng=random.Random(6),
                       adversary=factory_crash(7))
        result = it.run(
            dot_product_circuit(3), {"alice": [1, 2, 3], "bob": [4, 5, 6]}
        )
        assert result.outputs["alice"] == [32]

    def test_too_many_crashes_abort(self):
        n, t, k = 9, 2, 2
        threshold = t + 2 * (k - 1) + 1
        ids = frozenset(RoleId("It-mul-1", i) for i in range(1, n - threshold + 2))
        it = ItYosoMpc(n=n, t=t, k=k, rng=random.Random(8),
                       adversary=Adversary(crash_spec=CrashSpec(ids, phase="online")))
        with pytest.raises(ProtocolAbortError):
            it.run(dot_product_circuit(3), {"alice": [1, 2, 3], "bob": [4, 5, 6]})


class TestCommunication:
    def test_online_per_gate_flat_in_n(self):
        circuit = dot_product_circuit(8)
        inputs = {"alice": [1] * 8, "bob": [2] * 8}
        per_gate = {}
        for n, k in ((9, 2), (13, 3), (17, 4)):
            it = ItYosoMpc(n=n, t=2, k=k, rng=random.Random(9))
            result = it.run(circuit, inputs)
            # Payload bytes: per-post envelope framing is a constant per
            # member that only amortizes on circuits wider than this one.
            per_gate[n] = (
                result.online_mul_payload_bytes() / circuit.n_multiplications
            )
        values = list(per_gate.values())
        # n/k is 4.5, 4.33, 4.25: essentially flat.
        assert max(values) <= min(values) * 1.25

    def test_no_ciphertext_sized_messages(self):
        # IT variant sends field elements, not Paillier ciphertexts: its
        # online bytes per gate are far below the computational protocol's.
        from repro.core import run_mpc

        circuit = dot_product_circuit(6)
        inputs = {"alice": [1] * 6, "bob": [2] * 6}
        it = ItYosoMpc(n=9, t=2, k=2, rng=random.Random(10)).run(circuit, inputs)
        comp = run_mpc(circuit, inputs, n=9, epsilon=0.25, seed=10)
        it_per_gate = it.online_mul_bytes() / circuit.n_multiplications
        comp_per_gate = comp.online_mul_bytes() / circuit.n_multiplications
        assert it_per_gate < comp_per_gate / 5
