"""Tests for the YOSO runtime: roles, bulletin, committees, environment."""

import random

import pytest

from repro.errors import (
    ParameterError,
    RoleAlreadySpokeError,
    YosoError,
)
from repro.yoso import (
    Adversary,
    BulletinBoard,
    Committee,
    CrashSpec,
    IdealRoleAssignment,
    ProtocolEnvironment,
    RoleId,
    random_corruptions,
)
from repro.yoso.adversary import withholding_transform


@pytest.fixture()
def assignment(rng):
    return IdealRoleAssignment(key_bits=48, rng=rng)


@pytest.fixture()
def env(assignment, rng):
    return ProtocolEnvironment(assignment=assignment, rng=rng)


class TestRoleLifecycle:
    def test_speak_once_enforced(self, env, assignment):
        committee = assignment.sample_committee("C", 3)
        role = committee.role(1)
        env.activate(role, lambda v: v.speak("t", 1))
        with pytest.raises(YosoError):
            env.activate(role, lambda v: v.speak("t", 2))

    def test_double_speak_within_activation_rejected(self, env, assignment):
        role = assignment.sample_committee("C", 1).role(1)

        def program(view):
            view.speak("t", 1)
            view.speak("t", 2)

        with pytest.raises(RoleAlreadySpokeError):
            env.activate(role, program)

    def test_state_erased_after_speaking(self, env, assignment):
        role = assignment.sample_committee("C", 1).role(1)
        role.add_gift("secret", 42)
        assert role.exposed_state()["secret"] == 42
        env.activate(role, lambda v: v.speak("t", v.gift("secret")))
        assert role.exposed_state() == {}
        with pytest.raises(YosoError):
            role.secret_key
        with pytest.raises(YosoError):
            role.gift("secret")

    def test_silent_role_still_dies(self, env, assignment):
        role = assignment.sample_committee("C", 1).role(1)
        env.activate(role, lambda v: None)
        assert role.spoken

    def test_gift_after_spoken_rejected(self, env, assignment):
        role = assignment.sample_committee("C", 1).role(1)
        env.activate(role, lambda v: None)
        with pytest.raises(YosoError):
            role.add_gift("late", 1)

    def test_missing_gift(self, assignment):
        role = assignment.sample_committee("C", 1).role(1)
        with pytest.raises(YosoError):
            role.gift("nope")
        assert not role.has_gift("nope")


class TestBulletin:
    def test_posts_metered_and_queryable(self):
        board = BulletinBoard()
        board.post("online", "r1", "tag", {"x": 100})
        board.post("online", "r2", "tag", {"x": 200})
        assert len(board) == 2
        assert board.payloads("tag") == [{"x": 100}, {"x": 200}]
        assert board.latest("tag") == {"x": 200}
        assert board.meter.total_bytes("online") > 0
        assert board.by_sender("tag") == {"r1": {"x": 100}, "r2": {"x": 200}}

    def test_missing_tag(self):
        board = BulletinBoard()
        assert not board.exists("none")
        assert board.with_tag("none") == []
        with pytest.raises(YosoError):
            board.latest("none")

    def test_rounds_advance(self):
        board = BulletinBoard()
        assert board.round == 0
        board.advance_round()
        board.post("p", "s", "t", 1)
        assert board.with_tag("t")[0].round == 1


class TestCommittee:
    def test_indexing(self, assignment):
        committee = assignment.sample_committee("C", 4)
        assert committee.size == 4
        assert committee.role(2).id == RoleId("C", 2)
        with pytest.raises(YosoError):
            committee.role(5)

    def test_misnumbered_roles_rejected(self, assignment):
        committee = assignment.sample_committee("C", 2)
        with pytest.raises(ParameterError):
            Committee("C", list(reversed(committee.roles)))

    def test_honest_and_corrupted_indices(self, assignment, rng):
        committee = assignment.sample_committee("C", 5)
        corrupted = random_corruptions([committee], 2, rng)
        assert len(corrupted) == 2
        assert sorted(
            committee.honest_indices() + committee.corrupted_indices()
        ) == [1, 2, 3, 4, 5]

    def test_public_keys_in_order(self, assignment):
        committee = assignment.sample_committee("C", 3)
        keys = committee.public_keys()
        assert [k.n for k in keys] == [r.public_key.n for r in committee.roles]


class TestAdversary:
    def test_transform_applied_to_corrupt_only(self, env, assignment, rng):
        committee = assignment.sample_committee("C", 4)
        committee.role(2).corrupted = True
        env.adversary = Adversary(
            transform=lambda rid, ph, tag, p: {"val": -1}
        )
        env.run_committee(committee, lambda v: v.speak("t", {"val": v.index}))
        vals = {p.sender: p.payload["val"] for p in env.bulletin.with_tag("t")}
        assert vals["C[2]"] == -1
        assert vals["C[1]"] == 1

    def test_withholding(self, env, assignment):
        committee = assignment.sample_committee("C", 3)
        committee.role(1).corrupted = True
        env.adversary = Adversary(transform=withholding_transform({"t"}))
        env.run_committee(committee, lambda v: v.speak("t", {"val": 0}))
        senders = {p.sender for p in env.bulletin.with_tag("t")}
        assert senders == {"C[2]", "C[3]"}

    def test_crash_spec_phase_scoping(self, env, assignment):
        committee = assignment.sample_committee("C", 2)
        spec = CrashSpec(frozenset({RoleId("C", 1)}), phase="online")
        env.adversary = Adversary(crash_spec=spec)
        env.set_phase("offline")
        env.activate(committee.role(1), lambda v: v.speak("t", 1))
        assert not committee.role(1).crashed
        env.set_phase("online")
        env.activate(committee.role(2), lambda v: v.speak("t", 2))  # unaffected
        assert len(env.bulletin.with_tag("t")) == 2

    def test_crashed_role_posts_nothing(self, env, assignment):
        committee = assignment.sample_committee("C", 2)
        env.adversary = Adversary(
            crash_spec=CrashSpec(frozenset({RoleId("C", 1)}))
        )
        env.run_committee(committee, lambda v: v.speak("t", v.index))
        assert [p.sender for p in env.bulletin.with_tag("t")] == ["C[2]"]
        assert committee.role(1).crashed

    def test_leakage_recorded(self, env, assignment):
        committee = assignment.sample_committee("C", 2)
        committee.role(1).corrupted = True
        committee.role(1).add_gift("x", 5)
        env.run_committee(committee, lambda v: v.speak("t", 0))
        assert len(env.adversary.leaked_views) == 1
        role_id, state = env.adversary.leaked_views[0]
        assert role_id == RoleId("C", 1) and state["x"] == 5

    def test_rushing_order_honest_first(self, env, assignment):
        committee = assignment.sample_committee("C", 3)
        committee.role(1).corrupted = True
        order = []
        env.run_committee(committee, lambda v: order.append(v.index))
        assert order == [2, 3, 1]

    def test_crash_random_honest_validates_count(self, assignment, rng):
        committee = assignment.sample_committee("C", 3)
        committee.role(1).corrupted = True
        with pytest.raises(ValueError):
            CrashSpec.random_honest(committee, 3, rng)


class TestAssignment:
    def test_fresh_keys_per_role(self, assignment):
        committee = assignment.sample_committee("C", 3)
        moduli = {r.public_key.n for r in committee.roles}
        assert len(moduli) == 3

    def test_corrupt_randomly_bounds(self, assignment):
        committee = assignment.sample_committee("C", 3)
        with pytest.raises(ParameterError):
            assignment.corrupt_randomly(committee, 4)

    def test_client_role(self, assignment):
        client = assignment.client("alice")
        assert client.id == RoleId("alice", 1)

    def test_key_bits_floor(self):
        with pytest.raises(ParameterError):
            IdealRoleAssignment(key_bits=8)
