"""Tests for the command-line interface."""

import json


from repro.circuits import dot_product_circuit, dumps as dump_circuit
from repro.cli import main


class TestTable1Command:
    def test_prints_all_cells(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "1093/1093" in out     # the f=20% headline cell
        assert out.count("⊥") >= 8    # the infeasible cells


class TestPlanCommand:
    def test_feasible_cell(self, capsys):
        assert main(["plan", "20000", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "1,093" in out or "1093" in out

    def test_infeasible_cell(self, capsys):
        assert main(["plan", "1000", "0.25"]) == 1
        assert "infeasible" in capsys.readouterr().out

    def test_conservative_flag(self, capsys):
        assert main(["plan", "5000", "0.1", "--conservative"]) == 0
        out = capsys.readouterr().out
        assert "0.08" in out  # the stricter gap


class TestRunCommand:
    def test_run_circuit_file(self, tmp_path, capsys):
        circuit_path = tmp_path / "circuit.json"
        circuit_path.write_text(dump_circuit(dot_product_circuit(2)))
        inputs_path = tmp_path / "inputs.json"
        inputs_path.write_text(json.dumps({"alice": [3, 4], "bob": [5, 6]}))
        report_path = tmp_path / "report.json"
        code = main([
            "run", "--circuit", str(circuit_path),
            "--inputs", str(inputs_path),
            "--n", "4", "--epsilon", "0.2", "--seed", "1",
            "--report", str(report_path),
        ])
        assert code == 0
        outputs = json.loads(capsys.readouterr().out)
        assert outputs == {"alice": [39]}
        report = json.loads(report_path.read_text())
        assert report["parameters"]["n"] == 4

    def test_missing_file_is_an_error(self, capsys):
        assert main(["run", "--circuit", "/nope.json", "--inputs", "/nope2.json"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_inputs_shape(self, tmp_path, capsys):
        circuit_path = tmp_path / "c.json"
        circuit_path.write_text(dump_circuit(dot_product_circuit(2)))
        inputs_path = tmp_path / "i.json"
        inputs_path.write_text("[1, 2, 3]")
        assert main([
            "run", "--circuit", str(circuit_path), "--inputs", str(inputs_path)
        ]) == 1


class TestDemoCommand:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--n", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "'alice': [112]" in out  # 2·7 + 3·11 + 5·13


class TestTraceCommand:
    def test_trace_exports_validated_jsonl(self, tmp_path, capsys):
        from repro.observability import loads_trace_jsonl

        jsonl_path = tmp_path / "trace.jsonl"
        report_path = tmp_path / "merged.json"
        code = main([
            "trace", "--width", "2", "--n", "4", "--epsilon", "0.2",
            "--seed", "1",
            "--jsonl", str(jsonl_path), "--report", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "online.mul" in out
        assert "recoveries/gate" in out
        trace = loads_trace_jsonl(jsonl_path.read_text())
        assert trace["header"]["parameters"]["n"] == 4
        per_phase = trace["summary"]["counters_by_phase"]
        assert per_phase["online.mul"]["reencrypt.recovery"] > 0
        assert per_phase["offline"]["paillier.encrypt"] > 0
        report = json.loads(report_path.read_text())
        assert report["trace"]["counters_by_phase"] == per_phase

    def test_circuit_requires_inputs(self, tmp_path, capsys):
        circuit_path = tmp_path / "c.json"
        circuit_path.write_text(dump_circuit(dot_product_circuit(2)))
        assert main(["trace", "--circuit", str(circuit_path)]) == 1
        assert "--inputs" in capsys.readouterr().err


class TestExtrapolateCommand:
    def test_factor_reported(self, capsys):
        assert main(["extrapolate", "20000", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "1,000" in out or "1000" in out  # the 1000× regime

    def test_bad_epsilon_is_an_error(self, capsys):
        assert main(["extrapolate", "100", "0.9"]) == 1


class TestServiceCommands:
    def test_announce_submit_serve_chain(self, tmp_path, capsys):
        # announce: write the epoch-0 announcement a detached client needs.
        ann_path = tmp_path / "ann.bin"
        assert main([
            "announce", "--workload", "auction", "--levels", "4",
            "--seed", "42", "--out", str(ann_path),
        ]) == 0
        assert "announcement" in capsys.readouterr().out

        # submit: build one out-of-process submission against that file.
        subs = tmp_path / "subs"
        subs.mkdir()
        assert main([
            "submit", "--announce", str(ann_path), "--client-id", "ext-001",
            "--value", "3", "--seed", "9", "--out", str(subs / "ext-001.bin"),
        ]) == 0
        assert "ext-001" in capsys.readouterr().out

        # serve: same seed reproduces the same epoch key, so the detached
        # submission lands alongside the simulated clients.
        report_path = tmp_path / "serve.json"
        check_path = tmp_path / "ann-check.bin"
        assert main([
            "serve", "--workload", "auction", "--levels", "4",
            "--seed", "42", "--clients", "5", "--epochs", "1",
            "--submissions", str(subs), "--announce-out", str(check_path),
            "--json", str(report_path),
        ]) == 0
        assert check_path.read_bytes() == ann_path.read_bytes()
        row = json.loads(report_path.read_text())["epochs"][0]
        assert row["population"] == 6          # 5 simulated + 1 file
        assert row["rejections"] == {}
        assert len(row["reshare_contributors"]) == 5
        assert row["decoded"]["winner_count"] >= 1

    def test_submit_rejects_non_announcement(self, tmp_path, capsys):
        from repro.wire import WireCodec

        bad = tmp_path / "bad.bin"
        bad.write_bytes(WireCodec().encode(123))
        assert main([
            "submit", "--announce", str(bad), "--client-id", "x",
            "--value", "1", "--out", str(tmp_path / "out.bin"),
        ]) == 1
        assert "not an epoch announcement" in capsys.readouterr().err

    def test_submit_missing_announcement_is_an_error(self, tmp_path, capsys):
        assert main([
            "submit", "--announce", str(tmp_path / "nope.bin"),
            "--client-id", "x", "--value", "1",
            "--out", str(tmp_path / "out.bin"),
        ]) == 1
        assert "error" in capsys.readouterr().err
