"""Tests for the Re-encrypt / Decrypt helper protocols (Protocols 1–2)."""

import dataclasses
import random

import pytest

from repro.core.reencrypt import (
    combine_public,
    public_decrypt_contribution,
    recover_reencrypted,
    reencrypt_contribution,
)
from repro.errors import ProtocolAbortError
from repro.nizk import ProofParams
from repro.paillier import generate_keypair

PARAMS = ProofParams(challenge_bits=24)


@pytest.fixture(scope="module")
def setup(threshold_keygen):
    rng = random.Random(101)
    tpk, shares = threshold_keygen(4, 1)
    recipient = generate_keypair(160, rng=rng, use_fixtures=False)
    verifications = {s.index: s.verification for s in shares}
    return tpk, shares, recipient, verifications


class TestReencrypt:
    def test_roundtrip(self, setup, rng):
        tpk, shares, recipient, verifs = setup
        ct = tpk.encrypt(987654, rng=rng)
        contributions = [
            reencrypt_contribution(tpk, s, ct, recipient.public, PARAMS, rng)
            for s in shares
        ]
        value = recover_reencrypted(
            tpk, ct, contributions, recipient.secret, verifs, PARAMS
        )
        assert value == 987654

    def test_quorum_suffices(self, setup, rng):
        tpk, shares, recipient, verifs = setup
        ct = tpk.encrypt(55, rng=rng)
        contributions = [
            reencrypt_contribution(tpk, s, ct, recipient.public, PARAMS, rng)
            for s in shares[:2]
        ]
        assert recover_reencrypted(
            tpk, ct, contributions, recipient.secret, verifs, PARAMS
        ) == 55

    def test_garbage_contribution_excluded(self, setup, rng):
        tpk, shares, recipient, verifs = setup
        ct = tpk.encrypt(321, rng=rng)
        contributions = [
            reencrypt_contribution(tpk, s, ct, recipient.public, PARAMS, rng)
            for s in shares
        ]
        # Corrupt sender 1: swap in chunks encrypting a wrong partial.
        bad = dataclasses.replace(contributions[0], chunks=contributions[1].chunks)
        assert recover_reencrypted(
            tpk, ct, [bad] + contributions[1:], recipient.secret, verifs, PARAMS
        ) == 321

    def test_unknown_sender_excluded(self, setup, rng):
        tpk, shares, recipient, verifs = setup
        ct = tpk.encrypt(1, rng=rng)
        contributions = [
            reencrypt_contribution(tpk, s, ct, recipient.public, PARAMS, rng)
            for s in shares
        ]
        forged = dataclasses.replace(contributions[0], sender_index=99)
        assert recover_reencrypted(
            tpk, ct, [forged] + contributions[1:], recipient.secret, verifs, PARAMS
        ) == 1

    def test_insufficient_verified_aborts(self, setup, rng):
        tpk, shares, recipient, verifs = setup
        ct = tpk.encrypt(1, rng=rng)
        good = reencrypt_contribution(tpk, shares[0], ct, recipient.public, PARAMS, rng)
        bad = dataclasses.replace(good, sender_index=99)
        with pytest.raises(ProtocolAbortError):
            recover_reencrypted(tpk, ct, [bad], recipient.secret, verifs, PARAMS)

    def test_mismatched_proof_excluded(self, setup, rng):
        tpk, shares, recipient, verifs = setup
        ct = tpk.encrypt(2024, rng=rng)
        contributions = [
            reencrypt_contribution(tpk, s, ct, recipient.public, PARAMS, rng)
            for s in shares
        ]
        # Keep chunks but replace the proof with another sender's.
        bad = dataclasses.replace(contributions[0], proof=contributions[1].proof)
        assert recover_reencrypted(
            tpk, ct, [bad] + contributions[1:], recipient.secret, verifs, PARAMS
        ) == 2024


class TestPublicDecrypt:
    def test_roundtrip(self, setup, rng):
        tpk, shares, _, verifs = setup
        ct = tpk.encrypt(777, rng=rng)
        contributions = [
            public_decrypt_contribution(tpk, s, ct, PARAMS, rng) for s in shares
        ]
        assert combine_public(tpk, ct, contributions, verifs, PARAMS) == 777

    def test_bad_partial_excluded(self, setup, rng):
        tpk, shares, _, verifs = setup
        ct = tpk.encrypt(777, rng=rng)
        contributions = [
            public_decrypt_contribution(tpk, s, ct, PARAMS, rng) for s in shares
        ]
        bad = dataclasses.replace(
            contributions[0],
            partial=dataclasses.replace(
                contributions[0].partial,
                value=contributions[0].partial.value * 3 % tpk.n_squared,
            ),
        )
        assert combine_public(
            tpk, ct, [bad] + contributions[1:], verifs, PARAMS
        ) == 777

    def test_all_bad_aborts(self, setup, rng):
        tpk, shares, _, verifs = setup
        ct = tpk.encrypt(1, rng=rng)
        contributions = [
            dataclasses.replace(
                public_decrypt_contribution(tpk, s, ct, PARAMS, rng),
                partial=dataclasses.replace(
                    public_decrypt_contribution(tpk, s, ct, PARAMS, rng).partial,
                    value=12345,
                ),
            )
            for s in shares
        ]
        with pytest.raises(ProtocolAbortError):
            combine_public(tpk, ct, contributions, verifs, PARAMS)
