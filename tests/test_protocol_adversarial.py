"""Adversarial executions: GOD under active corruption and fail-stop (§5.4).

These are the paper's security claims made executable: with t active
corruptions per committee the output is still correct and delivered, and in
fail-stop mode ⌊nε⌋ crashed *honest* roles cannot stop the protocol either.
"""

import random

import pytest

from repro.circuits import dot_product_circuit
from repro.core import ProtocolParams, YosoMpc
from repro.errors import ProtocolAbortError
from repro.yoso.adversary import Adversary, CrashSpec, random_corruptions

CIRCUIT = dot_product_circuit(4)
INPUTS = {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]}
EXPECTED = [70]


def _garbling_transform(role_id, phase, tag, payload):
    """Maul everything recognizable in a corrupted role's message."""
    if not isinstance(payload, dict):
        return payload
    out = {}
    for key, section in payload.items():
        if key == "mu_shares" and isinstance(section, dict):
            out[key] = {
                b: {"value": entry["value"] + 9999, "proof": entry["proof"]}
                for b, entry in section.items()
            }
        elif key in ("beaver_a", "masks", "helpers") and isinstance(section, dict):
            # Shift every ciphertext so the plaintext-knowledge proofs break.
            out[key] = {
                kk: {**vv, "ct": vv["ct"] + 1} if isinstance(vv, dict) else vv
                for kk, vv in section.items()
            }
        elif key == "beaver_b" and isinstance(section, dict):
            out[key] = {
                kk: {**vv, "b_ct": vv["b_ct"] + 1} if isinstance(vv, dict) else vv
                for kk, vv in section.items()
            }
        elif key == "tsk":
            import dataclasses
            out[key] = dataclasses.replace(
                section, verifications=tuple(reversed(section.verifications))
            )
        else:
            out[key] = section
    return out


def _corrupting_factory(t, seed, transform=_garbling_transform):
    def factory(offline_committees, online_committees):
        rng = random.Random(seed)
        committees = list(offline_committees.values()) + list(
            online_committees.values()
        )
        random_corruptions(committees, t, rng)
        return Adversary(transform=transform)

    return factory


class TestActiveAdversary:
    def test_god_with_garbling_adversary(self):
        params = ProtocolParams.from_gap(6, 0.2)
        assert params.t == 1
        protocol = YosoMpc(
            params, rng=random.Random(42),
            adversary_factory=_corrupting_factory(params.t, seed=7),
        )
        result = protocol.run(CIRCUIT, INPUTS)
        assert result.outputs["alice"] == EXPECTED

    def test_god_with_withholding_adversary(self):
        def withhold(role_id, phase, tag, payload):
            return None  # corrupt roles stay silent

        params = ProtocolParams.from_gap(6, 0.2)
        protocol = YosoMpc(
            params, rng=random.Random(43),
            adversary_factory=_corrupting_factory(params.t, seed=8, transform=withhold),
        )
        result = protocol.run(CIRCUIT, INPUTS)
        assert result.outputs["alice"] == EXPECTED

    def test_god_with_two_corruptions_larger_committee(self):
        params = ProtocolParams.from_gap(9, 0.2)
        assert params.t == 2
        protocol = YosoMpc(
            params, rng=random.Random(44),
            adversary_factory=_corrupting_factory(params.t, seed=9),
        )
        result = protocol.run(CIRCUIT, INPUTS)
        assert result.outputs["alice"] == EXPECTED

    def test_beyond_threshold_can_break_liveness(self):
        # Corrupting far beyond t is allowed to abort (not a GOD violation:
        # the assumption t < n(1/2-eps) is broken on purpose).
        def withhold(role_id, phase, tag, payload):
            return None

        params = ProtocolParams.from_gap(6, 0.2)
        protocol = YosoMpc(
            params, rng=random.Random(45),
            adversary_factory=_corrupting_factory(4, seed=10, transform=withhold),
        )
        with pytest.raises(ProtocolAbortError):
            protocol.run(CIRCUIT, INPUTS)

    def test_adversary_observes_only_corrupted_views(self):
        captured = {}

        def factory(offline_committees, online_committees):
            rng = random.Random(11)
            committees = list(offline_committees.values()) + list(
                online_committees.values()
            )
            corrupted = random_corruptions(committees, 1, rng)
            adversary = Adversary()
            captured["corrupted"] = set(corrupted)
            captured["adversary"] = adversary
            return adversary

        params = ProtocolParams.from_gap(6, 0.2)
        YosoMpc(params, rng=random.Random(46), adversary_factory=factory).run(
            CIRCUIT, INPUTS
        )
        adversary = captured["adversary"]
        leaked_ids = {rid for rid, _ in adversary.leaked_views}
        assert leaked_ids <= captured["corrupted"]
        assert leaked_ids  # it did see the corrupted roles


class TestFailStop:
    def test_online_mul_committee_crashes_tolerated(self):
        params = ProtocolParams.from_gap(8, 0.25, fail_stop=True)
        assert params.fail_stop_budget == 2

        def factory(offline_committees, online_committees):
            rng = random.Random(12)
            mul = next(
                c for name, c in online_committees.items()
                if name.startswith("Con-mul")
            )
            return Adversary(
                crash_spec=CrashSpec.random_honest(
                    mul, params.fail_stop_budget, rng
                )
            )

        result = YosoMpc(
            params, rng=random.Random(47), adversary_factory=factory
        ).run(CIRCUIT, INPUTS)
        assert result.outputs["alice"] == EXPECTED

    def test_offline_committee_crashes_tolerated(self):
        params = ProtocolParams.from_gap(8, 0.25, fail_stop=True)

        def factory(offline_committees, online_committees):
            rng = random.Random(13)
            dec = offline_committees["Coff-dec"]
            return Adversary(
                crash_spec=CrashSpec.random_honest(dec, params.fail_stop_budget, rng)
            )

        result = YosoMpc(
            params, rng=random.Random(48), adversary_factory=factory
        ).run(CIRCUIT, INPUTS)
        assert result.outputs["alice"] == EXPECTED

    def test_crashes_plus_active_corruption(self):
        # The §5.4 composition: t active corruptions AND nε honest crashes.
        params = ProtocolParams.from_gap(10, 0.3, fail_stop=True)
        assert params.t >= 1 and params.fail_stop_budget >= 2

        def factory(offline_committees, online_committees):
            rng = random.Random(14)
            committees = list(offline_committees.values()) + list(
                online_committees.values()
            )
            random_corruptions(committees, params.t, rng)
            mul = next(
                c for name, c in online_committees.items()
                if name.startswith("Con-mul")
            )
            crash = CrashSpec.random_honest(mul, params.fail_stop_budget, rng)
            return Adversary(transform=_garbling_transform, crash_spec=crash)

        result = YosoMpc(
            params, rng=random.Random(49), adversary_factory=factory
        ).run(CIRCUIT, INPUTS)
        assert result.outputs["alice"] == EXPECTED
