"""Property/fuzz tests for the wire layer.

Two properties anchor the codec's canonical-format contract:

1. **Round trip**: for every value the codec accepts,
   ``decode(encode(v)) == v`` and ``encode(decode(b)) == b``.
2. **Loud rejection**: *every* mutation of a valid byte string — any
   truncation, any single-bit flip — raises :class:`WireDecodeError`.
   A decoder that returns a wrong value instead of an error is the
   failure mode these tests exist to rule out.

The suite runs on a seeded ``random.Random`` generator so it is fully
deterministic in CI; when Hypothesis is installed an extra pass explores
the same properties with shrinking.
"""

import random

import pytest

from repro.errors import WireDecodeError
from repro.paillier import generate_keypair
from repro.wire import (
    Envelope,
    KeyAnnouncement,
    WireCodec,
    decode_envelope,
    encode_envelope,
    kind_for_tag,
)
from repro.wire.codec import read_varint, write_varint

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional extra
    HAVE_HYPOTHESIS = False

SEED = 20260805  # fixed seed: CI runs are reproducible
N_RANDOM_VALUES = 150
N_ENVELOPE_MUTATIONS = 40


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(64)


@pytest.fixture(scope="module")
def codec(keypair):
    c = WireCodec()
    c.keyring.add(keypair.public)
    return c


# -- seeded value generator ---------------------------------------------------

def random_value(rng: random.Random, keypair, depth: int = 0):
    """One random codec-encodable value (containers shrink with depth)."""
    leaf_kinds = [
        "none", "bool", "small_int", "big_int", "neg_int",
        "bytes", "str", "announcement", "ciphertext",
    ]
    kinds = list(leaf_kinds)
    if depth < 3:
        kinds += ["list", "tuple", "dict"] * 2
    kind = rng.choice(kinds)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "small_int":
        return rng.randint(-300, 300)
    if kind == "big_int":
        return rng.getrandbits(rng.randint(1, 512))
    if kind == "neg_int":
        return -rng.getrandbits(rng.randint(1, 256)) - 1
    if kind == "bytes":
        return rng.randbytes(rng.randint(0, 40))
    if kind == "str":
        return "".join(
            rng.choice("abcdefghij κλμ 0123_") for _ in range(rng.randint(0, 20))
        )
    if kind == "announcement":
        return KeyAnnouncement(keypair.public.n)
    if kind == "ciphertext":
        return keypair.public.encrypt(rng.randint(0, 1000), rng=rng)
    if kind in ("list", "tuple"):
        items = [
            random_value(rng, keypair, depth + 1)
            for _ in range(rng.randint(0, 5))
        ]
        return items if kind == "list" else tuple(items)
    # dict: string keys (the codec's sectioned-message shape)
    return {
        f"k{rng.randint(0, 50)}": random_value(rng, keypair, depth + 1)
        for _ in range(rng.randint(0, 5))
    }


# -- varints ------------------------------------------------------------------

class TestVarintFuzz:
    def test_roundtrip_random_magnitudes(self):
        rng = random.Random(SEED)
        for _ in range(500):
            value = rng.getrandbits(rng.randint(0, 63))
            out = bytearray()
            write_varint(out, value)
            decoded, pos = read_varint(bytes(out), 0)
            assert decoded == value
            assert pos == len(out)

    def test_boundaries(self):
        for value in (0, 1, 127, 128, 16383, 16384, 2**21 - 1, 2**63 - 1):
            out = bytearray()
            write_varint(out, value)
            assert read_varint(bytes(out), 0) == (value, len(out))

    def test_non_minimal_rejected(self):
        # 0x80 0x00 is a padded zero — canonical form is a bare 0x00.
        with pytest.raises(WireDecodeError, match="non-minimal"):
            read_varint(b"\x80\x00", 0)

    def test_unterminated_rejected(self):
        with pytest.raises(WireDecodeError, match="truncated varint"):
            read_varint(b"\x80\x80", 0)

    def test_overlong_rejected(self):
        with pytest.raises(WireDecodeError, match="varint too long"):
            read_varint(b"\xff" * 10, 0)


# -- codec values -------------------------------------------------------------

class TestCodecFuzz:
    def test_random_values_roundtrip(self, codec, keypair):
        rng = random.Random(SEED)
        for _ in range(N_RANDOM_VALUES):
            value = random_value(rng, keypair)
            encoded = codec.encode(value)
            decoded = codec.decode(encoded)
            assert decoded == value
            # Canonical: re-encoding the decode is byte-identical.
            assert codec.encode(decoded) == encoded

    def test_every_truncation_rejected(self, codec, keypair):
        rng = random.Random(SEED + 1)
        for _ in range(25):
            encoded = codec.encode(random_value(rng, keypair))
            for cut in range(len(encoded)):
                with pytest.raises(WireDecodeError):
                    codec.decode(encoded[:cut])

    def test_random_garbage_never_returns_silently_wrong(self, codec):
        # Garbage either decodes to *something* the codec would re-encode
        # to those exact bytes (i.e. it accidentally IS canonical), or it
        # raises — it never half-parses.
        rng = random.Random(SEED + 2)
        for _ in range(200):
            blob = rng.randbytes(rng.randint(1, 60))
            try:
                value = codec.decode(blob)
            except WireDecodeError:
                continue
            assert codec.encode(value) == blob


# -- envelope mutations -------------------------------------------------------

def _sample_envelope(codec, keypair, rng) -> bytes:
    payload = {
        "mu": {rng.randint(0, 9): rng.randint(0, 10**6)},
        "note": "fuzz",
        "ct": keypair.public.encrypt(rng.randint(0, 99), rng=rng),
    }
    body, _ = codec.encode_payload(payload)
    tag = "input:alice"
    kind = kind_for_tag(tag)
    envelope = Envelope(
        kind.name, f"input:alice[{rng.randint(1, 9)}]",
        rng.randint(0, 40), "online", tag, body,
    )
    return encode_envelope(envelope, kind=kind)


class TestEnvelopeFuzz:
    def test_every_bit_flip_raises(self, codec, keypair):
        """The tentpole integrity property: no flipped bit decodes quietly.

        Wire version 2 checksums the whole frame, so even flips in header
        fields that still parse structurally (round, kind version, sender
        text) are caught by the CRC rather than mis-decoding.
        """
        rng = random.Random(SEED + 3)
        data = _sample_envelope(codec, keypair, rng)
        for byte_index in range(len(data)):
            for bit in range(8):
                flipped = bytearray(data)
                flipped[byte_index] ^= 1 << bit
                with pytest.raises(WireDecodeError):
                    decode_envelope(bytes(flipped))

    def test_every_truncation_raises(self, codec, keypair):
        rng = random.Random(SEED + 4)
        data = _sample_envelope(codec, keypair, rng)
        for cut in range(len(data)):
            with pytest.raises(WireDecodeError):
                decode_envelope(data[:cut])

    def test_random_envelopes_roundtrip(self, codec, keypair):
        rng = random.Random(SEED + 5)
        for _ in range(N_ENVELOPE_MUTATIONS):
            data = _sample_envelope(codec, keypair, rng)
            decoded = decode_envelope(data)
            assert encode_envelope(decoded, kind=kind_for_tag(decoded.tag)) == data


# -- hypothesis pass (skipped when the library is absent) ---------------------

if HAVE_HYPOTHESIS:

    json_values = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**256), max_value=2**256)
        | st.binary(max_size=64)
        | st.text(max_size=32),
        lambda children: st.lists(children, max_size=4)
        | st.lists(children, max_size=4).map(tuple)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20,
    )

    class TestHypothesisPass:
        @settings(max_examples=200, deadline=None)
        @given(value=json_values)
        def test_roundtrip(self, value):
            codec = WireCodec()
            encoded = codec.encode(value)
            decoded = codec.decode(encoded)
            assert decoded == value
            assert codec.encode(decoded) == encoded

        @settings(max_examples=200, deadline=None)
        @given(value=st.integers(min_value=0, max_value=2**63 - 1))
        def test_varint_roundtrip(self, value):
            out = bytearray()
            write_varint(out, value)
            assert read_varint(bytes(out), 0) == (value, len(out))

        @settings(max_examples=100, deadline=None)
        @given(blob=st.binary(min_size=1, max_size=80))
        def test_garbage_never_half_parses(self, blob):
            codec = WireCodec()
            try:
                value = codec.decode(blob)
            except WireDecodeError:
                return
            assert codec.encode(value) == blob
