"""Tests for JSON run-report export."""

import json

import pytest

from repro.accounting import (
    CommMeter,
    dumps_report,
    loads_report,
    report_from_mpc_result,
    run_report,
)
from repro.errors import ParameterError


def _meter():
    meter = CommMeter()
    meter.record("offline", "r1", "Coff-A.beaver", [1, 2, 3])
    meter.record("online", "r1", "Con-mul-1.mu", b"x" * 20)
    return meter


class TestRunReport:
    def test_structure(self):
        report = run_report("demo", _meter(), {"n": 6}, {"gates": 10})
        assert report["label"] == "demo"
        assert report["parameters"]["n"] == 6
        assert report["circuit"]["gates"] == 10
        assert set(report["phases"]) == {"offline", "online"}
        assert report["phases"]["online"]["bytes"] == 20
        assert report["totals"]["messages"] == 2

    def test_by_tag_breakdown(self):
        report = run_report("demo", _meter())
        assert "Con-mul-1.mu" in report["phases"]["online"]["by_tag"]

    def test_json_roundtrip(self):
        report = run_report("demo", _meter(), {"n": 6})
        text = dumps_report(report)
        assert loads_report(text) == report
        json.loads(text)  # genuinely valid JSON

    def test_bad_json_rejected(self):
        with pytest.raises(ParameterError):
            loads_report("{nope")

    def test_wrong_version_rejected(self):
        report = run_report("demo", _meter())
        report["version"] = 999
        with pytest.raises(ParameterError):
            loads_report(dumps_report(report))


class TestFromMpcResult:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.circuits import dot_product_circuit
        from repro.core import run_mpc

        return run_mpc(
            dot_product_circuit(2), {"alice": [1, 2], "bob": [3, 4]},
            n=4, epsilon=0.2, seed=123,
        )

    def test_report_carries_parameters_and_shape(self, result):
        report = report_from_mpc_result(result)
        assert report["parameters"]["n"] == 4
        assert report["parameters"]["k"] == result.params.k
        assert report["circuit"]["multiplications"] == 2
        assert report["totals"]["bytes"] == result.meter.total_bytes()

    def test_report_serializes(self, result):
        text = dumps_report(report_from_mpc_result(result))
        assert loads_report(text)["parameters"]["epsilon"] == 0.2
