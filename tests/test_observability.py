"""Tests for the tracing & metrics layer (``repro.observability``)."""

import json

import pytest

from repro.accounting import CommMeter, measure_bytes, register_sizer, unregister_sizer
from repro.circuits import dot_product_circuit
from repro.core import run_mpc
from repro.errors import ParameterError
from repro.observability import (
    KIND_BATCH,
    KIND_PHASE,
    KIND_ROUND,
    Tracer,
    activated,
    active,
    dumps_trace_jsonl,
    loads_trace_jsonl,
    maybe_span,
    note,
    trace_records,
)
from repro.observability import hooks
from repro.observability.export import merged_report
from repro.observability.tracer import UNATTRIBUTED


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        t = self.now
        self.now += self.step
        return t


class TestSpanNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("online", kind=KIND_PHASE, phase="online") as outer:
            with tracer.span("round-1", kind=KIND_ROUND) as mid:
                with tracer.span("batch-0", kind=KIND_BATCH) as inner:
                    pass
        assert outer.parent_id is None
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        assert tracer.roots == [outer]
        assert outer.children == [mid] and mid.children == [inner]
        assert [s.name for s in tracer.spans()] == ["online", "round-1", "batch-0"]

    def test_children_inherit_phase(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("offline", kind=KIND_PHASE, phase="offline"):
            with tracer.span("round") as child:
                pass
        assert child.phase == "offline"

    def test_explicit_subphase_overrides_inherited(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("online", kind=KIND_PHASE, phase="online"):
            with tracer.span("batch", kind=KIND_BATCH, phase="online.mul") as b:
                pass
        assert b.phase == "online.mul"

    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=2.0))
        with tracer.span("p", kind=KIND_PHASE, phase="p"):
            pass
        (root,) = tracer.roots
        assert root.duration_s == pytest.approx(2.0)
        assert tracer.wall_s_by_phase() == {"p": pytest.approx(2.0)}

    def test_wall_s_includes_subphases(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("online", kind=KIND_PHASE, phase="online"):
            with tracer.span("b", kind=KIND_BATCH, phase="online.mul"):
                pass
        wall = tracer.wall_s_by_phase()
        assert set(wall) == {"online", "online.mul"}
        # The sub-phase interval is a subset of the enclosing phase's.
        assert wall["online.mul"] <= wall["online"]

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("p", kind=KIND_PHASE, phase="p"):
                raise RuntimeError("boom")
        (root,) = tracer.roots
        assert root.end_s is not None
        # The stack unwound: a new span is again a root.
        with tracer.span("q"):
            pass
        assert len(tracer.roots) == 2


class TestCounters:
    def test_lands_in_innermost_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", kind=KIND_PHASE, phase="outer"):
            tracer.count("a")
            with tracer.span("inner"):
                tracer.count("a", 2)
        outer, inner = list(tracer.spans())
        assert outer.counters == {"a": 1}
        assert inner.counters == {"a": 2}
        assert outer.total_counters() == {"a": 3}
        assert tracer.counter_totals() == {"a": 3}

    def test_orphans_bucketed_as_unattributed(self):
        tracer = Tracer(clock=FakeClock())
        tracer.count("x", 5)
        assert tracer.counter_totals() == {"x": 5}
        assert tracer.counters_by_phase() == {UNATTRIBUTED: {"x": 5}}

    def test_counters_by_phase_separates_subphase(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("online", kind=KIND_PHASE, phase="online"):
            tracer.count("op")
            with tracer.span("b", kind=KIND_BATCH, phase="online.mul"):
                tracer.count("op", 7)
        assert tracer.counters_by_phase() == {
            "online": {"op": 1},
            "online.mul": {"op": 7},
        }

    def test_reset(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("p"):
            tracer.count("a")
        tracer.reset()
        assert tracer.n_spans() == 0
        assert tracer.counter_totals() == {}


class TestHooks:
    def test_note_without_tracer_is_noop(self):
        assert active() is None
        note(hooks.PAILLIER_ENCRYPT)  # must not raise

    def test_activated_installs_and_restores(self):
        tracer = Tracer(clock=FakeClock())
        with activated(tracer):
            assert active() is tracer
            note("custom.counter", 3)
        assert active() is None
        assert tracer.counter_totals() == {"custom.counter": 3}

    def test_activated_nests(self):
        t1, t2 = Tracer(clock=FakeClock()), Tracer(clock=FakeClock())
        with activated(t1):
            with activated(t2):
                note("c")
            assert active() is t1
        assert t2.counter_totals() == {"c": 1}
        assert t1.counter_totals() == {}

    def test_maybe_span_none_tracer(self):
        with maybe_span(None, "anything") as span:
            assert span is None


class TestProtocolTracing:
    @pytest.fixture(scope="class")
    def traced_run(self):
        tracer = Tracer()
        circuit = dot_product_circuit(2)
        result = run_mpc(
            circuit, {"alice": [2, 3], "bob": [5, 7]},
            n=4, epsilon=0.2, seed=7, tracer=tracer,
        )
        return tracer, result

    def test_outputs_unaffected(self, traced_run):
        _, result = traced_run
        assert result.outputs == {"alice": [31]}

    def test_phase_spans_present(self, traced_run):
        tracer, _ = traced_run
        roots = [s.name for s in tracer.roots]
        assert roots == ["setup", "offline", "reencryption-bridge", "online"]
        assert all(s.kind == KIND_PHASE for s in tracer.roots)
        assert all(s.end_s is not None for s in tracer.spans())

    def test_round_spans_nested_under_phases(self, traced_run):
        tracer, _ = traced_run
        kinds = {s.kind for s in tracer.spans()}
        assert KIND_ROUND in kinds and KIND_BATCH in kinds
        for span in tracer.spans():
            if span.kind == KIND_ROUND:
                assert span.parent_id is not None

    def test_counters_cover_crypto_layers(self, traced_run):
        tracer, _ = traced_run
        totals = tracer.counter_totals()
        for name in (
            hooks.PAILLIER_ENCRYPT,
            hooks.PAILLIER_EXP,
            hooks.SHARING_CANONICAL,
            hooks.SHARING_RECONSTRUCTED,
            hooks.LAGRANGE_INTERPOLATION,
            hooks.BULLETIN_POSTS,
            hooks.REENCRYPT_RECOVERY,
        ):
            assert totals.get(name, 0) > 0, name

    def test_result_carries_trace(self, traced_run):
        tracer, result = traced_run
        assert result.trace is tracer

    def test_online_mul_subphase_isolated(self, traced_run):
        tracer, _ = traced_run
        per_phase = tracer.counters_by_phase()
        assert "online.mul" in per_phase
        assert per_phase["online.mul"].get(hooks.REENCRYPT_RECOVERY, 0) > 0
        # Per-gate online work must not be polluted by key distribution.
        assert per_phase["online.mul"].get(hooks.PAILLIER_ENCRYPT, 0) == 0

    def test_counters_deterministic_across_seeded_runs(self):
        circuit = dot_product_circuit(2)
        inputs = {"alice": [2, 3], "bob": [5, 7]}
        traces = []
        for _ in range(2):
            tracer = Tracer()
            run_mpc(circuit, inputs, n=4, epsilon=0.2, seed=11, tracer=tracer)
            traces.append(tracer)
        a, b = traces
        assert a.counter_totals() == b.counter_totals()
        assert a.counters_by_phase() == b.counters_by_phase()
        assert a.n_spans() == b.n_spans()
        assert [s.name for s in a.spans()] == [s.name for s in b.spans()]

    def test_untraced_run_is_noop(self, traced_run):
        tracer, _ = traced_run
        n_before = tracer.n_spans()
        totals_before = tracer.counter_totals()
        circuit = dot_product_circuit(2)
        result = run_mpc(
            circuit, {"alice": [2, 3], "bob": [5, 7]}, n=4, epsilon=0.2, seed=7
        )
        assert result.trace is None
        # The untraced run left the existing tracer untouched.
        assert tracer.n_spans() == n_before
        assert tracer.counter_totals() == totals_before
        assert active() is None


class TestExport:
    def _traced(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("offline", kind=KIND_PHASE, phase="offline"):
            tracer.count(hooks.PAILLIER_ENCRYPT, 4)
            with tracer.span("round-1", kind=KIND_ROUND, committee="C1", members=3):
                tracer.count(hooks.PAILLIER_EXP, 9)
        with tracer.span("online", kind=KIND_PHASE, phase="online"):
            with tracer.span("b0", kind=KIND_BATCH, phase="online.mul", gates=2):
                tracer.count(hooks.REENCRYPT_RECOVERY, 6)
        return tracer

    def test_round_trip(self):
        tracer = self._traced()
        text = dumps_trace_jsonl(
            tracer, label="unit", parameters={"n": 4}, circuit_stats={"muls": 2}
        )
        trace = loads_trace_jsonl(text)
        assert trace["header"]["label"] == "unit"
        assert trace["header"]["parameters"] == {"n": 4}
        assert len(trace["spans"]) == tracer.n_spans()
        assert trace["summary"]["counters"] == tracer.counter_totals()
        assert trace["summary"]["counters_by_phase"] == tracer.counters_by_phase()

    def test_span_records_preserve_structure(self):
        tracer = self._traced()
        trace = loads_trace_jsonl(dumps_trace_jsonl(tracer))
        by_id = {s["id"]: s for s in trace["spans"]}
        round_rec = next(s for s in trace["spans"] if s["kind"] == KIND_ROUND)
        assert round_rec["parent"] in by_id
        assert by_id[round_rec["parent"]]["name"] == "offline"
        assert round_rec["attrs"]["committee"] == "C1"

    def test_meter_bytes_included(self):
        tracer = self._traced()
        meter = CommMeter()
        meter.record("offline", "r1", "tag", [1, 2, 3])
        trace = loads_trace_jsonl(dumps_trace_jsonl(tracer, meter=meter))
        assert trace["summary"]["comm_bytes_by_phase"] == meter.by_phase()

    def test_records_are_valid_json_lines(self):
        text = dumps_trace_jsonl(self._traced())
        for line in text.splitlines():
            json.loads(line)

    def test_rejects_missing_header(self):
        text = dumps_trace_jsonl(self._traced())
        body = "\n".join(text.splitlines()[1:])
        with pytest.raises(ParameterError):
            loads_trace_jsonl(body)

    def test_rejects_unknown_record_kind(self):
        text = dumps_trace_jsonl(self._traced())
        bad = text + "\n" + json.dumps({"record": "mystery"})
        with pytest.raises(ParameterError):
            loads_trace_jsonl(bad)

    def test_rejects_wrong_version(self):
        lines = dumps_trace_jsonl(self._traced()).splitlines()
        header = json.loads(lines[0])
        header["version"] = 999
        lines[0] = json.dumps(header)
        with pytest.raises(ParameterError):
            loads_trace_jsonl("\n".join(lines))

    def test_rejects_orphan_parent(self):
        lines = dumps_trace_jsonl(self._traced()).splitlines()
        span = json.loads(lines[1])
        span["parent"] = 10_000
        lines[1] = json.dumps(span)
        with pytest.raises(ParameterError):
            loads_trace_jsonl("\n".join(lines))

    def test_rejects_mistyped_field(self):
        lines = dumps_trace_jsonl(self._traced()).splitlines()
        span = json.loads(lines[1])
        span["start_s"] = "yesterday"
        lines[1] = json.dumps(span)
        with pytest.raises(ParameterError):
            loads_trace_jsonl("\n".join(lines))

    def test_trace_records_kinds(self):
        records = trace_records(self._traced())
        assert records[0]["record"] == "header"
        assert records[-1]["record"] == "summary"
        assert all(r["record"] == "span" for r in records[1:-1])

    def test_merged_report_requires_trace(self):
        circuit = dot_product_circuit(2)
        result = run_mpc(
            circuit, {"alice": [1, 1], "bob": [1, 1]}, n=4, epsilon=0.2, seed=3
        )
        with pytest.raises(ParameterError):
            merged_report(result)


class TestSizerRegistry:
    class Opaque:
        """A payload type the structural sizer knows nothing about."""

    def test_strict_mode_still_rejects_unknown(self):
        with pytest.raises(TypeError):
            measure_bytes(self.Opaque())

    def test_non_strict_estimates_and_records(self):
        from repro.accounting.comm import unmeasured_type_names

        unmeasured_type_names.discard("Opaque")
        n = measure_bytes(self.Opaque(), strict=False)
        assert n > 0
        assert "Opaque" in unmeasured_type_names

    def test_registered_sizer_used(self):
        register_sizer(self.Opaque, lambda _: 42)
        try:
            assert measure_bytes(self.Opaque()) == 42
            # Subclasses resolve through the MRO.
            class Sub(self.Opaque):
                pass

            assert measure_bytes(Sub()) == 42
        finally:
            unregister_sizer(self.Opaque)
        with pytest.raises(TypeError):
            measure_bytes(self.Opaque())

    def test_decorator_form(self):
        class Env:
            pass

        @register_sizer(Env)
        def _size(_):
            return 7

        try:
            assert measure_bytes(Env()) == 7
        finally:
            unregister_sizer(Env)

    def test_meter_survives_unknown_payload(self):
        meter = CommMeter()
        n = meter.record("online", "r1", "weird", self.Opaque())
        assert n > 0
        assert meter.total_bytes("online") == n

    def test_register_sizer_validates(self):
        with pytest.raises(TypeError):
            register_sizer("not-a-type", lambda _: 1)
        with pytest.raises(TypeError):
            register_sizer(self.Opaque, "not-callable")
