"""Tests for plain Paillier encryption (the PKE of the protocol)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EncryptionError, ParameterError
from repro.paillier import generate_keypair
from repro.paillier.paillier import (
    PaillierCiphertext,
    PaillierPublicKey,
    PaillierSecretKey,
    keypair_from_primes,
)


class TestKeygen:
    def test_fixture_keypair(self, paillier_keypair):
        kp = paillier_keypair
        assert kp.public.n == kp.secret.p * kp.secret.q

    def test_fresh_random_keys(self):
        kp = generate_keypair(48, rng=random.Random(3), use_fixtures=False)
        assert kp.public.n.bit_length() >= 40

    def test_keypair_from_primes_validates(self):
        with pytest.raises(ParameterError):
            keypair_from_primes(15, 17)
        with pytest.raises(ParameterError):
            keypair_from_primes(17, 17)

    def test_secret_key_consistency_checked(self):
        kp = generate_keypair(64)
        with pytest.raises(ParameterError):
            PaillierSecretKey(kp.public, 3, 5)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ParameterError):
            PaillierPublicKey(4)


class TestEncryptDecrypt:
    def test_roundtrip(self, paillier_keypair, rng):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        for _ in range(5):
            m = rng.randrange(pk.n)
            assert sk.decrypt(pk.encrypt(m, rng=rng)) == m

    def test_message_reduced_mod_n(self, paillier_keypair):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        assert sk.decrypt(pk.encrypt(pk.n + 5)) == 5
        assert sk.decrypt(pk.encrypt(-1)) == pk.n - 1

    def test_deterministic_with_fixed_randomness(self, paillier_keypair):
        pk = paillier_keypair.public
        c1 = pk.encrypt(7, randomness=12345)
        c2 = pk.encrypt(7, randomness=12345)
        assert c1 == c2

    def test_probabilistic_by_default(self, paillier_keypair, rng):
        pk = paillier_keypair.public
        assert pk.encrypt(7, rng=rng) != pk.encrypt(7, rng=rng)

    def test_non_unit_randomness_rejected(self, paillier_keypair):
        pk = paillier_keypair.public
        with pytest.raises(EncryptionError):
            pk.encrypt(1, randomness=pk.n)  # gcd(N, N) != 1... use p instead

    def test_decrypt_foreign_ciphertext_rejected(self, paillier_keypair, rng):
        other = generate_keypair(64, fixture_index=5)
        c = other.public.encrypt(1, rng=rng)
        with pytest.raises(EncryptionError):
            paillier_keypair.secret.decrypt(c)

    def test_extract_randomness(self, paillier_keypair, rng):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        r = pk.random_unit(rng)
        c = pk.encrypt(99, randomness=r)
        assert sk.extract_randomness(c) == r


class TestHomomorphism:
    def test_ciphertext_addition(self, paillier_keypair, rng):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        c = pk.encrypt(100, rng=rng) + pk.encrypt(23, rng=rng)
        assert sk.decrypt(c) == 123

    def test_constant_addition(self, paillier_keypair, rng):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        assert sk.decrypt(pk.encrypt(100, rng=rng) + 11) == 111
        assert sk.decrypt(11 + pk.encrypt(100, rng=rng)) == 111

    def test_subtraction(self, paillier_keypair, rng):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        c = pk.encrypt(100, rng=rng) - pk.encrypt(1, rng=rng)
        assert sk.decrypt(c) == 99
        assert sk.decrypt(pk.encrypt(100, rng=rng) - 30) == 70

    def test_scalar_multiplication(self, paillier_keypair, rng):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        assert sk.decrypt(pk.encrypt(9, rng=rng) * 11) == 99
        assert sk.decrypt(7 * pk.encrypt(9, rng=rng)) == 63

    def test_negative_scalar(self, paillier_keypair, rng):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        assert sk.decrypt(pk.encrypt(9, rng=rng) * -2) == pk.n - 18

    def test_cross_key_addition_rejected(self, paillier_keypair, rng):
        other = generate_keypair(64, fixture_index=5)
        with pytest.raises(EncryptionError):
            paillier_keypair.public.encrypt(1, rng=rng) + other.public.encrypt(1, rng=rng)

    def test_rerandomize_preserves_plaintext(self, paillier_keypair, rng):
        pk, sk = paillier_keypair.public, paillier_keypair.secret
        c = pk.encrypt(55, rng=rng)
        c2 = c.rerandomize(rng)
        assert c2 != c
        assert sk.decrypt(c2) == 55


class TestCiphertextObject:
    def test_zero_value_rejected(self, paillier_keypair):
        with pytest.raises(EncryptionError):
            PaillierCiphertext(paillier_keypair.public, 0)

    def test_hash_and_eq(self, paillier_keypair):
        pk = paillier_keypair.public
        a = pk.encrypt(3, randomness=7)
        b = pk.encrypt(3, randomness=7)
        assert a == b and hash(a) == hash(b)

    def test_ciphertext_bytes(self, paillier_keypair):
        pk = paillier_keypair.public
        assert pk.ciphertext_bytes == (pk.n_squared.bit_length() + 7) // 8


@settings(max_examples=20, deadline=None)
@given(
    m1=st.integers(min_value=0, max_value=(1 << 40)),
    m2=st.integers(min_value=0, max_value=(1 << 40)),
    s=st.integers(min_value=0, max_value=1 << 20),
)
def test_homomorphism_property(m1, m2, s):
    kp = generate_keypair(64)
    pk, sk = kp.public, kp.secret
    c = pk.encrypt(m1) * s + pk.encrypt(m2)
    assert sk.decrypt(c) == (m1 * s + m2) % pk.n
