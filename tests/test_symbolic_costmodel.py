"""The symbolic cost model's exactness contract (docs/COSTMODEL.md).

Every test here reduces to one assertion shape: for every envelope a
metered run delivers, the kind's closed-form sympy formula — evaluated
at that run's parameters and bindings — equals the delivered byte count
*exactly*.  The parameter grid varies committee size, gap (and thus the
packing factor), circuit size, and moduli; the edge cases cover the
degenerate shapes (k = 1, single gate) and the mode switches (fail-stop
crash budgets, robust reconstruction) that change the formulas.
"""

import dataclasses
import random

import pytest

sympy = pytest.importorskip("sympy")

from repro.accounting import CircuitShape, CostModel
from repro.accounting.symbolic import (
    PARAM_SYMBOL_NAMES,
    RUN_SYMBOL_NAMES,
    SymbolicCostModel,
    envelope_formula,
    formula_catalog,
    spec_variants,
    sym,
    verify_cost_exactness,
)
from repro.baselines import CdnYosoMpc
from repro.circuits import CircuitBuilder, dot_product_circuit
from repro.core import run_mpc
from repro.core.params import ProtocolParams
from repro.core.protocol import YosoMpc
from repro.extensions import ItYosoMpc


def _assert_exact(result):
    """The contract: every kind formula-exact, nothing skipped."""
    report = verify_cost_exactness(result)
    assert report.skipped == 0          # nothing took the legacy path
    assert report.envelopes == len(result.bulletin)
    for tot in report.totals:
        assert tot.measured_bytes == tot.formula_bytes
    return report


class TestCoreGrid:
    """Exactness across (n, ε→k, circuit, κ) for the core protocol."""

    @pytest.mark.parametrize(
        "n,epsilon,width,te_bits,rb_bits",
        [
            (5, 0.2, 4, 64, 64),
            (6, 0.25, 8, 64, 64),
            (8, 0.3, 6, 64, 64),
            (5, 0.22, 4, 96, 80),   # asymmetric, larger moduli (κ sweep)
        ],
    )
    def test_grid_point(self, n, epsilon, width, te_bits, rb_bits):
        result = run_mpc(
            dot_product_circuit(width),
            {"alice": list(range(1, width + 1)), "bob": [2] * width},
            n=n, epsilon=epsilon, seed=31,
            te_bits=te_bits, role_key_bits=rb_bits,
        )
        report = _assert_exact(result)
        # Every core kind appears on the board of a full run.
        kinds = {t.kind for t in report.totals}
        assert {
            "setup.keys", "offline.beaver_a", "offline.beaver_b",
            "offline.masks", "offline.partials", "offline.reencrypt",
            "online.keys", "online.input", "online.mu_shares",
            "online.output",
        } <= kinds


class TestEdgeCases:
    def test_unpacked_k1(self):
        """ε small enough that k = 1: batches degenerate to single gates."""
        result = run_mpc(
            dot_product_circuit(3),
            {"alice": [1, 2, 3], "bob": [4, 5, 6]},
            n=5, epsilon=0.05, seed=13,
        )
        assert result.params.k == 1
        _assert_exact(result)

    def test_single_gate(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        b.output(b.mul(x, y), "a")
        result = run_mpc(b.build(), {"a": [6], "b": [7]}, n=5, epsilon=0.2,
                         seed=17)
        assert result.outputs["a"] == [42]
        _assert_exact(result)

    def test_fail_stop_crash_budget(self):
        """Fail-stop halves k and sizes the resharing's crash budget."""
        result = run_mpc(
            dot_product_circuit(4),
            {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]},
            n=8, epsilon=0.3, seed=19, fail_stop=True,
        )
        assert result.params.fail_stop_budget > 0
        _assert_exact(result)

    def test_robust_reconstruction(self):
        """Robust mode drops the proof token from every μ-share entry."""
        params = dataclasses.replace(
            ProtocolParams.from_gap(6, 0.25), robust_reconstruction=True
        )
        circuit = dot_product_circuit(4)
        result = YosoMpc(params, rng=random.Random(17)).run(
            circuit, {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]}
        )
        _assert_exact(result)
        # The robust formula is strictly smaller: no 192-byte token.
        robust = envelope_formula("online.mu_shares", robust=True)
        plain = envelope_formula("online.mu_shares", robust=False)
        diff = (plain - robust).subs({sym("Nb"): 1, sym("te"): 64})
        assert int(diff) >= 192

    def test_sim_transport(self):
        """A zero-loss SimTransport delivers the same exact bytes."""
        result = run_mpc(
            dot_product_circuit(4),
            {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]},
            n=5, epsilon=0.2, seed=23, transport="sim:seed=7",
        )
        _assert_exact(result)


class TestBaselines:
    def test_cdn_exact(self):
        result = CdnYosoMpc(n=4, t=1, rng=random.Random(3)).run(
            dot_product_circuit(3), {"alice": [1, 2, 3], "bob": [4, 5, 6]}
        )
        report = _assert_exact(result)
        assert {t.kind for t in report.totals} == {
            "baseline.cdn", "baseline.cdn_aux"
        }

    def test_it_exact(self):
        result = ItYosoMpc(n=9, t=2, k=2, rng=random.Random(1)).run(
            dot_product_circuit(4), {"alice": [1, 2, 3, 4], "bob": [5, 6, 7, 8]}
        )
        report = _assert_exact(result)
        assert {t.kind for t in report.totals} == {"it.messages"}


class TestAlwaysOnHook:
    def test_honest_run_self_checks(self, monkeypatch):
        """The post-run hook fires on honest runs and respects the env gate."""
        calls = []
        import repro.accounting.symbolic as symbolic

        real = symbolic.verify_cost_exactness
        monkeypatch.setattr(
            symbolic, "verify_cost_exactness",
            lambda *a, **kw: calls.append(1) or real(*a, **kw),
        )
        run_mpc(dot_product_circuit(2), {"alice": [1, 2], "bob": [3, 4]},
                n=5, epsilon=0.2, seed=3)
        assert calls  # the hook ran

        monkeypatch.setenv("REPRO_COST_CHECK", "0")
        calls.clear()
        run_mpc(dot_product_circuit(2), {"alice": [1, 2], "bob": [3, 4]},
                n=5, epsilon=0.2, seed=3)
        assert not calls  # opt-out honoured


class TestFormulas:
    def test_catalog_covers_every_variant(self):
        catalog = formula_catalog()
        assert set(catalog) == {s.variant for s in spec_variants()}
        assert len(catalog) == 24

    def test_formulas_close_over_the_glossary(self):
        """Free symbols of every formula come from the documented glossary."""
        glossary = {sym(name) for name in PARAM_SYMBOL_NAMES + RUN_SYMBOL_NAMES}
        for variant, expr in formula_catalog().items():
            free = {
                s for s in expr.free_symbols if not s.name.startswith("_")
            }
            assert free <= glossary, (variant, free - glossary)

    def test_slack_has_unit_coefficient(self):
        """S is a pure correction: each formula is (structural nominal) − S."""
        for variant, expr in formula_catalog().items():
            assert expr.coeff(sym("S")) == -1, variant


class TestShimRegression:
    """The legacy CostModel API must return the symbolic model's numbers."""

    @pytest.fixture(scope="class")
    def run(self):
        return run_mpc(
            dot_product_circuit(8),
            {"alice": list(range(1, 9)), "bob": [2] * 8},
            n=6, epsilon=0.25, seed=31,
        )

    def test_predictions_identical(self, run):
        shape = CircuitShape.of(run.circuit, run.plan)
        old = CostModel(run.params, shape, run.setup.proof_params)
        new = SymbolicCostModel(run.params, shape, run.setup.proof_params)
        assert old.predict_offline().n_bytes == new.predict_offline().n_bytes
        assert old.predict_offline().messages == new.predict_offline().messages
        assert old.predict_online().n_bytes == new.predict_online().n_bytes
        assert old.predict_online().messages == new.predict_online().messages
        assert old.online_mul_bytes_per_gate() == new.online_mul_bytes_per_gate()
        assert old.offline_bytes_per_gate() == new.offline_bytes_per_gate()
        assert old.mu_share_bytes == new.mu_entry_bytes()

    def test_per_gate_matches_meter_tightly(self, run):
        shape = CircuitShape.of(run.circuit, run.plan)
        model = CostModel(run.params, shape, run.setup.proof_params)
        measured = run.online_mul_bytes() / run.circuit.n_multiplications
        assert measured == pytest.approx(
            model.online_mul_bytes_per_gate(), rel=0.02
        )
