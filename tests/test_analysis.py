"""The protocol static-analysis suite (``repro lint``).

One deliberate-violation fixture per rule code, a clean negative, and
the suppression mechanics (justified, unjustified, stale).  The last
class pins the shipped tree itself: ``repro lint src/repro`` must stay
at zero findings, which is what keeps the rule packs honest as code
evolves.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import RULES, Finding, LintConfig, format_finding, lint_paths
from repro.analysis.runner import write_baseline
from repro.cli import main
from repro.errors import AnalysisError

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_sources(tmp_path: Path, sources: dict[str, str], **overrides) -> list[Finding]:
    """Write fixture modules under ``tmp_path`` and lint them."""
    for name, text in sources.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    config = LintConfig(root=tmp_path, **overrides)
    return lint_paths([tmp_path], config)


def codes(findings: list[Finding]) -> list[str]:
    return [f.code for f in findings]


class TestDeterminismRules:
    def test_det001_module_level_rng(self, tmp_path):
        found = lint_sources(tmp_path, {"bad.py": (
            "import random\n"
            "x = random.random()\n"
        )})
        assert codes(found) == ["DET001"]
        assert found[0].line == 2

    def test_det001_unseeded_random_instance(self, tmp_path):
        found = lint_sources(tmp_path, {"bad.py": (
            "import random\n"
            "rng = random.Random()\n"
        )})
        assert codes(found) == ["DET001"]

    def test_det001_sees_through_import_alias(self, tmp_path):
        found = lint_sources(tmp_path, {"bad.py": (
            "import random as rnd\n"
            "x = rnd.shuffle([1, 2])\n"
        )})
        assert codes(found) == ["DET001"]

    def test_det002_wall_clock(self, tmp_path):
        found = lint_sources(tmp_path, {"bad.py": (
            "import time\n"
            "stamp = time.time()\n"
        )})
        assert codes(found) == ["DET002"]

    def test_det003_os_entropy(self, tmp_path):
        found = lint_sources(tmp_path, {"bad.py": (
            "import os\n"
            "import secrets\n"
            "key = os.urandom(16)\n"
            "tok = secrets.token_bytes(8)\n"
        )})
        assert codes(found) == ["DET003", "DET003"]

    def test_det004_float_in_exact_scope(self, tmp_path):
        found = lint_sources(
            tmp_path,
            {"fields/bad.py": (
                "import math\n"
                "HALF = 0.5\n"
                "x = float(3)\n"
                "y = math.sqrt(2)\n"
            )},
            float_scopes=("fields/*",),
        )
        assert codes(found) == ["DET004", "DET004", "DET004"]

    def test_det004_silent_outside_float_scope(self, tmp_path):
        found = lint_sources(
            tmp_path,
            {"metrics.py": "RATE = 0.5\n"},
            float_scopes=("fields/*",),
        )
        assert found == []

    def test_seeded_rng_is_clean(self, tmp_path):
        found = lint_sources(tmp_path, {"good.py": (
            "import random\n"
            "def run(seed: int):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.randrange(10)\n"
        )})
        assert found == []

    def test_allowlisted_file_is_clean(self, tmp_path):
        found = lint_sources(
            tmp_path,
            {"keygen/sample.py": "import os\nseed = os.urandom(32)\n"},
            allow={"DET003": ("keygen/*",)},
        )
        assert found == []


class TestYosoRules:
    def test_yoso001_double_speak(self, tmp_path):
        found = lint_sources(tmp_path, {"role.py": (
            "def program(view, payload):\n"
            "    view.speak('tag-a', payload)\n"
            "    view.speak('tag-b', payload)\n"
        )})
        assert "YOSO001" in codes(found)

    def test_yoso001_through_local_helper(self, tmp_path):
        found = lint_sources(tmp_path, {"role.py": (
            "def post(view, payload):\n"
            "    view.speak('tag', payload)\n"
            "\n"
            "def program(view, a, b):\n"
            "    post(view, a)\n"
            "    post(view, b)\n"
        )})
        assert "YOSO001" in codes(found)

    def test_yoso002_speak_in_loop(self, tmp_path):
        found = lint_sources(tmp_path, {"role.py": (
            "def program(view, items):\n"
            "    for item in items:\n"
            "        view.speak('tag', item)\n"
        )})
        assert "YOSO002" in codes(found)

    def test_yoso003_statement_after_speak(self, tmp_path):
        found = lint_sources(tmp_path, {"role.py": (
            "def program(view, payload, log):\n"
            "    view.speak('tag', payload)\n"
            "    log.append('spoke')\n"
        )})
        assert codes(found) == ["YOSO003"]

    def test_single_speak_last_is_clean(self, tmp_path):
        found = lint_sources(tmp_path, {"role.py": (
            "def program(view, items):\n"
            "    payload = {str(i): item for i, item in enumerate(items)}\n"
            "    view.speak('tag', payload)\n"
            "\n"
            "def branchy(view, payload, fallback):\n"
            "    if payload:\n"
            "        view.speak('tag', payload)\n"
            "    else:\n"
            "        view.speak('tag', fallback)\n"
        )})
        assert found == []


class TestWireRules:
    def test_wire001_conflicting_kind_id(self, tmp_path):
        found = lint_sources(tmp_path, {"kinds.py": (
            "from repro.wire.registry import register_kind\n"
            "register_kind('alpha', 40)\n"
            "register_kind('beta', 40)\n"
        )})
        assert codes(found) == ["WIRE001"]
        assert found[0].line == 3

    def test_wire002_kind_without_formula(self, tmp_path):
        found = lint_sources(tmp_path, {"kinds.py": (
            "from repro.wire.registry import register_kind\n"
            "from repro.accounting.symbolic import EnvelopeSpec\n"
            "register_kind('alpha', 40)\n"
            "register_kind('beta', 41)\n"
            "SPEC = EnvelopeSpec('alpha', 'alpha', 'alpha bytes', None, None)\n"
        )})
        assert codes(found) == ["WIRE002"]
        assert "beta" in found[0].message

    def test_wire003_kind_missing_from_roundtrip_test(self, tmp_path):
        found = lint_sources(
            tmp_path,
            {
                "kinds.py": (
                    "from repro.wire.registry import register_kind\n"
                    "register_kind('alpha', 40)\n"
                    "register_kind('beta', 41)\n"
                ),
                "test_roundtrip.py": "PAYLOADS = {'alpha': b''}\n",
            },
            roundtrip_test="test_roundtrip.py",
        )
        assert "WIRE003" in codes(found)
        assert any("beta" in f.message for f in found)
        assert not any("'alpha'" in f.message for f in found)

    def test_wire004_unencodable_field(self, tmp_path):
        found = lint_sources(tmp_path, {"payload.py": (
            "from dataclasses import dataclass\n"
            "from repro.wire.codec import register_wire_dataclass\n"
            "@dataclass\n"
            "class Reading:\n"
            "    label: str\n"
            "    value: float\n"
            "register_wire_dataclass(90, Reading)\n"
        )})
        assert codes(found) == ["WIRE004"]
        assert "Reading.value" in found[0].message

    def test_wire004_encodable_fields_are_clean(self, tmp_path):
        found = lint_sources(tmp_path, {"payload.py": (
            "from dataclasses import dataclass\n"
            "from repro.wire.codec import register_wire_dataclass\n"
            "@dataclass\n"
            "class Bundle:\n"
            "    name: str\n"
            "    values: tuple[int, ...]\n"
            "    blob: bytes | None\n"
            "@dataclass\n"
            "class Nested:\n"
            "    inner: Bundle\n"
            "register_wire_dataclass(90, Bundle)\n"
            "register_wire_dataclass(91, Nested)\n"
        )})
        assert found == []


class TestSuppressions:
    def test_justified_suppression_absorbs_finding(self, tmp_path):
        found = lint_sources(tmp_path, {"ok.py": (
            "import time\n"
            "t = time.time()  # repro-lint: disable=DET002 -- metrics only\n"
        )})
        assert found == []

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        found = lint_sources(tmp_path, {"ok.py": (
            "import time\n"
            "# repro-lint: disable=DET002 -- metrics only\n"
            "t = time.time()\n"
        )})
        assert found == []

    def test_lnt001_suppression_without_justification(self, tmp_path):
        found = lint_sources(tmp_path, {"bad.py": (
            "import time\n"
            "t = time.time()  # repro-lint: disable=DET002\n"
        )})
        assert codes(found) == ["LNT001"]

    def test_lnt002_stale_suppression(self, tmp_path):
        found = lint_sources(tmp_path, {"bad.py": (
            "x = 1  # repro-lint: disable=DET002 -- was a clock read once\n"
        )})
        assert codes(found) == ["LNT002"]

    def test_suppression_only_covers_named_code(self, tmp_path):
        found = lint_sources(tmp_path, {"bad.py": (
            "import time\n"
            "t = time.time()  # repro-lint: disable=DET001 -- wrong code\n"
        )})
        assert sorted(codes(found)) == ["DET002", "LNT002"]


class TestBaseline:
    def test_baseline_filters_recorded_findings(self, tmp_path):
        source = {"bad.py": "import time\nt = time.time()\n"}
        first = lint_sources(tmp_path, source)
        assert codes(first) == ["DET002"]
        write_baseline(first, tmp_path / "lint-baseline.json")
        config = LintConfig(root=tmp_path, baseline="lint-baseline.json")
        assert lint_paths([tmp_path], config) == []


class TestCatalogAndCli:
    def test_every_code_has_catalog_entry(self):
        expected = {
            "DET001", "DET002", "DET003", "DET004",
            "YOSO001", "YOSO002", "YOSO003",
            "WIRE001", "WIRE002", "WIRE003", "WIRE004",
            "LNT001", "LNT002",
        }
        assert set(RULES) == expected

    def test_format_finding_includes_hint(self):
        finding = Finding("a.py", 3, "DET001", "boom")
        text = format_finding(finding)
        assert text.startswith("a.py:3: DET001 boom")
        assert "fix:" in text

    def test_cli_exit_codes(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path / "bad.py")]) == 1
        assert "DET002" in capsys.readouterr().out
        (tmp_path / "good.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path / "good.py")]) == 0

    def test_cli_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out and "WIRE004" in out

    def test_cli_missing_path(self, capsys):
        assert main(["lint", "definitely-not-here"]) == 2

    def test_syntax_error_is_analysis_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        with pytest.raises(AnalysisError):
            lint_paths([tmp_path], LintConfig(root=tmp_path))


class TestShippedTree:
    def test_repro_lint_src_is_clean(self):
        from repro.analysis.config import load_config

        config = load_config(REPO_ROOT)
        assert lint_paths([REPO_ROOT / "src" / "repro"], config) == []
