"""Tests for the circuit representation, builder, and evaluation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, CircuitBuilder, GateType
from repro.circuits.circuit import Gate
from repro.errors import CircuitError
from repro.fields import Zmod

F = Zmod((1 << 61) - 1)


class TestGateValidation:
    def test_arity_enforced(self):
        with pytest.raises(CircuitError):
            Gate(GateType.ADD, (1,))
        with pytest.raises(CircuitError):
            Gate(GateType.INPUT, (0,), client="a")

    def test_constant_required(self):
        with pytest.raises(CircuitError):
            Gate(GateType.CMUL, (0,))

    def test_client_required(self):
        with pytest.raises(CircuitError):
            Gate(GateType.INPUT)


class TestCircuitValidation:
    def test_empty_rejected(self):
        with pytest.raises(CircuitError):
            Circuit([])

    def test_forward_reference_rejected(self):
        gates = [Gate(GateType.INPUT, client="a"), Gate(GateType.ADD, (0, 2)),
                 Gate(GateType.INPUT, client="a")]
        with pytest.raises(CircuitError):
            Circuit(gates)

    def test_reading_output_wire_rejected(self):
        b = CircuitBuilder()
        x = b.input("a")
        out = b.output(x, "a")
        with pytest.raises(CircuitError):
            b.add(x, out)


class TestBuilder:
    def test_basic_shape(self):
        b = CircuitBuilder()
        x, y = b.input("alice"), b.input("bob")
        z = b.mul(b.add(x, y), x)
        b.output(z, "alice")
        c = b.build()
        assert c.n_inputs == 2 and c.n_multiplications == 1 and c.n_outputs == 1

    def test_unknown_wire_rejected(self):
        b = CircuitBuilder()
        with pytest.raises(CircuitError):
            b.add(0, 1)

    def test_sum_tree(self):
        b = CircuitBuilder()
        xs = b.inputs("a", 5)
        b.output(b.sum(xs), "a")
        c = b.build()
        ev = c.evaluate(F, {"a": [1, 2, 3, 4, 5]})
        assert int(ev.outputs["a"][0]) == 15

    def test_sum_empty_rejected(self):
        with pytest.raises(CircuitError):
            CircuitBuilder().sum([])

    def test_dot(self):
        b = CircuitBuilder()
        xs, ys = b.inputs("a", 3), b.inputs("b", 3)
        b.output(b.dot(xs, ys), "a")
        ev = b.build().evaluate(F, {"a": [1, 2, 3], "b": [4, 5, 6]})
        assert int(ev.outputs["a"][0]) == 32

    def test_linear_combination(self):
        b = CircuitBuilder()
        xs = b.inputs("a", 3)
        b.output(b.linear_combination([2, 3, 4], xs), "a")
        ev = b.build().evaluate(F, {"a": [1, 1, 1]})
        assert int(ev.outputs["a"][0]) == 9

    def test_power(self):
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.power(x, 5), "a")
        ev = b.build().evaluate(F, {"a": [3]})
        assert int(ev.outputs["a"][0]) == 243

    def test_power_requires_positive_exponent(self):
        b = CircuitBuilder()
        x = b.input("a")
        with pytest.raises(CircuitError):
            b.power(x, 0)


class TestEvaluation:
    def test_all_gate_types(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("a")
        w = b.cadd(10, b.cmul(3, b.sub(b.add(x, y), y)))  # 3x + 10
        z = b.mul(w, y)
        b.output(z, "a")
        ev = b.build().evaluate(F, {"a": [5, 7]})
        assert int(ev.outputs["a"][0]) == (3 * 5 + 10) * 7

    def test_missing_client_rejected(self):
        b = CircuitBuilder()
        b.input("a")
        b.output(0, "a")
        with pytest.raises(CircuitError):
            b.build().evaluate(F, {})

    def test_too_few_inputs_rejected(self):
        b = CircuitBuilder()
        b.inputs("a", 2)
        b.output(0, "a")
        with pytest.raises(CircuitError):
            b.build().evaluate(F, {"a": [1]})

    def test_too_many_inputs_rejected(self):
        b = CircuitBuilder()
        b.input("a")
        b.output(0, "a")
        with pytest.raises(CircuitError):
            b.build().evaluate(F, {"a": [1, 2]})

    def test_negative_constants(self):
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.cmul(-2, b.cadd(-1, x)), "a")
        ev = b.build().evaluate(F, {"a": [10]})
        assert ev.outputs["a"][0] == F(-18)

    def test_multi_client_outputs(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("b")
        b.output(x, "a")
        b.output(y, "b")
        b.output(b.add(x, y), "b")
        ev = b.build().evaluate(F, {"a": [1], "b": [2]})
        assert [int(v) for v in ev.outputs["b"]] == [2, 3]


class TestShapeQueries:
    def test_depths(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("a")
        m1 = b.mul(x, y)            # depth 1
        m2 = b.mul(m1, b.add(x, m1))  # depth 2
        b.output(m2, "a")
        c = b.build()
        depths = c.depths()
        assert depths[m1] == 1 and depths[m2] == 2

    def test_client_queries(self):
        b = CircuitBuilder()
        b.input("z")
        b.input("a")
        b.input("z")
        b.output(0, "q")
        c = b.build()
        assert c.input_clients() == ["z", "a"]  # first-appearance order
        assert c.inputs_of_client("z") == [0, 2]
        assert c.output_clients() == ["q"]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1 << 30))
def test_random_circuit_evaluates(seed):
    from repro.circuits import random_circuit

    rng = random.Random(seed)
    c = random_circuit(rng, n_inputs=4, n_gates=15, n_clients=2)
    inputs = {
        f"client{i}": [rng.randrange(100) for _ in c.inputs_of_client(f"client{i}")]
        for i in range(2)
    }
    ev = c.evaluate(F, inputs)
    assert len(ev.wire_values) == len(c.gates)
