"""End-to-end, adversarial, and lifecycle tests for ``repro.service``.

The service is the long-lived client-aided deployment shape: clients
post encrypted inputs once, epoch committees aggregate homomorphically,
evaluate the workload circuit under YOSO MPC, publish, and reshare the
threshold key to the next committee.  These tests drive full epochs —
with client churn, a committee fail-stop crash, and byte-exact cost
accounting — and then attack the ingest pipeline with every malformed
submission shape, checking each is rejected with its own error type and
never reaches evaluation.
"""

import random

import pytest

from repro.accounting.symbolic import cost_check_enabled
from repro.errors import (
    EpochMismatchError,
    InvalidProofError,
    MalformedSubmissionError,
    OversizedCiphertextError,
    ReplayedClientError,
    ServiceError,
    ServiceOverloaded,
)
from repro.paillier import generate_keypair
from repro.service import (
    ClientInput,
    EpochAnnouncement,
    MpcService,
    ServiceClient,
    encode_slots,
    make_workload,
    proof_context,
)
from repro.wire import KeyAnnouncement

STATS_CLIENTS = 24
CHURN = 0.25          # 6 of 24 ids replaced between epochs


def _submit_clients(svc, announcement, values, rng):
    for client_id, value in values.items():
        client = ServiceClient(client_id, announcement, rng=rng)
        svc.submit(client.build_input(value))
    svc.ingest()


# -- statistics: two epochs, churn, one fail-stop crash -----------------------

@pytest.fixture(scope="module")
def stats_run():
    """Two full statistics epochs: crash in epoch 0, churned ids in 1."""
    rng = random.Random(99)
    runs = []
    with MpcService(workload="statistics", statistics_groups=2,
                    seed=1234) as svc:
        for index in range(2):
            announcement = svc.open_epoch()
            offset = round(index * CHURN * STATS_CLIENTS)
            values = {
                f"client-{i:04d}": rng.randrange(100)
                for i in range(offset, offset + STATS_CLIENTS)
            }
            _submit_clients(svc, announcement, values, rng)
            summary = svc.close_epoch(crash=3 if index == 0 else None)
            runs.append((values, summary))
        report = svc.verify_costs()
    return runs, report


class TestStatisticsService:
    def test_both_epochs_exact(self, stats_run):
        runs, _ = stats_run
        for values, summary in runs:
            xs = list(values.values())
            n, s = len(xs), sum(xs)
            q = sum(x * x for x in xs)
            assert summary.population == STATS_CLIENTS
            assert summary.rejections == {}
            assert summary.decoded["sum"] == s
            assert summary.decoded["mean"] == pytest.approx(s / n)
            assert summary.decoded["variance"] == pytest.approx(
                (n * q - s * s) / n**2
            )

    def test_crash_excludes_member_from_decrypt_and_reshare(self, stats_run):
        runs, _ = stats_run
        _, epoch0 = runs[0]
        _, epoch1 = runs[1]
        assert 3 not in epoch0.contributors
        assert 3 not in epoch0.reshare_contributors
        assert len(epoch0.reshare_contributors) == 4
        # The next committee is fresh: all five members are back.
        assert len(epoch1.reshare_contributors) == 5

    def test_churned_population_still_evaluates(self, stats_run):
        runs, _ = stats_run
        ids0 = set(runs[0][0])
        ids1 = set(runs[1][0])
        replaced = len(ids0 - ids1)
        assert replaced >= round(0.10 * STATS_CLIENTS)
        assert runs[1][1].epoch == 1

    def test_cost_exactness_on_memory_transport(self, stats_run):
        _, report = stats_run
        # Announcements, >=10^1 client inputs per epoch, results, and
        # resharings all matched their closed-form byte formulas.
        assert report.skipped == 0
        assert report.envelopes > 2 * STATS_CLIENTS
        variants = {tot.variant for tot in report.totals}
        assert "service.client_input" in variants

    def test_epochs_advance_and_key_rotates(self, stats_run):
        runs, _ = stats_run
        key0 = runs[0][1].result.epoch
        assert key0 == 0
        assert runs[1][1].result.epoch == 1


# -- auction ------------------------------------------------------------------

@pytest.fixture(scope="module")
def auction_run():
    rng = random.Random(5)
    bids = {f"bidder-{i:03d}": rng.randrange(4) for i in range(12)}
    with MpcService(workload="auction", auction_levels=4, seed=777) as svc:
        announcement = svc.open_epoch()
        _submit_clients(svc, announcement, bids, rng)
        summary = svc.close_epoch()
    return bids, summary


class TestAuctionService:
    def test_vickrey_outcome(self, auction_run):
        bids, summary = auction_run
        ranked = sorted(bids.values(), reverse=True)
        assert summary.decoded["winner_level"] == ranked[0]
        assert summary.decoded["price"] == ranked[1]
        assert summary.decoded["winner_count"] == ranked.count(ranked[0])

    def test_population_matches(self, auction_run):
        bids, summary = auction_run
        assert summary.population == len(bids)
        assert summary.rejections == {}


# -- cost exactness over the sim transport ------------------------------------

@pytest.mark.skipif(not cost_check_enabled(), reason="cost check disabled")
def test_cost_exactness_on_sim_transport():
    rng = random.Random(11)
    with MpcService(workload="statistics", statistics_groups=2,
                    seed=31, transport="sim") as svc:
        announcement = svc.open_epoch()
        values = {f"c-{i}": rng.randrange(50) for i in range(6)}
        _submit_clients(svc, announcement, values, rng)
        summary = svc.close_epoch()
        report = svc.verify_costs()
    assert summary.population == 6
    assert report.skipped == 0
    assert {tot.variant for tot in report.totals} >= {
        "service.client_input", "service.epoch",
        "service.result", "service.reshare",
    }


def test_service_over_socket_transport():
    # The regression here is key announcement: client inputs arrive under
    # the epoch key, resharings under the *next* committee's role keys,
    # and cross-process decoders must learn both before first use.
    rng = random.Random(17)
    with MpcService(workload="statistics", statistics_groups=2, seed=13,
                    transport="socket:workers=2") as svc:
        announcement = svc.open_epoch()
        values = {f"s-{i}": rng.randrange(50) for i in range(8)}
        _submit_clients(svc, announcement, values, rng)
        summary = svc.close_epoch(crash=2)
    assert summary.population == 8
    assert summary.decoded["sum"] == sum(values.values())
    assert 2 not in summary.reshare_contributors


# -- adversarial ingest -------------------------------------------------------

@pytest.fixture(scope="module")
def adversarial_run():
    """Three honest clients and five distinct attacks, one epoch."""
    rng = random.Random(21)
    with MpcService(workload="statistics", statistics_groups=2,
                    seed=4242) as svc:
        announcement = svc.open_epoch()
        honest = {"alice": 5, "bob": 7, "carol": 9}
        payloads = {
            cid: ServiceClient(cid, announcement, rng=rng).build_input(v)
            for cid, v in honest.items()
        }
        for payload in payloads.values():
            svc.submit(payload)

        # Replay: alice's accepted submission posted again verbatim.
        svc.submit(payloads["alice"])

        # Wrong epoch tag: a well-formed input bound to a future epoch.
        stale = ServiceClient("dave", announcement, rng=rng).build_input(3)
        object.__setattr__(stale, "epoch", announcement.epoch + 5)
        svc.submit(stale)

        # Foreign (wrong-size) key: ciphertexts under a 128-bit modulus
        # nobody announced.
        foreign = generate_keypair(128)
        fake = EpochAnnouncement(
            epoch=announcement.epoch,
            workload=announcement.workload,
            slots=announcement.slots,
            input_window=announcement.input_window,
            key=KeyAnnouncement(foreign.public.n),
            verification_base=4,
        )
        svc.submit(ServiceClient("mallory", fake, rng=rng).build_input(2))

        # Undecodable bytes.
        svc.submit(b"\x0bgarbage")

        # Proof/context mismatch: slot proofs swapped between slots, so
        # each verifies against the other slot's binding context.
        honest_input = ServiceClient("erin", announcement,
                                     rng=rng).build_input(4)
        swapped = ClientInput(
            client_id="erin",
            epoch=honest_input.epoch,
            ciphertexts=honest_input.ciphertexts,
            proofs=(honest_input.proofs[1], honest_input.proofs[0]),
        )
        svc.submit(swapped)

        svc.ingest()
        ledger = svc.ledger()
        summary = svc.close_epoch()
    return honest, ledger, summary


class TestAdversarialIngest:
    def test_each_attack_gets_its_own_error(self, adversarial_run):
        _, ledger, _ = adversarial_run
        assert ledger.rejection_counts() == {
            "EpochMismatchError": 1,
            "InvalidProofError": 1,
            "MalformedSubmissionError": 1,
            "OversizedCiphertextError": 1,
            "ReplayedClientError": 1,
        }

    def test_rejected_submissions_never_reach_evaluation(
        self, adversarial_run
    ):
        honest, ledger, summary = adversarial_run
        assert set(ledger.accepted) == set(honest)
        assert summary.population == len(honest)
        assert summary.decoded["sum"] == sum(honest.values())

    def test_rejections_carry_client_ids(self, adversarial_run):
        _, ledger, _ = adversarial_run
        by_error = {r.error: r.client_id for r in ledger.rejections}
        assert by_error["ReplayedClientError"] == "alice"
        assert by_error["EpochMismatchError"] == "dave"
        assert by_error["OversizedCiphertextError"] == "mallory"
        assert by_error["InvalidProofError"] == "erin"


# -- backpressure and lifecycle guards ----------------------------------------

class TestBackpressure:
    def test_bounded_queue_sheds_loudly(self):
        with MpcService(queue_capacity=4, seed=8) as svc:
            svc.open_epoch()
            for _ in range(4):
                svc.submit(b"x")
            with pytest.raises(ServiceOverloaded, match="retry"):
                svc.submit(b"x")
            # Draining (which rejects the garbage) frees the queue.
            assert svc.ingest() == 0
            svc.submit(b"x")

    def test_submit_requires_open_epoch(self):
        with MpcService(seed=9) as svc:
            with pytest.raises(ServiceError, match="no open epoch"):
                svc.submit(b"x")

    def test_crash_guard_preserves_threshold(self):
        with MpcService(seed=10) as svc:
            svc.open_epoch()
            coordinator = svc.coordinator
            indices = [m.index for m in coordinator.committee.surviving()]
            headroom = len(indices) - (svc.t + 1)
            for index in indices[:headroom]:
                coordinator.crash(index)
                coordinator.crash(index)  # idempotent
            with pytest.raises(ServiceError, match="t\\+1"):
                coordinator.crash(indices[headroom])

    def test_unknown_override_rejected(self):
        with pytest.raises(ServiceError, match="unknown service option"):
            MpcService(seed=11, nonsense=True)


class TestDeterminism:
    def test_same_seed_same_announcement(self):
        with MpcService(seed=55) as a, MpcService(seed=55) as b:
            ann_a = a.open_epoch()
            ann_b = b.open_epoch()
        assert ann_a == ann_b
        assert a.board.codec.encode(ann_a) == b.board.codec.encode(ann_b)

    def test_different_seed_different_announcement(self):
        # The 64-bit test modulus comes from a fixture, so the *sharing*
        # (verification base and share polynomial), not the modulus, is
        # what the seed drives.
        with MpcService(seed=55) as a, MpcService(seed=56) as b:
            ann_a, ann_b = a.open_epoch(), b.open_epoch()
        assert ann_a.verification_base != ann_b.verification_base


# -- client-side encoding -----------------------------------------------------

class TestClientEncoding:
    def test_statistics_slots(self):
        assert encode_slots("statistics", 2, 31) == [31, 961]

    def test_statistics_value_bound(self):
        with pytest.raises(MalformedSubmissionError, match="statistics"):
            encode_slots("statistics", 2, 1024)

    def test_auction_one_hot(self):
        assert encode_slots("auction", 4, 2) == [0, 0, 1, 0]

    def test_auction_bid_bound(self):
        with pytest.raises(MalformedSubmissionError, match="level"):
            encode_slots("auction", 4, 4)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ServiceError, match="unknown workload"):
            make_workload("poker")

    def test_proof_context_binds_epoch_client_slot(self):
        contexts = {
            proof_context(e, c, s)
            for e in (0, 1) for c in ("a", "b") for s in (0, 1)
        }
        assert len(contexts) == 8
