"""Tests for the circuit optimizer (folding, CSE, dead-code)."""

import random

from hypothesis import given, settings, strategies as st

from repro.circuits import CircuitBuilder, optimize, random_circuit
from repro.circuits.circuit import GateType
from repro.fields import Zmod

F = Zmod((1 << 61) - 1)


def _equivalent(original, optimized, wire_map, inputs):
    """Both circuits produce identical outputs (and mapped wires agree)."""
    ev_a = original.evaluate(F, inputs)
    ev_b = optimized.evaluate(F, inputs)
    assert ev_a.outputs == ev_b.outputs
    for old, new in wire_map.items():
        assert ev_a.wire_values[old] == ev_b.wire_values[new]


class TestIdentities:
    def test_multiply_by_one_removed(self):
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.cmul(1, x), "a")
        result = optimize(b.build())
        assert result.circuit.n_multiplications == 0
        assert all(
            g.kind is not GateType.CMUL for g in result.circuit.gates
        )
        _equivalent(b.build(), result.circuit, result.wire_map, {"a": [9]})

    def test_add_zero_removed(self):
        b = CircuitBuilder()
        x = b.input("a")
        b.output(b.cadd(0, x), "a")
        result = optimize(b.build())
        assert len(result.circuit.gates) == 2  # input + output
        _equivalent(b.build(), result.circuit, result.wire_map, {"a": [3]})

    def test_x_minus_x_folds_to_zero(self):
        b = CircuitBuilder()
        x = b.input("a")
        z = b.sub(x, x)
        b.output(b.mul(z, x), "a")  # 0·x
        result = optimize(b.build())
        assert result.circuit.n_multiplications == 0
        _equivalent(b.build(), result.circuit, result.wire_map, {"a": [5]})

    def test_mul_by_folded_constant_becomes_cmul(self):
        b = CircuitBuilder()
        x = b.input("a")
        z = b.sub(x, x)          # constant 0
        five = b.cadd(5, z)      # constant 5
        b.output(b.mul(five, x), "a")
        result = optimize(b.build())
        assert result.circuit.n_multiplications == 0
        assert result.multiplications_removed == 1
        _equivalent(b.build(), result.circuit, result.wire_map, {"a": [7]})


class TestCse:
    def test_duplicate_gates_merged(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("a")
        m1 = b.mul(x, y)
        m2 = b.mul(x, y)  # identical
        b.output(b.add(m1, m2), "a")
        result = optimize(b.build())
        assert result.circuit.n_multiplications == 1
        _equivalent(b.build(), result.circuit, result.wire_map, {"a": [3, 4]})

    def test_distinct_gates_not_merged(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("a")
        b.output(b.add(b.mul(x, y), b.mul(y, x)), "a")  # operand order differs
        result = optimize(b.build())
        assert result.circuit.n_multiplications == 2


class TestDeadCode:
    def test_unused_chain_removed(self):
        b = CircuitBuilder()
        x, y = b.input("a"), b.input("a")
        b.mul(b.mul(x, y), y)  # dead
        b.output(b.add(x, y), "a")
        result = optimize(b.build())
        assert result.circuit.n_multiplications == 0
        assert result.gates_removed >= 2
        _equivalent(b.build(), result.circuit, result.wire_map, {"a": [2, 3]})

    def test_inputs_preserved_even_if_unused(self):
        b = CircuitBuilder()
        x, _unused = b.input("a"), b.input("a")
        b.output(x, "a")
        result = optimize(b.build())
        assert result.circuit.n_inputs == 2
        _equivalent(b.build(), result.circuit, result.wire_map, {"a": [1, 2]})


class TestEndToEnd:
    def test_optimized_circuit_runs_in_protocol(self):
        from repro.core import run_mpc

        b = CircuitBuilder()
        x, y = b.input("alice"), b.input("bob")
        noise = b.mul(b.cmul(0, x), y)      # folds to constant 0
        z = b.add(b.mul(x, y), noise)
        b.output(z, "alice")
        result = optimize(b.build())
        assert result.circuit.n_multiplications == 1
        run = run_mpc(result.circuit, {"alice": [6], "bob": [7]},
                      n=4, epsilon=0.2, seed=77)
        assert run.outputs["alice"] == [42]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1 << 30))
def test_optimization_preserves_semantics(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng, n_inputs=4, n_gates=20, n_clients=2,
                             value_bound=30)
    inputs = {
        f"client{i}": [rng.randrange(100) for _ in circuit.inputs_of_client(f"client{i}")]
        for i in range(2)
    }
    result = optimize(circuit)
    assert result.circuit.n_multiplications <= circuit.n_multiplications
    _equivalent(circuit, result.circuit, result.wire_map, inputs)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1 << 30))
def test_optimization_idempotent(seed):
    rng = random.Random(seed)
    circuit = random_circuit(rng, n_inputs=3, n_gates=15, n_clients=2)
    once = optimize(circuit)
    twice = optimize(once.circuit)
    assert len(twice.circuit.gates) >= len(once.circuit.gates) - 2
