"""Unit and property tests for the Z_m ring layer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NonInvertibleError, ParameterError, RingMismatchError
from repro.fields import Zmod
from repro.fields.ring import dot

PRIME = (1 << 31) - 1


class TestConstruction:
    def test_modulus_must_be_at_least_two(self):
        with pytest.raises(ParameterError):
            Zmod(1)

    def test_small_prime_detected(self):
        assert Zmod(257).is_field()
        assert not Zmod(256).is_field()

    def test_assume_prime_hint_respected(self):
        composite = Zmod(15 * 17, assume_prime=False)
        assert not composite.is_field()

    def test_element_canonical_representative(self):
        F = Zmod(7)
        assert int(F(10)) == 3
        assert int(F(-1)) == 6

    def test_call_coerces_existing_element(self):
        F = Zmod(7)
        x = F(3)
        assert F(x) is x

    def test_coercion_from_other_ring_rejected(self):
        with pytest.raises(RingMismatchError):
            Zmod(7)(Zmod(11)(3))

    def test_elements_vector(self):
        F = Zmod(11)
        assert [int(x) for x in F.elements([1, 12, -1])] == [1, 1, 10]

    def test_repr_distinguishes_field(self):
        assert repr(Zmod(257)).startswith("GF")

    def test_iterate_small_ring(self):
        assert len(list(Zmod(5))) == 5

    def test_iterate_large_ring_refused(self):
        with pytest.raises(ParameterError):
            list(Zmod(1 << 20))


class TestArithmetic:
    def setup_method(self):
        self.F = Zmod(PRIME)

    def test_add_sub_roundtrip(self):
        a, b = self.F(123456), self.F(654321)
        assert (a + b) - b == a

    def test_int_operands_coerce(self):
        assert self.F(5) + 3 == self.F(8)
        assert 3 + self.F(5) == 8
        assert 10 - self.F(4) == 6
        assert 3 * self.F(5) == 15

    def test_negation(self):
        a = self.F(42)
        assert a + (-a) == 0

    def test_division(self):
        a, b = self.F(981), self.F(17)
        assert (a / b) * b == a

    def test_rtruediv(self):
        assert 1 / self.F(2) == self.F(2).inverse()

    def test_pow_negative_exponent(self):
        a = self.F(5)
        assert a ** -2 == (a ** 2).inverse()

    def test_division_by_zero_raises(self):
        with pytest.raises(NonInvertibleError):
            self.F(1) / self.F(0)

    def test_noninvertible_in_composite_ring(self):
        R = Zmod(15, assume_prime=False)
        with pytest.raises(NonInvertibleError) as exc:
            R.inverse(5)
        assert exc.value.gcd == 5

    def test_cross_ring_arithmetic_rejected(self):
        with pytest.raises(RingMismatchError):
            Zmod(7)(1) + Zmod(11)(1)

    def test_elements_hashable_and_equal(self):
        assert {self.F(3), self.F(3)} == {self.F(3)}
        assert self.F(3) == 3

    def test_immutability(self):
        with pytest.raises(AttributeError):
            self.F(3).value = 4

    def test_bool_and_is_zero(self):
        assert not self.F(0)
        assert self.F(0).is_zero()
        assert self.F(1)


class TestDot:
    def test_dot_matches_manual(self):
        F = Zmod(PRIME)
        xs, ys = F.elements([1, 2, 3]), F.elements([4, 5, 6])
        assert dot(xs, ys) == 1 * 4 + 2 * 5 + 3 * 6

    def test_dot_length_mismatch(self):
        F = Zmod(PRIME)
        with pytest.raises(ParameterError):
            dot(F.elements([1]), F.elements([1, 2]))

    def test_dot_empty_rejected(self):
        with pytest.raises(ParameterError):
            dot([], [])


class TestRandom:
    def test_seeded_rng_reproducible(self):
        F = Zmod(PRIME)
        a = F.random(random.Random(7))
        b = F.random(random.Random(7))
        assert a == b

    def test_csprng_default_in_range(self):
        F = Zmod(97)
        for _ in range(20):
            assert 0 <= int(F.random()) < 97

    def test_random_vector_length(self):
        F = Zmod(PRIME)
        assert len(F.random_vector(5, random.Random(1))) == 5


@settings(max_examples=50, deadline=None)
@given(a=st.integers(), b=st.integers(), c=st.integers())
def test_ring_axioms(a, b, c):
    F = Zmod(PRIME)
    x, y, z = F(a), F(b), F(c)
    assert (x + y) + z == x + (y + z)
    assert x + y == y + x
    assert (x * y) * z == x * (y * z)
    assert x * (y + z) == x * y + x * z
    assert x + 0 == x
    assert x * 1 == x


@settings(max_examples=50, deadline=None)
@given(a=st.integers(min_value=1, max_value=PRIME - 1))
def test_field_inverse_property(a):
    F = Zmod(PRIME)
    assert F(a) * F(a).inverse() == 1
