"""Tests for the threshold Paillier scheme (TKGen/TPDec/TDec/TEval/TKRes/TKRec)."""


import pytest

from repro.errors import EncryptionError, ParameterError
from repro.paillier import ThresholdPaillier
from repro.paillier.threshold import (
    PartialDecryption,
    recombine_with_epoch,
    teval,
)


class TestKeygen:
    def test_share_count_and_epoch(self, threshold_setup):
        tpk, shares = threshold_setup
        assert len(shares) == tpk.n_parties == 5
        assert all(s.epoch == 0 for s in shares)

    def test_verification_values_consistent(self, threshold_setup):
        tpk, shares = threshold_setup
        for s in shares:
            assert s.verification == pow(
                tpk.verification_base, tpk.delta * s.value, tpk.n_squared
            )

    def test_correction_factor(self, threshold_setup):
        tpk, _ = threshold_setup
        assert tpk.correction_factor(0) == 4 * pow(tpk.delta, 2, tpk.n) % tpk.n
        assert tpk.correction_factor(2) == 4 * pow(tpk.delta, 4, tpk.n) % tpk.n

    def test_bad_threshold_rejected(self):
        with pytest.raises(ParameterError):
            ThresholdPaillier.keygen(3, 3, bits=64)

    def test_too_many_parties_for_modulus(self):
        with pytest.raises(ParameterError):
            ThresholdPaillier.keygen_from_primes(11, 23, 10, 2)


class TestDecryption:
    def test_full_committee(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        ct = tpk.encrypt(123456, rng=rng)
        assert ThresholdPaillier.decrypt(tpk, shares, ct) == 123456

    def test_any_quorum(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        ct = tpk.encrypt(777, rng=rng)
        assert ThresholdPaillier.decrypt(tpk, shares[:3], ct) == 777
        assert ThresholdPaillier.decrypt(tpk, shares[2:], ct) == 777
        assert ThresholdPaillier.decrypt(tpk, [shares[0], shares[2], shares[4]], ct) == 777

    def test_below_quorum_rejected(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        ct = tpk.encrypt(1, rng=rng)
        partials = [ThresholdPaillier.partial_decrypt(tpk, s, ct) for s in shares[:2]]
        with pytest.raises(EncryptionError):
            ThresholdPaillier.combine(tpk, partials)

    def test_duplicate_partials_rejected(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        ct = tpk.encrypt(1, rng=rng)
        p = ThresholdPaillier.partial_decrypt(tpk, shares[0], ct)
        with pytest.raises(EncryptionError):
            ThresholdPaillier.combine(tpk, [p, p, p])

    def test_mixed_epochs_rejected(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        ct = tpk.encrypt(1, rng=rng)
        partials = [ThresholdPaillier.partial_decrypt(tpk, s, ct) for s in shares[:3]]
        forged = PartialDecryption(partials[0].index, partials[0].value, epoch=1)
        with pytest.raises(EncryptionError):
            ThresholdPaillier.combine(tpk, [forged] + partials[1:])

    def test_foreign_ciphertext_rejected(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        other_tpk, _ = ThresholdPaillier.keygen(3, 1, bits=64, rng=rng, fixture_index=3)
        ct = other_tpk.encrypt(1, rng=rng)
        with pytest.raises(EncryptionError):
            ThresholdPaillier.partial_decrypt(tpk, shares[0], ct)


class TestTEval:
    def test_linear_combination(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        cts = [tpk.encrypt(m, rng=rng) for m in (10, 20, 30)]
        combo = teval(tpk, cts, [1, 2, 3])
        assert ThresholdPaillier.decrypt(tpk, shares[:3], combo) == 10 + 40 + 90

    def test_negative_coefficients(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        cts = [tpk.encrypt(m, rng=rng) for m in (50, 20)]
        combo = teval(tpk, cts, [1, -1])
        assert ThresholdPaillier.decrypt(tpk, shares[:3], combo) == 30

    def test_empty_rejected(self, threshold_setup):
        tpk, _ = threshold_setup
        with pytest.raises(ParameterError):
            teval(tpk, [], [])

    def test_length_mismatch_rejected(self, threshold_setup, rng):
        tpk, _ = threshold_setup
        with pytest.raises(ParameterError):
            teval(tpk, [tpk.encrypt(1, rng=rng)], [1, 2])


class TestResharing:
    def _reshare_once(self, tpk, shares, contributor_set, rng, epoch):
        msgs = {s.index: ThresholdPaillier.reshare(tpk, s, rng=rng) for s in shares}
        new = []
        for j in range(1, tpk.n_parties + 1):
            contrib = {i: msgs[i].subshares[j - 1] for i in contributor_set}
            new.append(
                recombine_with_epoch(tpk, j, contrib, epoch, contributor_set)
            )
        return msgs, new

    def test_single_epoch(self, threshold_setup_t1, rng):
        tpk, shares = threshold_setup_t1
        ct = tpk.encrypt(42, rng=rng)
        _, new = self._reshare_once(tpk, shares, [1, 2, 3], rng, 0)
        assert all(s.epoch == 1 for s in new)
        assert ThresholdPaillier.decrypt(tpk, new[:2], ct) == 42

    def test_three_epochs(self, threshold_setup_t1, rng):
        tpk, shares = threshold_setup_t1
        ct = tpk.encrypt(2024, rng=rng)
        current = list(shares)
        for epoch in range(3):
            _, current = self._reshare_once(tpk, current, [1, 2, 4], rng, epoch)
        assert ThresholdPaillier.decrypt(tpk, current[1:3], ct) == 2024

    def test_different_quorums_same_result(self, threshold_setup_t1, rng):
        tpk, shares = threshold_setup_t1
        ct = tpk.encrypt(5, rng=rng)
        _, new = self._reshare_once(tpk, shares, [2, 3, 4], rng, 0)
        a = ThresholdPaillier.decrypt(tpk, new[:2], ct)
        b = ThresholdPaillier.decrypt(tpk, new[2:], ct)
        assert a == b == 5

    def test_verification_evolution(self, threshold_setup_t1, rng):
        tpk, shares = threshold_setup_t1
        cset = [1, 2, 3]
        msgs, new = self._reshare_once(tpk, shares, cset, rng, 0)
        for s in new:
            derived = ThresholdPaillier.derive_verification(
                tpk, s.index, list(msgs.values()), cset
            )
            assert derived == s.verification

    def test_insufficient_contributions_rejected(self, threshold_setup_t1, rng):
        tpk, shares = threshold_setup_t1
        msg = ThresholdPaillier.reshare(tpk, shares[0], rng=rng)
        with pytest.raises(EncryptionError):
            ThresholdPaillier.recombine(tpk, 1, {1: msg.subshares[0]}, [1])

    def test_missing_contribution_rejected(self, threshold_setup_t1, rng):
        tpk, shares = threshold_setup_t1
        msgs = {s.index: ThresholdPaillier.reshare(tpk, s, rng=rng) for s in shares}
        with pytest.raises(EncryptionError):
            ThresholdPaillier.recombine(
                tpk, 1, {1: msgs[1].subshares[0], 2: msgs[2].subshares[0]}, [1, 2, 3]
            )


class TestSimTPDec:
    def test_forces_target_message(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        ct = tpk.encrypt(1111, rng=rng)
        corrupt = [ThresholdPaillier.partial_decrypt(tpk, s, ct) for s in shares[:2]]
        simulated = ThresholdPaillier.simulate_partials(
            tpk, ct, 9999, shares[2:], corrupt
        )
        assert ThresholdPaillier.combine(tpk, corrupt + simulated) == 9999

    def test_identity_when_target_matches(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        ct = tpk.encrypt(31337, rng=rng)
        corrupt = [ThresholdPaillier.partial_decrypt(tpk, shares[0], ct)]
        simulated = ThresholdPaillier.simulate_partials(
            tpk, ct, 31337, shares[1:], corrupt
        )
        honest = [ThresholdPaillier.partial_decrypt(tpk, s, ct) for s in shares[1:]]
        assert [p.value for p in simulated] == [p.value for p in honest]

    def test_needs_honest_share(self, threshold_setup, rng):
        tpk, shares = threshold_setup
        ct = tpk.encrypt(0, rng=rng)
        with pytest.raises(EncryptionError):
            ThresholdPaillier.simulate_partials(tpk, ct, 5, [], [])

    def test_works_after_resharing(self, threshold_setup_t1, rng):
        tpk, shares = threshold_setup_t1
        msgs = {s.index: ThresholdPaillier.reshare(tpk, s, rng=rng) for s in shares}
        cset = [1, 2, 3]
        new = [
            recombine_with_epoch(
                tpk, j, {i: msgs[i].subshares[j - 1] for i in cset}, 0, cset
            )
            for j in range(1, 5)
        ]
        ct = tpk.encrypt(808, rng=rng)
        corrupt = [ThresholdPaillier.partial_decrypt(tpk, new[0], ct)]
        simulated = ThresholdPaillier.simulate_partials(tpk, ct, 111, new[1:], corrupt)
        assert ThresholdPaillier.combine(tpk, corrupt + simulated) == 111
