"""Tests for the circuit library (the example workloads)."""


import pytest

from repro.circuits import (
    dot_product_circuit,
    inner_product_sum_circuit,
    linear_model_circuit,
    masked_membership_circuit,
    matrix_vector_circuit,
    polynomial_eval_circuit,
    statistics_circuit,
)
from repro.errors import CircuitError
from repro.fields import Zmod

F = Zmod((1 << 61) - 1)


class TestDotProduct:
    def test_value(self):
        c = dot_product_circuit(3)
        ev = c.evaluate(F, {"alice": [1, 2, 3], "bob": [4, 5, 6]})
        assert int(ev.outputs["alice"][0]) == 32

    def test_custom_recipient(self):
        c = dot_product_circuit(2, recipient="carol")
        ev = c.evaluate(F, {"alice": [1, 1], "bob": [1, 1]})
        assert int(ev.outputs["carol"][0]) == 2


class TestInnerProductSum:
    def test_aggregation(self):
        c = inner_product_sum_circuit(n_clients=3, length=2)
        ev = c.evaluate(
            F, {"model": [10, 1], "client1": [1, 2], "client2": [3, 4]}
        )
        assert int(ev.outputs["aggregator"][0]) == (10 + 2) + (30 + 4)

    def test_needs_two_clients(self):
        with pytest.raises(CircuitError):
            inner_product_sum_circuit(n_clients=1, length=2)


class TestLinearModel:
    def test_inference(self):
        c = linear_model_circuit(3)
        ev = c.evaluate(F, {"model": [2, 3, 4, 7], "subject": [1, 1, 1]})
        assert int(ev.outputs["subject"][0]) == 2 + 3 + 4 + 7


class TestMatrixVector:
    def test_each_row(self):
        c = matrix_vector_circuit(2, 3)
        ev = c.evaluate(
            F, {"alice": [1, 0, 0, 0, 1, 0], "bob": [7, 8, 9]}
        )
        assert [int(v) for v in ev.outputs["bob"]] == [7, 8]


class TestPolynomialEval:
    def test_horner(self):
        # coefficients high-to-low: 1x^2 + 2x + 3 at x=5
        c = polynomial_eval_circuit(2)
        ev = c.evaluate(F, {"alice": [1, 2, 3], "bob": [5]})
        assert int(ev.outputs["bob"][0]) == 25 + 10 + 3

    def test_degree_validated(self):
        with pytest.raises(CircuitError):
            polynomial_eval_circuit(0)


class TestMaskedMembership:
    def test_member_yields_zero(self):
        c = masked_membership_circuit(4)
        ev = c.evaluate(F, {"alice": [3, 1, 4, 1, 999], "bob": [4]})
        assert int(ev.outputs["bob"][0]) == 0

    def test_non_member_masked(self):
        c = masked_membership_circuit(3)
        ev = c.evaluate(F, {"alice": [3, 1, 4, 999], "bob": [5]})
        assert int(ev.outputs["bob"][0]) == (999 * 2 * 4 * 1) % F.modulus

    def test_empty_set_rejected(self):
        with pytest.raises(CircuitError):
            masked_membership_circuit(0)


class TestStatistics:
    def test_sum_and_second_moment(self):
        c = statistics_circuit(4)
        ev = c.evaluate(F, {f"party{i}": [v] for i, v in enumerate([2, 4, 6, 8])})
        s, q = [int(v) for v in ev.outputs["analyst"]]
        assert s == 20
        assert q == 4 * (4 + 16 + 36 + 64)
        # analyst post-processing: variance * n^2 = Q − S²
        assert (q - s * s) / 16 == 5.0

    def test_needs_two_parties(self):
        with pytest.raises(CircuitError):
            statistics_circuit(1)
