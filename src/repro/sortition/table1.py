"""Table 1 of the paper: sample sortition parameters, and our regeneration.

:data:`TABLE1_PAPER` transcribes the published table verbatim (None = ⊥);
:func:`generate_table1` recomputes every cell from the Section 6 analysis.
The bench ``benchmarks/bench_table1.py`` prints both side by side and
EXPERIMENTS.md records the deltas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SortitionError
from repro.sortition.analysis import DEFAULT_SECURITY, SecurityParameters, analyze

#: The C values and f values spanning the published table.
TABLE1_C_VALUES = (1000, 5000, 10000, 20000, 40000)
TABLE1_F_VALUES = (0.05, 0.10, 0.15, 0.20, 0.25)


@dataclass(frozen=True)
class Table1Row:
    """One row: (C, f) -> (t, c, c', ε, k); None fields mean ⊥."""

    c_param: int
    f: float
    t: int | None
    committee_size: int | None
    committee_size_no_gap: int | None
    epsilon: float | None
    packing_factor: int | None

    @property
    def feasible(self) -> bool:
        return self.t is not None


#: Verbatim transcription of the published Table 1.
TABLE1_PAPER: tuple[Table1Row, ...] = (
    Table1Row(1000, 0.05, 446, 949, 893, 0.03, 28),
    Table1Row(1000, 0.10, None, None, None, None, None),
    Table1Row(1000, 0.15, None, None, None, None, None),
    Table1Row(1000, 0.20, None, None, None, None, None),
    Table1Row(1000, 0.25, None, None, None, None, None),
    Table1Row(5000, 0.05, 1078, 4699, 2157, 0.27, 1271),
    Table1Row(5000, 0.10, 1721, 4925, 3444, 0.15, 741),
    Table1Row(5000, 0.15, 2293, 5106, 4588, 0.05, 259),
    Table1Row(5000, 0.20, None, None, None, None, None),
    Table1Row(5000, 0.25, None, None, None, None, None),
    Table1Row(10000, 0.05, 1754, 9518, 3509, 0.32, 3004),
    Table1Row(10000, 0.10, 2937, 9841, 5876, 0.20, 1982),
    Table1Row(10000, 0.15, 4004, 10098, 8009, 0.10, 1045),
    Table1Row(10000, 0.20, 4983, 10319, 9968, 0.02, 175),
    Table1Row(10000, 0.25, None, None, None, None, None),
    Table1Row(20000, 0.05, 2998, 19264, 5998, 0.34, 6633),
    Table1Row(20000, 0.10, 5216, 19723, 10433, 0.24, 4645),
    Table1Row(20000, 0.15, 7237, 20088, 14476, 0.14, 2806),
    Table1Row(20000, 0.20, 9107, 20401, 18215, 0.05, 1093),
    Table1Row(20000, 0.25, None, None, None, None, None),
    Table1Row(40000, 0.05, 5331, 38907, 10664, 0.36, 14121),
    Table1Row(40000, 0.10, 9552, 39558, 19106, 0.26, 10226),
    Table1Row(40000, 0.15, 13437, 40074, 26875, 0.16, 6600),
    Table1Row(40000, 0.20, 17047, 40517, 34096, 0.08, 3211),
    Table1Row(40000, 0.25, 20408, 40911, 40818, 0.01, 47),
)


def generate_table1(
    sec: SecurityParameters = DEFAULT_SECURITY,
) -> list[Table1Row]:
    """Recompute every (C, f) cell of Table 1 from the analysis."""
    rows: list[Table1Row] = []
    for c_param in TABLE1_C_VALUES:
        for f in TABLE1_F_VALUES:
            try:
                g = analyze(c_param, f, sec)
            except SortitionError:
                rows.append(Table1Row(c_param, f, None, None, None, None, None))
                continue
            # Display conventions matching the published table: t is floored
            # (it matches all 17 feasible cells exactly); c and c' round the
            # un-floored values.
            rows.append(
                Table1Row(
                    c_param=c_param,
                    f=f,
                    t=math.floor(g.t),
                    committee_size=round(g.committee_size),
                    committee_size_no_gap=round(g.committee_size_no_gap),
                    epsilon=round(g.epsilon, 2),
                    packing_factor=g.packing_factor,
                )
            )
    return rows


def paper_row(c_param: int, f: float) -> Table1Row:
    """Look up the published row for (C, f)."""
    for row in TABLE1_PAPER:
        if row.c_param == c_param and abs(row.f - f) < 1e-9:
            return row
    raise KeyError(f"no published row for C={c_param}, f={f}")
