"""Monte-Carlo cryptographic sortition.

The analytic Table 1 bounds hold except with probability 2^-128 — far below
anything observable.  To *validate the mathematics* rather than just trust
it, this module simulates the sortition process (each of N parties joins a
committee independently with probability C/N, an f-fraction being corrupt)
at reduced security parameters where failure probabilities like 2^-6 are
measurable, and compares empirical failure frequencies with the bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class SortitionOutcome:
    """Empirical results of many sortition trials against fixed thresholds."""

    trials: int
    threshold_t: float
    gap_epsilon: float
    corruption_bound_failures: int   # trials with phi >= t
    gap_bound_failures: int          # trials with t > c·(1/2 − ε)
    mean_committee_size: float
    mean_corrupted: float

    @property
    def corruption_failure_rate(self) -> float:
        return self.corruption_bound_failures / self.trials

    @property
    def gap_failure_rate(self) -> float:
        return self.gap_bound_failures / self.trials


def sample_committee_sizes(
    n_total: int,
    f: float,
    c_param: float,
    trials: int,
    rng: random.Random,
) -> list[tuple[int, int]]:
    """Sample (committee size c, corrupted members φ) for ``trials`` runs.

    Selection is Bernoulli(C/N) per party; with ``f·N`` corrupt parties the
    counts are Binomial, sampled directly for speed.
    """
    if not 0 < c_param <= n_total:
        raise ParameterError(f"need 0 < C <= N, got C={c_param}, N={n_total}")
    if not 0 <= f < 1:
        raise ParameterError(f"f must be in [0, 1), got {f}")
    p = c_param / n_total
    n_corrupt = int(f * n_total)
    n_honest = n_total - n_corrupt
    outcomes = []
    for _ in range(trials):
        phi = _binomial(n_corrupt, p, rng)
        honest = _binomial(n_honest, p, rng)
        outcomes.append((phi + honest, phi))
    return outcomes


def simulate_sortition(
    n_total: int,
    f: float,
    c_param: float,
    threshold_t: float,
    gap_epsilon: float,
    trials: int,
    rng: random.Random,
) -> SortitionOutcome:
    """Run trials and count violations of the two Table 1 guarantees."""
    samples = sample_committee_sizes(n_total, f, c_param, trials, rng)
    corruption_failures = sum(1 for _, phi in samples if phi >= threshold_t)
    gap_failures = sum(
        1 for c, _ in samples if threshold_t > c * (0.5 - gap_epsilon)
    )
    return SortitionOutcome(
        trials=trials,
        threshold_t=threshold_t,
        gap_epsilon=gap_epsilon,
        corruption_bound_failures=corruption_failures,
        gap_bound_failures=gap_failures,
        mean_committee_size=sum(c for c, _ in samples) / trials,
        mean_corrupted=sum(phi for _, phi in samples) / trials,
    )


def _binomial(n: int, p: float, rng: random.Random) -> int:
    """Binomial sampling via the normal approximation for large n, exact
    Bernoulli summation for small n (keeps the simulator dependency-free)."""
    if n <= 0:
        return 0
    if n < 1000:
        return sum(1 for _ in range(n) if rng.random() < p)
    mean = n * p
    var = n * p * (1 - p)
    while True:
        value = round(rng.gauss(mean, var ** 0.5))
        if 0 <= value <= n:
            return value
