"""Role assignment with a gap: the Section 6 committee-size analysis.

Generalizes Benhamouda et al.'s cryptographic-sortition tail bounds from
corruption ratio 1/2 to ``1/2 − ε``, computes the paper's Table 1, and
cross-checks the bounds by Monte-Carlo simulation at observable security
levels.
"""

from repro.sortition.analysis import (
    GapParameters,
    SecurityParameters,
    analyze,
    epsilon_one,
    epsilon_two,
    epsilon_three_bounds,
    max_gap,
)
from repro.sortition.table1 import TABLE1_PAPER, Table1Row, generate_table1
from repro.sortition.sortition import SortitionOutcome, sample_committee_sizes, simulate_sortition
from repro.sortition.planning import (
    SeriesPoint,
    feasible_region,
    gap_series,
    max_tolerable_corruption,
    min_committee_for_gap,
    min_committee_for_packing,
    packing_series,
)

__all__ = [
    "GapParameters",
    "SecurityParameters",
    "analyze",
    "epsilon_one",
    "epsilon_two",
    "epsilon_three_bounds",
    "max_gap",
    "TABLE1_PAPER",
    "Table1Row",
    "generate_table1",
    "SortitionOutcome",
    "sample_committee_sizes",
    "simulate_sortition",
    "SeriesPoint",
    "feasible_region",
    "gap_series",
    "max_tolerable_corruption",
    "min_committee_for_gap",
    "min_committee_for_packing",
    "packing_series",
]
