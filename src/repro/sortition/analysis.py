"""Section 6: committee-size analysis for role assignment with a gap.

Reproduces the paper's generalization of Benhamouda et al.'s tail analysis.
Given the sortition parameter ``C`` (expected committee size) and global
corruption ratio ``f``:

* Eq. (4)/(5) give the smallest slack factors ε₁, ε₂ making the corruption
  bound ``t = f·C(1+ε₁) + f(1−f)·C(1+ε₂) + 1`` hold except with
  probability 2^−k₂ (adversarial grinding budget 2^k₁ included for ε₁);
* Eq. (6) bounds ε₃ (the honest-count tail) from below, and bounds the gap
  blow-up factor ``δ = (1/2+ε)/(1/2−ε)`` from above;
* the largest feasible δ yields the gap ε, the committee-size lower bound
  ``c = t/(1/2−ε)``, the ε=0 baseline ``c' = 2t``, and the packing factor
  ``k ≈ c·ε`` — the online-communication improvement over [6]+[29].

Infeasible combinations (the table's ⊥ cells) raise
:class:`~repro.errors.SortitionError` from :func:`analyze`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError, SortitionError

LN2 = math.log(2.0)


@dataclass(frozen=True)
class SecurityParameters:
    """The three analysis security parameters (paper fixes 64/128/128).

    ``k1``: adversary may grind the sortition at most 2^k1 times.
    ``k2``: corruption bound t fails with probability <= 2^-k2.
    ``k3``: committee-size (honest-count) bound fails with prob <= 2^-k3.
    """

    k1: int = 64
    k2: int = 128
    k3: int = 128

    def __post_init__(self):
        if min(self.k1, self.k2, self.k3) < 1:
            raise ParameterError("security parameters must be positive")


DEFAULT_SECURITY = SecurityParameters()


def epsilon_one(c_param: float, f: float, sec: SecurityParameters = DEFAULT_SECURITY) -> float:
    """Smallest ε₁ satisfying Eq. (2)'s first branch (paper Eq. 4).

    Solves ``C = (k1+k2+1)(2+ε₁)·ln2 / (f·ε₁²)`` for ε₁ (positive root).
    """
    _check_cf(c_param, f)
    a = (sec.k1 + sec.k2 + 1) * LN2
    cf = c_param * f
    # cf·ε² − a·ε − 2a = 0
    return (a + math.sqrt(a * a + 8 * a * cf)) / (2 * cf)


def epsilon_two(c_param: float, f: float, sec: SecurityParameters = DEFAULT_SECURITY) -> float:
    """Smallest ε₂ satisfying Eq. (2)'s second branch (paper Eq. 5)."""
    _check_cf(c_param, f)
    a = (sec.k2 + 1) * LN2
    cff = c_param * f * (1.0 - f)
    return (a + math.sqrt(a * a + 8 * a * cff)) / (2 * cff)


def corruption_threshold(
    c_param: float, f: float, sec: SecurityParameters = DEFAULT_SECURITY
) -> float:
    """t = B₁ + B₂ + 1 with B₁ = fC(1+ε₁), B₂ = f(1−f)C(1+ε₂)."""
    e1 = epsilon_one(c_param, f, sec)
    e2 = epsilon_two(c_param, f, sec)
    return f * c_param * (1 + e1) + f * (1 - f) * c_param * (1 + e2) + 1


def epsilon_three_bounds(
    c_param: float, f: float, delta: float, sec: SecurityParameters = DEFAULT_SECURITY
) -> tuple[float, float]:
    """The (lower, upper) interval for ε₃ at gap blow-up δ (paper Eq. 6)."""
    _check_cf(c_param, f)
    lower = math.sqrt(2 * sec.k3 * LN2 / (c_param * (1 - f) ** 2))
    e1 = epsilon_one(c_param, f, sec)
    e2 = epsilon_two(c_param, f, sec)
    numerator = f * c_param * (1 + e1) + f * (1 - f) * c_param * (1 + e2)
    upper = 1.0 - delta * numerator / ((1 - f) ** 2 * c_param)
    return lower, upper


def max_gap(
    c_param: float,
    f: float,
    sec: SecurityParameters = DEFAULT_SECURITY,
    conservative: bool = False,
) -> float:
    """The largest feasible gap ε > 0, or raise SortitionError (⊥).

    ``conservative=False`` (default) follows the paper's Eq. (6) verbatim:
    ε₃ at its lower bound, then δ pushed to
    ``δ_max = (1−ε₃)·(1−f)²·C / (B₁+B₂)``.  Feasible iff δ_max > 1
    (δ = 1 is exactly the ε = 0 analysis of [6]).  This reproduces Table 1
    cell-for-cell.

    ``conservative=True`` derives δ from the direct Chernoff argument on
    the committee size instead: ``c ≥ (1−ε₃')·C`` except with probability
    2^−k₃ for ``ε₃' = sqrt(2k₃ln2 / C)`` (lower Chernoff tail of
    Binomial(N, C/N)), and the gap condition ``t ≤ c(1/2−ε)`` needs
    ``c ≥ (1+δ)t``, giving ``δ_max = (1−ε₃')·C/t − 1``.  Our Monte-Carlo
    validation (tests/test_sortition.py, EXPERIMENTS.md) shows the paper's
    Eq. (6) is optimistic under this sortition model — the conservative
    variant is what actually meets the stated failure probability, at the
    cost of a smaller gap (e.g. 0.24 vs 0.25 at C=2000, f=0.1), and it
    marks some of the paper's most aggressive cells (e.g. C=20000, f=0.2)
    infeasible outright: their claimed committee lower bound c = t/(1/2−ε)
    exceeds the *mean* committee size C.
    """
    e1 = epsilon_one(c_param, f, sec)
    e2 = epsilon_two(c_param, f, sec)
    numerator = f * c_param * (1 + e1) + f * (1 - f) * c_param * (1 + e2)
    if conservative:
        e3 = math.sqrt(2 * sec.k3 * LN2 / c_param)
        if e3 >= 1.0:
            raise SortitionError(
                f"infeasible: committee-size tail too wide at C={c_param}, f={f}"
            )
        t = numerator + 1
        delta_max = (1.0 - e3) * c_param / t - 1.0
    else:
        lower, _ = epsilon_three_bounds(c_param, f, delta=1.0, sec=sec)
        if lower >= 1.0:
            raise SortitionError(
                f"infeasible: honest-count tail needs epsilon_3 >= 1 "
                f"at C={c_param}, f={f}"
            )
        delta_max = (1.0 - lower) * (1 - f) ** 2 * c_param / numerator
    if delta_max <= 1.0:
        raise SortitionError(
            f"infeasible: delta_max={delta_max:.4f} <= 1 at C={c_param}, f={f}"
        )
    return (delta_max - 1.0) / (2.0 * (delta_max + 1.0))


@dataclass(frozen=True)
class GapParameters:
    """Everything the analysis yields for one (C, f) cell of Table 1."""

    c_param: float          # sortition parameter C (expected committee size)
    f: float                # global corruption ratio
    epsilon1: float
    epsilon2: float
    epsilon3: float
    t: float                # corruption threshold (t-1 bounds corruptions w.h.p.)
    epsilon: float          # the gap
    committee_size: float   # c = t / (1/2 - ε), w.h.p. lower bound
    committee_size_no_gap: float  # c' = 2t, the [6] baseline
    packing_factor: int     # k ≈ c·ε — the online improvement factor

    @property
    def improvement_factor(self) -> int:
        """Online-communication improvement over the ε=0 protocol (= k)."""
        return self.packing_factor

    @property
    def committee_growth(self) -> float:
        """Relative committee-size increase paid for the gap (c/c')."""
        return self.committee_size / self.committee_size_no_gap


def analyze(
    c_param: float,
    f: float,
    sec: SecurityParameters = DEFAULT_SECURITY,
    conservative: bool = False,
) -> GapParameters:
    """Full Section 6 analysis for one (C, f); raises SortitionError on ⊥."""
    epsilon = max_gap(c_param, f, sec, conservative=conservative)
    e1 = epsilon_one(c_param, f, sec)
    e2 = epsilon_two(c_param, f, sec)
    e3_lower, _ = epsilon_three_bounds(c_param, f, delta=1.0, sec=sec)
    t = f * c_param * (1 + e1) + f * (1 - f) * c_param * (1 + e2) + 1
    committee = t / (0.5 - epsilon)
    no_gap = 2.0 * t
    k = int(committee * epsilon)
    return GapParameters(
        c_param=c_param,
        f=f,
        epsilon1=e1,
        epsilon2=e2,
        epsilon3=e3_lower,
        t=t,
        epsilon=epsilon,
        committee_size=committee,
        committee_size_no_gap=no_gap,
        packing_factor=max(k, 1),
    )


def _check_cf(c_param: float, f: float) -> None:
    if c_param <= 0:
        raise ParameterError(f"C must be positive, got {c_param}")
    if not 0 < f < 1:
        raise ParameterError(f"f must be in (0, 1), got {f}")
