"""Deployment planning on top of the Section 6 analysis.

The paper's Table 1 answers "given C and f, what gap do I get?".  Deployers
usually ask the inverse questions:

* :func:`min_committee_for_gap` — the smallest sortition parameter C whose
  analysis yields at least a target gap ε (and hence packing factor);
* :func:`min_committee_for_packing` — the smallest C achieving a target
  online improvement factor k;
* :func:`gap_series` / :func:`packing_series` — the (f → ε) and (f → k)
  curves at fixed C, the data behind a "Figure 2" the full paper would
  plot;
* :func:`feasible_region` — the (C, f) cells where any positive gap exists.

All searches are monotone bisection over the closed-form analysis, so they
are exact to the requested resolution and fast enough for interactive use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError, SortitionError
from repro.sortition.analysis import (
    DEFAULT_SECURITY,
    GapParameters,
    SecurityParameters,
    analyze,
    max_gap,
)


def _gap_or_zero(c_param: float, f: float, sec: SecurityParameters,
                 conservative: bool) -> float:
    try:
        return max_gap(c_param, f, sec, conservative=conservative)
    except SortitionError:
        return 0.0


def min_committee_for_gap(
    f: float,
    target_epsilon: float,
    sec: SecurityParameters = DEFAULT_SECURITY,
    conservative: bool = False,
    c_max: int = 10_000_000,
    resolution: int = 8,
) -> GapParameters:
    """Smallest C (to within ``resolution``) achieving gap >= target.

    Raises :class:`SortitionError` if even ``c_max`` cannot reach it.
    The gap is monotone non-decreasing in C (larger committees concentrate
    the tails), so bisection applies.
    """
    if not 0 < target_epsilon < 0.5:
        raise ParameterError(
            f"target gap must be in (0, 1/2), got {target_epsilon}"
        )
    if _gap_or_zero(c_max, f, sec, conservative) < target_epsilon:
        raise SortitionError(
            f"gap {target_epsilon} unreachable for f={f} below C={c_max}"
        )
    lo, hi = 1.0, float(c_max)
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        if _gap_or_zero(mid, f, sec, conservative) >= target_epsilon:
            hi = mid
        else:
            lo = mid
    return analyze(hi, f, sec, conservative=conservative)


def min_committee_for_packing(
    f: float,
    target_k: int,
    sec: SecurityParameters = DEFAULT_SECURITY,
    conservative: bool = False,
    c_max: int = 10_000_000,
    resolution: int = 8,
) -> GapParameters:
    """Smallest C whose packing factor k = ⌊c·ε⌋ reaches ``target_k``."""
    if target_k < 1:
        raise ParameterError(f"target packing factor must be >= 1, got {target_k}")

    def k_at(c_param: float) -> int:
        try:
            return analyze(c_param, f, sec, conservative=conservative).packing_factor
        except SortitionError:
            return 0

    if k_at(c_max) < target_k:
        raise SortitionError(
            f"packing factor {target_k} unreachable for f={f} below C={c_max}"
        )
    lo, hi = 1.0, float(c_max)
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        if k_at(mid) >= target_k:
            hi = mid
        else:
            lo = mid
    return analyze(hi, f, sec, conservative=conservative)


@dataclass(frozen=True)
class SeriesPoint:
    f: float
    epsilon: float | None
    packing_factor: int | None
    committee_size: int | None

    @property
    def feasible(self) -> bool:
        return self.epsilon is not None


def gap_series(
    c_param: float,
    f_values: tuple[float, ...] = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
    sec: SecurityParameters = DEFAULT_SECURITY,
    conservative: bool = False,
) -> list[SeriesPoint]:
    """The ε(f) curve at fixed C — gap vs corruption ratio."""
    points = []
    for f in f_values:
        try:
            g = analyze(c_param, f, sec, conservative=conservative)
            points.append(
                SeriesPoint(f, g.epsilon, g.packing_factor,
                            round(g.committee_size))
            )
        except SortitionError:
            points.append(SeriesPoint(f, None, None, None))
    return points


def packing_series(
    f: float,
    c_values: tuple[int, ...] = (1000, 2000, 5000, 10000, 20000, 40000),
    sec: SecurityParameters = DEFAULT_SECURITY,
    conservative: bool = False,
) -> list[tuple[int, int | None]]:
    """The k(C) curve at fixed f — improvement factor vs committee budget."""
    out: list[tuple[int, int | None]] = []
    for c_param in c_values:
        try:
            g = analyze(c_param, f, sec, conservative=conservative)
            out.append((c_param, g.packing_factor))
        except SortitionError:
            out.append((c_param, None))
    return out


def feasible_region(
    c_values: tuple[int, ...],
    f_values: tuple[float, ...],
    sec: SecurityParameters = DEFAULT_SECURITY,
    conservative: bool = False,
) -> dict[tuple[int, float], bool]:
    """Which (C, f) cells admit any positive gap (the non-⊥ region)."""
    return {
        (c, f): _gap_or_zero(c, f, sec, conservative) > 0
        for c in c_values
        for f in f_values
    }


def max_tolerable_corruption(
    c_param: float,
    sec: SecurityParameters = DEFAULT_SECURITY,
    conservative: bool = False,
    resolution: float = 1e-4,
) -> float:
    """The largest f for which any positive gap is feasible at this C."""
    lo, hi = 0.001, 0.4999
    if _gap_or_zero(c_param, lo, sec, conservative) <= 0:
        raise SortitionError(f"no feasible corruption ratio at C={c_param}")
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        if _gap_or_zero(c_param, mid, sec, conservative) > 0:
            lo = mid
        else:
            hi = mid
    return lo
