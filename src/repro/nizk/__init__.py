"""Non-interactive zero-knowledge proofs (Fiat–Shamir Σ-protocols).

The paper assumes a simulation-extractable NIZKAoK (instantiated with
SNARKs, §4.2) for monolithic relations.  This reproduction substitutes
Fiat–Shamir-compiled Σ-protocols for the concrete algebraic statements the
protocol actually needs (see DESIGN.md's substitution table):

* :class:`PlaintextKnowledgeProof` — knowledge of (m, r) in a Paillier
  ciphertext (used for every broadcast encryption of a random contribution);
* :class:`MultiplicationProof` — a Beaver-triple contribution
  ``c^b = Enc(b)``, ``c^c = (c^a)^b`` used consistent values of ``b``;
* :class:`PartialDecryptionProof` — Shoup-style Chaum–Pedersen in the
  unknown-order group binding a partial decryption to the public
  verification key;
* :class:`PlaintextDlogEqualityProof` — an encrypted resharing subshare
  matches its public verification value (cross-group equality);
* :func:`verify_exponent_polynomial` /
  :func:`verify_exponent_interpolates_share` — public checks that broadcast
  verification values form a consistent degree-t sub-sharing of the
  sender's key share;
* :class:`CompositeProof` — an ordered bundle of labelled component proofs
  standing in for the paper's single SNARK over relation R.

All responses are over the integers (no reduction modulo the unknown group
order), giving statistical honest-verifier zero-knowledge and soundness for
challenges below the smallest prime factor of the moduli involved.
"""

from repro.nizk.params import ProofParams
from repro.nizk.transcript import FiatShamirTranscript
from repro.nizk.sigma import (
    MultiplicationProof,
    PartialDecryptionProof,
    PlaintextDlogEqualityProof,
    PlaintextKnowledgeProof,
)
from repro.nizk.composite import (
    CompositeProof,
    verify_exponent_polynomial,
    verify_exponent_interpolates_share,
)

__all__ = [
    "ProofParams",
    "FiatShamirTranscript",
    "PlaintextKnowledgeProof",
    "MultiplicationProof",
    "PartialDecryptionProof",
    "PlaintextDlogEqualityProof",
    "CompositeProof",
    "verify_exponent_polynomial",
    "verify_exponent_interpolates_share",
]
