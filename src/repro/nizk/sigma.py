"""Fiat–Shamir Σ-protocols over Paillier groups.

All four proofs share the same skeleton: commitments, a transcript-derived
challenge, and *integer* responses ``z = mask + e·witness`` with masks drawn
``challenge_bits + statistical_bits`` bits above the witness — the standard
unknown-order-group technique giving statistical HVZK without knowing the
group order.  Each class also exposes ``simulate`` (the HVZK simulator for a
given challenge), which the tests use to check the zero-knowledge shape of
the protocol, mirroring the paper's Definition 3 game.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.nizk.params import DEFAULT_PARAMS, ProofParams
from repro.nizk.transcript import FiatShamirTranscript
from repro.paillier.paillier import PaillierCiphertext, PaillierPublicKey
from repro.paillier.threshold import PartialDecryption, ThresholdKeyShare, ThresholdPublicKey


def _randbelow(bound: int, rng=None) -> int:
    if bound < 1:
        raise ParameterError(f"empty sampling range [0, {bound})")
    if rng is None:
        return secrets.randbelow(bound)
    return rng.randrange(bound)


@dataclass(frozen=True)
class PlaintextKnowledgeProof:
    """Proof of knowledge of (m, r) with ``c = (1+N)^m · r^N mod N²``.

    Uses the identity ``(1+N)^N ≡ 1 (mod N²)``, so the exponent response can
    be taken over the integers without wraparound bookkeeping.
    """

    commitment: int
    response_exponent: int
    response_unit: int

    LABEL = "paillier-plaintext-knowledge"

    @classmethod
    def prove(
        cls,
        public: PaillierPublicKey,
        ciphertext: PaillierCiphertext,
        message: int,
        randomness: int,
        params: ProofParams = DEFAULT_PARAMS,
        rng=None,
        context: str = "",
    ) -> "PlaintextKnowledgeProof":
        n, n2 = public.n, public.n_squared
        mask_bound = n << (params.challenge_bits + params.statistical_bits)
        s = _randbelow(mask_bound, rng)
        u = public.random_unit(rng)
        commitment = (1 + s % n2 * n) % n2 * pow(u, n, n2) % n2
        e = cls._challenge(public, ciphertext, commitment, params, context)
        z = s + e * (message % n)
        w = u * pow(randomness, e, n) % n
        return cls(commitment, z, w)

    def verify(
        self,
        public: PaillierPublicKey,
        ciphertext: PaillierCiphertext,
        params: ProofParams = DEFAULT_PARAMS,
        context: str = "",
    ) -> bool:
        n, n2 = public.n, public.n_squared
        if not (0 < self.commitment < n2 and 0 < self.response_unit < n):
            return False
        e = self._challenge(public, ciphertext, self.commitment, params, context)
        lhs = (1 + self.response_exponent % n2 * n) % n2
        lhs = lhs * pow(self.response_unit, n, n2) % n2
        rhs = self.commitment * pow(ciphertext.value, e, n2) % n2
        return lhs == rhs

    @classmethod
    def simulate(
        cls,
        public: PaillierPublicKey,
        ciphertext: PaillierCiphertext,
        challenge: int,
        params: ProofParams = DEFAULT_PARAMS,
        rng=None,
    ) -> tuple[int, int, int]:
        """HVZK simulator: a transcript (commitment, challenge, responses)
        with the same distribution as an honest run on the given challenge."""
        n, n2 = public.n, public.n_squared
        z = _randbelow(n << (params.challenge_bits + params.statistical_bits), rng)
        w = public.random_unit(rng)
        lhs = (1 + z % n2 * n) % n2 * pow(w, n, n2) % n2
        commitment = lhs * pow(ciphertext.value, -challenge, n2) % n2
        return commitment, z, w

    @classmethod
    def _challenge(cls, public, ciphertext, commitment, params, context="") -> int:
        t = FiatShamirTranscript(cls.LABEL)
        t.absorb(context, public.n, ciphertext.value, commitment)
        return t.challenge(params.challenge_bits)


@dataclass(frozen=True)
class MultiplicationProof:
    """Beaver-step proof: ``c_b = Enc(b; r)`` and ``c_c = c_a^b`` share ``b``.

    This is exactly the relation the paper's Π_YOSO-Beaver-Triples requires
    from the second committee (§5.2, Protocol 3).
    """

    commitment_enc: int
    commitment_mult: int
    response_exponent: int
    response_unit: int

    LABEL = "paillier-multiplication"

    @classmethod
    def prove(
        cls,
        public: PaillierPublicKey,
        c_a: PaillierCiphertext,
        c_b: PaillierCiphertext,
        c_c: PaillierCiphertext,
        b: int,
        randomness: int,
        params: ProofParams = DEFAULT_PARAMS,
        rng=None,
        context: str = "",
    ) -> "MultiplicationProof":
        n, n2 = public.n, public.n_squared
        mask_bound = n << (params.challenge_bits + params.statistical_bits)
        s = _randbelow(mask_bound, rng)
        u = public.random_unit(rng)
        a1 = (1 + s % n2 * n) % n2 * pow(u, n, n2) % n2
        a2 = pow(c_a.value, s, n2)
        e = cls._challenge(public, c_a, c_b, c_c, a1, a2, params, context)
        z = s + e * (b % n)
        w = u * pow(randomness, e, n) % n
        return cls(a1, a2, z, w)

    def verify(
        self,
        public: PaillierPublicKey,
        c_a: PaillierCiphertext,
        c_b: PaillierCiphertext,
        c_c: PaillierCiphertext,
        params: ProofParams = DEFAULT_PARAMS,
        context: str = "",
    ) -> bool:
        n, n2 = public.n, public.n_squared
        if not (0 < self.commitment_enc < n2 and 0 < self.commitment_mult < n2):
            return False
        if not 0 < self.response_unit < n:
            return False
        e = self._challenge(
            public, c_a, c_b, c_c, self.commitment_enc, self.commitment_mult,
            params, context,
        )
        z, w = self.response_exponent, self.response_unit
        lhs1 = (1 + z % n2 * n) % n2 * pow(w, n, n2) % n2
        rhs1 = self.commitment_enc * pow(c_b.value, e, n2) % n2
        lhs2 = pow(c_a.value, z, n2)
        rhs2 = self.commitment_mult * pow(c_c.value, e, n2) % n2
        return lhs1 == rhs1 and lhs2 == rhs2

    @classmethod
    def _challenge(cls, public, c_a, c_b, c_c, a1, a2, params, context="") -> int:
        t = FiatShamirTranscript(cls.LABEL)
        t.absorb(context, public.n, c_a.value, c_b.value, c_c.value, a1, a2)
        return t.challenge(params.challenge_bits)


@dataclass(frozen=True)
class PartialDecryptionProof:
    """Shoup-style proof that a partial decryption used the committed share.

    Proves knowledge of ``d_i`` with ``c_i² = (c^{4Δ})^{d_i}`` and
    ``v_i = (v^Δ)^{d_i}``, binding the published partial to the public
    verification value carried by the key share.
    """

    commitment_cipher: int
    commitment_verif: int
    response: int

    LABEL = "threshold-partial-decryption"

    @classmethod
    def prove(
        cls,
        tpk: ThresholdPublicKey,
        ciphertext: PaillierCiphertext,
        partial: PartialDecryption,
        share: ThresholdKeyShare,
        params: ProofParams = DEFAULT_PARAMS,
        rng=None,
    ) -> "PartialDecryptionProof":
        n2 = tpk.n_squared
        base_c = pow(ciphertext.value, 4 * tpk.delta, n2)
        base_v = pow(tpk.verification_base, tpk.delta, n2)
        witness_bits = abs(share.value).bit_length() + 1
        mask_bound = 1 << (witness_bits + params.challenge_bits + params.statistical_bits)
        w = _randbelow(mask_bound, rng)
        t1 = pow(base_c, w, n2)
        t2 = pow(base_v, w, n2)
        e = cls._challenge(tpk, ciphertext, partial, share.verification, t1, t2, params)
        z = w + e * share.value
        return cls(t1, t2, z)

    def verify(
        self,
        tpk: ThresholdPublicKey,
        ciphertext: PaillierCiphertext,
        partial: PartialDecryption,
        verification_value: int,
        params: ProofParams = DEFAULT_PARAMS,
    ) -> bool:
        n2 = tpk.n_squared
        if not (0 < self.commitment_cipher < n2 and 0 < self.commitment_verif < n2):
            return False
        base_c = pow(ciphertext.value, 4 * tpk.delta, n2)
        base_v = pow(tpk.verification_base, tpk.delta, n2)
        e = self._challenge(
            tpk, ciphertext, partial, verification_value,
            self.commitment_cipher, self.commitment_verif, params,
        )
        z = self.response
        lhs1 = pow(base_c, z, n2)
        rhs1 = self.commitment_cipher * pow(pow(partial.value, 2, n2), e, n2) % n2
        lhs2 = pow(base_v, z, n2)
        rhs2 = self.commitment_verif * pow(verification_value, e, n2) % n2
        return lhs1 == rhs1 and lhs2 == rhs2

    @classmethod
    def simulate(
        cls,
        tpk: ThresholdPublicKey,
        ciphertext: PaillierCiphertext,
        partial: PartialDecryption,
        verification_value: int,
        challenge: int,
        witness_bits: int,
        params: ProofParams = DEFAULT_PARAMS,
        rng=None,
    ) -> tuple[int, int, int, int]:
        n2 = tpk.n_squared
        base_c = pow(ciphertext.value, 4 * tpk.delta, n2)
        base_v = pow(tpk.verification_base, tpk.delta, n2)
        z = _randbelow(
            1 << (witness_bits + params.challenge_bits + params.statistical_bits), rng
        )
        t1 = pow(base_c, z, n2) * pow(pow(partial.value, 2, n2), -challenge, n2) % n2
        t2 = pow(base_v, z, n2) * pow(verification_value, -challenge, n2) % n2
        return t1, t2, challenge, z

    @classmethod
    def _challenge(cls, tpk, ciphertext, partial, verification_value, t1, t2, params):
        t = FiatShamirTranscript(cls.LABEL)
        t.absorb(
            tpk.n, tpk.verification_base, ciphertext.value,
            partial.index, partial.value, partial.epoch,
            verification_value, t1, t2,
        )
        return t.challenge(params.challenge_bits)


@dataclass(frozen=True)
class PlaintextDlogEqualityProof:
    """Cross-group equality: ``c = Enc_pk(x; r)`` and ``V = B^x mod M``.

    Binds an *encrypted* resharing subshare limb to its *public*
    verification value, making the resharing step publicly verifiable
    without revealing the limb (the key consistency check of the
    Re-encrypt/Decrypt protocols; see composite.py for the polynomial-level
    checks layered on top).  Requires ``0 <= x < N_pk``.
    """

    commitment_enc: int
    commitment_dlog: int
    response_exponent: int
    response_unit: int

    LABEL = "plaintext-dlog-equality"

    @classmethod
    def prove(
        cls,
        public: PaillierPublicKey,
        ciphertext: PaillierCiphertext,
        base: int,
        dlog_modulus: int,
        dlog_value: int,
        x: int,
        randomness: int,
        params: ProofParams = DEFAULT_PARAMS,
        rng=None,
    ) -> "PlaintextDlogEqualityProof":
        if not 0 <= x < public.n:
            raise ParameterError("witness out of range for the plaintext space")
        n, n2 = public.n, public.n_squared
        mask_bound = n << (params.challenge_bits + params.statistical_bits)
        s = _randbelow(mask_bound, rng)
        u = public.random_unit(rng)
        a1 = (1 + s % n2 * n) % n2 * pow(u, n, n2) % n2
        a2 = pow(base, s, dlog_modulus)
        e = cls._challenge(
            public, ciphertext, base, dlog_modulus, dlog_value, a1, a2, params
        )
        z = s + e * x
        w = u * pow(randomness, e, n) % n
        return cls(a1, a2, z, w)

    def verify(
        self,
        public: PaillierPublicKey,
        ciphertext: PaillierCiphertext,
        base: int,
        dlog_modulus: int,
        dlog_value: int,
        params: ProofParams = DEFAULT_PARAMS,
    ) -> bool:
        n, n2 = public.n, public.n_squared
        if not (0 < self.commitment_enc < n2 and 0 < self.response_unit < n):
            return False
        e = self._challenge(
            public, ciphertext, base, dlog_modulus, dlog_value,
            self.commitment_enc, self.commitment_dlog, params,
        )
        z, w = self.response_exponent, self.response_unit
        lhs1 = (1 + z % n2 * n) % n2 * pow(w, n, n2) % n2
        rhs1 = self.commitment_enc * pow(ciphertext.value, e, n2) % n2
        lhs2 = pow(base, z, dlog_modulus)
        rhs2 = self.commitment_dlog * pow(dlog_value, e, dlog_modulus) % dlog_modulus
        return lhs1 == rhs1 and lhs2 == rhs2

    @classmethod
    def _challenge(
        cls, public, ciphertext, base, dlog_modulus, dlog_value, a1, a2, params
    ):
        t = FiatShamirTranscript(cls.LABEL)
        t.absorb(
            public.n, ciphertext.value, base, dlog_modulus, dlog_value, a1, a2
        )
        return t.challenge(params.challenge_bits)
