"""Fiat–Shamir transcripts.

A :class:`FiatShamirTranscript` absorbs a domain-separation label and a
sequence of integers/bytes/strings in order, and squeezes challenges as
SHA-256 outputs truncated to the requested bit length.  Determinism is the
point: prover and verifier rebuild the same transcript from the statement
and commitments, so a proof is a bare (commitments, responses) tuple.
"""

from __future__ import annotations

import hashlib

from repro.errors import ParameterError


def _encode_int(value: int) -> bytes:
    # Sign byte + big-endian magnitude, length-prefixed: unambiguous.
    sign = b"-" if value < 0 else b"+"
    magnitude = abs(value)
    payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
    return sign + len(payload).to_bytes(4, "big") + payload


class FiatShamirTranscript:
    """An order-sensitive hash absorbing protocol messages."""

    def __init__(self, label: str):
        self._hash = hashlib.sha256()
        self._hash.update(b"repro-fs-v1|")
        self._hash.update(label.encode())
        self._count = 0

    def absorb(self, *values: int | bytes | str) -> "FiatShamirTranscript":
        """Absorb values; ints, bytes and strings are all canonically framed."""
        for value in values:
            if isinstance(value, bool):
                raise ParameterError("refusing ambiguous bool in transcript")
            if isinstance(value, int):
                framed = b"i" + _encode_int(value)
            elif isinstance(value, bytes):
                framed = b"b" + len(value).to_bytes(4, "big") + value
            elif isinstance(value, str):
                raw = value.encode()
                framed = b"s" + len(raw).to_bytes(4, "big") + raw
            else:
                raise ParameterError(f"cannot absorb {type(value).__name__}")
            self._hash.update(framed)
        return self

    def challenge(self, bits: int) -> int:
        """Squeeze a challenge in ``[0, 2^bits)``; advances the transcript."""
        if bits < 1:
            raise ParameterError("challenge must be at least one bit")
        out = b""
        counter = 0
        while len(out) * 8 < bits:
            h = self._hash.copy()
            h.update(b"sq" + counter.to_bytes(4, "big"))
            out += h.digest()
            counter += 1
        self._hash.update(b"squeezed" + counter.to_bytes(4, "big"))
        self._count += 1
        return int.from_bytes(out, "big") % (1 << bits)
