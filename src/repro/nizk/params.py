"""Proof-system parameters."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class ProofParams:
    """Sizes governing soundness and zero-knowledge quality.

    ``challenge_bits``
        Fiat–Shamir challenge length.  Soundness error is 2^-challenge_bits;
        for composite moduli the challenge must stay below the smallest
        prime factor, so small test moduli imply small challenges (the
        *structure* of the proofs is unchanged — production parameters just
        raise the numbers).
    ``statistical_bits``
        Masking slack for integer responses (statistical ZK distance
        2^-statistical_bits).
    """

    challenge_bits: int = 30
    statistical_bits: int = 40

    def __post_init__(self):
        if self.challenge_bits < 1:
            raise ParameterError("challenge_bits must be positive")
        if self.statistical_bits < 1:
            raise ParameterError("statistical_bits must be positive")

    @classmethod
    def for_modulus_bits(cls, modulus_bits: int) -> "ProofParams":
        """Parameters safe for an N of ``modulus_bits`` bits.

        Challenges must be smaller than the ~(modulus_bits/2)-bit prime
        factors; we leave a 2-bit margin.
        """
        challenge = max(8, min(128, modulus_bits // 2 - 2))
        return cls(challenge_bits=challenge)


DEFAULT_PARAMS = ProofParams()
