"""Composite proofs and public resharing-consistency checks.

The paper bundles everything a role does in one SNARK over relation R
(Protocols 1–2).  Here a :class:`CompositeProof` is an ordered bundle of
labelled Σ-proofs, each verified against its own statement; the bundle
verifies iff every component does.  The *polynomial-level* consistency of a
resharing — that the broadcast verification values form a degree-t
exponent-sharing of the sender's committed key share — needs no witness at
all and is checked publicly by the two functions below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ProofError
from repro.fields.lagrange import integer_lagrange_scaled
from repro.paillier.threshold import ResharingMessage, ThresholdPublicKey


@dataclass(frozen=True)
class CompositeProof:
    """An ordered bundle of labelled component proofs.

    ``components`` maps a label (e.g. ``"partial-dec"``, ``"subshare-3"``)
    to an arbitrary proof object; :meth:`verify` runs a caller-supplied
    verifier per label.  Stands in for the paper's single SNARK over the
    monolithic relation R (see DESIGN.md's substitution table).
    """

    components: tuple[tuple[str, object], ...]

    @classmethod
    def build(cls, items: Sequence[tuple[str, object]]) -> "CompositeProof":
        labels = [label for label, _ in items]
        if len(set(labels)) != len(labels):
            raise ProofError(f"duplicate component labels: {labels}")
        return cls(tuple(items))

    def component(self, label: str) -> object:
        for name, proof in self.components:
            if name == label:
                return proof
        raise ProofError(f"no component labelled {label!r}")

    def labels(self) -> list[str]:
        return [name for name, _ in self.components]

    def verify(self, verifiers: Mapping[str, Callable[[object], bool]]) -> bool:
        """True iff every component's verifier accepts.

        Every component must have a verifier and every verifier a component
        — a mismatch is a caller bug and raises, it does not return False.
        """
        have = set(self.labels())
        want = set(verifiers)
        if have != want:
            raise ProofError(
                f"verifier/component mismatch: extra={sorted(have - want)}, "
                f"missing={sorted(want - have)}"
            )
        return all(verifiers[name](proof) for name, proof in self.components)


def verify_exponent_polynomial(
    tpk: ThresholdPublicKey, verifications: Sequence[int] | ResharingMessage
) -> bool:
    """Check the broadcast verification values lie on a degree-t polynomial.

    ``v_{i,j} = v^(Δ·g_i(j))`` for an honest sender; any t+1 of them
    determine the rest, so for every j > t+1 we check
    ``v_{i,j}^Δ == Π_{l<=t+1} v_{i,l}^(Δλ_l(j))`` in Z*_{N²}.
    """
    t = tpk.threshold
    n2 = tpk.n_squared
    values = _verification_values(verifications)
    if len(values) != tpk.n_parties:
        return False
    if any(not 0 < v < n2 for v in values):
        return False
    base_points = list(range(1, t + 2))
    for j in range(t + 2, tpk.n_parties + 1):
        scaled, _ = integer_lagrange_scaled(base_points, at=j, delta=tpk.delta)
        expected = 1
        for l, lam in zip(base_points, scaled):
            expected = expected * pow(values[l - 1], lam, n2) % n2
        if pow(values[j - 1], tpk.delta, n2) != expected:
            return False
    return True


def verify_exponent_interpolates_share(
    tpk: ThresholdPublicKey,
    verifications: Sequence[int] | ResharingMessage,
    share_verification: int,
) -> bool:
    """Check the sub-sharing's constant term is the sender's key share.

    ``v_i = v^(Δ·d_i)`` is public (carried with the share / derivable from
    the previous resharing); an honest sub-sharing has ``g_i(0) = d_i``, so
    ``v_i^Δ == Π_{l<=t+1} v_{i,l}^(Δλ_l(0))``.
    """
    t = tpk.threshold
    n2 = tpk.n_squared
    values = _verification_values(verifications)
    if len(values) != tpk.n_parties:
        return False
    base_points = list(range(1, t + 2))
    scaled, _ = integer_lagrange_scaled(base_points, at=0, delta=tpk.delta)
    acc = 1
    for l, lam in zip(base_points, scaled):
        acc = acc * pow(values[l - 1], lam, n2) % n2
    return pow(share_verification, tpk.delta, n2) == acc


def _verification_values(
    verifications: Sequence[int] | ResharingMessage,
) -> Sequence[int]:
    if isinstance(verifications, ResharingMessage):
        return verifications.verifications
    return verifications
