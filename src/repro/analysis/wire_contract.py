"""Wire-contract rule pack (WIRE001–WIRE004).

The wire layer is a three-legged contract: every envelope kind is
registered exactly once (``register_kind`` in :mod:`repro.wire.registry`),
carries a symbolic size formula (an ``EnvelopeSpec`` in
:mod:`repro.accounting.symbolic`), and is exercised by the byte-exact
round-trip test.  Each leg lives in a different file, so nothing at
runtime notices when a new kind lands with only one or two of them —
the formula assertion simply never runs for the missing kind.  This
pack cross-references the three legs statically, plus checks that every
``register_wire_dataclass`` field annotation names a type the canonical
codec can actually encode.

Unlike the determinism/YOSO packs this one is *project-scope*: it sees
all scanned modules at once and anchors each finding at the offending
registration site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Finding
from repro.analysis.visitor import SourceModule, parse_module

#: Builtin annotation heads the canonical codec has a tag for.
_ENCODABLE_BUILTINS = frozenset(
    {"int", "str", "bytes", "bool", "None"}
)

#: Container heads whose element annotations are checked recursively.
_ENCODABLE_CONTAINERS = frozenset(
    {"tuple", "list", "dict", "Tuple", "List", "Dict",
     "Optional", "Union", "Sequence"}
)

#: Non-dataclass leaf types with a dedicated codec branch.
_ENCODABLE_SPECIAL = frozenset({"PaillierCiphertext"})


@dataclass
class _Registration:
    """One ``register_kind``/``register_wire_dataclass`` call site."""

    path: str
    line: int
    key: object  # kind name / object code
    value: object  # kind id / class name


@dataclass
class _WireFacts:
    """Everything the scan extracted from the module set."""

    kinds: list[_Registration] = field(default_factory=list)
    dataclass_codes: list[_Registration] = field(default_factory=list)
    spec_kinds: set[str] = field(default_factory=set)
    saw_spec_call: bool = False
    #: class name -> (path, [(field, annotation, line), ...])
    dataclasses: dict[str, tuple[str, list[tuple[str, ast.expr, int]]]] = (
        field(default_factory=dict)
    )


def _int_constants(tree: ast.Module) -> dict[str, int]:
    """Module-level ``NAME = <int literal>`` assignments."""
    consts: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not (
            isinstance(value, ast.Constant) and type(value.value) is int
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                consts[target.id] = value.value
    return consts


def _literal(node: ast.expr, consts: dict[str, int]) -> object | None:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _scan_module(module: SourceModule, facts: _WireFacts) -> None:
    consts = _int_constants(module.tree)
    path = module.display_path

    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and _is_dataclass_decorated(node):
            fields = [
                (stmt.target.id, stmt.annotation, stmt.lineno)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
            facts.dataclasses.setdefault(node.name, (path, fields))
            continue
        if not isinstance(node, ast.Call):
            continue
        name = module.resolve_call(node.func)
        if name is None:
            continue
        tail = name.rpartition(".")[2]
        if tail == "register_kind" and len(node.args) >= 2:
            kind_name = _literal(node.args[0], consts)
            kind_id = _literal(node.args[1], consts)
            if isinstance(kind_name, str) and isinstance(kind_id, int):
                facts.kinds.append(
                    _Registration(path, node.lineno, kind_name, kind_id)
                )
        elif tail == "register_wire_dataclass" and len(node.args) >= 2:
            code = _literal(node.args[0], consts)
            cls = node.args[1]
            if isinstance(code, int) and isinstance(cls, ast.Name):
                facts.dataclass_codes.append(
                    _Registration(path, node.lineno, code, cls.id)
                )
        elif tail == "EnvelopeSpec":
            facts.saw_spec_call = True
            if node.args and isinstance(node.args[0], ast.Constant):
                if isinstance(node.args[0].value, str):
                    facts.spec_kinds.add(node.args[0].value)


def _duplicate_findings(
    regs: list[_Registration], what: str, code: str = "WIRE001"
) -> list[Finding]:
    """WIRE001 for a key or value claimed twice with different partners."""
    findings: list[Finding] = []
    by_key: dict[object, _Registration] = {}
    by_value: dict[object, _Registration] = {}
    for reg in regs:
        seen = by_key.get(reg.key)
        if seen is not None and seen.value != reg.value:
            findings.append(
                Finding(
                    reg.path, reg.line, code,
                    f"{what} {reg.key!r} registered twice: here as "
                    f"{reg.value!r}, at {seen.path}:{seen.line} as "
                    f"{seen.value!r}",
                )
            )
            continue
        by_key.setdefault(reg.key, reg)
        seen = by_value.get(reg.value)
        if seen is not None and seen.key != reg.key:
            findings.append(
                Finding(
                    reg.path, reg.line, code,
                    f"{what} id {reg.value!r} claimed twice: here by "
                    f"{reg.key!r}, at {seen.path}:{seen.line} by "
                    f"{seen.key!r}",
                )
            )
            continue
        by_value.setdefault(reg.value, reg)
    return findings


def _annotation_encodable(
    node: ast.expr, class_names: set[str]
) -> bool:
    """Whether an annotation names only codec-encodable types."""
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return True
        if isinstance(node.value, str):  # forward reference
            return (
                node.value in _ENCODABLE_BUILTINS
                or node.value in _ENCODABLE_SPECIAL
                or node.value in class_names
            )
        return False
    if isinstance(node, ast.Name):
        return (
            node.id in _ENCODABLE_BUILTINS
            or node.id in _ENCODABLE_SPECIAL
            or node.id in class_names
        )
    if isinstance(node, ast.Attribute):
        return _annotation_encodable(
            ast.Name(id=node.attr), class_names
        )
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = (
            head.id if isinstance(head, ast.Name)
            else head.attr if isinstance(head, ast.Attribute)
            else None
        )
        if head_name not in _ENCODABLE_CONTAINERS:
            return False
        inner = node.slice
        elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(
            _annotation_encodable(e, class_names) for e in elements
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_encodable(
            node.left, class_names
        ) and _annotation_encodable(node.right, class_names)
    return False


def check_wire_contract(
    modules: list[SourceModule], config: LintConfig
) -> list[Finding]:
    facts = _WireFacts()
    for module in modules:
        _scan_module(module, facts)

    findings: list[Finding] = []
    findings += _duplicate_findings(facts.kinds, "envelope kind")
    findings += _duplicate_findings(
        facts.dataclass_codes, "wire dataclass"
    )

    # WIRE002: every registered kind must carry a size formula.  Only
    # meaningful when the scan actually saw the EnvelopeSpec table —
    # linting a single file must not claim the whole contract is broken.
    if facts.saw_spec_call:
        for reg in facts.kinds:
            if reg.key not in facts.spec_kinds:
                findings.append(
                    Finding(
                        reg.path, reg.line, "WIRE002",
                        f"envelope kind {reg.key!r} has no EnvelopeSpec "
                        f"size formula in repro/accounting/symbolic.py",
                    )
                )

    # WIRE003: every registered kind must appear (as a string constant)
    # in the byte-exact round-trip test.  Skipped when the test file is
    # not present, e.g. when linting an installed copy of the package.
    test_path = config.roundtrip_test_path()
    if test_path.is_file():
        test_module = parse_module(test_path)
        test_strings = {
            node.value
            for node in ast.walk(test_module.tree)
            if isinstance(node, ast.Constant)
            and isinstance(node.value, str)
        }
        for reg in facts.kinds:
            if reg.key not in test_strings:
                findings.append(
                    Finding(
                        reg.path, reg.line, "WIRE003",
                        f"envelope kind {reg.key!r} is not exercised by "
                        f"{config.roundtrip_test}",
                    )
                )

    # WIRE004: every field of a registered dataclass must annotate a
    # codec-encodable type.
    registered_class_names = {
        str(reg.value) for reg in facts.dataclass_codes
    }
    for reg in facts.dataclass_codes:
        defn = facts.dataclasses.get(str(reg.value))
        if defn is None:
            continue
        cls_path, fields = defn
        for field_name, annotation, line in fields:
            if not _annotation_encodable(
                annotation, registered_class_names
            ):
                findings.append(
                    Finding(
                        cls_path, line, "WIRE004",
                        f"field {reg.value}.{field_name} annotates "
                        f"{ast.unparse(annotation)!r}, which the wire "
                        f"codec cannot encode",
                    )
                )
    return findings
