"""Finding and rule-catalog types shared by every rule pack.

A :class:`Finding` is one diagnostic: a file, a line, a rule code, and a
message.  The catalog in :data:`RULES` is the single source of truth for
the codes — the CLI's ``--list-rules``, the fix hints appended to every
diagnostic, and docs/ANALYSIS.md all render from it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic, ordered for stable ``file:line`` output."""

    path: str
    line: int
    code: str
    message: str

    def baseline_key(self) -> str:
        """The identity used by baseline files (line numbers drift)."""
        return f"{self.path}:{self.code}:{self.message}"


@dataclass(frozen=True)
class RuleInfo:
    """Catalog entry: what a code means and how to fix a finding."""

    code: str
    title: str
    hint: str


_CATALOG = (
    RuleInfo(
        "DET001",
        "unseeded RNG",
        "route randomness through a seeded random.Random carried by the "
        "run (the repro.rng seams); module-level random.* calls and "
        "random.Random() without a seed break transcript determinism",
    ),
    RuleInfo(
        "DET002",
        "wall-clock read",
        "protocol logic must not read clocks; keep time.*/datetime.* to "
        "metrics and transport deadlines, and suppress with a "
        "justification where the read provably never reaches the wire",
    ),
    RuleInfo(
        "DET003",
        "OS entropy outside the crypto allowlist",
        "os.urandom/secrets/SystemRandom belong in key generation and "
        "Σ-protocol challenge sampling only (the [tool.repro-lint] "
        "allowlist); everywhere else use the run's seeded RNG",
    ),
    RuleInfo(
        "DET004",
        "float arithmetic in an exact-arithmetic package",
        "fields/, sharing/, paillier/ and nizk/ compute over Z_N exactly; "
        "floats round, so move the float work out of the package or "
        "replace it with integer arithmetic",
    ),
    RuleInfo(
        "YOSO001",
        "role may speak more than once per activation",
        "a YOSO role gets one utterance: merge the posts into one "
        "bundled payload dict, or split the work across two committees",
    ),
    RuleInfo(
        "YOSO002",
        "speak inside a loop",
        "hoist the speak out of the loop and accumulate the per-item "
        "payloads into one dict posted once",
    ),
    RuleInfo(
        "YOSO003",
        "statement after the role's single utterance",
        "view.speak(...) must be the role program's final act — the "
        "runtime erases the role's secrets at that point, so any state "
        "mutated afterwards silently diverges from the YOSO model",
    ),
    RuleInfo(
        "WIRE001",
        "conflicting envelope-kind registration",
        "every register_kind needs a unique (name, id) pair and every "
        "register_wire_dataclass a unique code; pick the next free id "
        "(docs/WIRE.md lists the allocation)",
    ),
    RuleInfo(
        "WIRE002",
        "envelope kind without a symbolic size formula",
        "add an EnvelopeSpec for the kind in repro/accounting/symbolic.py "
        "(and delete specs whose kind is no longer registered) — every "
        "metered run asserts formula == delivered bytes",
    ),
    RuleInfo(
        "WIRE003",
        "envelope kind missing from the round-trip test",
        "add a representative payload for the kind to "
        "tests/test_wire_roundtrip.py so encode(decode(b)) == b is "
        "exercised for it",
    ),
    RuleInfo(
        "WIRE004",
        "wire dataclass field is not wire-encodable",
        "registered dataclass fields must be int/str/bytes/bool, "
        "containers of those, ciphertexts, or other registered wire "
        "dataclasses — the canonical codec has no tag for anything else",
    ),
    RuleInfo(
        "LNT001",
        "suppression without a justification",
        "write '# repro-lint: disable=CODE -- why this is sound'; a bare "
        "disable hides a finding without recording the argument",
    ),
    RuleInfo(
        "LNT002",
        "suppression that matches no finding",
        "the disabled rule no longer fires here — delete the stale "
        "comment so real suppressions stay auditable",
    ),
)

RULES: dict[str, RuleInfo] = {r.code: r for r in _CATALOG}


def format_finding(finding: Finding, hint: bool = True) -> str:
    """Render one diagnostic as ``file:line: CODE message``."""
    text = f"{finding.path}:{finding.line}: {finding.code} {finding.message}"
    if hint and finding.code in RULES:
        text += f"\n    fix: {RULES[finding.code].hint}"
    return text
