"""Lint configuration: the ``[tool.repro-lint]`` table and allowlists.

Configuration lives in ``pyproject.toml`` next to the code it governs::

    [tool.repro-lint]
    roundtrip-test = "tests/test_wire_roundtrip.py"
    float-scopes = ["src/repro/fields/*", "src/repro/sharing/*", ...]

    [tool.repro-lint.allow]
    DET002 = ["src/repro/observability/*"]   # tracing is wall-time
    DET003 = ["src/repro/paillier/*", ...]   # the crypto keygen seams

``allow`` maps a rule code to glob patterns of files where the rule is
*architecturally* satisfied — whole modules whose purpose is the thing
the rule polices (a tracer reads clocks; key generation draws OS
entropy).  Point exceptions inside ordinary modules should use the
inline ``# repro-lint: disable=CODE -- reason`` comment instead, which
keeps the justification next to the code.

A baseline file (``repro lint --write-baseline``) records the current
findings as JSON so a rule can be introduced before the tree is clean;
baselined findings are reported as suppressed, not failures.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.errors import AnalysisError

#: Rule-code -> file globs satisfied architecturally (see module docstring).
DEFAULT_ALLOW: dict[str, tuple[str, ...]] = {
    # The tracer *is* a wall clock; the socket transport needs real
    # deadlines for its fail-stop timeout semantics.  Neither value ever
    # feeds payload bytes (the cost-exactness hook would catch it).
    "DET002": (
        "src/repro/observability/*",
        "src/repro/wire/socket_transport.py",
    ),
    # The crypto keygen/challenge seams: safe-prime sampling, Paillier
    # encryption randomness fallbacks, Σ-protocol challenges, ring
    # element sampling, and the proof-oracle MAC key.
    "DET003": (
        "src/repro/paillier/*",
        "src/repro/nizk/*",
        "src/repro/fields/ring.py",
        "src/repro/core/oracle.py",
    ),
}

#: Packages whose arithmetic must stay exact (DET004 scope).
DEFAULT_FLOAT_SCOPES: tuple[str, ...] = (
    "src/repro/fields/*",
    "src/repro/sharing/*",
    "src/repro/paillier/*",
    "src/repro/nizk/*",
)

DEFAULT_ROUNDTRIP_TEST = "tests/test_wire_roundtrip.py"


@dataclass(frozen=True)
class LintConfig:
    """Resolved configuration for one lint run."""

    root: Path
    allow: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    float_scopes: tuple[str, ...] = DEFAULT_FLOAT_SCOPES
    roundtrip_test: str = DEFAULT_ROUNDTRIP_TEST
    baseline: str | None = None

    def _rel(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def _matches(self, path: Path, patterns: Iterable[str]) -> bool:
        rel = self._rel(path)
        return any(
            fnmatch.fnmatch(rel, pat) or fnmatch.fnmatch(path.as_posix(), pat)
            for pat in patterns
        )

    def is_allowed(self, code: str, path: Path) -> bool:
        """Whether ``code`` is allowlisted for the whole of ``path``."""
        return self._matches(path, self.allow.get(code, ()))

    def in_float_scope(self, path: Path) -> bool:
        """Whether DET004 (exact arithmetic) applies to ``path``."""
        return self._matches(path, self.float_scopes)

    def roundtrip_test_path(self) -> Path:
        return self.root / self.roundtrip_test


def find_project_root(start: Path) -> Path:
    """The nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def _str_tuple(value: Any, context: str) -> tuple[str, ...]:
    if not (
        isinstance(value, list) and all(isinstance(v, str) for v in value)
    ):
        raise AnalysisError(f"{context} must be a list of glob strings")
    return tuple(value)


def load_config(root: Path | None = None) -> LintConfig:
    """Read ``[tool.repro-lint]`` from the project's pyproject.toml.

    Missing file or table yields the defaults; a malformed table raises
    :class:`~repro.errors.AnalysisError` rather than silently linting
    with the wrong allowlist.
    """
    root = find_project_root(root if root is not None else Path.cwd())
    pyproject = root / "pyproject.toml"
    table: dict[str, Any] = {}
    if pyproject.is_file():
        import tomllib

        try:
            with open(pyproject, "rb") as fh:
                table = tomllib.load(fh).get("tool", {}).get("repro-lint", {})
        except tomllib.TOMLDecodeError as exc:
            raise AnalysisError(f"{pyproject}: not valid TOML: {exc}") from exc
    if not isinstance(table, dict):
        raise AnalysisError("[tool.repro-lint] must be a table")

    allow = dict(DEFAULT_ALLOW)
    raw_allow = table.get("allow", {})
    if not isinstance(raw_allow, dict):
        raise AnalysisError("[tool.repro-lint.allow] must be a table")
    for code, patterns in raw_allow.items():
        allow[code] = _str_tuple(patterns, f"allow.{code}")

    return LintConfig(
        root=root,
        allow=allow,
        float_scopes=_str_tuple(
            table.get("float-scopes", list(DEFAULT_FLOAT_SCOPES)),
            "float-scopes",
        ),
        roundtrip_test=table.get("roundtrip-test", DEFAULT_ROUNDTRIP_TEST),
        baseline=table.get("baseline"),
    )
