"""Protocol static analysis: the ``repro lint`` rule packs.

The load-bearing invariants of this codebase — byte-identical transcripts
at any worker count, formula == delivered bytes for every envelope kind,
and the YOSO speak-once role discipline — are enforced dynamically by the
test suite.  This package enforces their *syntactic shadows* statically,
so a regression surfaces as a ``file:line`` diagnostic at commit time
instead of a flaky cross-process mismatch hours later.

Three rule packs (docs/ANALYSIS.md has the full catalog):

* **determinism** (``DET``) — unseeded RNG, wall-clock reads, OS entropy
  outside the crypto allowlist, float arithmetic in exact-arithmetic
  packages;
* **YOSO discipline** (``YOSO``) — role programs that could post to the
  bulletin more than once per activation, or that keep computing after
  their single utterance;
* **wire contract** (``WIRE``) — envelope kinds whose registration,
  symbolic size formula, and round-trip test coverage have drifted apart,
  and wire dataclasses with non-encodable fields.

Everything is AST-based: no module under analysis is ever imported.
"""

from __future__ import annotations

from repro.analysis.config import LintConfig, load_config
from repro.analysis.diagnostics import RULES, Finding, RuleInfo, format_finding
from repro.analysis.runner import lint_paths

__all__ = [
    "Finding",
    "LintConfig",
    "RULES",
    "RuleInfo",
    "format_finding",
    "lint_paths",
    "load_config",
]
