"""Determinism rule pack (DET001–DET004).

The transcript contract (PR 2, docs/PROTOCOL.md) is that a fixed seed
yields a byte-identical bulletin at any worker count, on any transport.
Syntactically that means: no hidden entropy (module-level RNG, OS
randomness outside the crypto seams), no clock reads feeding values, and
no floats anywhere near the exact Z_N arithmetic.  The rules here flag
the *sources*; whether a given read actually reaches the wire is the
suppression comment's burden of proof.
"""

from __future__ import annotations

import ast

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Finding
from repro.analysis.visitor import SourceModule

#: ``random.<fn>`` module-level calls sharing the hidden global Mersenne
#: Twister state — the canonical nondeterminism bug.
_MODULE_RNG = frozenset(
    {
        "betavariate", "binomialvariate", "choice", "choices",
        "expovariate", "gammavariate", "gauss", "getrandbits",
        "lognormvariate", "normalvariate", "paretovariate", "randbytes",
        "randint", "random", "randrange", "sample", "seed", "shuffle",
        "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

_OS_ENTROPY = frozenset(
    {
        "os.urandom", "os.getrandom",
        "random.SystemRandom",
        "uuid.uuid1", "uuid.uuid4",
    }
)

#: ``math`` functions that stay in Z (safe inside exact-arithmetic code).
_INT_SAFE_MATH = frozenset(
    {
        "ceil", "comb", "factorial", "floor", "gcd", "isqrt", "lcm",
        "perm", "prod", "trunc",
    }
)


def check_determinism(
    module: SourceModule, config: LintConfig
) -> list[Finding]:
    findings: list[Finding] = []
    path = module.display_path
    float_scope = config.in_float_scope(module.path)

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = module.resolve_call(node.func)
            if name is None:
                continue
            findings.extend(
                _check_call(node, name, path, float_scope)
            )
        elif (
            float_scope
            and isinstance(node, ast.Constant)
            and isinstance(node.value, (float, complex))
        ):
            findings.append(
                Finding(
                    path, node.lineno, "DET004",
                    f"float literal {node.value!r} in an exact-arithmetic "
                    f"package",
                )
            )
    return findings


def _check_call(
    node: ast.Call, name: str, path: str, float_scope: bool
) -> list[Finding]:
    line = node.lineno
    head, _, tail = name.rpartition(".")

    if head == "random" and tail in _MODULE_RNG:
        return [
            Finding(
                path, line, "DET001",
                f"module-level RNG call random.{tail}() uses the hidden "
                f"global state",
            )
        ]
    if name == "random.Random" and not node.args:
        return [
            Finding(
                path, line, "DET001",
                "random.Random() without a seed is entropy-seeded",
            )
        ]
    if name in _WALL_CLOCK:
        return [
            Finding(path, line, "DET002", f"wall-clock read {name}()")
        ]
    if name in _OS_ENTROPY or head == "secrets" or name == "secrets":
        return [
            Finding(
                path, line, "DET003",
                f"OS entropy source {name}() outside the crypto allowlist",
            )
        ]
    if float_scope and (
        name == "float"
        or (head == "math" and tail not in _INT_SAFE_MATH)
    ):
        return [
            Finding(
                path, line, "DET004",
                f"float-producing call {name}() in an exact-arithmetic "
                f"package",
            )
        ]
    return []
