"""The AST visitor framework under every rule pack.

A :class:`SourceModule` is one parsed file: its AST, its import-alias
table (so ``import random as rnd; rnd.random()`` still resolves to
``random.random``), and its inline suppression comments.  Rule packs are
plain functions ``(module, config) -> list[Finding]`` (file-scope) or
``(project, config) -> list[Finding]`` (cross-file); nothing here ever
imports the code under analysis.

Suppression syntax, checked by the runner::

    risky_call()  # repro-lint: disable=CODE -- measuring ingest rate

The ``--`` justification is mandatory (LNT001 otherwise) and the comment
must sit on the finding's first line, or alone on the line above it.  A
suppression that matches no finding is itself reported (LNT002) so stale
disables cannot accumulate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import Finding
from repro.errors import AnalysisError

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z]{3,4}\d{3}(?:\s*,\s*[A-Z]{3,4}\d{3})*)"
    r"(?:\s+--\s*(\S.*))?"
)


@dataclass
class Suppression:
    """One inline disable comment and its audit state."""

    line: int
    codes: tuple[str, ...]
    justification: str | None
    standalone: bool  # comment-only line: applies to the line below
    used: bool = False

    def covers(self, code: str, line: int) -> bool:
        if code not in self.codes:
            return False
        return line == self.line or (self.standalone and line == self.line + 1)


@dataclass
class SourceModule:
    """One file under analysis: source, AST, aliases, suppressions."""

    path: Path
    text: str
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def display_path(self) -> str:
        return self.path.as_posix()

    def resolve_call(self, func: ast.expr) -> str | None:
        """The dotted, alias-resolved name a ``Call.func`` refers to.

        ``None`` for anything that is not a plain name/attribute chain
        (subscripts, calls-of-calls, lambdas) — rules treat unresolvable
        callees as out of scope rather than guessing.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def suppressed(self, finding: Finding) -> bool:
        """Whether an in-scope disable comment covers ``finding``."""
        for sup in self.suppressions:
            if sup.covers(finding.code, finding.line):
                sup.used = True
                return True
        return False


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """local name -> canonical dotted path, from every import statement."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}"
                )
    return aliases


def _scan_suppressions(text: str) -> list[Suppression]:
    out: list[Suppression] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = tuple(c.strip() for c in match.group(1).split(","))
        justification = match.group(2)
        out.append(
            Suppression(
                line=lineno,
                codes=codes,
                justification=(
                    justification.strip() if justification else None
                ),
                standalone=line.lstrip().startswith("#"),
            )
        )
    return out


def parse_module(path: Path) -> SourceModule:
    """Parse one file into a :class:`SourceModule` (no importing)."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"{path}:{exc.lineno}: syntax error: {exc.msg}")
    return SourceModule(
        path=path,
        text=text,
        tree=tree,
        aliases=_import_aliases(tree),
        suppressions=_scan_suppressions(text),
    )


def collect_modules(paths: list[Path]) -> list[SourceModule]:
    """Every ``*.py`` under the given files/directories, parsed, sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.is_file():
            files.add(path)
        else:
            raise AnalysisError(f"not a python file or directory: {path}")
    return [parse_module(p) for p in sorted(files)]


def iter_functions(tree: ast.Module):
    """Every (async) function definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
