"""Lint orchestration: collect → run packs → allowlist → suppress.

``lint_paths`` is the single entry point the CLI and the test-suite
share.  Pipeline, in order:

1. parse every ``*.py`` under the given paths (never importing it);
2. run the file-scope packs (determinism, YOSO) per module and the
   project-scope pack (wire contract) once over the whole set;
3. drop findings allowlisted for their file in ``[tool.repro-lint]``;
4. apply inline ``# repro-lint: disable=`` comments, marking each
   suppression used — an unjustified one becomes LNT001, an unused
   justified one LNT002, so the suppression inventory audits itself;
5. drop findings recorded in the baseline file, if one is configured.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.config import LintConfig, load_config
from repro.analysis.determinism import check_determinism
from repro.analysis.diagnostics import Finding
from repro.analysis.visitor import SourceModule, collect_modules
from repro.analysis.wire_contract import check_wire_contract
from repro.analysis.yoso import check_yoso_discipline
from repro.errors import AnalysisError

_FILE_PACKS = (check_determinism, check_yoso_discipline)


def load_baseline(config: LintConfig) -> set[str]:
    """The baseline's finding keys, or the empty set if unconfigured."""
    if config.baseline is None:
        return set()
    path = config.root / config.baseline
    if not path.is_file():
        return set()
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"unreadable baseline {path}: {exc}") from exc
    if not (
        isinstance(entries, list)
        and all(isinstance(e, str) for e in entries)
    ):
        raise AnalysisError(
            f"baseline {path} must be a JSON list of finding keys"
        )
    return set(entries)


def write_baseline(findings: list[Finding], path: Path) -> None:
    """Record the given findings as the accepted baseline."""
    keys = sorted({f.baseline_key() for f in findings})
    path.write_text(
        json.dumps(keys, indent=2) + "\n", encoding="utf-8"
    )


def lint_modules(
    modules: list[SourceModule], config: LintConfig
) -> list[Finding]:
    """Raw findings of every pack, before suppression handling."""
    findings: list[Finding] = []
    for module in modules:
        for pack in _FILE_PACKS:
            findings.extend(pack(module, config))
    findings.extend(check_wire_contract(modules, config))
    return findings


def lint_paths(
    paths: list[Path],
    config: LintConfig | None = None,
    apply_baseline: bool = True,
) -> list[Finding]:
    """Lint files/directories and return the surviving findings, sorted.

    With ``apply_baseline=False`` the configured baseline is ignored —
    used by ``--write-baseline`` to re-record the full finding set.
    """
    if config is None:
        config = load_config(paths[0] if paths else None)
    modules = collect_modules(paths)
    by_path = {m.display_path: m for m in modules}

    survivors: list[Finding] = []
    for finding in lint_modules(modules, config):
        module = by_path.get(finding.path)
        if module is None:
            continue  # e.g. wire findings anchored outside the lint set
        if config.is_allowed(finding.code, module.path):
            continue
        if module.suppressed(finding):
            continue
        survivors.append(finding)

    # The suppression inventory audits itself: every disable comment
    # must carry a justification (LNT001) and must have absorbed at
    # least one finding this run (LNT002).
    for module in modules:
        for sup in module.suppressions:
            if sup.justification is None:
                survivors.append(
                    Finding(
                        module.display_path, sup.line, "LNT001",
                        f"suppression of {', '.join(sup.codes)} has no "
                        f"'-- justification'",
                    )
                )
            elif not sup.used:
                survivors.append(
                    Finding(
                        module.display_path, sup.line, "LNT002",
                        f"suppression of {', '.join(sup.codes)} matched "
                        f"no finding",
                    )
                )

    if apply_baseline:
        baseline = load_baseline(config)
        if baseline:
            survivors = [
                f for f in survivors if f.baseline_key() not in baseline
            ]
    return sorted(survivors)
