"""YOSO-discipline rule pack (YOSO001–YOSO003).

A YOSO role speaks exactly once and is erased (paper §2; the runtime
enforces it dynamically in :mod:`repro.yoso.roles`).  These rules make
the discipline visible at commit time by walking every function that
posts to the bulletin — directly via ``<view>.speak(...)`` or through a
module-local helper (a one-level call-graph walk) — and checking the
*shape* of the program:

* YOSO001 — some execution path performs two speak events;
* YOSO002 — a speak event sits inside a loop (one post per iteration);
* YOSO003 — statements follow the utterance in the same suite, i.e. the
  role computes on state the model says was just erased.

The analysis is per-function and structural: branches of an ``if`` are
alternatives (``max``), statements in sequence add up, and exception
handlers count as the worst live path.  Helpers that speak are treated
as one speak event at their call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Finding
from repro.analysis.visitor import SourceModule, iter_functions

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _is_speak_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "speak"
    )


def _called_names(stmt: ast.stmt) -> set[str]:
    """Simple-name callees in one statement (no nested scopes)."""
    out: set[str] = set()
    for node in _walk_statement(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            out.add(node.func.id)
    return out


def _walk_statement(stmt: ast.stmt):
    """Every node of one statement, not descending into nested scopes."""
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _SCOPES):
                stack.append(child)


@dataclass
class _SpeakEvents:
    """Speak events of one suite walk: path-max count and their lines."""

    count: int = 0
    lines: list[int] = field(default_factory=list)

    def __add__(self, other: "_SpeakEvents") -> "_SpeakEvents":
        return _SpeakEvents(self.count + other.count, self.lines + other.lines)

    @staticmethod
    def worst(*alternatives: "_SpeakEvents") -> "_SpeakEvents":
        return max(alternatives, key=lambda e: e.count)


class _FunctionAnalysis:
    """Structural speak analysis of one function definition."""

    def __init__(self, fn: ast.AST, speaking_helpers: set[str]):
        self.fn = fn
        self.speaking_helpers = speaking_helpers
        self.loop_lines: list[int] = []
        self.after_speak: list[int] = []
        self.events = self._suite(fn.body, in_loop=False)

    # -- event counting ------------------------------------------------------

    def _statement_events(self, stmt: ast.stmt) -> _SpeakEvents:
        """Speak events inside one statement's expressions."""
        events = _SpeakEvents()
        for node in _walk_statement(stmt):
            if _is_speak_call(node):
                events += _SpeakEvents(1, [node.lineno])
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self.speaking_helpers
            ):
                events += _SpeakEvents(1, [node.lineno])
        return events

    def _suite(self, body: list[ast.stmt], in_loop: bool) -> _SpeakEvents:
        total = _SpeakEvents()
        for index, stmt in enumerate(body):
            events = self._stmt(stmt, in_loop)
            if (
                events.count
                and isinstance(stmt, ast.Expr)
                and _is_speak_call(stmt.value)
            ):
                self._flag_after_speak(body[index + 1:])
            total += events
        return total

    def _flag_after_speak(self, rest: list[ast.stmt]) -> None:
        for stmt in rest:
            if isinstance(stmt, ast.Pass) or (
                isinstance(stmt, ast.Return) and stmt.value is None
            ):
                continue
            self.after_speak.append(stmt.lineno)
            return

    def _stmt(self, stmt: ast.stmt, in_loop: bool) -> _SpeakEvents:
        if isinstance(stmt, _SCOPES):
            return _SpeakEvents()
        if isinstance(stmt, ast.If):
            return (
                self._statement_events_of_expr(stmt.test, in_loop)
                + _SpeakEvents.worst(
                    self._suite(stmt.body, in_loop),
                    self._suite(stmt.orelse, in_loop),
                )
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            inner = self._suite(stmt.body, in_loop=True)
            if inner.count:
                self.loop_lines.extend(inner.lines[:1])
            return inner + self._suite(stmt.orelse, in_loop)
        if isinstance(stmt, ast.While):
            inner = self._suite(stmt.body, in_loop=True)
            if inner.count:
                self.loop_lines.extend(inner.lines[:1])
            return inner + self._suite(stmt.orelse, in_loop)
        if isinstance(stmt, ast.Try):
            handled = _SpeakEvents.worst(
                _SpeakEvents(),
                *(self._suite(h.body, in_loop) for h in stmt.handlers),
            )
            return (
                self._suite(stmt.body, in_loop)
                + handled
                + self._suite(stmt.orelse, in_loop)
                + self._suite(stmt.finalbody, in_loop)
            )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            events = _SpeakEvents()
            for item in stmt.items:
                events += self._statement_events_of_expr(
                    item.context_expr, in_loop
                )
            return events + self._suite(stmt.body, in_loop)
        if isinstance(stmt, ast.Match):
            subject = self._statement_events_of_expr(stmt.subject, in_loop)
            return subject + _SpeakEvents.worst(
                _SpeakEvents(),
                *(self._suite(case.body, in_loop) for case in stmt.cases),
            )
        return self._statement_events(stmt)

    def _statement_events_of_expr(
        self, expr: ast.expr, in_loop: bool
    ) -> _SpeakEvents:
        return self._statement_events(ast.Expr(value=expr))


def _direct_speak_count(fn: ast.AST) -> int:
    count = 0
    for stmt in fn.body:
        for node in _walk_statement(stmt):
            if _is_speak_call(node):
                count += 1
    # Nested suites are reached through _walk_statement on compound
    # statements, so the loop above already covers the whole body.
    return count


def check_yoso_discipline(
    module: SourceModule, config: LintConfig
) -> list[Finding]:
    path = module.display_path
    functions = list(iter_functions(module.tree))
    by_name: dict[str, ast.AST] = {fn.name: fn for fn in functions}

    # One-level call-graph closure: which local functions speak,
    # directly or through another local function they call.
    speaks_direct = {
        fn.name for fn in functions if _direct_speak_count(fn) > 0
    }
    speaking = set(speaks_direct)
    changed = True
    while changed:
        changed = False
        for fn in functions:
            if fn.name in speaking:
                continue
            callees = set()
            for stmt in fn.body:
                callees |= _called_names(stmt)
            if callees & speaking:
                speaking.add(fn.name)
                changed = True

    findings: list[Finding] = []
    for fn in functions:
        if fn.name not in speaking:
            continue
        helpers = (speaking - {fn.name}) & set(by_name)
        analysis = _FunctionAnalysis(fn, helpers)
        if not analysis.events.count and not analysis.loop_lines:
            continue
        for line in analysis.loop_lines:
            findings.append(
                Finding(
                    path, line, "YOSO002",
                    f"role program {fn.name!r} speaks inside a loop — one "
                    f"post per iteration breaks speak-once",
                )
            )
        if analysis.events.count > 1:
            line = sorted(analysis.events.lines)[1]
            findings.append(
                Finding(
                    path, line, "YOSO001",
                    f"role program {fn.name!r} can perform "
                    f"{analysis.events.count} speak events in one "
                    f"activation",
                )
            )
        for line in analysis.after_speak:
            findings.append(
                Finding(
                    path, line, "YOSO003",
                    f"role program {fn.name!r} keeps executing after its "
                    f"single utterance (state is erased at speak)",
                )
            )
    return findings
