"""The ``repro lint`` subcommand.

Thin shell over :func:`repro.analysis.runner.lint_paths`: resolve the
configuration, lint the requested paths (default ``src/repro`` plus the
round-trip test's directory convention: just ``src/repro``), and print
``file:line: CODE message`` diagnostics with fix hints.  Exit status is
the finding count clamped to 1, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.diagnostics import RULES, format_finding
from repro.analysis.runner import lint_paths, write_baseline


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--no-hints", action="store_true",
        help="omit the fix-hint line under each diagnostic",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", type=Path,
        help="record current findings to FILE and exit 0",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.code}  {rule.title}")
            print(f"    fix: {rule.hint}")
        return 0

    paths = args.paths or [Path("src/repro")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}")
        return 2

    config = load_config(paths[0])
    if args.write_baseline is not None:
        findings = lint_paths(paths, config, apply_baseline=False)
        write_baseline(findings, args.write_baseline)
        print(
            f"wrote {len(findings)} finding(s) to {args.write_baseline}"
        )
        return 0

    findings = lint_paths(paths, config)
    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "path": f.path,
                        "line": f.line,
                        "code": f.code,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(format_finding(finding, hint=not args.no_hints))
        plural = "" if len(findings) == 1 else "s"
        print(f"repro lint: {len(findings)} finding{plural}")
    return 1 if findings else 0
