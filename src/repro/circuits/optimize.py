"""Circuit optimization passes.

Multiplications are the only gates that cost communication, so shrinking
the circuit before planning batches directly shrinks the protocol's bill.
Three classic passes, all semantics-preserving over any ring:

* **constant folding** — gates whose operands are compile-time constants
  (including algebraic identities ``x·0 = 0``, ``x·1 = x``, ``x+0 = x``,
  ``x−x = 0``) are rewritten to constant chains on existing wires;
* **common-subexpression elimination** — structurally identical gates are
  merged (the builder's single-assignment form makes this a dictionary
  lookup);
* **dead-gate elimination** — gates no output transitively depends on are
  dropped.

:func:`optimize` runs them to a fixed point and returns the new circuit
plus a wire remapping for callers holding old wire ids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import Circuit, Gate, GateType
from repro.errors import CircuitError


@dataclass(frozen=True)
class OptimizationResult:
    circuit: Circuit
    wire_map: dict[int, int]       # old wire id -> new wire id
    gates_removed: int
    multiplications_removed: int


def optimize(circuit: Circuit) -> OptimizationResult:
    """Run folding + CSE + dead-code elimination to a fixed point."""
    gates = list(circuit.gates)
    wire_map = {w: w for w in range(len(gates))}
    # Iterate to a structural fixed point: stop when a sweep reproduces the
    # same gate list (some rewrites re-canonicalize in place, so the
    # rules' own "changed" flag is not a termination signal).  The sweep
    # count is bounded anyway: every productive sweep removes a gate.
    for _ in range(len(gates) + 2):
        before = [(g.kind, g.inputs, g.constant, g.client) for g in gates]
        gates2, map2, _ = _fold_and_cse(gates)
        wire_map = {old: map2[new] for old, new in wire_map.items()}
        gates = gates2
        after = [(g.kind, g.inputs, g.constant, g.client) for g in gates]
        if after == before:
            break
    gates, map3 = _eliminate_dead(gates)
    wire_map = {old: map3[new] for old, new in wire_map.items() if new in map3}
    optimized = Circuit(gates)
    return OptimizationResult(
        circuit=optimized,
        wire_map=wire_map,
        gates_removed=len(circuit.gates) - len(gates),
        multiplications_removed=(
            circuit.n_multiplications - optimized.n_multiplications
        ),
    )


# -- pass 1+2: folding and CSE in one sweep ----------------------------------


def _fold_and_cse(gates: list[Gate]) -> tuple[list[Gate], dict[int, int], bool]:
    """One forward sweep; returns (new gates, old->new map, changed?)."""
    new_gates: list[Gate] = []
    remap: dict[int, int] = {}
    #: constant value of a wire, when statically known
    const: dict[int, int] = {}
    #: structural signature -> new wire id (CSE)
    seen: dict[tuple, int] = {}
    changed = False

    def push(gate: Gate) -> int:
        signature = (gate.kind, gate.inputs, gate.constant, gate.client)
        if gate.kind not in (GateType.INPUT, GateType.OUTPUT) and signature in seen:
            return seen[signature]
        new_gates.append(gate)
        wire = len(new_gates) - 1
        if gate.kind not in (GateType.INPUT, GateType.OUTPUT):
            seen[signature] = wire
        return wire

    def make_constant(value: int, anchor: int) -> int:
        """A wire carrying a known constant: anchor·0 + value."""
        zero = push(Gate(GateType.CMUL, (anchor,), constant=0))
        const[zero] = 0
        wire = push(Gate(GateType.CADD, (zero,), constant=value))
        const[wire] = value
        return wire

    for old, gate in enumerate(gates):
        inputs = tuple(remap[i] for i in gate.inputs)
        kind = gate.kind

        if kind is GateType.INPUT:
            remap[old] = push(gate)
            continue
        if kind is GateType.OUTPUT:
            remap[old] = push(Gate(kind, inputs, client=gate.client))
            continue

        known = [const.get(i) for i in inputs]

        if kind is GateType.ADD:
            a, b = inputs
            if known[0] is not None and known[1] is not None:
                remap[old] = make_constant(known[0] + known[1], a)
                changed = True
                continue
            if known[0] == 0:
                remap[old] = b
                changed = True
                continue
            if known[1] == 0:
                remap[old] = a
                changed = True
                continue
            if known[1] is not None:
                remap[old] = push(Gate(GateType.CADD, (a,), constant=known[1]))
                changed = True
                continue
            if known[0] is not None:
                remap[old] = push(Gate(GateType.CADD, (b,), constant=known[0]))
                changed = True
                continue
        elif kind is GateType.SUB:
            a, b = inputs
            if a == b:
                remap[old] = make_constant(0, a)
                changed = True
                continue
            if known[0] is not None and known[1] is not None:
                remap[old] = make_constant(known[0] - known[1], a)
                changed = True
                continue
            if known[1] == 0:
                remap[old] = a
                changed = True
                continue
            if known[1] is not None:
                remap[old] = push(Gate(GateType.CADD, (a,), constant=-known[1]))
                changed = True
                continue
        elif kind is GateType.CADD:
            (a,) = inputs
            if gate.constant == 0:
                remap[old] = a
                changed = True
                continue
            if known[0] is not None:
                remap[old] = make_constant(known[0] + gate.constant, a)
                changed = True
                continue
        elif kind is GateType.CMUL:
            (a,) = inputs
            if gate.constant == 1:
                remap[old] = a
                changed = True
                continue
            if gate.constant == 0:
                remap[old] = make_constant(0, a)
                changed = True
                continue
            if known[0] is not None:
                remap[old] = make_constant(known[0] * gate.constant, a)
                changed = True
                continue
        elif kind is GateType.MUL:
            a, b = inputs
            if known[0] is not None:
                remap[old] = push(Gate(GateType.CMUL, (b,), constant=known[0]))
                changed = True
                continue
            if known[1] is not None:
                remap[old] = push(Gate(GateType.CMUL, (a,), constant=known[1]))
                changed = True
                continue

        before = len(new_gates)
        wire = push(Gate(kind, inputs, constant=gate.constant, client=gate.client))
        if len(new_gates) == before:  # CSE hit
            changed = True
        remap[old] = wire

    return new_gates, remap, changed


# -- pass 3: dead-gate elimination -------------------------------------------


def _eliminate_dead(gates: list[Gate]) -> tuple[list[Gate], dict[int, int]]:
    live: set[int] = set()
    for w in range(len(gates) - 1, -1, -1):
        gate = gates[w]
        if gate.kind is GateType.OUTPUT or w in live:
            live.add(w)
            live.update(gate.inputs)
    # Inputs must survive (removing one would change a client's arity).
    for w, gate in enumerate(gates):
        if gate.kind is GateType.INPUT:
            live.add(w)
    remap: dict[int, int] = {}
    new_gates: list[Gate] = []
    for w, gate in enumerate(gates):
        if w not in live:
            continue
        remapped = Gate(
            gate.kind,
            tuple(remap[i] for i in gate.inputs),
            constant=gate.constant,
            client=gate.client,
        )
        new_gates.append(remapped)
        remap[w] = len(new_gates) - 1
    if not new_gates:
        raise CircuitError("optimization removed every gate")
    return new_gates, remap
