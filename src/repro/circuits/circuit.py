"""Arithmetic-circuit representation and plaintext evaluation.

A :class:`Circuit` is a list of :class:`Gate` records in topological order;
wire ``w`` is the output of gate ``w`` (single-assignment).  Gate types:

=========  =====================================  ====================
type       semantics                              mask rule (λ^γ)
=========  =====================================  ====================
INPUT      value supplied by ``client``           fresh random
ADD        ``v_a + v_b``                          ``λ_a + λ_b``
SUB        ``v_a − v_b``                          ``λ_a − λ_b``
CADD       ``v_a + constant``                     ``λ_a``
CMUL       ``v_a · constant``                     ``λ_a · constant``
MUL        ``v_a · v_b``                          fresh random
OUTPUT     exposes ``v_a`` to ``client``          (inherits ``λ_a``)
=========  =====================================  ====================

The "mask rule" column is the Turbopack wire-mask propagation the offline
phase implements homomorphically (paper §3.1/§5.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import CircuitError
from repro.fields import Zmod, ZmodElement

if TYPE_CHECKING:
    from repro.circuits.program import CircuitProgram


class GateType(enum.Enum):
    INPUT = "input"
    ADD = "add"
    SUB = "sub"
    CADD = "cadd"
    CMUL = "cmul"
    MUL = "mul"
    OUTPUT = "output"


@dataclass(frozen=True)
class Gate:
    """One gate; its output wire id equals its index in the circuit."""

    kind: GateType
    inputs: tuple[int, ...] = ()
    constant: int | None = None
    client: str | None = None

    def __post_init__(self):
        arity = {
            GateType.INPUT: 0,
            GateType.ADD: 2,
            GateType.SUB: 2,
            GateType.CADD: 1,
            GateType.CMUL: 1,
            GateType.MUL: 2,
            GateType.OUTPUT: 1,
        }[self.kind]
        if len(self.inputs) != arity:
            raise CircuitError(
                f"{self.kind.value} gate needs {arity} inputs, got {len(self.inputs)}"
            )
        if self.kind in (GateType.CADD, GateType.CMUL) and self.constant is None:
            raise CircuitError(f"{self.kind.value} gate needs a constant")
        if self.kind in (GateType.INPUT, GateType.OUTPUT) and not self.client:
            raise CircuitError(f"{self.kind.value} gate needs a client id")


@dataclass(frozen=True)
class CircuitEvaluation:
    """Plaintext evaluation result: every wire value plus per-client outputs."""

    wire_values: tuple[ZmodElement, ...]
    outputs: Mapping[str, tuple[ZmodElement, ...]]


class Circuit:
    """An immutable arithmetic circuit (build with :class:`CircuitBuilder`)."""

    def __init__(self, gates: Sequence[Gate]):
        self.gates: tuple[Gate, ...] = tuple(gates)
        self._validate()
        self.input_wires: tuple[int, ...] = tuple(
            w for w, g in enumerate(self.gates) if g.kind is GateType.INPUT
        )
        self.output_wires: tuple[int, ...] = tuple(
            w for w, g in enumerate(self.gates) if g.kind is GateType.OUTPUT
        )
        self.multiplication_wires: tuple[int, ...] = tuple(
            w for w, g in enumerate(self.gates) if g.kind is GateType.MUL
        )

    def _validate(self) -> None:
        if not self.gates:
            raise CircuitError("empty circuit")
        for w, gate in enumerate(self.gates):
            for src in gate.inputs:
                if not 0 <= src < w:
                    raise CircuitError(
                        f"gate {w} reads wire {src}, violating topological order"
                    )
                if self.gates[src].kind is GateType.OUTPUT:
                    raise CircuitError(f"gate {w} reads an OUTPUT wire {src}")

    # -- shape queries -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def n_multiplications(self) -> int:
        return len(self.multiplication_wires)

    @property
    def n_inputs(self) -> int:
        return len(self.input_wires)

    @property
    def n_outputs(self) -> int:
        return len(self.output_wires)

    def input_clients(self) -> list[str]:
        """Clients contributing inputs, in first-appearance order."""
        seen: dict[str, None] = {}
        for w in self.input_wires:
            seen.setdefault(self.gates[w].client, None)  # type: ignore[arg-type]
        return list(seen)

    def output_clients(self) -> list[str]:
        seen: dict[str, None] = {}
        for w in self.output_wires:
            seen.setdefault(self.gates[w].client, None)  # type: ignore[arg-type]
        return list(seen)

    def inputs_of_client(self, client: str) -> list[int]:
        return [w for w in self.input_wires if self.gates[w].client == client]

    def outputs_of_client(self, client: str) -> list[int]:
        return [w for w in self.output_wires if self.gates[w].client == client]

    def program(self, k: int) -> "CircuitProgram":
        """The compiled :class:`~repro.circuits.program.CircuitProgram`.

        Memoized per instance and ``k`` (see
        :func:`repro.circuits.program.compile_circuit`).
        """
        from repro.circuits.program import compile_circuit

        return compile_circuit(self, k)

    def depths(self) -> list[int]:
        """Multiplicative depth of every wire (MUL gates increment)."""
        depth = [0] * len(self.gates)
        for w, gate in enumerate(self.gates):
            src = max((depth[s] for s in gate.inputs), default=0)
            depth[w] = src + 1 if gate.kind is GateType.MUL else src
        return depth

    # -- evaluation --------------------------------------------------------

    def evaluate(
        self, ring: Zmod, inputs: Mapping[str, Sequence[int | ZmodElement]]
    ) -> CircuitEvaluation:
        """Reference plaintext evaluation (the MPC's ground truth in tests).

        ``inputs[client]`` lists the client's input values in the order its
        INPUT gates appear.
        """
        cursors = {client: 0 for client in inputs}
        values: list[ZmodElement] = []
        outputs: dict[str, list[ZmodElement]] = {}
        for w, gate in enumerate(self.gates):
            if gate.kind is GateType.INPUT:
                client = gate.client or ""
                if client not in inputs:
                    raise CircuitError(f"no inputs supplied for client {client!r}")
                idx = cursors[client]
                supplied = inputs[client]
                if idx >= len(supplied):
                    raise CircuitError(
                        f"client {client!r} supplied {len(supplied)} inputs, needs more"
                    )
                values.append(ring.element(supplied[idx]))
                cursors[client] = idx + 1
            elif gate.kind is GateType.ADD:
                values.append(values[gate.inputs[0]] + values[gate.inputs[1]])
            elif gate.kind is GateType.SUB:
                values.append(values[gate.inputs[0]] - values[gate.inputs[1]])
            elif gate.kind is GateType.CADD:
                values.append(values[gate.inputs[0]] + ring.element(gate.constant))
            elif gate.kind is GateType.CMUL:
                values.append(values[gate.inputs[0]] * ring.element(gate.constant))
            elif gate.kind is GateType.MUL:
                values.append(values[gate.inputs[0]] * values[gate.inputs[1]])
            elif gate.kind is GateType.OUTPUT:
                value = values[gate.inputs[0]]
                values.append(value)
                outputs.setdefault(gate.client or "", []).append(value)
            else:  # pragma: no cover - enum is exhaustive
                raise CircuitError(f"unknown gate type {gate.kind}")
        for client, supplied in inputs.items():
            if cursors.get(client, 0) != len(supplied):
                raise CircuitError(
                    f"client {client!r} supplied {len(supplied)} inputs, "
                    f"circuit consumed {cursors.get(client, 0)}"
                )
        return CircuitEvaluation(
            tuple(values), {c: tuple(v) for c, v in outputs.items()}
        )

    def __repr__(self) -> str:
        return (
            f"Circuit(gates={len(self.gates)}, inputs={self.n_inputs}, "
            f"muls={self.n_multiplications}, outputs={self.n_outputs})"
        )
