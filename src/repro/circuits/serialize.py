"""Circuit and compiled-program (de)serialization to a stable JSON form.

Circuits are deployment artifacts in the YOSO setting — the *circuit-
dependent* preprocessing (paper §3.1) means every participant must agree on
the exact circuit long before inputs exist, so a canonical serialized form
(and a digest of it) is part of the protocol's public parameters.

Format version 2 adds an optional ``program`` section carrying the full
:class:`~repro.circuits.program.CircuitProgram` lowering (layers, constant
table, packing plan), so a coordinator can compile once and ship the
compiled artifact to every participant instead of having each one re-plan
a 10⁴-gate circuit.  Version-1 documents (circuit only) still load;
documents from unknown future versions are rejected with
:class:`~repro.errors.CircuitFormatError` so callers can distinguish
"newer format" from "corrupt circuit".

The :func:`digest` is computed over the *circuit* serialization only —
the program is derived data, and the public circuit id must not depend
on whether a document happens to carry the compiled form.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.circuits.circuit import Circuit, Gate, GateType
from repro.circuits.layering import BatchPlan, InputBatch, MultiplicationBatch
from repro.circuits.program import (
    _CACHE_ATTR,
    CircuitProgram,
    GateRun,
    InputSegment,
    Layer,
    OutputSegment,
)
from repro.errors import CircuitError, CircuitFormatError

FORMAT_VERSION = 2

#: Versions this reader understands.  v1: circuit only.  v2: + program.
_KNOWN_VERSIONS = (1, 2)


def _check_version(data: Any) -> int:
    if not isinstance(data, dict):
        raise CircuitError("malformed circuit document: not an object")
    version = data.get("version")
    if version not in _KNOWN_VERSIONS:
        raise CircuitFormatError(
            f"unsupported circuit format version {version!r} "
            f"(this reader knows {_KNOWN_VERSIONS})"
        )
    return int(version)


# ---------------------------------------------------------------------------
# Circuit documents
# ---------------------------------------------------------------------------


def circuit_to_dict(circuit: Circuit) -> dict[str, Any]:
    """A JSON-ready description of the circuit."""
    gates = []
    for gate in circuit.gates:
        entry: dict[str, Any] = {"kind": gate.kind.value}
        if gate.inputs:
            entry["inputs"] = list(gate.inputs)
        if gate.constant is not None:
            entry["constant"] = gate.constant
        if gate.client is not None:
            entry["client"] = gate.client
        gates.append(entry)
    return {"version": FORMAT_VERSION, "gates": gates}


def circuit_from_dict(data: dict[str, Any]) -> Circuit:
    """Rebuild a circuit; validates structure via the Circuit constructor."""
    _check_version(data)
    if "gates" not in data:
        raise CircuitError("malformed circuit document: no 'gates'")
    gates = []
    for i, entry in enumerate(data["gates"]):
        try:
            kind = GateType(entry["kind"])
        except (KeyError, ValueError) as exc:
            raise CircuitError(f"gate {i}: bad kind {entry.get('kind')!r}") from exc
        gates.append(
            Gate(
                kind,
                tuple(entry.get("inputs", ())),
                constant=entry.get("constant"),
                client=entry.get("client"),
            )
        )
    return Circuit(gates)


def dumps(circuit: Circuit) -> str:
    """Canonical JSON text (sorted keys, no whitespace variance)."""
    return json.dumps(
        circuit_to_dict(circuit), sort_keys=True, separators=(",", ":")
    )


def loads(text: str) -> Circuit:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CircuitError(f"invalid circuit JSON: {exc}") from exc
    return circuit_from_dict(data)


def digest(circuit: Circuit) -> str:
    """SHA-256 of the canonical circuit serialization — the public circuit id.

    Deliberately excludes any compiled-program section: the id names the
    *function*, not one packing of it.
    """
    return hashlib.sha256(dumps(circuit).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Compiled-program documents (format v2)
# ---------------------------------------------------------------------------


def _run_to_dict(run: GateRun) -> dict[str, Any]:
    entry: dict[str, Any] = {"kind": run.kind.value, "wires": list(run.wires)}
    if run.src0:
        entry["src0"] = list(run.src0)
    if run.src1:
        entry["src1"] = list(run.src1)
    if run.const_index:
        entry["const_index"] = list(run.const_index)
    if run.clients:
        entry["clients"] = list(run.clients)
    return entry


def program_to_dict(program: CircuitProgram) -> dict[str, Any]:
    """The circuit document plus the full compiled lowering."""
    doc = circuit_to_dict(program.circuit)
    plan = program.plan
    doc["program"] = {
        "k": program.k,
        "layers": [
            [_run_to_dict(run) for run in layer.runs]
            for layer in program.layers
        ],
        "level_of_wire": list(program.level_of_wire),
        "constants": list(program.constants),
        "input_segments": [
            {"client": s.client, "wires": list(s.wires)}
            for s in program.input_segments
        ],
        "output_segments": [
            {"client": s.client, "wires": list(s.wires)}
            for s in program.output_segments
        ],
        "input_batches": [
            {"batch_id": b.batch_id, "client": b.client, "wires": list(b.wires)}
            for b in plan.input_batches
        ],
        "mul_batches": [
            {
                "batch_id": b.batch_id,
                "depth": b.depth,
                "gate_wires": list(b.gate_wires),
                "left_wires": list(b.left_wires),
                "right_wires": list(b.right_wires),
            }
            for b in plan.mul_batches
        ],
    }
    return doc


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CircuitError(f"malformed program document: {message}")


def program_from_dict(data: dict[str, Any]) -> CircuitProgram:
    """Rebuild a compiled program without re-running the compiler.

    Validates the document structurally against the reconstructed circuit
    (wire ranges, layer coverage, batch shapes), rebuilds the derived
    indices (slot maps, per-depth views) exactly as the compiler would,
    and installs the program in the circuit's compile cache so a later
    ``compile_circuit(circuit, k)`` call is a hit.
    """
    if _check_version(data) < 2:
        raise CircuitFormatError(
            "format version 1 documents carry no compiled program; "
            "re-serialize with program_to_dict or call compile_circuit"
        )
    circuit = circuit_from_dict(data)
    raw = data.get("program")
    if not isinstance(raw, dict):
        raise CircuitError("malformed program document: no 'program' section")
    n = len(circuit.gates)
    try:
        k = int(raw["k"])
        level_of_wire = tuple(int(x) for x in raw["level_of_wire"])
        constants = tuple(int(x) for x in raw["constants"])
        layers = tuple(
            Layer(
                index=i,
                runs=tuple(
                    GateRun(
                        kind=GateType(run["kind"]),
                        wires=tuple(run["wires"]),
                        src0=tuple(run.get("src0", ())),
                        src1=tuple(run.get("src1", ())),
                        const_index=tuple(run.get("const_index", ())),
                        clients=tuple(run.get("clients", ())),
                    )
                    for run in runs
                ),
            )
            for i, runs in enumerate(raw["layers"])
        )
        input_segments = tuple(
            InputSegment(str(s["client"]), tuple(s["wires"]))
            for s in raw["input_segments"]
        )
        output_segments = tuple(
            OutputSegment(str(s["client"]), tuple(s["wires"]))
            for s in raw["output_segments"]
        )
        input_batches = tuple(
            InputBatch(int(b["batch_id"]), str(b["client"]), tuple(b["wires"]))
            for b in raw["input_batches"]
        )
        mul_batches = tuple(
            MultiplicationBatch(
                int(b["batch_id"]),
                int(b["depth"]),
                tuple(b["gate_wires"]),
                tuple(b["left_wires"]),
                tuple(b["right_wires"]),
            )
            for b in raw["mul_batches"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CircuitError(f"malformed program document: {exc!r}") from exc

    # -- structural validation against the circuit --------------------------
    _require(k >= 1, f"packing factor must be >= 1, got {k}")
    _require(
        len(level_of_wire) == n,
        f"level_of_wire has {len(level_of_wire)} entries for {n} gates",
    )
    seen = [False] * n
    for layer in layers:
        for run in layer.runs:
            for w in run.wires:
                _require(0 <= w < n, f"run wire {w} out of range")
                _require(not seen[w], f"wire {w} appears in two runs")
                seen[w] = True
                _require(
                    circuit.gates[w].kind is run.kind,
                    f"wire {w} kind mismatch in layer {layer.index}",
                )
            for src in (run.src0, run.src1):
                _require(
                    len(src) in (0, len(run.wires)),
                    f"ragged operand array in layer {layer.index}",
                )
            for ci in run.const_index:
                _require(
                    0 <= ci < len(constants), f"constant index {ci} out of range"
                )
    _require(all(seen), "layers do not cover every gate")
    for batch in mul_batches:
        _require(
            len(batch.gate_wires) <= k
            and len(batch.left_wires) == len(batch.gate_wires)
            and len(batch.right_wires) == len(batch.gate_wires),
            f"mul batch {batch.batch_id} has a bad shape",
        )
        for w in batch.gate_wires:
            _require(
                0 <= w < n and circuit.gates[w].kind is GateType.MUL,
                f"mul batch {batch.batch_id} wire {w} is not a MUL gate",
            )
    batched = sorted(w for b in mul_batches for w in b.gate_wires)
    _require(
        batched == list(circuit.multiplication_wires),
        "mul batches do not cover the circuit's multiplication gates",
    )
    # Committee draw order is *circuit* order, not the batches' depth-major
    # order — take it from the circuit the document reconstructs.
    mul_wires = circuit.multiplication_wires

    # -- derived indices (reconstructed, never serialized) -------------------
    input_slot = {
        w: (b.batch_id, slot)
        for b in input_batches
        for slot, w in enumerate(b.wires)
    }
    mul_slot = {
        w: (b.batch_id, slot)
        for b in mul_batches
        for slot, w in enumerate(b.gate_wires)
    }
    plan = BatchPlan(
        k=k,
        input_batches=input_batches,
        mul_batches=mul_batches,
        mul_slot_of_wire=mul_slot,
        input_slot_of_wire=input_slot,
    )
    muls_by_depth: dict[int, list[int]] = {}
    depth_batches: dict[int, list[MultiplicationBatch]] = {}
    for batch in mul_batches:
        depth_batches.setdefault(batch.depth, []).append(batch)
        muls_by_depth.setdefault(batch.depth, []).extend(batch.gate_wires)

    program = CircuitProgram(
        circuit=circuit,
        k=k,
        plan=plan,
        layers=layers,
        level_of_wire=level_of_wire,
        constants=constants,
        input_segments=input_segments,
        output_segments=output_segments,
        mul_wires=mul_wires,
        mask_wires=circuit.input_wires + mul_wires,
        mul_depths=tuple(sorted(depth_batches)),
        muls_by_depth={d: tuple(ws) for d, ws in muls_by_depth.items()},
        depth_batches={d: tuple(bs) for d, bs in depth_batches.items()},
    )
    # Prime the compile cache: a later compile_circuit(circuit, k) is a hit.
    circuit.__dict__.setdefault(_CACHE_ATTR, {})[k] = (circuit.gates, program)
    return program


def dumps_program(program: CircuitProgram) -> str:
    """Canonical JSON text of the circuit plus its compiled lowering."""
    return json.dumps(
        program_to_dict(program), sort_keys=True, separators=(",", ":")
    )


def loads_program(text: str) -> CircuitProgram:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CircuitError(f"invalid program JSON: {exc}") from exc
    return program_from_dict(data)
