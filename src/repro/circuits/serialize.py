"""Circuit (de)serialization to a stable JSON-compatible form.

Circuits are deployment artifacts in the YOSO setting — the *circuit-
dependent* preprocessing (paper §3.1) means every participant must agree on
the exact circuit long before inputs exist, so a canonical serialized form
(and a digest of it) is part of the protocol's public parameters.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.circuits.circuit import Circuit, Gate, GateType
from repro.errors import CircuitError

FORMAT_VERSION = 1


def circuit_to_dict(circuit: Circuit) -> dict[str, Any]:
    """A JSON-ready description of the circuit."""
    gates = []
    for gate in circuit.gates:
        entry: dict[str, Any] = {"kind": gate.kind.value}
        if gate.inputs:
            entry["inputs"] = list(gate.inputs)
        if gate.constant is not None:
            entry["constant"] = gate.constant
        if gate.client is not None:
            entry["client"] = gate.client
        gates.append(entry)
    return {"version": FORMAT_VERSION, "gates": gates}


def circuit_from_dict(data: dict[str, Any]) -> Circuit:
    """Rebuild a circuit; validates structure via the Circuit constructor."""
    if not isinstance(data, dict) or "gates" not in data:
        raise CircuitError("malformed circuit document: no 'gates'")
    if data.get("version") != FORMAT_VERSION:
        raise CircuitError(
            f"unsupported circuit format version {data.get('version')!r}"
        )
    gates = []
    for i, entry in enumerate(data["gates"]):
        try:
            kind = GateType(entry["kind"])
        except (KeyError, ValueError) as exc:
            raise CircuitError(f"gate {i}: bad kind {entry.get('kind')!r}") from exc
        gates.append(
            Gate(
                kind,
                tuple(entry.get("inputs", ())),
                constant=entry.get("constant"),
                client=entry.get("client"),
            )
        )
    return Circuit(gates)


def dumps(circuit: Circuit) -> str:
    """Canonical JSON text (sorted keys, no whitespace variance)."""
    return json.dumps(
        circuit_to_dict(circuit), sort_keys=True, separators=(",", ":")
    )


def loads(text: str) -> Circuit:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CircuitError(f"invalid circuit JSON: {exc}") from exc
    return circuit_from_dict(data)


def digest(circuit: Circuit) -> str:
    """SHA-256 of the canonical serialization — the public circuit id."""
    return hashlib.sha256(dumps(circuit).encode()).hexdigest()
