"""Arithmetic circuits: representation, builder DSL, batching, and a library.

The protocol evaluates layered arithmetic circuits over the plaintext ring;
multiplication gates are *batched* into groups of ``k`` (the packing factor)
so a whole batch costs what a single gate costs online (paper §3.1).
"""

from repro.circuits.circuit import (
    Circuit,
    Gate,
    GateType,
    CircuitEvaluation,
)
from repro.circuits.builder import CircuitBuilder
from repro.circuits.layering import BatchPlan, MultiplicationBatch, InputBatch, plan_batches
from repro.circuits.program import (
    CircuitProgram,
    GateRun,
    InputSegment,
    Layer,
    OutputSegment,
    compile_circuit,
)
from repro.circuits.bitwise import (
    comparison_circuit,
    maximum_circuit,
    second_price_auction_circuit,
)
from repro.circuits.linalg import (
    bias_add,
    matmul,
    matmul_circuit,
    matvec,
    mlp_circuit,
    relu_from_bits,
    square_activation,
)
from repro.circuits.optimize import OptimizationResult, optimize
from repro.circuits.stats import (
    BatchEfficiency,
    CircuitStats,
    batch_efficiency,
    best_packing_factor,
    circuit_stats,
    estimate_phase_bytes,
)
from repro.circuits.serialize import (
    circuit_from_dict,
    circuit_to_dict,
    digest,
    dumps,
    dumps_program,
    loads,
    loads_program,
    program_from_dict,
    program_to_dict,
)
from repro.circuits.library import (
    dot_product_circuit,
    inner_product_sum_circuit,
    linear_model_circuit,
    masked_membership_circuit,
    matrix_vector_circuit,
    polynomial_eval_circuit,
    statistics_circuit,
    random_circuit,
)
from repro.circuits.workloads import (
    AuctionOutcome,
    InferenceOutcome,
    StatisticsOutcome,
    flatten_model,
    grouped_statistics_circuit,
    histogram_second_price_circuit,
    run_private_inference,
    run_private_statistics,
    run_sealed_bid_auction,
)

__all__ = [
    "Circuit",
    "Gate",
    "GateType",
    "CircuitEvaluation",
    "CircuitBuilder",
    "BatchPlan",
    "MultiplicationBatch",
    "InputBatch",
    "plan_batches",
    "CircuitProgram",
    "GateRun",
    "InputSegment",
    "Layer",
    "OutputSegment",
    "compile_circuit",
    "comparison_circuit",
    "maximum_circuit",
    "second_price_auction_circuit",
    "bias_add",
    "matmul",
    "matmul_circuit",
    "matvec",
    "mlp_circuit",
    "relu_from_bits",
    "square_activation",
    "OptimizationResult",
    "optimize",
    "BatchEfficiency",
    "CircuitStats",
    "batch_efficiency",
    "best_packing_factor",
    "circuit_stats",
    "estimate_phase_bytes",
    "circuit_from_dict",
    "circuit_to_dict",
    "digest",
    "dumps",
    "dumps_program",
    "loads",
    "loads_program",
    "program_from_dict",
    "program_to_dict",
    "dot_product_circuit",
    "inner_product_sum_circuit",
    "linear_model_circuit",
    "masked_membership_circuit",
    "matrix_vector_circuit",
    "polynomial_eval_circuit",
    "statistics_circuit",
    "random_circuit",
    "AuctionOutcome",
    "InferenceOutcome",
    "StatisticsOutcome",
    "flatten_model",
    "grouped_statistics_circuit",
    "histogram_second_price_circuit",
    "run_private_inference",
    "run_private_statistics",
    "run_sealed_bid_auction",
]
