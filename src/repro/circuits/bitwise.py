"""Bitwise gadgets: equality, comparison, selection over bit-decomposed inputs.

Arithmetic circuits over a large ring cannot compare field elements
directly; the standard workaround has clients supply their values *as
bits* and the circuit (a) constrains each bit (``b·(1−b) = 0`` outputs let
anyone audit bitness) and (b) computes comparisons with polynomial
identities:

* equality:   ``eq(a, b)   = Π_i (1 − (a_i − b_i)²)``
* less-than:  ``lt(a, b)   = Σ_i (1−a_i)·b_i·Π_{j>i} eq_j``   (MSB first)
* selection:  ``mux(c,x,y) = c·x + (1−c)·y``

These make order-dependent workloads (auctions, maximum, thresholds)
expressible — the multiplication-heavy, wide circuits the paper's packing
is built for.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import Circuit
from repro.errors import CircuitError


def bit_not(b: CircuitBuilder, x: int) -> int:
    """1 − x for a bit wire."""
    return b.cadd(1, b.cmul(-1, x))


def bit_and(b: CircuitBuilder, x: int, y: int) -> int:
    return b.mul(x, y)


def bit_or(b: CircuitBuilder, x: int, y: int) -> int:
    """x + y − x·y."""
    return b.sub(b.add(x, y), b.mul(x, y))


def bit_xor(b: CircuitBuilder, x: int, y: int) -> int:
    """x + y − 2·x·y."""
    return b.sub(b.add(x, y), b.cmul(2, b.mul(x, y)))


def bits_equal(b: CircuitBuilder, x: int, y: int) -> int:
    """1 iff the two bit wires agree: 1 − (x − y)²."""
    diff = b.sub(x, y)
    return bit_not(b, b.mul(diff, diff))


def equality(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """1 iff the two bit vectors are equal (any common length)."""
    if len(xs) != len(ys) or not xs:
        raise CircuitError("equality needs two equal-length non-empty vectors")
    acc = bits_equal(b, xs[0], ys[0])
    for x, y in zip(xs[1:], ys[1:]):
        acc = b.mul(acc, bits_equal(b, x, y))
    return acc


def less_than(b: CircuitBuilder, xs: Sequence[int], ys: Sequence[int]) -> int:
    """1 iff value(xs) < value(ys); both MSB-first bit vectors."""
    if len(xs) != len(ys) or not xs:
        raise CircuitError("less_than needs two equal-length non-empty vectors")
    result: int | None = None
    prefix_equal: int | None = None
    for x, y in zip(xs, ys):
        here = b.mul(bit_not(b, x), y)  # x=0, y=1 at this position
        term = here if prefix_equal is None else b.mul(prefix_equal, here)
        result = term if result is None else b.add(result, term)
        eq_here = bits_equal(b, x, y)
        prefix_equal = (
            eq_here if prefix_equal is None else b.mul(prefix_equal, eq_here)
        )
    assert result is not None
    return result


def mux(b: CircuitBuilder, condition: int, if_true: int, if_false: int) -> int:
    """condition·if_true + (1−condition)·if_false (condition must be a bit)."""
    return b.add(
        b.mul(condition, if_true), b.mul(bit_not(b, condition), if_false)
    )


def from_bits(b: CircuitBuilder, bits: Sequence[int]) -> int:
    """Recompose an MSB-first bit vector into its integer value."""
    if not bits:
        raise CircuitError("from_bits needs at least one bit")
    acc = bits[0]
    for bit in bits[1:]:
        acc = b.add(b.cmul(2, acc), bit)
    return acc


def bitness_checks(b: CircuitBuilder, bits: Sequence[int]) -> list[int]:
    """Wires that are 0 iff each input really is a bit: b·(b−1)."""
    return [b.mul(x, b.cadd(-1, x)) for x in bits]


# ---------------------------------------------------------------------------
# Ready-made comparison workloads
# ---------------------------------------------------------------------------


def comparison_circuit(
    bits: int, client_x: str = "alice", client_y: str = "bob",
    recipient: str | None = None,
) -> Circuit:
    """Outputs [x < y, x == y] for two private ``bits``-bit values."""
    if bits < 1:
        raise CircuitError("need at least one bit")
    b = CircuitBuilder()
    xs = b.inputs(client_x, bits)
    ys = b.inputs(client_y, bits)
    target = recipient or client_x
    b.output(less_than(b, xs, ys), target)
    b.output(equality(b, xs, ys), target)
    return b.build()


def maximum_circuit(
    bits: int, clients: Sequence[str], recipient: str = "auctioneer"
) -> Circuit:
    """The maximum of each client's private ``bits``-bit value.

    Outputs the maximum value followed by one indicator bit per client
    ("is this client's value equal to the maximum?") — ties give multiple
    indicators, resolved by the recipient.
    """
    if len(clients) < 2:
        raise CircuitError("maximum needs at least two clients")
    b = CircuitBuilder()
    all_bits = {c: b.inputs(c, bits) for c in clients}
    values = {c: from_bits(b, all_bits[c]) for c in clients}
    # Tournament fold over (value, bits) pairs using bitwise comparison.
    best_bits = all_bits[clients[0]]
    best_value = values[clients[0]]
    for c in clients[1:]:
        is_less = less_than(b, best_bits, all_bits[c])
        best_value = mux(b, is_less, values[c], best_value)
        best_bits = [
            mux(b, is_less, nb, ob) for nb, ob in zip(all_bits[c], best_bits)
        ]
    b.output(best_value, recipient)
    for c in clients:
        b.output(equality(b, all_bits[c], best_bits), recipient)
    return b.build()


def second_price_auction_circuit(
    bits: int, bidders: Sequence[str], recipient: str = "auctioneer"
) -> Circuit:
    """A sealed-bid second-price (Vickrey) auction.

    Outputs: the price (the highest bid *excluding one winner*), then one
    winner-indicator bit per bidder.  With tied top bids several indicators
    are set and the price equals the top bid — the correct Vickrey price.

    Construction: a bitwise maximum fold finds the winning bid; prefix
    selection picks exactly one winner (the first bidder matching it);
    that bidder's bits are masked to zero and a second maximum fold over
    the masked vectors yields the price.
    """
    if len(bidders) < 2:
        raise CircuitError("an auction needs at least two bidders")
    b = CircuitBuilder()
    all_bits = {c: b.inputs(c, bits) for c in bidders}

    # Pass 1: the winning bid, bit by bit.
    best_bits = all_bits[bidders[0]]
    for c in bidders[1:]:
        is_less = less_than(b, best_bits, all_bits[c])
        best_bits = [
            mux(b, is_less, nb, ob) for nb, ob in zip(all_bits[c], best_bits)
        ]

    # Winner indicators, and prefix-selection of exactly one winner:
    # sel_i = flag_i · Π_{j<i} (1 − flag_j).
    winner_flags = [equality(b, all_bits[c], best_bits) for c in bidders]
    selections = []
    none_before: int | None = None
    for flag in winner_flags:
        sel = flag if none_before is None else b.mul(none_before, flag)
        selections.append(sel)
        not_flag = bit_not(b, flag)
        none_before = (
            not_flag if none_before is None else b.mul(none_before, not_flag)
        )

    # Pass 2: maximum over the bids with the selected winner zeroed out.
    def masked(c: str, sel: int) -> list[int]:
        keep = bit_not(b, sel)
        return [b.mul(keep, bw) for bw in all_bits[c]]

    second_bits = masked(bidders[0], selections[0])
    for c, sel in zip(bidders[1:], selections[1:]):
        candidate = masked(c, sel)
        is_less = less_than(b, second_bits, candidate)
        second_bits = [
            mux(b, is_less, cb, sb) for cb, sb in zip(candidate, second_bits)
        ]

    b.output(from_bits(b, second_bits), recipient)
    for flag in winner_flags:
        b.output(flag, recipient)
    return b.build()
