"""Linear-algebra circuit combinators: matmul, matvec, bias, activations.

Neural-network inference is the canonical *wide* workload for packed
secret-sharing: a single m×p·p×q matrix product contributes ``m·q·p``
multiplications all at the **same multiplicative depth**, so batches of
``k`` fill completely and the online cost per gate approaches the
paper's O(1) bound.  This module builds such circuits from the
:class:`~repro.circuits.builder.CircuitBuilder` primitives:

* **Combinators** (``matmul``, ``matvec``, ``bias_add``,
  ``square_activation``, ``relu_from_bits``) take a builder plus wire
  handles and return wire handles, so layers compose like expressions.
* **Circuit factories** (:func:`matmul_circuit`, :func:`mlp_circuit`)
  wrap the combinators into complete two-party inference circuits: one
  client holds the model (weights, biases), another the input vector.

The default activation is the *square* (x ↦ x²), the standard
MPC-friendly choice (one multiplication, no bit decomposition).  A true
ReLU needs the sign of a value, which an arithmetic circuit can only see
on bit-decomposed inputs — :func:`relu_from_bits` provides it on top of
the existing bitwise gadgets for inputs supplied as bits.

Wire handles are plain ``int``s; matrices are row-major
``Sequence[Sequence[int]]``.  Everything here is pure circuit
construction — no protocol, field, or randomness dependencies.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.bitwise import bit_not, from_bits
from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import Circuit
from repro.errors import CircuitError

__all__ = [
    "bias_add",
    "matmul",
    "matmul_circuit",
    "matvec",
    "mlp_circuit",
    "relu_from_bits",
    "square_activation",
]


def _check_matrix(name: str, matrix: Sequence[Sequence[int]]) -> int:
    """Validate rectangularity; returns the column count."""
    if not matrix or not matrix[0]:
        raise CircuitError(f"{name}: matrix must be non-empty")
    cols = len(matrix[0])
    for i, row in enumerate(matrix):
        if len(row) != cols:
            raise CircuitError(
                f"{name}: ragged matrix (row 0 has {cols} entries, "
                f"row {i} has {len(row)})"
            )
    return cols


def matvec(
    b: CircuitBuilder, matrix: Sequence[Sequence[int]], vector: Sequence[int]
) -> list[int]:
    """``M·x``: one inner product per matrix row, all at equal depth."""
    cols = _check_matrix("matvec", matrix)
    if len(vector) != cols:
        raise CircuitError(
            f"matvec: matrix has {cols} columns, vector has {len(vector)}"
        )
    return [b.dot(row, vector) for row in matrix]


def matmul(
    b: CircuitBuilder,
    left: Sequence[Sequence[int]],
    right: Sequence[Sequence[int]],
) -> list[list[int]]:
    """``A·B`` for an m×p and a p×q wire matrix; returns m×q wires.

    All m·q·p multiplications share one multiplicative depth, so for a
    packing factor k the product occupies ⌈m·q·p / k⌉ completely filled
    batches (up to the final one).
    """
    inner = _check_matrix("matmul: left", left)
    if len(right) != inner:
        raise CircuitError(
            f"matmul: left has {inner} columns, right has {len(right)} rows"
        )
    q = _check_matrix("matmul: right", right)
    columns = [[row[j] for row in right] for j in range(q)]
    return [[b.dot(row, col) for col in columns] for row in left]


def bias_add(
    b: CircuitBuilder, values: Sequence[int], biases: Sequence[int]
) -> list[int]:
    """Elementwise ``values + biases`` over wire vectors (free: ADD gates)."""
    if len(values) != len(biases):
        raise CircuitError(
            f"bias_add: length mismatch {len(values)} vs {len(biases)}"
        )
    return [b.add(v, bias) for v, bias in zip(values, biases)]


def square_activation(b: CircuitBuilder, values: Sequence[int]) -> list[int]:
    """Elementwise x² — the MPC-friendly nonlinearity (one MUL per unit)."""
    return [b.square(v) for v in values]


def relu_from_bits(b: CircuitBuilder, bits: Sequence[int]) -> int:
    """ReLU of a value supplied as MSB-first sign-magnitude style bits.

    ``bits[0]`` is the sign (1 = negative), the remainder the magnitude.
    Output is ``(1 − sign) · value``: the recomposed non-negative value
    when the sign bit is clear, zero otherwise.  Built from the existing
    bitwise gadgets (:func:`~repro.circuits.bitwise.bit_not`,
    :func:`~repro.circuits.bitwise.from_bits`); callers audit bitness
    with :func:`~repro.circuits.bitwise.bitness_checks` as usual.
    """
    if len(bits) < 2:
        raise CircuitError("relu_from_bits needs a sign bit plus magnitude bits")
    keep = bit_not(b, bits[0])
    return b.mul(keep, from_bits(b, bits[1:]))


# ---------------------------------------------------------------------------
# Circuit factories
# ---------------------------------------------------------------------------


def matmul_circuit(
    m: int,
    p: int,
    q: int,
    left_client: str = "alice",
    right_client: str = "bob",
    recipient: str | None = None,
) -> Circuit:
    """``A·B`` with A (m×p) from one client and B (p×q) from another.

    Outputs the product row-major to ``recipient`` (default: the right
    client).  m·q·p multiplications at a single depth — the maximal-width
    shape for slot utilization measurements.
    """
    if min(m, p, q) < 1:
        raise CircuitError(f"matmul_circuit: bad shape ({m}, {p}, {q})")
    b = CircuitBuilder()
    left = [b.inputs(left_client, p) for _ in range(m)]
    right = [b.inputs(right_client, q) for _ in range(p)]
    target = recipient or right_client
    for row in matmul(b, left, right):
        for wire in row:
            b.output(wire, target)
    return b.build()


def mlp_circuit(
    layer_sizes: Sequence[int],
    model_client: str = "model",
    subject_client: str = "subject",
    recipient: str | None = None,
) -> Circuit:
    """Private MLP inference: the model and the input are both secret.

    ``layer_sizes = [d0, d1, ..., dL]`` describes a multi-layer
    perceptron with input dimension d0 and L dense layers; layer ``i``
    holds a d_i×d_{i-1} weight matrix and a d_i bias vector, all supplied
    by ``model_client`` (row-major weights, then biases, layer by layer).
    ``subject_client`` supplies the d0 input vector and receives the dL
    output scores (default recipient).

    Hidden layers apply the square activation; the final layer is linear
    (scores, argmax taken by the recipient in the clear).  Each layer's
    d_i·d_{i-1} products sit at one multiplicative depth, so the circuit
    exercises exactly the wide-batch regime packed sharing targets.
    """
    if len(layer_sizes) < 2:
        raise CircuitError("mlp_circuit needs an input and an output dimension")
    if min(layer_sizes) < 1:
        raise CircuitError(f"mlp_circuit: bad layer sizes {list(layer_sizes)}")
    b = CircuitBuilder()
    weights: list[list[list[int]]] = []
    biases: list[list[int]] = []
    for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
        weights.append([b.inputs(model_client, fan_in) for _ in range(fan_out)])
        biases.append(b.inputs(model_client, fan_out))
    activations = b.inputs(subject_client, layer_sizes[0])
    last = len(weights) - 1
    for i, (w, bias) in enumerate(zip(weights, biases)):
        activations = bias_add(b, matvec(b, w, activations), bias)
        if i != last:
            activations = square_activation(b, activations)
    target = recipient or subject_client
    for wire in activations:
        b.output(wire, target)
    return b.build()
