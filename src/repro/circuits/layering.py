"""Batching multiplications and inputs into packed groups of k.

The online phase evaluates multiplication gates in *batches* of up to ``k``
gates of equal multiplicative depth: one packed sharing per batch carries
the masks of all k gates, so the whole batch costs one gate's communication
(paper §3.1).  Inputs are likewise grouped per client.

Batches shorter than ``k`` are padded implicitly: slot count is always
``k``, and the protocol layers treat missing slots as value-0 wires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError


@dataclass(frozen=True)
class InputBatch:
    """Up to k input wires of one client, packed into one sharing."""

    batch_id: int
    client: str
    wires: tuple[int, ...]


@dataclass(frozen=True)
class MultiplicationBatch:
    """Up to k multiplication gates of equal depth, evaluated together."""

    batch_id: int
    depth: int
    gate_wires: tuple[int, ...]
    left_wires: tuple[int, ...]
    right_wires: tuple[int, ...]


@dataclass(frozen=True)
class BatchPlan:
    """The complete packing layout of a circuit for a given k."""

    k: int
    input_batches: tuple[InputBatch, ...]
    mul_batches: tuple[MultiplicationBatch, ...]
    #: wire -> (mul batch id, slot)
    mul_slot_of_wire: Mapping[int, tuple[int, int]]
    #: wire -> (input batch id, slot)
    input_slot_of_wire: Mapping[int, tuple[int, int]]

    @property
    def n_batches(self) -> int:
        return len(self.input_batches) + len(self.mul_batches)

    def batches_by_depth(self) -> dict[int, list[MultiplicationBatch]]:
        by_depth: dict[int, list[MultiplicationBatch]] = {}
        for batch in self.mul_batches:
            by_depth.setdefault(batch.depth, []).append(batch)
        return by_depth


def plan_batches(circuit: Circuit, k: int) -> BatchPlan:
    """Compute the packing layout: input batches per client, mul batches per depth.

    Single pass over the gates, O(V+E): one traversal computes the
    multiplicative depths, one bucket pass groups input wires per client
    (first-appearance order) and multiplication wires per depth, and the
    chunking emits each wire exactly once.  Only the *distinct* depth
    values are sorted.  The layout is identical to the historical
    per-client/per-depth rescan planner — batch ids, chunk contents, and
    slot assignments are pinned by ``tests/test_layering.py``.
    """
    if k < 1:
        raise CircuitError(f"packing factor must be >= 1, got {k}")
    depths = circuit.depths()

    inputs_by_client: dict[str, list[int]] = {}
    for w in circuit.input_wires:
        inputs_by_client.setdefault(circuit.gates[w].client or "", []).append(w)

    input_batches: list[InputBatch] = []
    input_slot: dict[int, tuple[int, int]] = {}
    next_id = 0
    for client, wires in inputs_by_client.items():
        for start in range(0, len(wires), k):
            chunk = tuple(wires[start : start + k])
            for slot, w in enumerate(chunk):
                input_slot[w] = (next_id, slot)
            input_batches.append(InputBatch(next_id, client, chunk))
            next_id += 1

    muls_by_depth: dict[int, list[int]] = {}
    for w in circuit.multiplication_wires:
        muls_by_depth.setdefault(depths[w], []).append(w)

    mul_batches: list[MultiplicationBatch] = []
    mul_slot: dict[int, tuple[int, int]] = {}
    gates = circuit.gates
    next_id = 0
    for depth in sorted(muls_by_depth):
        wires = muls_by_depth[depth]
        for start in range(0, len(wires), k):
            chunk = tuple(wires[start : start + k])
            left = tuple(gates[w].inputs[0] for w in chunk)
            right = tuple(gates[w].inputs[1] for w in chunk)
            for slot, w in enumerate(chunk):
                mul_slot[w] = (next_id, slot)
            mul_batches.append(
                MultiplicationBatch(next_id, depth, chunk, left, right)
            )
            next_id += 1

    return BatchPlan(
        k=k,
        input_batches=tuple(input_batches),
        mul_batches=tuple(mul_batches),
        mul_slot_of_wire=mul_slot,
        input_slot_of_wire=input_slot,
    )
