"""Reusable aggregate workloads: circuits plus end-to-end runners.

Two families live here:

* **Per-party demos** — the sealed-bid auction and private-statistics
  computations the ``examples/`` scripts used to inline (each had its own
  copy of the bit encoding and output decoding; this module is the single
  home).  ``run_sealed_bid_auction`` and ``run_private_statistics`` run
  the full YOSO MPC and decode the outputs.

* **Service aggregates** — the panel-sized circuits the client-aided
  service (:mod:`repro.service`) evaluates over homomorphically collapsed
  client submissions: :func:`grouped_statistics_circuit` combines
  per-panelist partial sums into population statistics, and
  :func:`histogram_second_price_circuit` resolves a Vickrey auction from
  a per-level bid histogram.  Both keep the input per panel member small
  (the 10^4–10^6 client inputs are aggregated *before* the MPC, in the
  ciphertext domain), which is exactly the client-aided division of
  labour the paper targets.

``run_mpc`` is imported lazily so the circuits package stays importable
below the protocol layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.circuits.bitwise import second_price_auction_circuit
from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import Circuit
from repro.circuits.library import statistics_circuit
from repro.circuits.linalg import mlp_circuit
from repro.errors import CircuitError

__all__ = [
    "AuctionOutcome",
    "InferenceOutcome",
    "StatisticsOutcome",
    "flatten_model",
    "grouped_statistics_circuit",
    "histogram_second_price_circuit",
    "run_private_inference",
    "run_private_statistics",
    "run_sealed_bid_auction",
    "to_bits",
]


def to_bits(value: int, n_bits: int) -> list[int]:
    """MSB-first fixed-width bit vector of ``value``."""
    if value < 0 or value >= 1 << n_bits:
        raise CircuitError(f"value {value} does not fit in {n_bits} bits")
    return [int(x) for x in format(value, f"0{n_bits}b")]


# -- per-party demo runners ---------------------------------------------------

@dataclass(frozen=True)
class AuctionOutcome:
    """Decoded auction result plus the underlying MPC run."""

    winners: tuple[str, ...]
    price: int
    result: Any


@dataclass(frozen=True)
class StatisticsOutcome:
    """Decoded statistics (S, Q = n·Σx²) plus derived moments and the run."""

    s: int
    q: int
    mean: float
    variance: float
    result: Any


def run_sealed_bid_auction(
    bids: Mapping[str, int],
    bits: int,
    *,
    n: int = 5,
    epsilon: float = 0.25,
    seed: int = 2026,
    recipient: str = "auctioneer",
    **run_kwargs: Any,
) -> AuctionOutcome:
    """Run the second-price auction MPC over per-bidder bit inputs."""
    from repro.core import run_mpc

    bidders = list(bids)
    circuit = second_price_auction_circuit(bits, bidders, recipient=recipient)
    result = run_mpc(
        circuit,
        {name: to_bits(bid, bits) for name, bid in bids.items()},
        n=n, epsilon=epsilon, seed=seed, **run_kwargs,
    )
    outputs = result.outputs[recipient]
    price, flags = outputs[0], outputs[1:]
    winners = tuple(name for name, flag in zip(bidders, flags) if flag == 1)
    return AuctionOutcome(winners=winners, price=price, result=result)


def run_private_statistics(
    measurements: Sequence[int],
    *,
    n: int = 6,
    epsilon: float = 0.2,
    seed: int = 7,
    recipient: str = "analyst",
    **run_kwargs: Any,
) -> StatisticsOutcome:
    """Run the per-party statistics MPC (one measurement per party)."""
    from repro.core import run_mpc

    n_parties = len(measurements)
    circuit = statistics_circuit(n_parties, recipient=recipient)
    inputs = {f"party{i}": [value] for i, value in enumerate(measurements)}
    result = run_mpc(circuit, inputs, n=n, epsilon=epsilon, seed=seed,
                     **run_kwargs)
    s, q = result.outputs[recipient]
    mean = s / n_parties
    variance = (q - s * s) / n_parties**2
    return StatisticsOutcome(
        s=s, q=q, mean=mean, variance=variance, result=result
    )


# -- private inference --------------------------------------------------------

@dataclass(frozen=True)
class InferenceOutcome:
    """Decoded MLP inference scores plus the underlying MPC run."""

    scores: tuple[int, ...]
    argmax: int
    result: Any


def flatten_model(
    weights: Sequence[Sequence[Sequence[int]]],
    biases: Sequence[Sequence[int]],
) -> list[int]:
    """The model client's input order for :func:`~repro.circuits.linalg.mlp_circuit`.

    Layer by layer: the weight matrix row-major, then the bias vector —
    exactly the order the circuit's INPUT gates consume.
    """
    if len(weights) != len(biases):
        raise CircuitError(
            f"model has {len(weights)} weight layers but {len(biases)} bias layers"
        )
    flat: list[int] = []
    for w, bias in zip(weights, biases):
        for row in w:
            if len(row) != len(w[0]):
                raise CircuitError("ragged weight matrix")
        if len(bias) != len(w):
            raise CircuitError(
                f"layer has {len(w)} units but {len(bias)} biases"
            )
        for row in w:
            flat.extend(int(x) for x in row)
        flat.extend(int(x) for x in bias)
    return flat


def run_private_inference(
    weights: Sequence[Sequence[Sequence[int]]],
    biases: Sequence[Sequence[int]],
    x: Sequence[int],
    *,
    n: int = 5,
    epsilon: float = 0.25,
    seed: int = 2026,
    model_client: str = "model",
    subject_client: str = "subject",
    **run_kwargs: Any,
) -> InferenceOutcome:
    """Run private MLP inference: secret model, secret input, clear scores.

    ``weights[i]`` is layer i's d_i×d_{i-1} matrix (rows = output units),
    ``biases[i]`` its d_i bias vector, ``x`` the subject's d_0 input.
    Hidden layers use the square activation (see
    :func:`~repro.circuits.linalg.mlp_circuit`); the subject receives the
    final-layer scores and takes the argmax in the clear.
    """
    if not weights:
        raise CircuitError("model needs at least one layer")
    layer_sizes = [len(weights[0][0])] + [len(w) for w in weights]
    circuit = mlp_circuit(
        layer_sizes, model_client=model_client, subject_client=subject_client
    )
    from repro.core import run_mpc

    result = run_mpc(
        circuit,
        {
            model_client: flatten_model(weights, biases),
            subject_client: [int(v) for v in x],
        },
        n=n, epsilon=epsilon, seed=seed, **run_kwargs,
    )
    scores = tuple(result.outputs[subject_client])
    best = max(range(len(scores)), key=lambda i: scores[i])
    return InferenceOutcome(scores=scores, argmax=best, result=result)


# -- service aggregate circuits -----------------------------------------------

def grouped_statistics_circuit(
    n_groups: int, population: int, recipient: str = "analyst"
) -> Circuit:
    """Population statistics from per-panelist partial sums.

    Panel member ``g`` inputs ``[s_g, q_g]`` — the decrypted sums of its
    slice of the client submissions (``Σ x`` and ``Σ x²``).  Outputs, for
    population size ``N``::

        S = Σ_g s_g            the population sum
        Q = N · Σ_g q_g        the scaled second moment (as in
                               ``statistics_circuit``)
        V = Q − S²             so variance = V / N², mean = S / N

    The single multiplication ``S²`` keeps the aggregate an honest MPC
    workload rather than a purely linear pass.
    """
    if n_groups < 1:
        raise CircuitError("need at least one panel group")
    if population < 1:
        raise CircuitError("population must be positive")
    b = CircuitBuilder()
    s_parts = []
    q_parts = []
    for g in range(n_groups):
        s_g, q_g = b.inputs(f"panel{g}", 2)
        s_parts.append(s_g)
        q_parts.append(q_g)
    s = b.sum(s_parts)
    q = b.cmul(population, b.sum(q_parts))
    v = b.sub(q, b.mul(s, s))
    b.output(s, recipient)
    b.output(q, recipient)
    b.output(v, recipient)
    return b.build()


def histogram_second_price_circuit(
    levels: int, recipient: str = "auctioneer"
) -> Circuit:
    """Vickrey outcome from a per-level bid histogram.

    Panel member ``j`` (one per bid level ``j = 0..levels−1``) inputs
    ``[c_j, e_j, g_j]``: the number of bids at level ``j``, an indicator
    ``e_j = [c_j > 0]``, and a tie indicator ``g_j = [c_j > 1]``.
    Outputs::

        price         the Vickrey price: the top level on a top-level
                      tie, otherwise the second-highest non-empty level
        winner_level  the highest non-empty level (the winning bid)
        winner_count  how many bids sit at the winning level

    The selection uses suffix products of the complement indicators, the
    same prefix trick as the per-bidder auction circuit, but over bid
    *levels*, so the multiplication count scales with the histogram width
    — not with the (arbitrarily large) number of clients.
    """
    if levels < 2:
        raise CircuitError("need at least two bid levels")
    b = CircuitBuilder()
    counts, present, ties = [], [], []
    for j in range(levels):
        c_j, e_j, g_j = b.inputs(f"level{j}", 3)
        counts.append(c_j)
        present.append(e_j)
        ties.append(g_j)

    one = b.cadd(1, b.cmul(0, present[0]))  # constant 1 wire

    def top_selectors(flags):
        """``top_j = flags_j · Π_{i>j} (1 − flags_i)`` for every level."""
        suffix = one  # Π over the empty suffix
        tops = [None] * levels
        for j in range(levels - 1, -1, -1):
            tops[j] = b.mul(flags[j], suffix)
            if j:
                suffix = b.mul(suffix, b.sub(one, flags[j]))
        return tops

    top = top_selectors(present)
    winner_level = b.sum([b.cmul(j, top[j]) for j in range(levels)])
    winner_count = b.sum([b.mul(counts[j], top[j]) for j in range(levels)])
    tie = b.sum([b.mul(ties[j], top[j]) for j in range(levels)])

    rest = [b.sub(present[j], top[j]) for j in range(levels)]
    top2 = top_selectors(rest)
    price2 = b.sum([b.cmul(j, top2[j]) for j in range(levels)])
    price = b.add(price2, b.mul(tie, b.sub(winner_level, price2)))

    b.output(price, recipient)
    b.output(winner_level, recipient)
    b.output(winner_count, recipient)
    return b.build()
