"""Circuit statistics and protocol-cost estimation for user circuits.

Answers the questions a deployer asks before running: how wide is the
circuit per multiplicative depth (does it fill batches of k?), how many
online committees will run, and what will each phase roughly cost — wired
into the :mod:`repro.accounting.costmodel` predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.circuits.circuit import Circuit, GateType
from repro.circuits.program import compile_circuit

if TYPE_CHECKING:
    from repro.core.params import ProtocolParams


@dataclass(frozen=True)
class CircuitStats:
    """Shape summary of a circuit."""

    n_gates: int
    n_inputs: int
    n_outputs: int
    n_multiplications: int
    n_linear: int
    multiplicative_depth: int
    width_per_depth: dict[int, int]      # depth -> mul gates at that depth
    input_clients: tuple[str, ...]
    output_clients: tuple[str, ...]

    @property
    def max_width(self) -> int:
        return max(self.width_per_depth.values(), default=0)

    @property
    def min_width(self) -> int:
        return min(self.width_per_depth.values(), default=0)


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute the shape summary."""
    depths = circuit.depths()
    width: dict[int, int] = {}
    for w in circuit.multiplication_wires:
        width[depths[w]] = width.get(depths[w], 0) + 1
    linear = sum(
        1 for g in circuit.gates
        if g.kind in (GateType.ADD, GateType.SUB, GateType.CADD, GateType.CMUL)
    )
    return CircuitStats(
        n_gates=len(circuit.gates),
        n_inputs=circuit.n_inputs,
        n_outputs=circuit.n_outputs,
        n_multiplications=circuit.n_multiplications,
        n_linear=linear,
        multiplicative_depth=max(width, default=0),
        width_per_depth=width,
        input_clients=tuple(circuit.input_clients()),
        output_clients=tuple(circuit.output_clients()),
    )


@dataclass(frozen=True)
class BatchEfficiency:
    """How well a circuit fills batches of k at each depth."""

    k: int
    n_batches: int
    n_slots: int             # n_batches * k
    fill_ratio: float        # multiplications / slots
    underfull_batches: int   # batches with padding

    @property
    def wasted_slots(self) -> int:
        return self.n_slots - int(self.fill_ratio * self.n_slots + 0.5)


def batch_efficiency(circuit: Circuit, k: int) -> BatchEfficiency:
    """Measure padding waste for a packing factor (the width assumption).

    Uses the memoized compiled program, so repeated queries (e.g. the
    ``best_packing_factor`` sweep followed by a run at the chosen k) plan
    each (circuit, k) pair once.
    """
    program = compile_circuit(circuit, k)
    plan = program.plan
    n_batches = len(plan.mul_batches)
    slots = n_batches * k
    underfull = sum(1 for b in plan.mul_batches if len(b.gate_wires) < k)
    fill = program.slot_utilization() if slots else 1.0
    return BatchEfficiency(
        k=k, n_batches=n_batches, n_slots=slots,
        fill_ratio=fill, underfull_batches=underfull,
    )


def best_packing_factor(circuit: Circuit, params: "ProtocolParams") -> int:
    """The k <= params.k with the least padding waste for this circuit.

    A narrow circuit can waste most of a large k on padding; shrinking k
    (still within the gap budget) trades per-gate cost for fill ratio.
    Returns the k in [1, params.k] minimizing online slots per real gate.
    """
    best_k, best_cost = 1, float("inf")
    for k in range(1, params.k + 1):
        eff = batch_efficiency(circuit, k)
        if eff.n_batches == 0:
            return params.k
        # Online cost ∝ n_batches (each batch costs n shares).
        cost = eff.n_batches / max(circuit.n_multiplications, 1)
        if cost < best_cost:
            best_k, best_cost = k, cost
    return best_k


def estimate_phase_bytes(
    circuit: Circuit, params: "ProtocolParams"
) -> dict[str, int]:
    """Predicted offline/online bytes for running this circuit (cost model)."""
    from repro.accounting.costmodel import CircuitShape, CostModel

    program = compile_circuit(circuit, params.k)
    model = CostModel(params, CircuitShape.of_program(program))
    return {
        "offline": model.predict_offline().n_bytes,
        "online": model.predict_online().n_bytes,
    }
