"""Fluent construction of arithmetic circuits.

Example::

    b = CircuitBuilder()
    x = b.input("alice")
    y = b.input("bob")
    z = b.mul(b.add(x, y), b.cmul(3, x))
    b.output(z, "alice")
    circuit = b.build()
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.circuit import Circuit, Gate, GateType
from repro.errors import CircuitError


class CircuitBuilder:
    """Accumulates gates; wire handles are plain ints."""

    def __init__(self):
        self._gates: list[Gate] = []

    def _push(self, gate: Gate) -> int:
        self._gates.append(gate)
        return len(self._gates) - 1

    def _check_wire(self, wire: int) -> None:
        if not 0 <= wire < len(self._gates):
            raise CircuitError(f"unknown wire {wire}")
        if self._gates[wire].kind is GateType.OUTPUT:
            raise CircuitError(f"wire {wire} is an output; cannot be read")

    # -- gate constructors ---------------------------------------------------

    def input(self, client: str) -> int:
        """A fresh input wire belonging to ``client``."""
        return self._push(Gate(GateType.INPUT, client=client))

    def inputs(self, client: str, count: int) -> list[int]:
        return [self.input(client) for _ in range(count)]

    def add(self, a: int, b: int) -> int:
        self._check_wire(a)
        self._check_wire(b)
        return self._push(Gate(GateType.ADD, (a, b)))

    def sub(self, a: int, b: int) -> int:
        self._check_wire(a)
        self._check_wire(b)
        return self._push(Gate(GateType.SUB, (a, b)))

    def cadd(self, constant: int, a: int) -> int:
        self._check_wire(a)
        return self._push(Gate(GateType.CADD, (a,), constant=int(constant)))

    def cmul(self, constant: int, a: int) -> int:
        self._check_wire(a)
        return self._push(Gate(GateType.CMUL, (a,), constant=int(constant)))

    def mul(self, a: int, b: int) -> int:
        self._check_wire(a)
        self._check_wire(b)
        return self._push(Gate(GateType.MUL, (a, b)))

    def square(self, a: int) -> int:
        return self.mul(a, a)

    def output(self, wire: int, client: str) -> int:
        self._check_wire(wire)
        return self._push(Gate(GateType.OUTPUT, (wire,), client=client))

    # -- composite helpers -------------------------------------------------

    def sum(self, wires: Sequence[int]) -> int:
        """Balanced addition tree over ``wires``."""
        if not wires:
            raise CircuitError("sum of no wires")
        level = list(wires)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.add(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def dot(self, xs: Sequence[int], ys: Sequence[int]) -> int:
        """Inner product Σ x_i·y_i."""
        if len(xs) != len(ys):
            raise CircuitError(f"dot: length mismatch {len(xs)} vs {len(ys)}")
        return self.sum([self.mul(x, y) for x, y in zip(xs, ys)])

    def linear_combination(
        self, coefficients: Sequence[int], wires: Sequence[int]
    ) -> int:
        if len(coefficients) != len(wires):
            raise CircuitError("linear_combination: length mismatch")
        return self.sum([self.cmul(c, w) for c, w in zip(coefficients, wires)])

    def power(self, wire: int, exponent: int) -> int:
        """``wire^exponent`` by square-and-multiply (exponent >= 1)."""
        if exponent < 1:
            raise CircuitError("power wants exponent >= 1")
        result: int | None = None
        base = wire
        e = exponent
        while e:
            if e & 1:
                result = base if result is None else self.mul(result, base)
            e >>= 1
            if e:
                base = self.square(base)
        assert result is not None
        return result

    def build(self) -> Circuit:
        return Circuit(self._gates)
