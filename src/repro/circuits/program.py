"""Compiled circuit IR: flat, layer-indexed arrays for vectorized evaluation.

A :class:`Circuit` is a per-gate record list; every evaluator used to
re-walk it gate by gate with dict lookups, which does not survive tens of
thousands of gates.  :func:`compile_circuit` lowers a circuit (plus its
:class:`~repro.circuits.layering.BatchPlan`) into a
:class:`CircuitProgram` — the batch-friendly layout the evaluators
actually execute:

* **Topological layers** — every gate is assigned a level (``0`` for
  inputs, ``1 + max(level of operands)`` otherwise), so all gates within
  a layer depend only on earlier layers and are mutually independent.
* **Gate-kind runs** — within a layer, gates are grouped by kind into
  :class:`GateRun` records holding parallel wire/operand arrays, so an
  evaluator issues *one* batched engine call per (layer, kind) run
  instead of one dispatch per gate.
* **Constant table** — CADD/CMUL constants are deduplicated into
  :attr:`CircuitProgram.constants`; runs index into it.
* **Per-client input/output segments** — each client's wires in circuit
  order, replacing repeated ``inputs_of_client`` scans.
* **Packing layout** — the `BatchPlan` (input batches, multiplication
  batches per depth, slot maps) rides along, plus flattened views the
  protocol phases consume: ``mul_wires``, ``mask_wires`` (the offline
  committees' RNG draw order), ``muls_by_depth`` and ``depth_batches``.

Compilation is deterministic and cached on the circuit instance keyed by
``k`` (circuits are immutable; the cache re-validates the gate tuple's
identity, so a mutated-in-place circuit recompiles instead of serving a
stale program).  ``CircuitProgram.evaluate`` is the vectorized plaintext
path — bit-identical to :meth:`Circuit.evaluate` by construction, which
the property tests pin on random circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

from repro.circuits.circuit import (
    Circuit,
    CircuitEvaluation,
    GateType,
)
from repro.circuits.layering import (
    BatchPlan,
    MultiplicationBatch,
    plan_batches,
)
from repro.errors import CircuitError
from repro.fields import Zmod, ZmodElement
from repro.observability import hooks as _hooks

__all__ = [
    "CircuitProgram",
    "GateRun",
    "InputSegment",
    "Layer",
    "OutputSegment",
    "compile_circuit",
]

_BINARY_KINDS = frozenset((GateType.ADD, GateType.SUB, GateType.MUL))
_CONST_KINDS = frozenset((GateType.CADD, GateType.CMUL))
_CLIENT_KINDS = frozenset((GateType.INPUT, GateType.OUTPUT))


@dataclass(frozen=True)
class GateRun:
    """All gates of one kind within one layer, as parallel arrays.

    ``wires[i]`` is gate i's output wire; ``src0``/``src1`` its operand
    wires (``src1`` empty for unary kinds, both empty for INPUT);
    ``const_index[i]`` indexes :attr:`CircuitProgram.constants` for
    CADD/CMUL; ``clients[i]`` names the owner for INPUT/OUTPUT.
    """

    kind: GateType
    wires: tuple[int, ...]
    src0: tuple[int, ...] = ()
    src1: tuple[int, ...] = ()
    const_index: tuple[int, ...] = ()
    clients: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.wires)


@dataclass(frozen=True)
class Layer:
    """One topological level: mutually independent gates, grouped in runs."""

    index: int
    runs: tuple[GateRun, ...]

    @property
    def n_gates(self) -> int:
        return sum(len(run) for run in self.runs)


@dataclass(frozen=True)
class InputSegment:
    """One client's input wires, in circuit (= consumption) order."""

    client: str
    wires: tuple[int, ...]


@dataclass(frozen=True)
class OutputSegment:
    """One client's output wires, in circuit (= delivery) order."""

    client: str
    wires: tuple[int, ...]


@dataclass(frozen=True)
class CircuitProgram:
    """A circuit lowered to flat layer-indexed arrays (see module doc)."""

    circuit: Circuit
    k: int
    plan: BatchPlan
    layers: tuple[Layer, ...]
    #: Topological level of every wire (parallel to ``circuit.gates``).
    level_of_wire: tuple[int, ...]
    #: Deduplicated CADD/CMUL constants, first-use order.
    constants: tuple[int, ...]
    input_segments: tuple[InputSegment, ...]
    output_segments: tuple[OutputSegment, ...]
    #: Multiplication wires in circuit order (committee iteration order).
    mul_wires: tuple[int, ...]
    #: Input wires followed by multiplication wires — the exact order the
    #: offline mask committee draws its per-wire randomness in.
    mask_wires: tuple[int, ...]
    #: Distinct multiplicative depths, ascending (the committee schedule).
    mul_depths: tuple[int, ...]
    #: depth -> multiplication wires at that depth, circuit order.
    muls_by_depth: Mapping[int, tuple[int, ...]] = field(repr=False)
    #: depth -> multiplication batches at that depth, batch-id order.
    depth_batches: Mapping[int, tuple[MultiplicationBatch, ...]] = field(
        repr=False
    )

    # -- shape queries -------------------------------------------------------

    @property
    def n_gates(self) -> int:
        return len(self.circuit.gates)

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def n_runs(self) -> int:
        return sum(len(layer.runs) for layer in self.layers)

    @property
    def n_batches(self) -> int:
        return self.plan.n_batches

    def slot_utilization(self) -> float:
        """Fraction of multiplication-batch slots carrying a real gate."""
        slots = len(self.plan.mul_batches) * self.k
        if slots == 0:
            return 1.0
        return len(self.mul_wires) / slots

    def utilization_by_depth(self) -> dict[int, float]:
        """Per-depth slot utilization (1.0 when every batch is full)."""
        out: dict[int, float] = {}
        for depth in self.mul_depths:
            slots = len(self.depth_batches[depth]) * self.k
            out[depth] = len(self.muls_by_depth[depth]) / slots if slots else 1.0
        return out

    def constants_of(self, run: GateRun) -> list[int]:
        """Materialize a CADD/CMUL run's per-gate constants."""
        table = self.constants
        return [table[i] for i in run.const_index]

    # -- vectorized plaintext evaluation ------------------------------------

    def evaluate(
        self, ring: Zmod, inputs: Mapping[str, Sequence[Union[int, ZmodElement]]]
    ) -> CircuitEvaluation:
        """Run-at-a-time plaintext evaluation, ≡ :meth:`Circuit.evaluate`."""
        values: list[ZmodElement] = [ring.zero] * self.n_gates
        cursors = {client: 0 for client in inputs}
        const_cache = [ring.element(c) for c in self.constants]
        for layer in self.layers:
            for run in layer.runs:
                kind = run.kind
                if kind is GateType.INPUT:
                    for w, client in zip(run.wires, run.clients):
                        if client not in inputs:
                            raise CircuitError(
                                f"no inputs supplied for client {client!r}"
                            )
                        idx = cursors[client]
                        supplied = inputs[client]
                        if idx >= len(supplied):
                            raise CircuitError(
                                f"client {client!r} supplied {len(supplied)} "
                                f"inputs, needs more"
                            )
                        values[w] = ring.element(supplied[idx])
                        cursors[client] = idx + 1
                elif kind is GateType.ADD:
                    for w, a, b in zip(run.wires, run.src0, run.src1):
                        values[w] = values[a] + values[b]
                elif kind is GateType.SUB:
                    for w, a, b in zip(run.wires, run.src0, run.src1):
                        values[w] = values[a] - values[b]
                elif kind is GateType.CADD:
                    for w, a, ci in zip(run.wires, run.src0, run.const_index):
                        values[w] = values[a] + const_cache[ci]
                elif kind is GateType.CMUL:
                    for w, a, ci in zip(run.wires, run.src0, run.const_index):
                        values[w] = values[a] * const_cache[ci]
                elif kind is GateType.MUL:
                    for w, a, b in zip(run.wires, run.src0, run.src1):
                        values[w] = values[a] * values[b]
                else:  # OUTPUT
                    for w, a in zip(run.wires, run.src0):
                        values[w] = values[a]
        for client, supplied in inputs.items():
            if cursors.get(client, 0) != len(supplied):
                raise CircuitError(
                    f"client {client!r} supplied {len(supplied)} inputs, "
                    f"circuit consumed {cursors.get(client, 0)}"
                )
        outputs: dict[str, list[ZmodElement]] = {}
        for segment in self.output_segments:
            outputs[segment.client] = [values[w] for w in segment.wires]
        return CircuitEvaluation(
            tuple(values), {c: tuple(v) for c, v in outputs.items()}
        )


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

#: Per-circuit cache attribute: {k: (gates tuple at compile time, program)}.
_CACHE_ATTR = "_compiled_programs"


def compile_circuit(circuit: Circuit, k: int) -> CircuitProgram:
    """Lower ``circuit`` to a :class:`CircuitProgram` for packing factor ``k``.

    Memoized per circuit instance and ``k``.  The cache entry records the
    gate tuple it was compiled from; if the circuit's gates were replaced
    (the only possible mutation of the otherwise-immutable class), the
    stale program is discarded and recompiled.
    """
    cache: dict[int, tuple[tuple[object, ...], CircuitProgram]]
    cache = circuit.__dict__.setdefault(_CACHE_ATTR, {})
    entry = cache.get(k)
    if entry is not None and entry[0] is circuit.gates:
        _hooks.note(_hooks.CIRCUIT_COMPILE_CACHE_HITS)
        return entry[1]

    program = _compile(circuit, k)
    cache[k] = (circuit.gates, program)
    _hooks.note(_hooks.CIRCUIT_COMPILES)
    _hooks.note(_hooks.CIRCUIT_COMPILED_GATES, len(circuit.gates))
    return program


def _compile(circuit: Circuit, k: int) -> CircuitProgram:
    plan = plan_batches(circuit, k)
    gates = circuit.gates
    n = len(gates)

    # One pass: topological levels + per-level wire lists (wire order).
    level = [0] * n
    max_level = 0
    for w, gate in enumerate(gates):
        if gate.inputs:
            lvl = 1 + max(level[s] for s in gate.inputs)
            level[w] = lvl
            if lvl > max_level:
                max_level = lvl
    per_level: list[list[int]] = [[] for _ in range(max_level + 1)]
    for w in range(n):
        per_level[level[w]].append(w)

    # Constant table: dedup CADD/CMUL constants in first-use order.
    constants: list[int] = []
    const_index_of: dict[int, int] = {}

    def const_index(value: int) -> int:
        idx = const_index_of.get(value)
        if idx is None:
            idx = len(constants)
            const_index_of[value] = idx
            constants.append(value)
        return idx

    layers: list[Layer] = []
    for layer_index, wires_here in enumerate(per_level):
        groups: dict[GateType, list[int]] = {}
        for w in wires_here:
            groups.setdefault(gates[w].kind, []).append(w)
        runs: list[GateRun] = []
        for kind, ws in groups.items():
            src0: tuple[int, ...] = ()
            src1: tuple[int, ...] = ()
            const_idx: tuple[int, ...] = ()
            clients: tuple[str, ...] = ()
            if kind is not GateType.INPUT:
                src0 = tuple(gates[w].inputs[0] for w in ws)
            if kind in _BINARY_KINDS:
                src1 = tuple(gates[w].inputs[1] for w in ws)
            if kind in _CONST_KINDS:
                const_idx = tuple(
                    const_index(int(gates[w].constant or 0)) for w in ws
                )
            if kind in _CLIENT_KINDS:
                clients = tuple(gates[w].client or "" for w in ws)
            runs.append(
                GateRun(
                    kind=kind,
                    wires=tuple(ws),
                    src0=src0,
                    src1=src1,
                    const_index=const_idx,
                    clients=clients,
                )
            )
        layers.append(Layer(index=layer_index, runs=tuple(runs)))

    # Per-client segments, first-appearance order (one pass each).
    in_segments: dict[str, list[int]] = {}
    for w in circuit.input_wires:
        in_segments.setdefault(gates[w].client or "", []).append(w)
    out_segments: dict[str, list[int]] = {}
    for w in circuit.output_wires:
        out_segments.setdefault(gates[w].client or "", []).append(w)

    # Protocol-facing flattened views.
    mul_wires = circuit.multiplication_wires
    mask_wires = circuit.input_wires + mul_wires
    muls_by_depth: dict[int, list[int]] = {}
    depth_batches: dict[int, list[MultiplicationBatch]] = {}
    for batch in plan.mul_batches:
        depth_batches.setdefault(batch.depth, []).append(batch)
        muls_by_depth.setdefault(batch.depth, []).extend(batch.gate_wires)
    mul_depths = tuple(sorted(depth_batches))

    return CircuitProgram(
        circuit=circuit,
        k=k,
        plan=plan,
        layers=tuple(layers),
        level_of_wire=tuple(level),
        constants=tuple(constants),
        input_segments=tuple(
            InputSegment(c, tuple(ws)) for c, ws in in_segments.items()
        ),
        output_segments=tuple(
            OutputSegment(c, tuple(ws)) for c, ws in out_segments.items()
        ),
        mul_wires=mul_wires,
        mask_wires=mask_wires,
        mul_depths=mul_depths,
        muls_by_depth={d: tuple(ws) for d, ws in muls_by_depth.items()},
        depth_batches={d: tuple(bs) for d, bs in depth_batches.items()},
    )
