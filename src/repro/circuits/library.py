"""A library of ready-made circuits for the example workloads.

These are the kinds of wide, multiplication-rich circuits the paper's
introduction motivates (large-scale distributed computations on a
blockchain): inner products, linear-model inference, private statistics,
masked set membership, and random circuits for differential testing.
"""

from __future__ import annotations

import random

from repro.circuits.builder import CircuitBuilder
from repro.circuits.circuit import Circuit
from repro.errors import CircuitError


def dot_product_circuit(
    length: int, client_x: str = "alice", client_y: str = "bob",
    recipient: str | None = None,
) -> Circuit:
    """⟨x, y⟩ with x from one client and y from another."""
    b = CircuitBuilder()
    xs = b.inputs(client_x, length)
    ys = b.inputs(client_y, length)
    b.output(b.dot(xs, ys), recipient or client_x)
    return b.build()


def inner_product_sum_circuit(
    n_clients: int, length: int, recipient: str = "aggregator"
) -> Circuit:
    """Σ_clients ⟨x_c, w⟩ — federated-style aggregation of per-client scores.

    Client 0 ("model") supplies the weight vector w; every other client
    supplies a feature vector; the recipient learns the aggregate score.
    """
    if n_clients < 2:
        raise CircuitError("need the model owner plus at least one data client")
    b = CircuitBuilder()
    weights = b.inputs("model", length)
    scores = []
    for c in range(1, n_clients):
        xs = b.inputs(f"client{c}", length)
        scores.append(b.dot(xs, weights))
    b.output(b.sum(scores), recipient)
    return b.build()


def linear_model_circuit(
    n_features: int, owner: str = "model", subject: str = "subject"
) -> Circuit:
    """Private linear-model inference: w·x + b, weights and input both secret."""
    b = CircuitBuilder()
    weights = b.inputs(owner, n_features)
    bias = b.input(owner)
    xs = b.inputs(subject, n_features)
    score = b.add(b.dot(weights, xs), bias)
    b.output(score, subject)
    return b.build()


def matrix_vector_circuit(
    rows: int, cols: int, matrix_client: str = "alice", vector_client: str = "bob",
    recipient: str | None = None,
) -> Circuit:
    """M·x with the matrix from one client and the vector from another."""
    b = CircuitBuilder()
    matrix = [b.inputs(matrix_client, cols) for _ in range(rows)]
    vector = b.inputs(vector_client, cols)
    target = recipient or vector_client
    for row in matrix:
        b.output(b.dot(row, vector), target)
    return b.build()


def polynomial_eval_circuit(
    degree: int, poly_client: str = "alice", point_client: str = "bob",
) -> Circuit:
    """Evaluate a secret polynomial at a secret point (Horner form)."""
    if degree < 1:
        raise CircuitError("degree must be >= 1")
    b = CircuitBuilder()
    coefficients = b.inputs(poly_client, degree + 1)  # c_degree .. c_0
    x = b.input(point_client)
    acc = coefficients[0]
    for c in coefficients[1:]:
        acc = b.add(b.mul(acc, x), c)
    b.output(acc, point_client)
    return b.build()


def masked_membership_circuit(
    set_size: int, holder: str = "alice", prober: str = "bob",
) -> Circuit:
    """Masked set membership: output r·Π(q − a_i), zero iff q ∈ {a_i}.

    The set holder additionally supplies the random mask r, so a non-member
    query yields a uniformly random nonzero-looking value — the standard
    arithmetic-circuit PSI-membership gadget.
    """
    if set_size < 1:
        raise CircuitError("set must be non-empty")
    b = CircuitBuilder()
    elements = b.inputs(holder, set_size)
    mask = b.input(holder)
    q = b.input(prober)
    acc = mask
    for a in elements:
        acc = b.mul(acc, b.sub(q, a))
    b.output(acc, prober)
    return b.build()


def statistics_circuit(
    n_parties: int, recipient: str = "analyst"
) -> Circuit:
    """Private sum and scaled second moment over one value per party.

    Outputs ``S = Σ x_i`` and ``Q = n·Σ x_i²``; the analyst post-processes
    variance as ``(Q − S²)/n²`` in the clear (division stays outside the
    circuit, the standard trick for fixed denominators).
    """
    if n_parties < 2:
        raise CircuitError("statistics need at least two parties")
    b = CircuitBuilder()
    xs = [b.input(f"party{i}") for i in range(n_parties)]
    total = b.sum(xs)
    squares = b.sum([b.square(x) for x in xs])
    b.output(total, recipient)
    b.output(b.cmul(n_parties, squares), recipient)
    return b.build()


def random_circuit(
    rng: random.Random,
    n_inputs: int = 4,
    n_gates: int = 20,
    n_clients: int = 2,
    value_bound: int = 1000,
) -> Circuit:
    """A random well-formed circuit for differential testing.

    Every intermediate value stays reachable; the final wire (plus a couple
    of random ones) is output to ``client0``.
    """
    if n_inputs < 1 or n_gates < 1:
        raise CircuitError("need at least one input and one gate")
    b = CircuitBuilder()
    wires = [
        b.input(f"client{i % n_clients}") for i in range(n_inputs)
    ]
    for _ in range(n_gates):
        op = rng.choice(["add", "sub", "mul", "mul", "cadd", "cmul"])
        a = rng.choice(wires)
        if op == "add":
            wires.append(b.add(a, rng.choice(wires)))
        elif op == "sub":
            wires.append(b.sub(a, rng.choice(wires)))
        elif op == "mul":
            wires.append(b.mul(a, rng.choice(wires)))
        elif op == "cadd":
            wires.append(b.cadd(rng.randrange(-value_bound, value_bound), a))
        else:
            wires.append(b.cmul(rng.randrange(-value_bound, value_bound), a))
    b.output(wires[-1], "client0")
    for w in rng.sample(wires, min(2, len(wires))):
        b.output(w, "client0")
    return b.build()
