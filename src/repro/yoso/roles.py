"""Roles: the stateless, speak-once protocol participants.

A :class:`Role` is the runtime's record of one role — its identity, its
role keypair (from the ideal role assignment), its corruption status, and
whether it has spoken.  Protocol code never touches a Role directly; it
receives a :class:`RoleView`, which exposes exactly what an executing role
may see (its own secrets, any setup gifts, and read access to the bulletin)
and a single :meth:`RoleView.speak`.

After speaking, the runtime *erases* the role's secrets (the YOSO wrapper's
``Spoke`` semantics, paper §2): corrupting the machine afterwards yields
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import RoleAlreadySpokeError, YosoError
from repro.paillier.paillier import PaillierKeyPair, PaillierPublicKey, PaillierSecretKey


@dataclass(frozen=True, order=True)
class RoleId:
    """A role name: committee name plus 1-based index within it."""

    committee: str
    index: int

    def __str__(self) -> str:
        return f"{self.committee}[{self.index}]"


class Role:
    """Runtime state of one role (held by the environment, not by protocol code)."""

    def __init__(
        self,
        role_id: RoleId,
        keypair: PaillierKeyPair,
        gifts: Mapping[str, Any] | None = None,
    ):
        self.id = role_id
        self.public_key: PaillierPublicKey = keypair.public
        self._secret_key: PaillierSecretKey | None = keypair.secret
        self._gifts: dict[str, Any] = dict(gifts or {})
        self.spoken = False
        self.corrupted = False
        self.crashed = False

    # -- lifecycle ----------------------------------------------------------

    def mark_spoken(self) -> None:
        """Record the single utterance and erase all secrets (Spoke token)."""
        if self.spoken:
            raise RoleAlreadySpokeError(f"role {self.id} already spoke")
        self.spoken = True
        self._secret_key = None
        self._gifts.clear()

    @property
    def secret_key(self) -> PaillierSecretKey:
        if self._secret_key is None:
            raise YosoError(f"role {self.id} has no secrets (already spoke)")
        return self._secret_key

    def gift(self, name: str) -> Any:
        """A private value handed to this role by the setup functionality."""
        if self.spoken:
            raise YosoError(f"role {self.id} erased its state after speaking")
        if name not in self._gifts:
            raise YosoError(f"role {self.id} holds no gift {name!r}")
        return self._gifts[name]

    def has_gift(self, name: str) -> bool:
        return not self.spoken and name in self._gifts

    def add_gift(self, name: str, value: Any) -> None:
        if self.spoken:
            raise YosoError(f"cannot gift {self.id} after it spoke")
        self._gifts[name] = value

    def exposed_state(self) -> dict[str, Any]:
        """What an adversary corrupting the machine right now would learn."""
        if self.spoken:
            return {}
        state: dict[str, Any] = dict(self._gifts)
        if self._secret_key is not None:
            state["role_secret_key"] = self._secret_key
        return state

    def __repr__(self) -> str:
        flags = "".join(
            f for f, on in (("S", self.spoken), ("C", self.corrupted), ("X", self.crashed)) if on
        )
        return f"Role({self.id}{' ' + flags if flags else ''})"


class RoleView:
    """The interface handed to a role's program for its one activation."""

    def __init__(self, role: Role, bulletin, rng):
        self._role = role
        self.bulletin = bulletin
        self.rng = rng
        self._payload: tuple[str, Any] | None = None

    @property
    def id(self) -> RoleId:
        return self._role.id

    @property
    def index(self) -> int:
        return self._role.id.index

    @property
    def public_key(self) -> PaillierPublicKey:
        return self._role.public_key

    @property
    def secret_key(self) -> PaillierSecretKey:
        return self._role.secret_key

    def gift(self, name: str) -> Any:
        return self._role.gift(name)

    def has_gift(self, name: str) -> bool:
        return self._role.has_gift(name)

    # -- reading the board ---------------------------------------------------
    #
    # The bulletin stores delivered envelope *bytes*; these accessors (like
    # any direct ``view.bulletin`` read) decode payloads on access, which
    # is what a role on a real transport would do with the wire it sees.

    def read_all(self, tag: str) -> list[Any]:
        """Every payload posted under ``tag``, decoded, in board order."""
        return self.bulletin.payloads(tag)

    def read_latest(self, tag: str) -> Any:
        """The most recent payload under ``tag``, decoded."""
        return self.bulletin.latest(tag)

    def read_by_sender(self, tag: str) -> dict[str, Any]:
        """Latest decoded payload per sender (a round's contributions)."""
        return self.bulletin.by_sender(tag)

    # -- speaking ------------------------------------------------------------

    def speak(self, tag: str, payload: Any) -> None:
        """Queue this role's single message; the runtime posts it.

        Calling twice raises — that is the YOSO invariant made executable.
        """
        if self._payload is not None or self._role.spoken:
            raise RoleAlreadySpokeError(f"role {self.id} may only speak once")
        self._payload = (tag, payload)

    def queued_message(self) -> tuple[str, Any] | None:
        return self._payload
