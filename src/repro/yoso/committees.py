"""Committees: named groups of roles executing one protocol step."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParameterError, YosoError
from repro.paillier.paillier import PaillierPublicKey
from repro.yoso.roles import Role, RoleId


@dataclass
class Committee:
    """A committee of ``n`` roles with 1-based indexing."""

    name: str
    roles: list[Role]

    def __post_init__(self):
        if not self.roles:
            raise ParameterError(f"committee {self.name!r} is empty")
        for expected, role in enumerate(self.roles, start=1):
            if role.id.committee != self.name or role.id.index != expected:
                raise ParameterError(
                    f"role {role.id} misplaced in committee {self.name!r}"
                )

    @property
    def size(self) -> int:
        return len(self.roles)

    def __iter__(self) -> Iterator[Role]:
        return iter(self.roles)

    def role(self, index: int) -> Role:
        if not 1 <= index <= len(self.roles):
            raise YosoError(f"committee {self.name!r} has no member {index}")
        return self.roles[index - 1]

    def public_keys(self) -> list[PaillierPublicKey]:
        """Role-assignment public keys of all members, in index order."""
        return [r.public_key for r in self.roles]

    def honest_indices(self) -> list[int]:
        return [r.id.index for r in self.roles if not r.corrupted]

    def corrupted_indices(self) -> list[int]:
        return [r.id.index for r in self.roles if r.corrupted]

    def active_indices(self) -> list[int]:
        """Members that have not crashed (fail-stop)."""
        return [r.id.index for r in self.roles if not r.crashed]

    def ids(self) -> list[RoleId]:
        return [r.id for r in self.roles]
