"""The public bulletin board.

All YOSO communication is posting to (and reading from) a public
append-only board: broadcast and point-to-point messages cost the same
(paper §3.3), point-to-point privacy comes from encrypting to the
recipient's role key.  Every post is metered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.accounting.comm import CommMeter
from repro.errors import YosoError
from repro.observability import hooks as _hooks


@dataclass(frozen=True)
class Post:
    """One append-only board entry."""

    seq: int
    round: int
    phase: str
    sender: str
    tag: str
    payload: Any


class BulletinBoard:
    """Append-only, publicly readable message board with metering."""

    def __init__(self, meter: CommMeter | None = None):
        self.meter = meter if meter is not None else CommMeter()
        self._posts: list[Post] = []
        self._by_tag: dict[str, list[Post]] = {}
        self.round = 0

    def advance_round(self) -> int:
        self.round += 1
        return self.round

    def post(self, phase: str, sender: str, tag: str, payload: Any) -> Post:
        """Append a message; records its size with the meter.

        A dict payload with string keys is a *sectioned* message (the
        standard shape of a role's single bundled utterance); each section
        is metered under ``tag.section`` so benchmarks can slice one
        committee's bytes by message kind.  The post itself stays whole.
        """
        if (
            isinstance(payload, dict)
            and payload
            and all(isinstance(k, str) for k in payload)
        ):
            for key, section in payload.items():
                self.meter.record(phase, sender, f"{tag}.{key}", section)
        else:
            self.meter.record(phase, sender, tag, payload)
        _hooks.note(_hooks.BULLETIN_POSTS)
        post = Post(len(self._posts), self.round, phase, sender, tag, payload)
        self._posts.append(post)
        self._by_tag.setdefault(tag, []).append(post)
        return post

    # -- reading (free, public) ------------------------------------------------

    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    def with_tag(self, tag: str) -> list[Post]:
        return list(self._by_tag.get(tag, []))

    def payloads(self, tag: str) -> list[Any]:
        return [p.payload for p in self._by_tag.get(tag, [])]

    def latest(self, tag: str) -> Any:
        posts = self._by_tag.get(tag)
        if not posts:
            raise YosoError(f"no post with tag {tag!r}")
        return posts[-1].payload

    def exists(self, tag: str) -> bool:
        return bool(self._by_tag.get(tag))

    def by_sender(self, tag: str) -> dict[str, Any]:
        """Latest payload per sender for a tag (a round's contributions)."""
        out: dict[str, Any] = {}
        for p in self._by_tag.get(tag, []):
            out[p.sender] = p.payload
        return out
