"""The public bulletin board.

All YOSO communication is posting to (and reading from) a public
append-only board: broadcast and point-to-point messages cost the same
(paper §3.3), point-to-point privacy comes from encrypting to the
recipient's role key.

The board is *byte-real*: every post is canonically encoded into a
:class:`~repro.wire.envelope.Envelope`, handed to the configured
:class:`~repro.wire.transport.Transport`, and stored as the delivered
bytes — readers decode on access.  The meter records the exact encoded
spans (per payload section plus the envelope framing), so reported totals
equal ``sum(len(envelope))`` over the board.  Payloads the codec cannot
encode (foreign extension objects) degrade to the legacy object-reference
path with structural-sizer estimates and a one-time deprecation warning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.accounting.comm import CommMeter, warn_fallback_once
from repro.errors import WireEncodeError, YosoError
from repro.observability import hooks as _hooks
from repro.wire.codec import WireCodec, roundtrip_check
from repro.wire.envelope import Envelope, decode_envelope, encode_envelope
from repro.wire.registry import kind_for_tag
from repro.wire.transport import InMemoryTransport, Transport


class Post:
    """One append-only board entry: envelope bytes plus lazy decode.

    ``encoded`` holds the full delivered envelope (``None`` only on the
    legacy fallback path, where ``payload`` is the original object).
    ``payload`` decodes the body on first access and caches the result —
    the decode-on-read semantics a real byte transport forces.
    """

    __slots__ = (
        "seq", "round", "phase", "sender", "tag", "kind",
        "encoded", "n_bytes", "_codec", "_payload", "_decoded",
    )

    def __init__(
        self,
        seq: int,
        round: int,
        phase: str,
        sender: str,
        tag: str,
        kind: str = "generic",
        encoded: bytes | None = None,
        codec: WireCodec | None = None,
        raw_payload: Any = None,
    ):
        self.seq = seq
        self.round = round
        self.phase = phase
        self.sender = sender
        self.tag = tag
        self.kind = kind
        self.encoded = encoded
        self.n_bytes = len(encoded) if encoded is not None else None
        self._codec = codec
        self._payload = raw_payload
        self._decoded = encoded is None

    @property
    def payload(self) -> Any:
        if not self._decoded:
            envelope = decode_envelope(self.encoded)
            try:
                self._payload = self._codec.decode(envelope.body)
            except Exception:
                _hooks.note(_hooks.WIRE_DECODE_FAILURES)
                raise
            _hooks.note(_hooks.WIRE_DECODES)
            self._decoded = True
        return self._payload

    @property
    def is_encoded(self) -> bool:
        return self.encoded is not None

    def envelope(self) -> Envelope:
        """Re-parse the stored envelope frame (encoded posts only)."""
        if self.encoded is None:
            raise YosoError(f"post {self.seq} ({self.tag!r}) is not encoded")
        return decode_envelope(self.encoded)

    def __repr__(self) -> str:
        size = f"{self.n_bytes}B" if self.n_bytes is not None else "raw"
        return (
            f"Post(#{self.seq} r{self.round} {self.phase} "
            f"{self.sender} {self.tag!r} {size})"
        )


@dataclass(frozen=True)
class EncodedPost:
    """A post encoded and ready for delivery, but not yet on the board.

    The asynchronous path splits :meth:`BulletinBoard.post` in two:
    :meth:`BulletinBoard.encode_post` produces this, the transport
    resolves delivery out of band, and
    :meth:`BulletinBoard.commit_delivered` meters and appends whatever
    bytes actually arrived.  ``sections`` carries the per-section encoded
    spans so the commit meters exactly like the synchronous path.
    """

    phase: str
    sender: str
    tag: str
    kind: str
    envelope: Envelope
    encoded: bytes
    sections: tuple[tuple[str, int], ...] | None


class BulletinBoard:
    """Append-only, publicly readable message board with exact metering."""

    def __init__(
        self,
        meter: CommMeter | None = None,
        transport: Transport | None = None,
        codec: WireCodec | None = None,
        self_check: bool = False,
    ):
        self.meter = meter if meter is not None else CommMeter()
        self.transport = transport if transport is not None else InMemoryTransport()
        self.codec = codec if codec is not None else WireCodec()
        #: Re-decode every encoded post at post time (debug/tests).
        self.self_check = self_check
        self._posts: list[Post] = []
        self._by_tag: dict[str, list[Post]] = {}
        self.round = 0

    def advance_round(self) -> int:
        self.round += 1
        return self.round

    def post(self, phase: str, sender: str, tag: str, payload: Any) -> Post | None:
        """Encode, deliver, meter, and append one message.

        A dict payload with string keys is a *sectioned* message (the
        standard shape of a role's single bundled utterance); each
        section's exact encoded span is metered under ``tag.section`` and
        the envelope framing under the bare ``tag``, so benchmarks can
        slice one committee's bytes by message kind while the totals stay
        equal to the delivered wire bytes.

        Returns ``None`` when the transport drops the message — the
        runtime treats that as the sender falling silent (fail-stop).
        """
        prepared = self.encode_post(phase, sender, tag, payload)
        if prepared is None:
            return self._post_fallback(phase, sender, tag, payload)
        delivered = self.transport.deliver(prepared.envelope, prepared.encoded)
        if delivered is None:
            _hooks.note(_hooks.WIRE_DROPS)
            return None
        return self.commit_delivered(prepared, delivered)

    def encode_post(
        self, phase: str, sender: str, tag: str, payload: Any
    ) -> EncodedPost | None:
        """Encode one message without delivering it.

        Returns ``None`` for codec-foreign payloads (callers fall back to
        :meth:`post`, which takes the legacy object-reference path).
        """
        kind = kind_for_tag(tag)
        try:
            body, sections = self.codec.encode_payload(payload)
        except WireEncodeError:
            return None
        envelope = Envelope(kind.name, sender, self.round, phase, tag, body)
        encoded = encode_envelope(envelope, kind=kind)
        if self.self_check:
            roundtrip_check(self.codec, payload)
        _hooks.note(_hooks.WIRE_POSTS)
        _hooks.note(_hooks.WIRE_ENCODED_BYTES, len(encoded))
        return EncodedPost(
            phase, sender, tag, kind.name, envelope, encoded,
            tuple(sections) if sections is not None else None,
        )

    def commit_delivered(self, prepared: EncodedPost, delivered: bytes) -> Post:
        """Meter and append the delivered bytes of an encoded post."""
        if prepared.sections is not None:
            for key, span in prepared.sections:
                self.meter.record_exact(
                    prepared.phase, prepared.sender,
                    f"{prepared.tag}.{key}", span,
                )
            framing = len(delivered) - sum(span for _, span in prepared.sections)
            self.meter.record_exact(
                prepared.phase, prepared.sender, prepared.tag, framing
            )
        else:
            self.meter.record_exact(
                prepared.phase, prepared.sender, prepared.tag, len(delivered)
            )
        _hooks.note(_hooks.BULLETIN_POSTS)
        post = Post(
            len(self._posts), prepared.envelope.round, prepared.phase,
            prepared.sender, prepared.tag,
            kind=prepared.kind, encoded=delivered, codec=self.codec,
        )
        self._append(post)
        return post

    def _post_fallback(
        self, phase: str, sender: str, tag: str, payload: Any
    ) -> Post:
        """Legacy object-reference post for codec-foreign payloads."""
        type_name = type(payload).__name__
        kind = kind_for_tag(tag)
        warn_fallback_once(
            type_name,
            f"bulletin payload of type {type_name} (envelope kind "
            f"{kind.name!r}, tag {tag!r}) has no wire codec; posting by "
            "reference with structural-sizer estimates, so this kind is "
            "invisible to the symbolic exactness check "
            "(repro.accounting.symbolic) — register a wire codec and a "
            "size formula for it",
            kind=kind.name,
        )
        _hooks.note(_hooks.WIRE_ENCODE_FALLBACKS)
        if (
            isinstance(payload, dict)
            and payload
            and all(isinstance(k, str) for k in payload)
        ):
            for key, section in payload.items():
                self.meter.record(phase, sender, f"{tag}.{key}", section)
        else:
            self.meter.record(phase, sender, tag, payload)
        _hooks.note(_hooks.BULLETIN_POSTS)
        post = Post(
            len(self._posts), self.round, phase, sender, tag,
            raw_payload=payload,
        )
        self._append(post)
        return post

    def _append(self, post: Post) -> None:
        self._posts.append(post)
        self._by_tag.setdefault(post.tag, []).append(post)

    # -- reading (free, public) ------------------------------------------------

    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    def with_tag(self, tag: str) -> list[Post]:
        return list(self._by_tag.get(tag, []))

    def payloads(self, tag: str) -> list[Any]:
        return [p.payload for p in self._by_tag.get(tag, [])]

    def latest(self, tag: str) -> Any:
        posts = self._by_tag.get(tag)
        if not posts:
            raise YosoError(f"no post with tag {tag!r}")
        return posts[-1].payload

    def exists(self, tag: str) -> bool:
        return bool(self._by_tag.get(tag))

    def by_sender(self, tag: str) -> dict[str, Any]:
        """Latest payload per sender for a tag (a round's contributions)."""
        out: dict[str, Any] = {}
        for p in self._by_tag.get(tag, []):
            out[p.sender] = p.payload
        return out

    def encoded_total_bytes(self) -> int:
        """Sum of delivered envelope lengths (ground truth for the meter)."""
        return sum(p.n_bytes for p in self._posts if p.n_bytes is not None)
