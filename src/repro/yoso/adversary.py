"""Adversary models for the simulated YOSO execution.

The paper's threat model (§2 + Remark 1) distinguishes:

* **passive / semi-honest** — corrupted roles follow the protocol but leak
  their entire view to the adversary;
* **active / malicious** — corrupted roles may post arbitrary garbage (or
  nothing); the runtime lets a ``transform`` hook rewrite their messages;
* **fail-stop** — *honest* roles that crash and never post (§5.4); these
  are scheduled by a :class:`CrashSpec` independent of corruption.

The runtime is rushing-adversary-faithful: honest roles of a committee
speak first, corrupted ones last, so transforms may read the honest
messages from the bulletin before choosing their own.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.yoso.committees import Committee
from repro.yoso.roles import Role, RoleId

#: (role, phase, tag, payload) -> replacement payload, or None to withhold.
TransformFn = Callable[[RoleId, str, str, Any], Any]


def _identity_transform(role_id: RoleId, phase: str, tag: str, payload: Any) -> Any:
    return payload


@dataclass(frozen=True)
class CrashSpec:
    """Which roles fail-stop, and during which phase ('' = any phase)."""

    roles: frozenset[RoleId] = frozenset()
    phase: str = ""

    def crashes(self, role_id: RoleId, phase: str) -> bool:
        return role_id in self.roles and (not self.phase or self.phase == phase)

    @classmethod
    def random_honest(
        cls, committee: Committee, count: int, rng: random.Random, phase: str = ""
    ) -> "CrashSpec":
        """Crash ``count`` random *honest* members — the §5.4 scenario."""
        honest = [r.id for r in committee if not r.corrupted]
        if count > len(honest):
            raise ValueError(f"only {len(honest)} honest members to crash")
        return cls(frozenset(rng.sample(honest, count)), phase)


@dataclass
class Adversary:
    """Corruption behaviour plus the accumulated corrupted-role view."""

    transform: TransformFn = _identity_transform
    crash_spec: CrashSpec = field(default_factory=CrashSpec)
    leaked_views: list[tuple[RoleId, Mapping[str, Any]]] = field(default_factory=list)

    def observe(self, role: Role) -> None:
        """Record what corrupting this role's machine reveals (its view)."""
        self.leaked_views.append((role.id, role.exposed_state()))

    def crashes(self, role_id: RoleId, phase: str) -> bool:
        return self.crash_spec.crashes(role_id, phase)

    def apply(
        self, role_id: RoleId, phase: str, tag: str, payload: Any
    ) -> Any:
        return self.transform(role_id, phase, tag, payload)


def honest_adversary() -> Adversary:
    """No corruption behaviour at all (every role follows the protocol)."""
    return Adversary()


def random_corruptions(
    committees: list[Committee], t: int, rng: random.Random
) -> list[RoleId]:
    """Flag ``t`` uniformly random members of each committee as corrupted.

    Returns all corrupted role ids.  (YOSO computation roles are corrupted
    at random because the adversary cannot see the role→machine mapping.)
    """
    corrupted: list[RoleId] = []
    for committee in committees:
        for index in sorted(rng.sample(range(1, committee.size + 1), t)):
            role = committee.role(index)
            role.corrupted = True
            corrupted.append(role.id)
    return corrupted


def withholding_transform(tags_to_drop: set[str]) -> TransformFn:
    """An active behaviour: silently drop messages with the given tags."""

    def transform(role_id: RoleId, phase: str, tag: str, payload: Any) -> Any:
        if tag in tags_to_drop:
            return None
        return payload

    return transform
