"""The YOSO execution substrate: roles, committees, bulletin board, and
adversaries.

Implements "abstract YOSO" (paper §2): stateless roles that each speak at
most once, an ideal role-assignment functionality handing out role keys,
and a public bulletin board through which all communication flows (in YOSO,
point-to-point costs the same as broadcast — §3.3).  The runtime *enforces*
the speak-once rule (:class:`~repro.errors.RoleAlreadySpokeError`) and
meters every post (:mod:`repro.accounting`).
"""

from repro.yoso.roles import Role, RoleId, RoleView
from repro.yoso.bulletin import BulletinBoard, EncodedPost, Post
from repro.yoso.committees import Committee
from repro.yoso.assignment import IdealRoleAssignment
from repro.yoso.adversary import (
    Adversary,
    CrashSpec,
    honest_adversary,
    random_corruptions,
)
from repro.yoso.network import ProtocolEnvironment
from repro.yoso.scheduler import AsyncRoundScheduler
from repro.yoso.functionalities import (
    IdealBroadcast,
    IdealMpc,
    RoleStatus,
    Stage,
)

__all__ = [
    "IdealBroadcast",
    "IdealMpc",
    "RoleStatus",
    "Stage",
    "Role",
    "RoleId",
    "RoleView",
    "BulletinBoard",
    "EncodedPost",
    "Post",
    "Committee",
    "IdealRoleAssignment",
    "Adversary",
    "CrashSpec",
    "honest_adversary",
    "random_corruptions",
    "ProtocolEnvironment",
    "AsyncRoundScheduler",
]
