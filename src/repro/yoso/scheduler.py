"""Quorum-driven round finalization for asynchronous transports.

The synchronous driver posts, delivers, and meters inside each role
activation.  Over a cross-process transport that would serialize on every
post's network round trip, so asynchronous transports split the round:
:meth:`AsyncRoundScheduler.submit` encodes and *launches* each post
during activation, and :meth:`AsyncRoundScheduler.finalize_round` waits —
until a committee quorum of replies has arrived, plus a short straggler
grace — before committing the round to the board.

Posts are committed in submission (activation) order, so the board's
contents are byte- and order-identical to a synchronous run at the same
seed.  A post whose reply never arrives inside the window is a silent
party: the scheduler marks the submitting role crashed, exactly the §5.4
fail-stop event, and the existing crash-budget accounting decides whether
the protocol survives it.

The quorum itself comes from the runtime: ``pending - fail_stop_budget``
(at least 1), i.e. the round can close as soon as enough contributions
arrived that reconstruction could succeed even if every straggler turns
out to be crashed.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ParameterError
from repro.observability import hooks as _hooks
from repro.yoso.bulletin import BulletinBoard, EncodedPost, Post


class AsyncRoundScheduler:
    """Advance a phase once a quorum of posts has arrived.

    ``quorum_timeout_s`` is the hard per-round deadline: a role whose
    post is unresolved when it expires is fail-stop crashed.
    ``straggler_grace_s`` (default ``max(0.05, timeout/10)``) is how long
    the round lingers after quorum for late but live parties.
    """

    def __init__(
        self,
        bulletin: BulletinBoard,
        quorum_timeout_s: float = 30.0,
        straggler_grace_s: float | None = None,
    ):
        if quorum_timeout_s <= 0:
            raise ParameterError("quorum timeout must be positive")
        if straggler_grace_s is not None and straggler_grace_s < 0:
            raise ParameterError("straggler grace must be non-negative")
        self.bulletin = bulletin
        self.quorum_timeout_s = quorum_timeout_s
        self.straggler_grace_s = (
            straggler_grace_s
            if straggler_grace_s is not None
            else max(0.05, quorum_timeout_s / 10.0)
        )
        self._pending: list[tuple[Any, int, EncodedPost]] = []

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def submit(
        self, role: Any, phase: str, sender: str, tag: str, payload: Any
    ) -> bool:
        """Encode and launch one post; resolution waits for finalize.

        Returns ``False`` for codec-foreign payloads, which take the
        synchronous fallback path immediately (they never touch the
        transport, so there is nothing to wait for).
        """
        prepared = self.bulletin.encode_post(phase, sender, tag, payload)
        if prepared is None:
            self.bulletin.post(phase, sender, tag, payload)
            return False
        handle = self.bulletin.transport.begin_deliver(
            prepared.envelope, prepared.encoded
        )
        self._pending.append((role, handle, prepared))
        return True

    def finalize_round(self, quorum: int | None = None) -> list[Any]:
        """Resolve every launched post; commit arrivals, crash the silent.

        Commits in submission order (board parity with the synchronous
        driver).  Returns the roles crashed this round.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        handles = [handle for _, handle, _ in pending]
        results = self.bulletin.transport.collect(
            handles,
            quorum=quorum,
            timeout_s=self.quorum_timeout_s,
            grace_s=self.straggler_grace_s,
        )
        crashed: list[Any] = []
        for role, handle, prepared in pending:
            delivered = results.get(handle)
            if delivered is None:
                _hooks.note(_hooks.WIRE_DROPS)
                if role is not None:
                    role.crashed = True
                crashed.append(role)
            else:
                self.bulletin.commit_delivered(prepared, delivered)
        return crashed

    def committed_posts(self) -> list[Post]:
        """The board so far (convenience for tests)."""
        return list(self.bulletin)
