"""The ideal role-assignment functionality.

Abstract-YOSO protocols are designed against an idealized role assignment
(paper §2): it maps roles to machines, equips each role with a keypair
(public part on the bulletin, secret part known only to the machine), and —
because the adversary cannot see the mapping — corruption of computation
roles is *random*.  :class:`IdealRoleAssignment` implements exactly that
contract for the simulated network; the probabilistic analysis of
*realizing* it via cryptographic sortition lives in :mod:`repro.sortition`.
"""

from __future__ import annotations

import random

from repro.errors import ParameterError
from repro.paillier.paillier import PaillierKeyPair, _keypair_from_primes
from repro.paillier.primes import random_prime
from repro.rng import fresh_rng
from repro.yoso.committees import Committee
from repro.yoso.roles import Role, RoleId


class IdealRoleAssignment:
    """Samples committees and equips each role with a fresh role keypair.

    ``key_bits`` sizes the role-key moduli.  Role keys must be able to carry
    (chunked) values from the threshold-encryption world, so callers pick
    ``key_bits`` >= the TE modulus size; chunking handles the rest.
    """

    def __init__(self, key_bits: int = 64, rng: random.Random | None = None):
        if key_bits < 16:
            raise ParameterError("role keys need at least 16-bit moduli")
        self.key_bits = key_bits
        self.rng = rng if rng is not None else fresh_rng()

    def _fresh_keypair(self) -> PaillierKeyPair:
        half = self.key_bits // 2
        p = random_prime(half, rng=self.rng)
        q = random_prime(half, rng=self.rng)
        while q == p:
            q = random_prime(half, rng=self.rng)
        return _keypair_from_primes(p, q)

    def sample_committee(self, name: str, size: int) -> Committee:
        """Create a committee of ``size`` fresh roles with role keys."""
        roles = [
            Role(RoleId(name, i), self._fresh_keypair())
            for i in range(1, size + 1)
        ]
        return Committee(name, roles)

    def corrupt_randomly(self, committee: Committee, t: int) -> list[int]:
        """Mark ``t`` uniformly random members corrupted (YOSO's random
        corruption of computation roles); returns the corrupted indices."""
        if t > committee.size:
            raise ParameterError(
                f"cannot corrupt {t} of {committee.size} members"
            )
        chosen = sorted(self.rng.sample(range(1, committee.size + 1), t))
        for index in chosen:
            committee.role(index).corrupted = True
        return chosen

    def client(self, name: str) -> Role:
        """A known (non-anonymous) input/output machine with a keypair."""
        return Role(RoleId(name, 1), self._fresh_keypair())

    def sample_by_sortition(
        self,
        name: str,
        n_total: int,
        corruption_ratio: float,
        c_param: float,
    ) -> Committee:
        """Sample a committee the way the §6 analysis models it.

        Each of ``n_total`` machines joins independently with probability
        ``C/N``; a ``corruption_ratio`` fraction of machines is corrupt, so
        corrupted membership is Binomial too (the adversary cannot bias
        *which* roles land on its machines — the random-corruption property
        of the role assignment).  Committee size is therefore random;
        callers take the realized ``committee.size`` and
        ``len(committee.corrupted_indices())`` to instantiate protocol
        parameters, exactly as a deployment would.

        Intended for simulation-scale C (role keys are generated per
        member); the pure counting analysis for large C lives in
        :mod:`repro.sortition`.
        """
        if not 0 < c_param <= n_total:
            raise ParameterError(f"need 0 < C <= N, got C={c_param}, N={n_total}")
        if not 0 <= corruption_ratio < 1:
            raise ParameterError(f"bad corruption ratio {corruption_ratio}")
        p = c_param / n_total
        n_corrupt_machines = int(corruption_ratio * n_total)
        members: list[bool] = []  # corrupted flag per selected member
        for machine in range(n_total):
            if self.rng.random() < p:
                members.append(machine < n_corrupt_machines)
        if len(members) < 2:
            raise ParameterError(
                f"sortition produced a degenerate committee of {len(members)}"
            )
        self.rng.shuffle(members)  # anonymize machine order
        roles = [
            Role(RoleId(name, i), self._fresh_keypair())
            for i in range(1, len(members) + 1)
        ]
        committee = Committee(name, roles)
        for role, corrupted in zip(roles, members):
            role.corrupted = corrupted
        return committee
