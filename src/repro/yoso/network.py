"""The synchronous protocol environment.

Drives committees round by round: each activation hands the role a
:class:`~repro.yoso.roles.RoleView`, collects its single queued message,
applies the adversary (corrupted roles may rewrite or withhold; crashed
roles never post), posts to the bulletin, and kills the role (Spoke).

Rushing order: honest members of a committee are activated before corrupted
ones, so malicious transforms can depend on all honest messages of the
round — the strongest scheduling the model allows (§2).

Over an asynchronous transport (``transport.is_async``) the environment
routes posts through an :class:`~repro.yoso.scheduler.AsyncRoundScheduler`
instead: activations launch deliveries, and the round is finalized — a
quorum of arrivals committed, stragglers fail-stop crashed — before the
board advances.  The rushing guarantee (corrupted roles reading honest
same-round posts) holds only under synchronous transports; adversarial
transform tests therefore run over ``memory``.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.accounting.comm import CommMeter
from repro.errors import YosoError
from repro.observability.tracer import KIND_ROUND, Tracer, maybe_span
from repro.rng import fresh_rng
from repro.wire.transport import Transport
from repro.yoso.adversary import Adversary, honest_adversary
from repro.yoso.assignment import IdealRoleAssignment
from repro.yoso.bulletin import BulletinBoard
from repro.yoso.committees import Committee
from repro.yoso.roles import Role, RoleView

#: A role program: inspects its view, optionally calls view.speak(...) once.
RoleProgram = Callable[[RoleView], None]


class ProtocolEnvironment:
    """Owns the bulletin, the adversary, and the round schedule."""

    def __init__(
        self,
        assignment: IdealRoleAssignment | None = None,
        adversary: Adversary | None = None,
        rng: random.Random | None = None,
        meter: CommMeter | None = None,
        tracer: Tracer | None = None,
        transport: Transport | None = None,
        quorum_timeout_s: float | None = None,
    ):
        self.rng = rng if rng is not None else fresh_rng()
        self.assignment = (
            assignment if assignment is not None else IdealRoleAssignment(rng=self.rng)
        )
        self.adversary = adversary if adversary is not None else honest_adversary()
        self.bulletin = BulletinBoard(meter, transport=transport)
        self.phase = "setup"
        self.tracer = tracer
        #: How many silent parties a round may close without (§5.4 budget);
        #: the runtime sets this from ``params.fail_stop_budget``.
        self.quorum_margin = 0
        self.scheduler = None
        if getattr(self.bulletin.transport, "is_async", False):
            from repro.yoso.scheduler import AsyncRoundScheduler

            self.scheduler = AsyncRoundScheduler(
                self.bulletin,
                quorum_timeout_s=(
                    quorum_timeout_s if quorum_timeout_s is not None else 30.0
                ),
            )

    @property
    def transport(self) -> Transport:
        return self.bulletin.transport

    @property
    def meter(self) -> CommMeter:
        return self.bulletin.meter

    def set_phase(self, phase: str) -> None:
        self.phase = phase

    # -- role-key publication ------------------------------------------------

    def sample_committee(self, name: str, size: int) -> Committee:
        """Sample a committee and announce its public role keys.

        Role keys are the ideal assignment's public output; announcing
        their moduli lets cross-process decoders resolve ciphertexts
        compressed against them without sharing encode-time state.
        """
        committee = self.assignment.sample_committee(name, size)
        self.transport.announce_keys(
            [public.n for public in committee.public_keys()]
        )
        return committee

    def client(self, name: str) -> Role:
        """Create a client role and announce its public key."""
        role = self.assignment.client(name)
        self.transport.announce_keys([role.public_key.n])
        return role

    # -- activation ---------------------------------------------------------

    def activate(self, role: Role, program: RoleProgram) -> None:
        """Run one role's program; post its message; kill the role."""
        if role.spoken:
            raise YosoError(f"role {role.id} was already activated")
        if role.crashed or self.adversary.crashes(role.id, self.phase):
            role.crashed = True
            role.mark_spoken()  # a crashed role still dies silently
            return
        view = RoleView(role, self.bulletin, self.rng)
        if role.corrupted:
            self.adversary.observe(role)
        program(view)
        message = view.queued_message()
        if message is not None:
            tag, payload = message
            if role.corrupted:
                payload = self.adversary.apply(role.id, self.phase, tag, payload)
            if payload is not None:
                if self.scheduler is not None:
                    # Launch now, resolve at round finalization — a reply
                    # that never arrives crashes the role there.
                    self.scheduler.submit(
                        role, self.phase, str(role.id), tag, payload
                    )
                else:
                    post = self.bulletin.post(
                        self.phase, str(role.id), tag, payload
                    )
                    if post is None:
                        # The transport lost the role's single utterance: to
                        # every observer the role simply never spoke — exactly
                        # the fail-stop silence of §5.4.
                        role.crashed = True
        role.mark_spoken()

    def _finalize_round(self) -> None:
        """Close the round on an asynchronous transport (quorum + grace)."""
        if self.scheduler is None or not self.scheduler.has_pending:
            return
        quorum = max(1, self.scheduler.pending_count - self.quorum_margin)
        self.scheduler.finalize_round(quorum=quorum)

    def run_committee(self, committee: Committee, program: RoleProgram) -> None:
        """Activate a whole committee in one round, honest-first (rushing)."""
        with maybe_span(
            self.tracer, committee.name, kind=KIND_ROUND,
            phase=self.phase, committee=committee.name, members=committee.size,
        ):
            honest = [r for r in committee if not r.corrupted]
            corrupt = [r for r in committee if r.corrupted]
            for role in honest + corrupt:
                self.activate(role, program)
            self._finalize_round()
            self.bulletin.advance_round()

    def run_role(self, role: Role, program: RoleProgram) -> None:
        """Activate a single role (e.g. a client) as its own round."""
        with maybe_span(
            self.tracer, str(role.id), kind=KIND_ROUND,
            phase=self.phase, committee=None, members=1,
        ):
            self.activate(role, program)
            self._finalize_round()
            self.bulletin.advance_round()
