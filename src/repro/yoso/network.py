"""The synchronous protocol environment.

Drives committees round by round: each activation hands the role a
:class:`~repro.yoso.roles.RoleView`, collects its single queued message,
applies the adversary (corrupted roles may rewrite or withhold; crashed
roles never post), posts to the bulletin, and kills the role (Spoke).

Rushing order: honest members of a committee are activated before corrupted
ones, so malicious transforms can depend on all honest messages of the
round — the strongest scheduling the model allows (§2).
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.accounting.comm import CommMeter
from repro.errors import YosoError
from repro.observability.tracer import KIND_ROUND, Tracer, maybe_span
from repro.yoso.adversary import Adversary, honest_adversary
from repro.yoso.assignment import IdealRoleAssignment
from repro.wire.transport import Transport
from repro.yoso.bulletin import BulletinBoard
from repro.yoso.committees import Committee
from repro.yoso.roles import Role, RoleView

#: A role program: inspects its view, optionally calls view.speak(...) once.
RoleProgram = Callable[[RoleView], None]


class ProtocolEnvironment:
    """Owns the bulletin, the adversary, and the round schedule."""

    def __init__(
        self,
        assignment: IdealRoleAssignment | None = None,
        adversary: Adversary | None = None,
        rng: random.Random | None = None,
        meter: CommMeter | None = None,
        tracer: Tracer | None = None,
        transport: Transport | None = None,
    ):
        self.rng = rng if rng is not None else random.Random()
        self.assignment = (
            assignment if assignment is not None else IdealRoleAssignment(rng=self.rng)
        )
        self.adversary = adversary if adversary is not None else honest_adversary()
        self.bulletin = BulletinBoard(meter, transport=transport)
        self.phase = "setup"
        self.tracer = tracer

    @property
    def transport(self) -> Transport:
        return self.bulletin.transport

    @property
    def meter(self) -> CommMeter:
        return self.bulletin.meter

    def set_phase(self, phase: str) -> None:
        self.phase = phase

    # -- activation ---------------------------------------------------------

    def activate(self, role: Role, program: RoleProgram) -> None:
        """Run one role's program; post its message; kill the role."""
        if role.spoken:
            raise YosoError(f"role {role.id} was already activated")
        if role.crashed or self.adversary.crashes(role.id, self.phase):
            role.crashed = True
            role.mark_spoken()  # a crashed role still dies silently
            return
        view = RoleView(role, self.bulletin, self.rng)
        if role.corrupted:
            self.adversary.observe(role)
        program(view)
        message = view.queued_message()
        if message is not None:
            tag, payload = message
            if role.corrupted:
                payload = self.adversary.apply(role.id, self.phase, tag, payload)
            if payload is not None:
                post = self.bulletin.post(self.phase, str(role.id), tag, payload)
                if post is None:
                    # The transport lost the role's single utterance: to
                    # every observer the role simply never spoke — exactly
                    # the fail-stop silence of §5.4.
                    role.crashed = True
        role.mark_spoken()

    def run_committee(self, committee: Committee, program: RoleProgram) -> None:
        """Activate a whole committee in one round, honest-first (rushing)."""
        with maybe_span(
            self.tracer, committee.name, kind=KIND_ROUND,
            phase=self.phase, committee=committee.name, members=committee.size,
        ):
            honest = [r for r in committee if not r.corrupted]
            corrupt = [r for r in committee if r.corrupted]
            for role in honest + corrupt:
                self.activate(role, program)
            self.bulletin.advance_round()

    def run_role(self, role: Role, program: RoleProgram) -> None:
        """Activate a single role (e.g. a client) as its own round."""
        with maybe_span(
            self.tracer, str(role.id), kind=KIND_ROUND,
            phase=self.phase, committee=None, members=1,
        ):
            self.activate(role, program)
            self.bulletin.advance_round()
