"""Executable ideal functionalities: F_MPC (paper §2) and F_BC (Appendix C).

The paper defines security as the protocol UC-emulating these boxes.  This
module implements them *operationally* so tests can compare real protocol
executions against the ideal behaviour:

* :class:`IdealMpc` — the two-stage F_MPC^F: collects inputs during
  ``GettingInputs`` (honest roles commit in round 1, only once; corrupt and
  leaky roles' inputs leak to the simulator; honest inputs leak only their
  length), evaluates F on ``Evaluated``, and serves per-role outputs on
  ``Read``.  Default inputs are 0, exactly as the box specifies.
* :class:`IdealBroadcast` — F_BC: per-round input map, rushing leak of
  every message to the simulator, ``Spoke`` delivery to honest senders,
  reads of past rounds only.

These are *specification* objects — the realizations live in
:mod:`repro.core` (for F_MPC) and :mod:`repro.yoso.bulletin` (for F_BC);
``tests/test_functionalities.py`` checks protocol-vs-ideal agreement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import YosoError


class RoleStatus(enum.Enum):
    HONEST = "honest"
    LEAKY = "leaky"          # honest-but-curious: input leaks to S
    MALICIOUS = "malicious"


class Stage(enum.Enum):
    GETTING_INPUTS = "GettingInputs"
    EVALUATED = "Evaluated"


@dataclass
class LeakRecord:
    """What the simulator S observes."""

    role: str
    content: Any   # |x| for honest roles, x itself for leaky/malicious


class IdealMpc:
    """The F_MPC^F box.

    ``function`` maps {input role: value} to {output role: value}.  Roles
    must be declared with their status up front (the environment's
    corruption choices).
    """

    def __init__(
        self,
        function: Callable[[Mapping[str, int]], Mapping[str, int]],
        input_roles: Sequence[str],
        output_roles: Sequence[str],
        status: Mapping[str, RoleStatus] | None = None,
    ):
        self.function = function
        self.input_roles = list(input_roles)
        self.output_roles = list(output_roles)
        self.status = dict(status or {})
        self.stage = Stage.GETTING_INPUTS
        self.round = 1
        # Default input 0 for every input role, overwritable per the box.
        self.inputs: dict[str, int] = {role: 0 for role in self.input_roles}
        self._honest_committed: set[str] = set()
        self.outputs: dict[str, int] = {}
        self.leaks: list[LeakRecord] = []

    def _status(self, role: str) -> RoleStatus:
        return self.status.get(role, RoleStatus.HONEST)

    def advance_round(self) -> None:
        self.round += 1

    # -- (Input, R, x) ---------------------------------------------------------

    def give_input(self, role: str, value: int) -> bool:
        """Process an Input message; returns True if the input was stored.

        Honest roles: only the first input, and only in round 1 (the box's
        rule); they receive Spoke (modelled by the return value — the
        caller kills the role).  Corrupt roles may (re)set their input any
        time before Evaluated.
        """
        if role not in self.inputs:
            raise YosoError(f"{role!r} is not an input role")
        if self.stage is not Stage.GETTING_INPUTS:
            return False
        status = self._status(role)
        if status is RoleStatus.HONEST:
            if role in self._honest_committed or self.round != 1:
                return False
            self._honest_committed.add(role)
            self.inputs[role] = value
            self.leaks.append(LeakRecord(role, value.bit_length()))
            return True
        self.inputs[role] = value
        self.leaks.append(LeakRecord(role, value))
        return True

    # -- Evaluated (from S) ------------------------------------------------------

    def evaluate(self) -> None:
        """S decides it is output time (allowed only after round 1)."""
        if self.round <= 1:
            raise YosoError("Evaluated only allowed in a round r > 1")
        if self.stage is Stage.EVALUATED:
            raise YosoError("already evaluated")
        self.stage = Stage.EVALUATED
        self.outputs = dict(self.function(dict(self.inputs)))
        # Outputs of corrupt/leaky output roles leak to S immediately.
        for role in self.output_roles:
            if self._status(role) is not RoleStatus.HONEST:
                self.leaks.append(LeakRecord(role, self.outputs.get(role)))

    # -- (Read, R) -----------------------------------------------------------------

    def read(self, role: str) -> int:
        if self.stage is not Stage.EVALUATED:
            raise YosoError("outputs not available before Evaluated")
        if role not in self.output_roles:
            raise YosoError(f"{role!r} is not an output role")
        return self.outputs[role]


@dataclass
class _BroadcastEntry:
    round: int
    sender: str
    message: Any


class IdealBroadcast:
    """The F_BC box of Appendix C."""

    def __init__(self):
        self.round = 1
        self._map: dict[int, dict[str, Any]] = {}
        self._spoke: set[str] = set()
        self.leaks: list[_BroadcastEntry] = []

    def advance_round(self) -> None:
        self.round += 1

    def send(self, role: str, message: Any, honest: bool = True) -> None:
        """(Send, R, x): store, leak to S (rushing), Spoke honest senders."""
        if role in self._spoke:
            raise YosoError(f"{role!r} already spoke on the broadcast channel")
        self._map.setdefault(self.round, {})[role] = message
        self.leaks.append(_BroadcastEntry(self.round, role, message))
        if honest:
            self._spoke.add(role)

    def read(self, round_number: int) -> dict[str, Any]:
        """(Read, R, r'): the full round-r' map, only for past rounds."""
        if round_number >= self.round:
            raise YosoError(
                f"round {round_number} not yet readable (current {self.round})"
            )
        return dict(self._map.get(round_number, {}))
