"""Prime generation for Paillier moduli.

Miller–Rabin with 40 rounds (error < 2^-80 per composite) plus small-prime
trial division.  Safe primes (p = 2p' + 1 with p' prime) are required by the
threshold scheme so that the order structure of Z*_{N²} cooperates with
exponent-space key sharing.

Generating safe primes is slow, so :data:`SAFE_PRIME_FIXTURES` embeds
pre-generated safe primes at several sizes; :func:`fixture_safe_prime_pair`
hands out deterministic distinct pairs for unit tests while
:func:`random_safe_prime` generates fresh ones for realistic key sizes.
"""

from __future__ import annotations

import random
import secrets

from repro.errors import ParameterError

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113,
)

#: Pre-generated safe primes (p and (p-1)/2 both pass 40-round Miller–Rabin).
SAFE_PRIME_FIXTURES: dict[int, tuple[int, ...]] = {
    24: (11962943, 15856367, 14197343, 13313087, 14758343, 12253679,
         10092107, 12260603),
    32: (2963424383, 3121970759, 2687081807, 3917164919, 4153414439,
         3407292479, 2485068359, 3481276307),
    48: (203493106137947, 259499358141659, 171970552157147, 227680611356267,
         194952629350307, 201642194770859, 218081041076747, 214832885919167),
    64: (12368480899045270283, 16425326834340672407, 14852348927371266287,
         15014598541923981863, 11167960381344951179, 15123106359934485863,
         9975978702489673943, 15961649182074636323),
    96: (42566374597122359093850895439, 47783431313978505451610922599,
         74197210265936902755791476259, 53671222774050858110585157899,
         41843082314991757526091853487, 65078148881050117491385163147,
         56396115855766875408145648187, 77578277436666151873702979903),
}


def is_probable_prime(n: int, rounds: int = 40, rng=None) -> bool:
    """Miller–Rabin primality test with trial division pre-filter."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    randrange = rng.randrange if rng is not None else secrets.SystemRandom().randrange
    for _ in range(rounds):
        a = randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng=None) -> int:
    """A random prime of exactly ``bits`` bits."""
    if bits < 3:
        raise ParameterError(f"need at least 3 bits, got {bits}")
    getrandbits = rng.getrandbits if rng is not None else secrets.randbits
    while True:
        candidate = getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_safe_prime(bits: int, rng=None) -> int:
    """A random safe prime p = 2p'+1 of exactly ``bits`` bits (slow)."""
    if bits < 4:
        raise ParameterError(f"need at least 4 bits, got {bits}")
    getrandbits = rng.getrandbits if rng is not None else secrets.randbits
    while True:
        q = getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        if not is_probable_prime(q, rng=rng):
            continue
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p


def fixture_safe_prime_pair(bits: int = 32, which: int = 0) -> tuple[int, int]:
    """A deterministic pair of distinct safe primes from the fixtures.

    ``which`` selects among the fixture combinations so different tests can
    use independent moduli without regeneration cost.
    """
    if bits not in SAFE_PRIME_FIXTURES:
        raise ParameterError(
            f"no fixtures at {bits} bits; available: {sorted(SAFE_PRIME_FIXTURES)}"
        )
    pool = SAFE_PRIME_FIXTURES[bits]
    pairs = [(a, b) for i, a in enumerate(pool) for b in pool[i + 1 :]]
    rng = random.Random(which)
    return pairs[which % len(pairs)] if which >= 0 else rng.choice(pairs)
