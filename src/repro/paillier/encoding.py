"""Chunked encryption of large integers.

Paillier plaintexts live in Z_N, but the protocol must encrypt values larger
than one plaintext — e.g. a Key-For-Future *secret key* (a factorization of
a larger modulus) encrypted under the threshold key, or a partial
decryption (an element of Z_{N²}) re-encrypted under a role key.  We encode
such an integer in base ``B = 2^chunk_bits`` with ``chunk_bits`` chosen
safely below the plaintext modulus and encrypt limb-by-limb — the standard
hybrid workaround, preserving message *counts* up to a public constant
factor (documented in DESIGN.md's substitution table).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ParameterError


def safe_chunk_bits(plaintext_modulus: int) -> int:
    """Largest limb size (in bits) that always fits the plaintext space."""
    bits = plaintext_modulus.bit_length() - 1
    if bits < 8:
        raise ParameterError("plaintext modulus too small for chunked encoding")
    return bits


def chunk_integer(value: int, chunk_bits: int) -> list[int]:
    """Little-endian base-2^chunk_bits limbs of a non-negative integer.

    Always returns at least one limb (zero encodes as ``[0]``).
    """
    if value < 0:
        raise ParameterError("chunked encoding is for non-negative integers")
    if chunk_bits < 1:
        raise ParameterError(f"chunk_bits must be >= 1, got {chunk_bits}")
    mask = (1 << chunk_bits) - 1
    limbs = []
    while True:
        limbs.append(value & mask)
        value >>= chunk_bits
        if value == 0:
            return limbs


def unchunk_integer(limbs: Sequence[int], chunk_bits: int) -> int:
    """Inverse of :func:`chunk_integer`."""
    value = 0
    for limb in reversed(limbs):
        if limb < 0 or limb >> chunk_bits:
            raise ParameterError(f"limb {limb} out of range for {chunk_bits} bits")
        value = (value << chunk_bits) | limb
    return value


def encrypt_integer_chunked(
    encrypt: Callable[[int], object],
    value: int,
    chunk_bits: int,
) -> list[object]:
    """Encrypt ``value`` limb-wise with any single-plaintext ``encrypt``."""
    return [encrypt(limb) for limb in chunk_integer(value, chunk_bits)]


def decrypt_integer_chunked(
    decrypt: Callable[[object], int],
    ciphertexts: Sequence[object],
    chunk_bits: int,
) -> int:
    """Decrypt limb ciphertexts and reassemble the integer."""
    return unchunk_integer([decrypt(c) for c in ciphertexts], chunk_bits)
