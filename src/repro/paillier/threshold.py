"""Linearly homomorphic key-rerandomizable threshold Paillier (paper §4.1).

Implements every algorithm of the paper's TE interface:

====================  =======================================================
``TKGen``             :meth:`ThresholdPaillier.keygen`
``TEnc``              :meth:`ThresholdPublicKey.encrypt`
``TPDec``             :meth:`ThresholdPaillier.partial_decrypt`
``TDec``              :meth:`ThresholdPaillier.combine`
``TEval``             :func:`teval`
``TKRes``             :meth:`ThresholdPaillier.reshare`
``TKRec``             :meth:`ThresholdPaillier.recombine`
``SimTPDec``          :meth:`ThresholdPaillier.simulate_partials`
====================  =======================================================

Construction (Damgård–Jurik / CDN / Shoup):

* Safe primes p = 2p'+1, q = 2q'+1; N = pq, m = p'q'.
* Decryption exponent ``d`` with ``d ≡ 1 (mod N)`` and ``d ≡ 0 (mod m)``,
  Shamir-shared by a degree-``t`` *integer* polynomial (coefficients
  statistically mask the secret; no reduction modulo the unknown order).
* Partial decryption of ciphertext ``c``: ``c_i = c^(2Δ·d_i) mod N²`` with
  Δ = n!.
* Combination over any verified set S with |S| > t:
  ``c' = Π c_i^(2Δλ_i^S)`` where ``Δλ_i^S`` are the integer-scaled Lagrange
  coefficients; then ``m = L(c') · θ_e^{-1} mod N``.
* **Epoch-tracked resharing**: TKRes deals integer sub-sharings of each
  share; TKRec recombines with Δ-scaled Lagrange coefficients, so the
  implicit secret grows by a factor Δ per epoch.  The public correction
  factor ``θ_e = 4·Δ^(2+e)`` absorbs this at decryption — resharing is exact
  and unbounded-depth without knowing the secret order m.
* Verification values ``v_i = v^(Δ·d_i) mod N²`` ride along with shares and
  evolve through resharing publicly; the NIZK layer's partial-decryption
  proof (Chaum–Pedersen in an unknown-order group) binds partials to them.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.engine.engine import active as _active_engine
from repro.errors import EncryptionError, ParameterError
from repro.fields.lagrange import falling_factorial_delta, integer_lagrange_scaled
from repro.observability import hooks as _hooks
from repro.paillier.paillier import (
    _L,
    PaillierCiphertext,
    PaillierPublicKey,
)
from repro.paillier.primes import fixture_safe_prime_pair, random_safe_prime

#: Statistical hiding parameter for integer secret sharing.
STATISTICAL_SECURITY = 40

ThresholdCiphertext = PaillierCiphertext


@dataclass(frozen=True)
class ThresholdPublicKey:
    """Public portion of the threshold key: modulus plus sharing geometry."""

    paillier: PaillierPublicKey
    n_parties: int
    threshold: int
    verification_base: int

    def __post_init__(self):
        if not 0 < self.threshold + 1 <= self.n_parties:
            raise ParameterError(
                f"threshold {self.threshold} invalid for {self.n_parties} parties"
            )

    @property
    def n(self) -> int:
        return self.paillier.n

    @property
    def n_squared(self) -> int:
        return self.paillier.n_squared

    @property
    def delta(self) -> int:
        """Δ = n!, the Lagrange denominator-clearing factor."""
        return falling_factorial_delta(self.n_parties)

    @property
    def plaintext_modulus(self) -> int:
        return self.paillier.n

    @property
    def ciphertext_bytes(self) -> int:
        return self.paillier.ciphertext_bytes

    def encrypt(
        self, message: int, randomness: int | None = None, rng=None
    ) -> ThresholdCiphertext:
        """TEnc: ordinary Paillier encryption under the shared key."""
        return self.paillier.encrypt(message, randomness=randomness, rng=rng)

    def correction_factor(self, epoch: int) -> int:
        """θ_e = 4·Δ^(2+e) mod N — undoes Δ-growth from ``epoch`` resharings."""
        return 4 * pow(self.delta, 2 + epoch, self.n) % self.n

    def __repr__(self) -> str:
        return (
            f"ThresholdPublicKey(bits={self.n.bit_length()}, "
            f"n={self.n_parties}, t={self.threshold})"
        )


@dataclass(frozen=True)
class ThresholdKeyShare:
    """Party ``index``'s integer share of the decryption exponent."""

    index: int
    value: int
    epoch: int
    verification: int  # v_i = v^(Δ·value) mod N²

    def __post_init__(self):
        if self.index < 1:
            raise ParameterError(f"share index must be >= 1, got {self.index}")
        if self.epoch < 0:
            raise ParameterError(f"epoch must be >= 0, got {self.epoch}")

    @property
    def byte_length(self) -> int:
        return (abs(self.value).bit_length() + 7) // 8 + 1


@dataclass(frozen=True)
class PartialDecryption:
    """``c_i = c^(2Δ·d_i) mod N²`` from party ``index`` at ``epoch``."""

    index: int
    value: int
    epoch: int


@dataclass(frozen=True)
class ResharingMessage:
    """TKRes output of one party: integer subshares + verification values.

    ``subshares[j-1]`` is destined for the next committee's party ``j``; in
    the protocol it is transmitted encrypted under j's public key, while the
    ``verifications`` are broadcast so everyone can derive the next epoch's
    verification keys.
    """

    sender: int
    epoch: int
    subshares: tuple[int, ...]
    verifications: tuple[int, ...]


class ThresholdPaillier:
    """Namespace for the threshold operations (all stateless)."""

    # -- TKGen ----------------------------------------------------------------

    @staticmethod
    def keygen(
        n_parties: int,
        threshold: int,
        bits: int = 64,
        rng=None,
        use_fixtures: bool = True,
        fixture_index: int = 0,
    ) -> tuple[ThresholdPublicKey, list[ThresholdKeyShare]]:
        """TKGen: generate tpk and shares tsk_1..tsk_n of the decryption key.

        ``bits`` is the size of N; with ``use_fixtures`` the safe primes come
        from the deterministic fixtures (fast, test-friendly).
        """
        half = bits // 2
        if use_fixtures:
            try:
                p, q = fixture_safe_prime_pair(half, which=fixture_index)
            except ParameterError:
                p = random_safe_prime(half, rng=rng)
                q = random_safe_prime(half, rng=rng)
        else:
            p = random_safe_prime(half, rng=rng)
            q = random_safe_prime(half, rng=rng)
            while q == p:
                q = random_safe_prime(half, rng=rng)
        return ThresholdPaillier.keygen_from_primes(
            p, q, n_parties, threshold, rng=rng
        )

    @staticmethod
    def keygen_from_primes(
        p: int, q: int, n_parties: int, threshold: int, rng=None
    ) -> tuple[ThresholdPublicKey, list[ThresholdKeyShare]]:
        if p == q:
            raise ParameterError("safe primes must be distinct")
        n = p * q
        m = (p - 1) // 2 * ((q - 1) // 2)
        if n_parties >= min((p - 1) // 2, (q - 1) // 2):
            raise ParameterError("modulus too small for this many parties")
        # d ≡ 0 (mod m), d ≡ 1 (mod N); gcd(m, N) = 1 for safe primes.
        d = m * pow(m, -1, n)
        randrange = _randrange(rng)
        n2 = n * n
        # Verification base: a random square (generator of QR_{N²} w.h.p.).
        v = pow(randrange(2, n2), 2, n2)
        public = PaillierPublicKey(n)
        tpk = ThresholdPublicKey(public, n_parties, threshold, v)
        # Integer Shamir sharing of d with statistically hiding coefficients.
        bound = (n * n) << STATISTICAL_SECURITY
        coefficients = [d] + [randrange(0, bound) for _ in range(threshold)]
        delta = tpk.delta
        values = [
            _eval_int_poly(coefficients, i) for i in range(1, n_parties + 1)
        ]
        # Same base v for every verification value: one engine batch, and
        # the serial kernel shares a fixed-base chain at realistic sizes.
        verifications = _active_engine().pow_many(
            [(v, delta * value, n2) for value in values]
        )
        shares = [
            ThresholdKeyShare(
                index=i, value=value, epoch=0, verification=verification
            )
            for i, (value, verification) in enumerate(
                zip(values, verifications), start=1
            )
        ]
        return tpk, shares

    # -- TPDec ---------------------------------------------------------------

    @staticmethod
    def partial_decrypt(
        tpk: ThresholdPublicKey,
        share: ThresholdKeyShare,
        ciphertext: ThresholdCiphertext,
    ) -> PartialDecryption:
        """TPDec: party's contribution ``c^(2Δ·d_i) mod N²``."""
        if ciphertext.public != tpk.paillier:
            raise EncryptionError("ciphertext under a different threshold key")
        value = pow(ciphertext.value, 2 * tpk.delta * share.value, tpk.n_squared)
        _hooks.note(_hooks.PAILLIER_PARTIAL_DECRYPT)
        _hooks.note(_hooks.PAILLIER_EXP)
        return PartialDecryption(share.index, value, share.epoch)

    # -- TDec ------------------------------------------------------------------

    @staticmethod
    def combine(
        tpk: ThresholdPublicKey,
        partials: Iterable[PartialDecryption],
    ) -> int:
        """TDec: recover the plaintext from > t partial decryptions.

        All supplied partials are used (the Lagrange set is the full input
        set), so callers must pass a consistent verified set.
        """
        plist = sorted(partials, key=lambda p: p.index)
        if len({p.index for p in plist}) != len(plist):
            raise EncryptionError("duplicate partial decryptions")
        if len(plist) < tpk.threshold + 1:
            raise EncryptionError(
                f"need {tpk.threshold + 1} partials, got {len(plist)}"
            )
        epochs = {p.epoch for p in plist}
        if len(epochs) != 1:
            raise EncryptionError(f"partials from mixed epochs: {sorted(epochs)}")
        epoch = plist[0].epoch
        xs = [p.index for p in plist]
        scaled, _ = integer_lagrange_scaled(xs, at=0, delta=tpk.delta)
        n2 = tpk.n_squared
        powers = _active_engine().pow_many(
            [(p.value, 2 * lam, n2) for p, lam in zip(plist, scaled)]
        )
        combined = 1
        for value in powers:
            combined = combined * value % n2
        _hooks.note(_hooks.PAILLIER_COMBINE)
        _hooks.note(_hooks.PAILLIER_EXP, len(plist))
        ell = _L(combined, tpk.n)
        theta = tpk.correction_factor(epoch)
        return ell * pow(theta, -1, tpk.n) % tpk.n

    @staticmethod
    def decrypt(
        tpk: ThresholdPublicKey,
        shares: Sequence[ThresholdKeyShare],
        ciphertext: ThresholdCiphertext,
    ) -> int:
        """Convenience: partial-decrypt with each share, then combine."""
        partials = [
            ThresholdPaillier.partial_decrypt(tpk, s, ciphertext) for s in shares
        ]
        return ThresholdPaillier.combine(tpk, partials)

    # -- TKRes / TKRec -----------------------------------------------------------

    @staticmethod
    def reshare(
        tpk: ThresholdPublicKey, share: ThresholdKeyShare, rng=None
    ) -> ResharingMessage:
        """TKRes: deal an integer sub-sharing of this share to the next committee."""
        randrange = _randrange(rng)
        bound = (abs(share.value) + 1) << STATISTICAL_SECURITY
        coefficients = [share.value] + [
            randrange(0, bound) for _ in range(tpk.threshold)
        ]
        subshares = tuple(
            _eval_int_poly(coefficients, j) for j in range(1, tpk.n_parties + 1)
        )
        n2 = tpk.n_squared
        delta = tpk.delta
        verifications = tuple(
            _active_engine().pow_many(
                [(tpk.verification_base, delta * s, n2) for s in subshares]
            )
        )
        _hooks.note(_hooks.THRESHOLD_RESHARE)
        _hooks.note(_hooks.PAILLIER_EXP, len(verifications))
        return ResharingMessage(share.index, share.epoch, subshares, verifications)

    @staticmethod
    def recombine(
        tpk: ThresholdPublicKey,
        receiver: int,
        contributions: Mapping[int, int],
        contributor_set: Sequence[int] | None = None,
    ) -> ThresholdKeyShare:
        """TKRec: combine received subshares into the next epoch's key share.

        ``contributions[i]`` is the subshare sent by previous-committee
        member ``i`` to ``receiver``.  *Every* receiver must use the same
        ``contributor_set`` (defaults to all contributors, sorted) or the
        resulting shares lie on different polynomials.
        """
        cset = sorted(contributor_set if contributor_set is not None else contributions)
        if len(cset) < tpk.threshold + 1:
            raise EncryptionError(
                f"need {tpk.threshold + 1} resharing contributions, got {len(cset)}"
            )
        missing = [i for i in cset if i not in contributions]
        if missing:
            raise EncryptionError(f"missing contributions from {missing}")
        scaled, _ = integer_lagrange_scaled(cset, at=0, delta=tpk.delta)
        value = sum(lam * contributions[i] for i, lam in zip(cset, scaled))
        n2 = tpk.n_squared
        verification = pow(tpk.verification_base, tpk.delta * value, n2)
        _hooks.note(_hooks.THRESHOLD_RECOMBINE)
        _hooks.note(_hooks.PAILLIER_EXP)
        # Epoch advances; epoch of the inputs is the receiver's concern —
        # the protocol layer keeps committees in lockstep.
        return ThresholdKeyShare(receiver, value, _next_epoch(contributions), verification)

    @staticmethod
    def derive_verification(
        tpk: ThresholdPublicKey,
        receiver: int,
        messages: Sequence[ResharingMessage],
        contributor_set: Sequence[int],
    ) -> int:
        """Publicly derive the next-epoch verification key for ``receiver``.

        ``v'_j = Π v_{i,j}^(Δλ_i)`` over the agreed contributor set — anyone
        can compute this from the broadcast resharing messages.
        """
        cset = sorted(contributor_set)
        by_sender = {msg.sender: msg for msg in messages}
        scaled, _ = integer_lagrange_scaled(cset, at=0, delta=tpk.delta)
        n2 = tpk.n_squared
        acc = 1
        for i, lam in zip(cset, scaled):
            vij = by_sender[i].verifications[receiver - 1]
            acc = acc * pow(vij, lam, n2) % n2
        return acc

    # -- SimTPDec ------------------------------------------------------------

    @staticmethod
    def simulate_partials(
        tpk: ThresholdPublicKey,
        ciphertext: ThresholdCiphertext,
        target_message: int,
        honest_shares: Sequence[ThresholdKeyShare],
        corrupt_partials: Sequence[PartialDecryption],
    ) -> list[PartialDecryption]:
        """SimTPDec: honest partials forcing TDec (over the full set) to
        output ``target_message``.

        Standard CDN simulation: compute honest partials honestly, recover
        the actual plaintext, then shift a single honest partial by
        ``(1+N)^x`` with ``x = (2Δλ_i)^{-1}·θ_e·(target - actual) mod N``.
        The returned partials combine with ``corrupt_partials`` (the full
        index set) to the target.
        """
        if not honest_shares:
            raise EncryptionError("need at least one honest share to simulate")
        honest = [
            ThresholdPaillier.partial_decrypt(tpk, s, ciphertext)
            for s in honest_shares
        ]
        all_partials = list(corrupt_partials) + honest
        actual = ThresholdPaillier.combine(tpk, all_partials)
        shift = (target_message - actual) % tpk.n
        if shift == 0:
            return honest
        # Lagrange coefficient of the adjusted party over the full set.
        xs = sorted(p.index for p in all_partials)
        scaled, _ = integer_lagrange_scaled(xs, at=0, delta=tpk.delta)
        lam_by_index = dict(zip(xs, scaled))
        adjusted_index = honest[0].index
        lam = 2 * lam_by_index[adjusted_index]
        theta = tpk.correction_factor(honest[0].epoch)
        x = pow(lam, -1, tpk.n) * theta * shift % tpk.n
        n2 = tpk.n_squared
        adjusted_value = honest[0].value * ((1 + x * tpk.n) % n2) % n2
        honest[0] = PartialDecryption(adjusted_index, adjusted_value, honest[0].epoch)
        return honest


def teval(
    tpk: ThresholdPublicKey,
    ciphertexts: Sequence[ThresholdCiphertext],
    coefficients: Sequence[int],
) -> ThresholdCiphertext:
    """TEval: deterministic homomorphic linear combination ``Σ λ_i·m_i``."""
    if len(ciphertexts) != len(coefficients):
        raise ParameterError(
            f"{len(ciphertexts)} ciphertexts vs {len(coefficients)} coefficients"
        )
    if not ciphertexts:
        raise ParameterError("TEval of an empty combination")
    n2 = tpk.n_squared
    for c in ciphertexts:
        if c.public != tpk.paillier:
            raise EncryptionError("ciphertext under a different key in TEval")
    powers = _active_engine().pow_many(
        [
            (c.value, int(lam) % tpk.n, n2)
            for c, lam in zip(ciphertexts, coefficients)
        ]
    )
    acc = 1
    for value in powers:
        acc = acc * value % n2
    _hooks.note(_hooks.PAILLIER_EXP, len(ciphertexts))
    return ThresholdCiphertext(tpk.paillier, acc)


def _randrange(rng):
    """A ``randrange(a, b)`` callable from an optional RNG (CSPRNG default)."""
    if rng is None:
        return secrets.SystemRandom().randrange
    return rng.randrange


def _eval_int_poly(coefficients: Sequence[int], x: int) -> int:
    acc = 0
    for c in reversed(coefficients):
        acc = acc * x + c
    return acc


def _next_epoch(contributions: Mapping[int, int]) -> int:
    # Placeholder hook: epoch bookkeeping is driven by the caller via
    # ThresholdKeyShare.epoch on the *input* shares; recombine cannot see
    # them (it only receives raw integers), so the protocol layer passes
    # epochs out-of-band.  Default: epoch 1.
    return 1


def recombine_with_epoch(
    tpk: ThresholdPublicKey,
    receiver: int,
    contributions: Mapping[int, int],
    previous_epoch: int,
    contributor_set: Sequence[int] | None = None,
) -> ThresholdKeyShare:
    """TKRec with explicit epoch bookkeeping (preferred entry point)."""
    share = ThresholdPaillier.recombine(tpk, receiver, contributions, contributor_set)
    return ThresholdKeyShare(
        share.index, share.value, previous_epoch + 1, share.verification
    )
