"""Textbook Paillier public-key encryption (the ``PKE`` of the paper).

Uses the standard ``g = 1 + N`` simplification, under which encryption is
``Enc(m; r) = (1 + mN) · r^N mod N²`` and the scheme is additively
homomorphic over the plaintext ring Z_N:

* ``c1 ⊞ c2`` encrypts ``m1 + m2``           (:meth:`PaillierCiphertext.__add__`)
* ``c ⊠ s`` encrypts ``m · s`` for public s  (:meth:`PaillierCiphertext.__mul__`)

Role keys and Keys-For-Future in the protocol are Paillier keypairs; the
secret key is the factorization, serialized as ``(p, q)``.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.errors import EncryptionError, ParameterError
from repro.observability import hooks as _hooks
from repro.paillier.primes import fixture_safe_prime_pair, is_probable_prime, random_prime


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key: the modulus N (g = 1 + N implicitly)."""

    n: int

    def __post_init__(self):
        if self.n < 6:
            raise ParameterError(f"modulus too small: {self.n}")

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def plaintext_modulus(self) -> int:
        return self.n

    def random_unit(self, rng=None) -> int:
        """A random element of Z*_N (encryption randomness)."""
        randrange = rng.randrange if rng is not None else secrets.SystemRandom().randrange
        while True:
            r = randrange(1, self.n)
            if _gcd(r, self.n) == 1:
                return r

    def encrypt(
        self, message: int, randomness: int | None = None, rng=None
    ) -> "PaillierCiphertext":
        """Encrypt ``message mod N`` with fresh (or supplied) randomness."""
        m = int(message) % self.n
        r = randomness if randomness is not None else self.random_unit(rng)
        if _gcd(r, self.n) != 1:
            raise EncryptionError("encryption randomness not a unit mod N")
        n2 = self.n_squared
        value = (1 + m * self.n) % n2 * pow(r, self.n, n2) % n2
        _hooks.note(_hooks.PAILLIER_ENCRYPT)
        _hooks.note(_hooks.PAILLIER_EXP)
        return PaillierCiphertext(self, value)

    def encrypt_zero_with(self, randomness: int) -> "PaillierCiphertext":
        """Deterministic encryption of 0 (used by rerandomization & proofs)."""
        return self.encrypt(0, randomness=randomness)

    def encrypt_many(
        self, messages, randomizers, engine=None
    ) -> list["PaillierCiphertext"]:
        """Bulk encryption through the active crypto engine.

        Bit-identical to ``[self.encrypt(m, randomness=r) ...]``; the
        ``r^N`` exponentiations run as one (possibly parallel) batch.
        """
        # Imported lazily: repro.engine.batch imports this module.
        from repro.engine.batch import encrypt_many as _encrypt_many

        return _encrypt_many(self, messages, randomizers, engine=engine)

    @property
    def ciphertext_bytes(self) -> int:
        """Serialized size of one ciphertext (element of Z_{N²})."""
        return (self.n_squared.bit_length() + 7) // 8

    def __repr__(self) -> str:
        return f"PaillierPublicKey(bits={self.n.bit_length()})"


@dataclass(frozen=True)
class PaillierSecretKey:
    """Secret key: the factorization N = p·q."""

    public: PaillierPublicKey
    p: int
    q: int

    def __post_init__(self):
        if self.p * self.q != self.public.n:
            raise ParameterError("p*q does not match the public modulus")

    @property
    def lam(self) -> int:
        """Carmichael λ(N) = lcm(p-1, q-1)."""
        g = _gcd(self.p - 1, self.q - 1)
        return (self.p - 1) * (self.q - 1) // g

    def decrypt(self, ciphertext: "PaillierCiphertext") -> int:
        """Standard CRT-free decryption via λ."""
        if ciphertext.public != self.public:
            raise EncryptionError("ciphertext under a different key")
        n, n2 = self.public.n, self.public.n_squared
        lam = self.lam
        u = pow(ciphertext.value, lam, n2)
        ell = _L(u, n)
        _hooks.note(_hooks.PAILLIER_DECRYPT)
        _hooks.note(_hooks.PAILLIER_EXP)
        return ell * pow(lam, -1, n) % n

    def extract_randomness(self, ciphertext: "PaillierCiphertext") -> int:
        """Recover the encryption randomness r (possible with the sk)."""
        n, n2 = self.public.n, self.public.n_squared
        m = self.decrypt(ciphertext)
        # c·(1+N)^{-m} = r^N mod N²; take N-th root via d = N^{-1} mod λ.
        c0 = ciphertext.value * pow((1 + m * n) % n2, -1, n2) % n2
        d = pow(n, -1, self.lam)
        return pow(c0, d, n2) % n

    def serialize(self) -> tuple[int, int]:
        return (self.p, self.q)


@dataclass(frozen=True)
class PaillierKeyPair:
    public: PaillierPublicKey
    secret: PaillierSecretKey


class PaillierCiphertext:
    """An element of Z*_{N²}; supports the homomorphic operations."""

    __slots__ = ("public", "value")

    def __init__(self, public: PaillierPublicKey, value: int):
        self.public = public
        self.value = int(value) % public.n_squared
        if self.value == 0:
            raise EncryptionError("zero is not a valid ciphertext")

    def _require_same_key(self, other: "PaillierCiphertext") -> None:
        if other.public != self.public:
            raise EncryptionError("homomorphic op across different keys")

    def __add__(self, other):
        """Homomorphic plaintext addition (with a ciphertext or an int)."""
        if isinstance(other, int):
            n2 = self.public.n_squared
            shifted = self.value * (1 + (other % self.public.n) * self.public.n) % n2
            return PaillierCiphertext(self.public, shifted)
        if not isinstance(other, PaillierCiphertext):
            return NotImplemented
        self._require_same_key(other)
        return PaillierCiphertext(
            self.public, self.value * other.value % self.public.n_squared
        )

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, int):
            return self + (-other)
        if not isinstance(other, PaillierCiphertext):
            return NotImplemented
        return self + (other * -1)

    def __mul__(self, scalar: int):
        """Homomorphic multiplication by a public integer scalar."""
        if not isinstance(scalar, int):
            return NotImplemented
        n2 = self.public.n_squared
        s = scalar % self.public.n
        _hooks.note(_hooks.PAILLIER_EXP)
        return PaillierCiphertext(self.public, pow(self.value, s, n2))

    __rmul__ = __mul__

    def rerandomize(self, rng=None) -> "PaillierCiphertext":
        """Fresh-looking ciphertext of the same plaintext."""
        r = self.public.random_unit(rng)
        n2 = self.public.n_squared
        _hooks.note(_hooks.PAILLIER_EXP)
        return PaillierCiphertext(
            self.public, self.value * pow(r, self.public.n, n2) % n2
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PaillierCiphertext)
            and other.public == self.public
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.public.n, self.value))

    def __repr__(self) -> str:
        return f"PaillierCiphertext({self.value % 10**6}..., bits={self.public.n.bit_length()})"


def generate_keypair(
    bits: int = 64, rng=None, use_fixtures: bool = True, fixture_index: int = 0
) -> PaillierKeyPair:
    """Generate a Paillier keypair with an N of roughly ``bits`` bits.

    With ``use_fixtures`` (default) and a supported size, primes come from
    the deterministic safe-prime fixtures — fast and reproducible for tests.
    Otherwise fresh random primes (not necessarily safe) are generated.
    """
    half = bits // 2
    if use_fixtures:
        try:
            p, q = fixture_safe_prime_pair(half, which=fixture_index)
            return _keypair_from_primes(p, q)
        except ParameterError:
            pass
    p = random_prime(half, rng=rng)
    q = random_prime(half, rng=rng)
    while q == p:
        q = random_prime(half, rng=rng)
    return _keypair_from_primes(p, q)


def keypair_from_primes(p: int, q: int) -> PaillierKeyPair:
    """Build a keypair from caller-supplied primes (validated)."""
    if p == q:
        raise ParameterError("p and q must be distinct")
    if not (is_probable_prime(p) and is_probable_prime(q)):
        raise ParameterError("p and q must both be prime")
    return _keypair_from_primes(p, q)


def _keypair_from_primes(p: int, q: int) -> PaillierKeyPair:
    public = PaillierPublicKey(p * q)
    return PaillierKeyPair(public, PaillierSecretKey(public, p, q))


def _L(u: int, n: int) -> int:
    """The Paillier L function: (u - 1) / n, exact division."""
    if (u - 1) % n != 0:
        raise EncryptionError("L function input not ≡ 1 mod N: invalid ciphertext")
    return (u - 1) // n


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
