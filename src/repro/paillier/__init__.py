"""Paillier encryption: plain PKE, and the linearly homomorphic
key-rerandomizable *threshold* encryption (TE) scheme of the paper (§4.1).

The threshold scheme follows the Damgård–Jurik/CDN construction: the
decryption exponent ``d`` (``d ≡ 1 mod N``, ``d ≡ 0 mod m``) is Shamir-shared
over the integers with Δ = n!-scaled Lagrange recombination in the exponent,
and proactive resharing (``TKRes``/``TKRec``) multiplies the implicit secret
by Δ each epoch — a public, epoch-tracked correction factor undoes this at
decryption (DESIGN.md §5).
"""

from repro.paillier.paillier import (
    PaillierCiphertext,
    PaillierKeyPair,
    PaillierPublicKey,
    PaillierSecretKey,
    generate_keypair,
)
from repro.paillier.threshold import (
    PartialDecryption,
    ThresholdCiphertext,
    ThresholdKeyShare,
    ThresholdPaillier,
    ThresholdPublicKey,
    ResharingMessage,
)
from repro.paillier.primes import (
    is_probable_prime,
    random_prime,
    random_safe_prime,
    fixture_safe_prime_pair,
)
from repro.paillier.encoding import (
    chunk_integer,
    unchunk_integer,
    encrypt_integer_chunked,
    decrypt_integer_chunked,
)

__all__ = [
    "PaillierCiphertext",
    "PaillierKeyPair",
    "PaillierPublicKey",
    "PaillierSecretKey",
    "generate_keypair",
    "PartialDecryption",
    "ThresholdCiphertext",
    "ThresholdKeyShare",
    "ThresholdPaillier",
    "ThresholdPublicKey",
    "ResharingMessage",
    "is_probable_prime",
    "random_prime",
    "random_safe_prime",
    "fixture_safe_prime_pair",
    "chunk_integer",
    "unchunk_integer",
    "encrypt_integer_chunked",
    "decrypt_integer_chunked",
]
