"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems define
narrower subclasses here (rather than locally) so that cross-module error
handling does not create import cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A protocol or scheme parameter is out of its valid range."""


class NonInvertibleError(ReproError, ArithmeticError):
    """An element has no multiplicative inverse in the ambient ring.

    For the ring Z_N with N an RSA modulus this reveals a factor of N; the
    ``gcd`` attribute carries the offending common divisor for diagnostics.
    """

    def __init__(self, value: int, modulus: int, gcd: int) -> None:
        super().__init__(
            f"value {value} is not invertible modulo {modulus} (gcd={gcd})"
        )
        self.value = value
        self.modulus = modulus
        self.gcd = gcd


class RingMismatchError(ReproError, ValueError):
    """Two operands belong to different rings/fields."""


class InterpolationError(ReproError, ValueError):
    """Polynomial interpolation received inconsistent or repeated points."""


class SharingError(ReproError):
    """Secret-sharing invariant violated (bad degree, too few shares...)."""


class ReconstructionError(SharingError):
    """Not enough (or inconsistent) shares to reconstruct a secret."""


class EncryptionError(ReproError):
    """A Paillier/threshold-encryption operation failed."""


class ProofError(ReproError):
    """A zero-knowledge proof failed to verify."""


class CircuitError(ReproError, ValueError):
    """Arithmetic-circuit construction or evaluation error."""


class CircuitFormatError(CircuitError):
    """A serialized circuit document has an unknown or malformed format.

    Distinct from :class:`CircuitError` so deserializers can tell "this
    document is from a future/unknown format version" apart from "this
    circuit is structurally invalid".
    """


class YosoError(ReproError):
    """YOSO runtime invariant violated."""


class RoleAlreadySpokeError(YosoError):
    """A YOSO role attempted to speak (post to the bulletin) twice."""


class WireError(ReproError):
    """Wire-format (envelope codec / transport) failure."""


class WireEncodeError(WireError, TypeError):
    """A payload cannot be canonically encoded for the bulletin."""


class WireDecodeError(WireError, ValueError):
    """Bytes on the wire are not a valid canonical encoding."""


class ProtocolAbortError(ReproError):
    """A protocol could not complete (should never happen under GOD)."""


class SortitionError(ReproError, ValueError):
    """The requested sortition parameters are infeasible (the ⊥ rows)."""


class AnalysisError(ReproError):
    """The static-analysis suite cannot run (bad config, unreadable file).

    Distinct from a *finding* — findings are diagnostics the linter
    reports and exits non-zero for; an :class:`AnalysisError` means the
    lint run itself is invalid and nothing it printed should be trusted.
    """


class ServiceError(ReproError):
    """The client-aided MPC service hit a lifecycle invariant violation."""


class ServiceOverloaded(ServiceError):
    """The ingest queue is full; the submission was shed, not queued."""


class SubmissionRejected(ServiceError):
    """A client submission failed validation and was dropped.

    Subclasses pin down the *reason*; the adversarial-ingest tests demand
    each failure mode surfaces as a distinct type so operators can count
    them separately (and so a bad proof is never conflated with a replay).
    """


class MalformedSubmissionError(SubmissionRejected):
    """The submission body is structurally broken (wrong shape/types)."""


class InvalidProofError(SubmissionRejected):
    """A plaintext-knowledge Σ-proof in the submission failed to verify."""


class EpochMismatchError(SubmissionRejected):
    """The submission targets a different epoch than the open window."""


class ReplayedClientError(SubmissionRejected):
    """The client id already has an accepted submission this epoch."""


class OversizedCiphertextError(SubmissionRejected):
    """A ciphertext is not under the epoch's announced public key."""
