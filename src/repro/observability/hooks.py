"""Global counter hooks for the crypto layers.

The crypto packages (``repro.paillier``, ``repro.sharing``,
``repro.fields``) call :func:`note` at their operation sites.  With no
tracer installed — the default — a ``note`` is a single global load and an
``is None`` test, so untraced executions pay ~zero cost.

:class:`~repro.observability.tracer.Tracer` installation is process-global
(the simulation is single-threaded); :func:`activated` scopes it to a
``with`` block so concurrent/untraced callers are never polluted by a
traced run's leftovers.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.observability.tracer import Tracer

# Counter names, grouped by the layer that emits them. ----------------------

PAILLIER_ENCRYPT = "paillier.encrypt"
PAILLIER_DECRYPT = "paillier.decrypt"
PAILLIER_PARTIAL_DECRYPT = "paillier.partial_decrypt"
PAILLIER_COMBINE = "paillier.combine"
PAILLIER_EXP = "paillier.exp"  # modular exponentiations in Z_{N²}

THRESHOLD_RESHARE = "threshold.reshare"
THRESHOLD_RECOMBINE = "threshold.recombine"

REENCRYPT_CONTRIBUTION = "reencrypt.contribution"
REENCRYPT_RECOVERY = "reencrypt.recovery"  # values handed across the bridge

SHARING_DEALT = "sharing.sharings_dealt"
SHARING_RECONSTRUCTED = "sharing.reconstructions"
SHARING_ROBUST_RECONSTRUCTED = "sharing.robust_reconstructions"
SHARING_CANONICAL = "sharing.canonical_shares"

LAGRANGE_INTERPOLATION = "lagrange.interpolations"
LAGRANGE_INTEGER = "lagrange.integer_interpolations"

BULLETIN_POSTS = "bulletin.posts"

WIRE_POSTS = "wire.posts"                      # envelopes encoded for posting
WIRE_ENCODED_BYTES = "wire.encoded_bytes"      # total envelope bytes produced
WIRE_DECODES = "wire.decodes"                  # envelope bodies decoded on read
WIRE_DECODE_FAILURES = "wire.decode_failures"  # rejected (garbled) envelopes
WIRE_DROPS = "wire.drops"                      # posts lost by the transport
WIRE_ENCODE_FALLBACKS = "wire.encode_fallbacks"  # legacy structural-sizer posts

WIRE_SOCKET_FRAMES_OUT = "wire.socket.frames_out"  # frames sent to workers
WIRE_SOCKET_FRAMES_IN = "wire.socket.frames_in"    # frames received back
WIRE_SOCKET_BYTES_OUT = "wire.socket.bytes_out"    # bytes sent to workers
WIRE_SOCKET_BYTES_IN = "wire.socket.bytes_in"      # bytes received back
WIRE_SOCKET_TIMEOUTS = "wire.socket.timeouts"      # posts unresolved at deadline
WIRE_SOCKET_WORKERS = "wire.socket.workers"        # worker processes started

CIRCUIT_COMPILES = "circuit.compiles"              # programs lowered from circuits
CIRCUIT_COMPILED_GATES = "circuit.compiled_gates"  # gates across those compiles
CIRCUIT_COMPILE_CACHE_HITS = "circuit.compile_cache_hits"  # memoized programs served

ENGINE_BATCHES = "engine.batches"          # pow_many calls, any engine
ENGINE_JOBS = "engine.jobs"                # exponentiations routed through it
ENGINE_POOL_BATCHES = "engine.pool_batches"  # batches dispatched to the pool
ENGINE_POOL_JOBS = "engine.pool_jobs"      # jobs inside pooled batches
ENGINE_CHUNKS = "engine.chunks"            # pickled chunks shipped to workers
ENGINE_FALLBACKS = "engine.fallbacks"      # pool failures degraded to serial

_active: Tracer | None = None


def install(tracer: Tracer | None) -> None:
    """Make ``tracer`` the global counter sink (None disables)."""
    global _active
    _active = tracer


def active() -> Tracer | None:
    return _active


@contextmanager
def activated(tracer: Tracer | None):
    """Install ``tracer`` for the block, restoring the previous sink after."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous


def note(name: str, n: int = 1) -> None:
    """Record ``n`` occurrences of ``name`` if a tracer is installed."""
    if _active is not None:
        _active.count(name, n)
