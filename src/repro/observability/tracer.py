"""Nested-span tracer with monotonic counters.

The tracer records *what the protocol did* alongside *how long it took*:

* **Spans** nest phase → committee round → gate batch.  Each span owns a
  wall-clock interval (via an injectable clock, so tests can freeze time)
  and a dict of monotonic counters.
* **Counters** are incremented through :mod:`repro.observability.hooks` by
  the crypto layers (Paillier encrypt/decrypt/partial-decrypt,
  exponentiations, Lagrange interpolations, shares dealt/reconstructed,
  bulletin posts).  A counter lands in the innermost open span, so batch
  spans isolate per-gate work from one-time key distribution.
* Counter totals are **deterministic** for a seeded run: two executions
  with the same seed produce identical counters (only timings differ).

Untraced executions pay ~nothing: the hooks check one module global and
the protocol wraps rounds in a shared null context manager.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Span kinds used by the protocol wiring (free-form strings are allowed).
KIND_PHASE = "phase"
KIND_ROUND = "round"
KIND_BATCH = "batch"
KIND_SPAN = "span"

#: The phase bucket for counters emitted outside any span.
UNATTRIBUTED = "unattributed"


@dataclass
class Span:
    """One traced interval, with its own counters and child spans."""

    name: str
    kind: str
    span_id: int
    parent_id: int | None
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: float | None = None
    counters: dict[str, int] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Wall-clock length; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def phase(self) -> str:
        """The phase this span's own counters belong to."""
        return str(self.attrs.get("phase", UNATTRIBUTED))

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def total_counters(self) -> dict[str, int]:
        """Own counters plus every descendant's, merged."""
        totals = dict(self.counters)
        for child in self.children:
            for key, value in child.total_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Collects spans and counters for one (or more) protocol executions.

    Use as::

        tracer = Tracer()
        with tracer.span("offline", kind="phase", phase="offline"):
            tracer.count("paillier.encrypt")

    ``clock`` is any zero-argument callable returning seconds; tests pass a
    fake to make exported timings deterministic.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else time.perf_counter
        self.roots: list[Span] = []
        self.orphan_counters: dict[str, int] = {}
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, kind: str = KIND_SPAN, **attrs: Any):
        """Open a nested span for the duration of the ``with`` block."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            kind=kind,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
            start_s=self.clock(),
        )
        self._next_id += 1
        if parent is not None:
            parent.children.append(span)
            span.attrs.setdefault("phase", parent.phase)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_s = self.clock()
            self._stack.pop()

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` in the innermost open span."""
        if self._stack:
            self._stack[-1].count(name, n)
        else:
            self.orphan_counters[name] = self.orphan_counters.get(name, 0) + n

    # -- aggregates ---------------------------------------------------------

    def spans(self) -> Iterator[Span]:
        """Every recorded span, pre-order."""
        for root in self.roots:
            yield from root.walk()

    def n_spans(self) -> int:
        return sum(1 for _ in self.spans())

    def counter_totals(self) -> dict[str, int]:
        """All counters, merged across every span (plus orphans)."""
        totals = dict(self.orphan_counters)
        for root in self.roots:
            for key, value in root.total_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def counters_by_phase(self) -> dict[str, dict[str, int]]:
        """Counters grouped by each span's ``phase`` attribute.

        Batch spans opened with an explicit sub-phase (e.g. ``online.mul``)
        aggregate separately from their enclosing phase — this is what
        isolates per-gate online work from one-time key distribution.
        """
        out: dict[str, dict[str, int]] = {}
        if self.orphan_counters:
            out[UNATTRIBUTED] = dict(self.orphan_counters)
        for span in self.spans():
            if not span.counters:
                continue
            bucket = out.setdefault(span.phase, {})
            for key, value in span.counters.items():
                bucket[key] = bucket.get(key, 0) + value
        return out

    def wall_s_by_phase(self) -> dict[str, float]:
        """Wall-clock seconds per phase.

        Top-level phase spans contribute their full duration.  Sub-phase
        spans — a span whose ``phase`` attr differs from its parent's,
        like the ``online.mul`` batches inside the ``online`` phase —
        contribute theirs under the sub-phase name, so sub-phase time is
        a *subset* of the enclosing phase's time, not disjoint from it.
        """
        out: dict[str, float] = {}

        def visit(span: Span, parent_phase: str | None) -> None:
            is_root_phase = parent_phase is None and span.kind == KIND_PHASE
            if is_root_phase or (
                parent_phase is not None and span.phase != parent_phase
            ):
                out[span.phase] = out.get(span.phase, 0.0) + span.duration_s
            for child in span.children:
                visit(child, span.phase)

        for root in self.roots:
            visit(root, None)
        return out

    def reset(self) -> None:
        self.roots.clear()
        self.orphan_counters.clear()
        self._stack.clear()
        self._next_id = 1


_NULL_CONTEXT = nullcontext()


def maybe_span(tracer: Tracer | None, name: str, kind: str = KIND_SPAN, **attrs):
    """A span on ``tracer``, or a shared no-op context when untraced."""
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, kind=kind, **attrs)
