"""Trace export: JSONL traces and the merged comm+trace report.

The JSONL format is line-oriented so a trace can be streamed, grepped, and
diffed.  Three record kinds, discriminated by the ``record`` field:

``header``   one per trace: version, label, parameters, circuit shape
``span``     one per span, pre-order: id/parent, name, kind, phase attrs,
             ``start_s``/``duration_s``, and the span's *own* counters
``summary``  one per trace, last line: counter totals, counters and
             wall-clock grouped by phase, and (when a meter is supplied)
             the communication bytes per phase from
             :mod:`repro.accounting.comm`

The merged report (:func:`merged_report`) is the JSON document of
:func:`repro.accounting.export.run_report` with a ``trace`` section added,
so one artifact carries both the communication profile and the op/time
profile of a run.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import ParameterError
from repro.observability.tracer import Span, Tracer

if TYPE_CHECKING:  # the accounting package imports stay lazy: the crypto
    # layers import repro.observability at module load, and an eager
    # accounting import would cycle back through nizk/paillier.
    from repro.accounting.comm import CommMeter

TRACE_VERSION = 1

#: record -> {field: allowed types}; None marks optional fields.
_SCHEMA: dict[str, dict[str, tuple]] = {
    "header": {
        "version": (int,),
        "label": (str,),
        "parameters": (dict,),
        "circuit": (dict,),
    },
    "span": {
        "id": (int,),
        "parent": (int, type(None)),
        "name": (str,),
        "kind": (str,),
        "phase": (str,),
        "attrs": (dict,),
        "start_s": (int, float),
        "duration_s": (int, float),
        "counters": (dict,),
    },
    "summary": {
        "counters": (dict,),
        "counters_by_phase": (dict,),
        "wall_s_by_phase": (dict,),
        "comm_bytes_by_phase": (dict,),
    },
}


def span_record(span: Span) -> dict[str, Any]:
    """The JSONL record of one span (own counters, not rolled up)."""
    attrs = {k: v for k, v in span.attrs.items() if k != "phase"}
    return {
        "record": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "kind": span.kind,
        "phase": span.phase,
        "attrs": attrs,
        "start_s": round(span.start_s, 9),
        "duration_s": round(span.duration_s, 9),
        "counters": dict(span.counters),
    }


def trace_records(
    tracer: Tracer,
    label: str = "yoso-mpc",
    parameters: Mapping[str, Any] | None = None,
    circuit_stats: Mapping[str, Any] | None = None,
    meter: CommMeter | None = None,
) -> list[dict[str, Any]]:
    """Header + spans + summary, as JSON-ready dicts."""
    records: list[dict[str, Any]] = [
        {
            "record": "header",
            "version": TRACE_VERSION,
            "label": label,
            "parameters": dict(parameters or {}),
            "circuit": dict(circuit_stats or {}),
        }
    ]
    records.extend(span_record(s) for s in tracer.spans())
    records.append(
        {
            "record": "summary",
            "counters": tracer.counter_totals(),
            "counters_by_phase": tracer.counters_by_phase(),
            "wall_s_by_phase": {
                phase: round(s, 9)
                for phase, s in tracer.wall_s_by_phase().items()
            },
            "comm_bytes_by_phase": dict(meter.by_phase()) if meter else {},
        }
    )
    return records


def dumps_trace_jsonl(
    tracer: Tracer,
    label: str = "yoso-mpc",
    parameters: Mapping[str, Any] | None = None,
    circuit_stats: Mapping[str, Any] | None = None,
    meter: CommMeter | None = None,
) -> str:
    """The whole trace as JSONL text (one record per line)."""
    records = trace_records(tracer, label, parameters, circuit_stats, meter)
    return "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"


def loads_trace_jsonl(text: str) -> dict[str, Any]:
    """Parse and validate a JSONL trace.

    Returns ``{"header": ..., "spans": [...], "summary": ...}``.  Raises
    :class:`~repro.errors.ParameterError` on malformed input — this is the
    schema validation ``make trace-demo`` runs against a fresh export.
    """
    header: dict[str, Any] | None = None
    summary: dict[str, Any] | None = None
    spans: list[dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ParameterError(f"trace line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ParameterError(f"trace line {lineno}: record is not an object")
        kind = record.get("record")
        if kind not in _SCHEMA:
            raise ParameterError(f"trace line {lineno}: unknown record {kind!r}")
        _check_fields(record, kind, lineno)
        if kind == "header":
            if header is not None:
                raise ParameterError(f"trace line {lineno}: duplicate header")
            if record["version"] != TRACE_VERSION:
                raise ParameterError(
                    f"unsupported trace version {record['version']!r}"
                )
            header = record
        elif kind == "summary":
            if summary is not None:
                raise ParameterError(f"trace line {lineno}: duplicate summary")
            summary = record
        else:
            spans.append(record)
    if header is None:
        raise ParameterError("trace has no header record")
    if summary is None:
        raise ParameterError("trace has no summary record")
    ids = {s["id"] for s in spans}
    for s in spans:
        if s["parent"] is not None and s["parent"] not in ids:
            raise ParameterError(
                f"span {s['id']} references unknown parent {s['parent']}"
            )
    return {"header": header, "spans": spans, "summary": summary}


def validate_trace_jsonl(text: str) -> dict[str, Any]:
    """Alias of :func:`loads_trace_jsonl` named for its checking role."""
    return loads_trace_jsonl(text)


def _check_fields(record: dict[str, Any], kind: str, lineno: int) -> None:
    for fieldname, types in _SCHEMA[kind].items():
        if fieldname not in record:
            raise ParameterError(
                f"trace line {lineno}: {kind} record missing {fieldname!r}"
            )
        if not isinstance(record[fieldname], types):
            raise ParameterError(
                f"trace line {lineno}: {kind}.{fieldname} has type "
                f"{type(record[fieldname]).__name__}"
            )


# -- the merged comm+trace report -------------------------------------------


def trace_section(tracer: Tracer) -> dict[str, Any]:
    """The ``trace`` section of a merged report."""
    return {
        "version": TRACE_VERSION,
        "spans": tracer.n_spans(),
        "counters": tracer.counter_totals(),
        "counters_by_phase": tracer.counters_by_phase(),
        "wall_s_by_phase": {
            phase: round(s, 9) for phase, s in tracer.wall_s_by_phase().items()
        },
    }


def merged_report(result) -> dict[str, Any]:
    """Comm report of an :class:`~repro.core.protocol.MpcResult` plus its
    trace section (requires the run to have been traced)."""
    from repro.accounting.export import report_from_mpc_result

    if result.trace is None:
        raise ParameterError(
            "result has no trace — run with a Tracer (run_mpc(..., tracer=...))"
        )
    report = report_from_mpc_result(result)
    report["trace"] = trace_section(result.trace)
    return report
