"""Structured tracing & metrics for the YOSO pipeline.

The communication meter (:mod:`repro.accounting`) answers *how many bytes*;
this package answers *which operations, where, and how long*:

* :class:`Tracer` — nested spans (phase → committee round → gate batch)
  with wall-clock intervals and monotonic op counters;
* :mod:`repro.observability.hooks` — the global counter sink the crypto
  layers emit into (no-op unless a tracer is installed);
* JSONL export with schema validation, and a merged comm+trace report
  aligned with :mod:`repro.accounting.export`.

Entry points::

    from repro.observability import Tracer
    result = run_mpc(circuit, inputs, n=6, seed=1, tracer=Tracer())
    result.trace.counters_by_phase()    # deterministic op counts
    result.trace_report()               # merged comm+trace JSON document

See docs/OBSERVABILITY.md for the span/counter model and how to read a
trace against the paper's O(1)-online / O(n)-offline claims.
"""

from repro.observability.export import (
    TRACE_VERSION,
    dumps_trace_jsonl,
    loads_trace_jsonl,
    merged_report,
    trace_records,
    trace_section,
    validate_trace_jsonl,
)
from repro.observability.hooks import activated, active, install, note
from repro.observability.tracer import (
    KIND_BATCH,
    KIND_PHASE,
    KIND_ROUND,
    KIND_SPAN,
    Span,
    Tracer,
    maybe_span,
)

__all__ = [
    "Tracer",
    "Span",
    "maybe_span",
    "KIND_PHASE",
    "KIND_ROUND",
    "KIND_BATCH",
    "KIND_SPAN",
    "activated",
    "active",
    "install",
    "note",
    "TRACE_VERSION",
    "trace_records",
    "trace_section",
    "dumps_trace_jsonl",
    "loads_trace_jsonl",
    "validate_trace_jsonl",
    "merged_report",
]
