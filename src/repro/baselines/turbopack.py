"""Plain (non-YOSO) Turbopack reference evaluator [25].

The construction the paper starts from (§3.1): a trusted dealer performs
the circuit-dependent preprocessing (wire masks λ, packed sharings of the
batch masks and of Γ = λ^α * λ^β − λ^γ), and in the online phase the
parties compute μ = v − λ publicly, batch by batch, with each party sending
its μ-share *to a single party P1* who reconstructs and broadcasts — the
trick that gives Turbopack constant online communication but only
security-with-abort (a single corruption of P1 kills liveness, which is
why the paper's YOSO version broadcasts instead; §3.3).

Used as (a) the ground-truth reference for the packing algebra, entirely
free of encryption, and (b) the non-YOSO communication baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.accounting.comm import CommMeter
from repro.circuits.circuit import Circuit, GateType
from repro.circuits.program import CircuitProgram, compile_circuit
from repro.errors import ParameterError, ProtocolAbortError
from repro.fields.ring import Zmod, ZmodElement
from repro.rng import fresh_rng
from repro.sharing.packed import PackedShare, packed_scheme


@dataclass
class TurbopackResult:
    outputs: dict[str, list[int]]
    n: int
    t: int
    k: int
    meter: CommMeter

    def online_bytes(self) -> int:
        return self.meter.total_bytes("online")


@dataclass
class _Preprocessing:
    """What the trusted dealer hands out."""

    lambdas: dict[int, ZmodElement] = field(default_factory=dict)
    #: (batch, kind) -> packed sharing (one share per party)
    packed: dict[tuple[int, str], list[PackedShare]] = field(default_factory=dict)


class TurbopackSimulator:
    """Honest-but-curious Turbopack with a trusted dealer, for reference."""

    def __init__(
        self,
        n: int,
        t: int,
        k: int,
        modulus: int = (1 << 61) - 1,
        rng: random.Random | None = None,
    ):
        if t + 2 * (k - 1) >= n:
            raise ParameterError(
                f"need n > t + 2(k-1) for degree-{t + 2 * (k - 1)} products"
            )
        self.n = n
        self.t = t
        self.k = k
        self.ring = Zmod(modulus)
        self.rng = rng if rng is not None else fresh_rng()
        self.scheme = packed_scheme(self.ring, n, k)

    # -- dealer -------------------------------------------------------------

    def _deal(self, program: CircuitProgram) -> _Preprocessing:
        prep = _Preprocessing()
        ring, rng = self.ring, self.rng
        # Draw the fresh masks in wire order (the dealer's historical rng
        # stream: linear gates never draw), then propagate layer by layer.
        for w, gate in enumerate(program.circuit.gates):
            if gate.kind in (GateType.INPUT, GateType.MUL):
                prep.lambdas[w] = ring.random(rng)
        lambdas = prep.lambdas
        const_cache = [ring.element(c) for c in program.constants]
        for layer in program.layers:
            for run in layer.runs:
                kind = run.kind
                if kind is GateType.ADD:
                    for w, a, b in zip(run.wires, run.src0, run.src1):
                        lambdas[w] = lambdas[a] + lambdas[b]
                elif kind is GateType.SUB:
                    for w, a, b in zip(run.wires, run.src0, run.src1):
                        lambdas[w] = lambdas[a] - lambdas[b]
                elif kind is GateType.CMUL:
                    for w, a, ci in zip(run.wires, run.src0, run.const_index):
                        lambdas[w] = lambdas[a] * const_cache[ci]
                elif kind is GateType.CADD or kind is GateType.OUTPUT:
                    for w, a in zip(run.wires, run.src0):
                        lambdas[w] = lambdas[a]
        degree = self.t + self.k - 1
        # All (batch, kind) vectors share one batched dealing; the rng
        # stream matches the historical left/right/gamma per-batch order.
        keys: list[tuple[int, str]] = []
        vectors: list[list[ZmodElement]] = []
        for batch in program.plan.mul_batches:
            pad = self.k - len(batch.gate_wires)
            left = [prep.lambdas[w] for w in batch.left_wires] + [ring.zero] * pad
            right = [prep.lambdas[w] for w in batch.right_wires] + [ring.zero] * pad
            gamma = [
                prep.lambdas[a] * prep.lambdas[b] - prep.lambdas[g]
                for a, b, g in zip(
                    batch.left_wires, batch.right_wires, batch.gate_wires
                )
            ] + [ring.zero] * pad
            for kind, vector in (("left", left), ("right", right), ("gamma", gamma)):
                keys.append((batch.batch_id, kind))
                vectors.append(vector)
        prep.packed.update(
            zip(keys, self.scheme.share_many(vectors, degree=degree, rng=rng))
        )
        return prep

    # -- online -------------------------------------------------------------

    def run(
        self, circuit: Circuit, inputs: Mapping[str, Sequence[int]]
    ) -> TurbopackResult:
        program = compile_circuit(circuit, self.k)
        prep = self._deal(program)
        meter = CommMeter()
        ring = self.ring
        mu: dict[int, ZmodElement] = {}
        const_cache = [ring.element(c) for c in program.constants]

        # Input: each client learns λ (from the dealer) and broadcasts μ.
        values = program.evaluate(ring, inputs).wire_values
        for w in circuit.input_wires:
            mu[w] = values[w] - prep.lambdas[w]
            meter.record("online", f"client:{circuit.gates[w].client}", "input-mu", mu[w])

        def propagate() -> None:
            for layer in program.layers:
                for run in layer.runs:
                    kind = run.kind
                    if kind is GateType.ADD:
                        for w, a, b in zip(run.wires, run.src0, run.src1):
                            if w not in mu and a in mu and b in mu:
                                mu[w] = mu[a] + mu[b]
                    elif kind is GateType.SUB:
                        for w, a, b in zip(run.wires, run.src0, run.src1):
                            if w not in mu and a in mu and b in mu:
                                mu[w] = mu[a] - mu[b]
                    elif kind is GateType.CADD:
                        for w, a, ci in zip(run.wires, run.src0, run.const_index):
                            if w not in mu and a in mu:
                                mu[w] = mu[a] + const_cache[ci]
                    elif kind is GateType.CMUL:
                        for w, a, ci in zip(run.wires, run.src0, run.const_index):
                            if w not in mu and a in mu:
                                mu[w] = mu[a] * const_cache[ci]
                    elif kind is GateType.OUTPUT:
                        for w, a in zip(run.wires, run.src0):
                            if w not in mu and a in mu:
                                mu[w] = mu[a]

        propagate()

        product_degree = self.t + 2 * (self.k - 1)
        for depth in program.mul_depths:
            batches = program.depth_batches[depth]
            bases: list[list[PackedShare]] = []
            for batch in batches:
                pad = self.k - len(batch.gate_wires)
                mu_left = [mu[w] for w in batch.left_wires] + [ring.zero] * pad
                mu_right = [mu[w] for w in batch.right_wires] + [ring.zero] * pad
                # One cached-matrix product gives every party's canonical
                # μ shares at once (this used to interpolate 2n times).
                ml_sharing, mr_sharing = self.scheme.canonical_many(
                    [mu_left, mu_right]
                )
                shares = []
                for i in range(1, self.n + 1):
                    ml = ml_sharing[i - 1]
                    mr = mr_sharing[i - 1]
                    ll = prep.packed[(batch.batch_id, "left")][i - 1]
                    rr = prep.packed[(batch.batch_id, "right")][i - 1]
                    gg = prep.packed[(batch.batch_id, "gamma")][i - 1]
                    value = (
                        ml.value * mr.value
                        + ml.value * rr.value
                        + mr.value * ll.value
                        + gg.value
                    )
                    # Each party sends exactly one share to P1 (the
                    # Turbopack single-receiver trick).
                    meter.record("online", f"party{i}", "mu-share-to-p1", value)
                    shares.append(
                        PackedShare(i, value, product_degree, self.k)
                    )
                bases.append(shares[: product_degree + 1])
            for batch, reconstructed in zip(
                batches,
                self.scheme.reconstruct_many(bases, degree=product_degree),
            ):
                # P1 broadcasts the k reconstructed μ values.
                meter.record("online", "party1", "mu-broadcast", reconstructed)
                for slot, w in enumerate(batch.gate_wires):
                    mu[w] = reconstructed[slot]
            propagate()

        outputs: dict[str, list[int]] = {}
        for w in circuit.output_wires:
            client = circuit.gates[w].client
            if w not in mu:
                raise ProtocolAbortError(f"μ for output wire {w} never resolved")
            value = mu[w] + prep.lambdas[w]
            meter.record("online", "dealer", "output-lambda", prep.lambdas[w])
            outputs.setdefault(client, []).append(int(value))
        return TurbopackResult(
            outputs=outputs, n=self.n, t=self.t, k=self.k, meter=meter
        )
