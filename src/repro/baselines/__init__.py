"""Baselines the paper compares against.

* :mod:`repro.baselines.cdn` — a CDN-style YOSO MPC in the spirit of
  Gentry et al. [29]/Braun et al. [10]: the circuit is evaluated gate by
  gate over threshold-encrypted values, each multiplication consuming a
  Beaver triple via **two threshold decryptions** — Θ(n) online
  communication per gate, the cost our protocol's packing removes.
* :mod:`repro.baselines.turbopack` — the plain (non-YOSO, abort-secure)
  Turbopack evaluation over cleartext packed Shamir with a trusted dealer,
  used as an algebra reference and a non-YOSO communication baseline.
"""

from repro.baselines.cdn import CdnResult, CdnYosoMpc
from repro.baselines.turbopack import TurbopackResult, TurbopackSimulator

__all__ = ["CdnResult", "CdnYosoMpc", "TurbopackResult", "TurbopackSimulator"]
