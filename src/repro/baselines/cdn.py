"""CDN-style YOSO MPC baseline (Gentry et al. [29] / Braun et al. [10]).

The circuit is evaluated **gate by gate over ciphertexts** under the global
threshold key: clients broadcast encryptions of their inputs; linear gates
are free (homomorphic); every multiplication consumes an encrypted Beaver
triple by *threshold-decrypting* the two masked openings ε = x + a and
δ = y + b — so every gate costs ~2n partial decryptions **online**, the
Θ(n)-per-gate bottleneck the paper's packing construction removes (§1, §3).

The triple generation (offline) and the tsk hand-off chain reuse the same
substrates as the main protocol, so the comparison in
``benchmarks/bench_vs_cdn.py`` is apples-to-apples: same threshold
encryption, same proofs, same bulletin metering.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.accounting.comm import CommMeter
from repro.circuits.circuit import Circuit, GateType
from repro.circuits.program import compile_circuit
from repro.engine.batch import scalar_mul_many, teval_many
from repro.core.reencrypt import (
    EncryptedPartial,
    PublicPartial,
    combine_public,
    public_decrypt_contribution,
    recover_reencrypted,
    reencrypt_contribution,
)
from repro.core.resharing import (
    EncryptedResharing,
    build_resharing,
    next_verifications,
    receive_share,
    verified_contributors,
)
from repro.errors import ProtocolAbortError
from repro.fields.ring import Zmod
from repro.nizk.params import ProofParams
from repro.nizk.sigma import MultiplicationProof, PlaintextKnowledgeProof
from repro.paillier.paillier import PaillierCiphertext
from repro.paillier.threshold import ThresholdPaillier, teval
from repro.rng import fresh_rng
from repro.wire.codec import KeyAnnouncement
from repro.wire.registry import register_kind
from repro.yoso.assignment import IdealRoleAssignment
from repro.yoso.network import ProtocolEnvironment

#: Envelope kinds of the CDN baseline's posts ("Cdn-" committee messages
#: and the lowercase "cdn-" setup/input tags).
register_kind(
    "baseline.cdn", 22, tag_prefix="Cdn-",
    description="CDN committee messages (triples, eval partials, output)",
)
register_kind(
    "baseline.cdn_aux", 23, tag_prefix="cdn-",
    description="CDN setup parameters and client input broadcasts",
)


@dataclass
class CdnResult:
    """Outputs and metering of one CDN baseline run."""

    outputs: dict[str, list[int]]
    n: int
    t: int
    circuit: Circuit
    meter: CommMeter
    modulus: int = 0  # the plaintext ring Z_N the outputs live in
    te_bits: int = 0
    role_key_bits: int = 0
    #: The run's bulletin board, for the symbolic cost cross-check.
    bulletin: Any = None

    def online_mul_bytes(self) -> int:
        """Online bytes attributable to multiplication evaluation."""
        return sum(
            v for tag, v in self.meter.by_tag("online").items()
            if tag.startswith("Cdn-eval")
        )


class CdnYosoMpc:
    """One configured CDN baseline instance (honest execution)."""

    def __init__(
        self,
        n: int,
        t: int,
        te_bits: int = 64,
        role_key_bits: int = 64,
        rng: random.Random | None = None,
    ):
        if t >= n / 2:
            raise ProtocolAbortError("CDN baseline needs honest majority")
        self.n = n
        self.t = t
        self.te_bits = te_bits
        self.role_key_bits = role_key_bits
        self.rng = rng if rng is not None else fresh_rng()

    def run(
        self, circuit: Circuit, inputs: Mapping[str, Sequence[int]]
    ) -> CdnResult:
        rng = self.rng
        assignment = IdealRoleAssignment(key_bits=self.role_key_bits, rng=rng)
        env = ProtocolEnvironment(assignment=assignment, rng=rng)
        proof_params = ProofParams.for_modulus_bits(
            min(self.te_bits, self.role_key_bits)
        )

        env.set_phase("setup")
        tpk, tsk_shares = ThresholdPaillier.keygen(
            self.n, self.t, bits=self.te_bits, rng=rng
        )
        ring = Zmod(tpk.n, assume_prime=False)
        verifications = {0: {s.index: s.verification for s in tsk_shares}}
        # Announce tpk in-band so cross-process decoders can resolve every
        # later Cdn-* ciphertext compressed against it.
        env.bulletin.post(
            "setup", "F-setup", "cdn-setup", {"tpk": KeyAnnouncement(tpk.n)}
        )
        env.bulletin.advance_round()

        # The baseline is unpacked (k = 1), but the same compiled program
        # drives its gate-by-gate evaluation: depth schedule, per-client
        # segments, and the layer/run arrays the linear propagation walks.
        program = compile_circuit(circuit, 1)
        mul_wires = list(program.mul_wires)
        mul_depths = list(program.mul_depths)
        by_depth = {d: list(program.muls_by_depth[d]) for d in mul_depths}

        # Committee chain: triple-A (holds tsk) -> eval committees -> out.
        chain = ["Cdn-triple-A"] + [f"Cdn-eval-{d}" for d in mul_depths] + ["Cdn-out"]
        committees = {
            name: env.sample_committee(name, self.n) for name in chain
        }
        committees["Cdn-triple-B"] = env.sample_committee(
            "Cdn-triple-B", self.n
        )
        for share in tsk_shares:
            committees[chain[0]].role(share.index).add_gift("tsk_share", share)

        # ---- Offline: Beaver triples (same two-committee protocol) ----------

        env.set_phase("offline")
        next_pks = committees[chain[1]].public_keys()

        def program_a(view):
            contributions = {}
            for wire in mul_wires:
                value = ring.random(view.rng)
                randomness = tpk.paillier.random_unit(view.rng)
                ct = tpk.encrypt(int(value), randomness=randomness)
                proof = PlaintextKnowledgeProof.prove(
                    tpk.paillier, ct, int(value), randomness, proof_params,
                    view.rng, context=f"cdn-a|{wire}|{view.index}",
                )
                contributions[wire] = {"ct": ct, "proof": proof}
            resharing = build_resharing(
                tpk, view.gift("tsk_share"), next_pks, proof_params, view.rng
            )
            view.speak("Cdn-triple-A", {"beaver_a": contributions, "tsk": resharing})

        env.run_committee(committees[chain[0]], program_a)
        posts_a = env.bulletin.by_sender("Cdn-triple-A")

        beaver_a: dict[int, PaillierCiphertext] = {}
        for wire in mul_wires:
            verified = []
            for role in committees[chain[0]]:
                payload = posts_a.get(str(role.id))
                entry = (payload or {}).get("beaver_a", {}).get(wire)
                if not isinstance(entry, dict):
                    continue
                ct, proof = entry.get("ct"), entry.get("proof")
                if isinstance(ct, PaillierCiphertext) and isinstance(
                    proof, PlaintextKnowledgeProof
                ) and proof.verify(
                    tpk.paillier, ct, proof_params,
                    context=f"cdn-a|{wire}|{role.id.index}",
                ):
                    verified.append(ct)
            if not verified:
                raise ProtocolAbortError(f"CDN: no verified a-contribution for {wire}")
            beaver_a[wire] = teval(tpk, verified, [1] * len(verified))

        resharings = {
            role.id.index: posts_a[str(role.id)]["tsk"]
            for role in committees[chain[0]]
            if isinstance(posts_a.get(str(role.id), {}).get("tsk"), EncryptedResharing)
        }

        def program_b(view):
            contributions = {}
            for wire in mul_wires:
                b = ring.random(view.rng)
                randomness = tpk.paillier.random_unit(view.rng)
                b_ct = tpk.encrypt(int(b), randomness=randomness)
                c_ct = beaver_a[wire] * int(b)
                proof = MultiplicationProof.prove(
                    tpk.paillier, beaver_a[wire], b_ct, c_ct, int(b), randomness,
                    proof_params, view.rng, context=f"cdn-b|{wire}|{view.index}",
                )
                contributions[wire] = {"b_ct": b_ct, "c_ct": c_ct, "proof": proof}
            view.speak("Cdn-triple-B", {"beaver_b": contributions})

        env.run_committee(committees["Cdn-triple-B"], program_b)
        posts_b = env.bulletin.by_sender("Cdn-triple-B")

        beaver_b: dict[int, PaillierCiphertext] = {}
        beaver_c: dict[int, PaillierCiphertext] = {}
        for wire in mul_wires:
            verified_b, verified_c = [], []
            for role in committees["Cdn-triple-B"]:
                entry = (posts_b.get(str(role.id)) or {}).get("beaver_b", {}).get(wire)
                if not isinstance(entry, dict):
                    continue
                b_ct, c_ct, proof = entry.get("b_ct"), entry.get("c_ct"), entry.get("proof")
                if (
                    isinstance(b_ct, PaillierCiphertext)
                    and isinstance(c_ct, PaillierCiphertext)
                    and isinstance(proof, MultiplicationProof)
                    and proof.verify(
                        tpk.paillier, beaver_a[wire], b_ct, c_ct, proof_params,
                        context=f"cdn-b|{wire}|{role.id.index}",
                    )
                ):
                    verified_b.append(b_ct)
                    verified_c.append(c_ct)
            if not verified_b:
                raise ProtocolAbortError(f"CDN: no verified b-contribution for {wire}")
            beaver_b[wire] = teval(tpk, verified_b, [1] * len(verified_b))
            beaver_c[wire] = teval(tpk, verified_c, [1] * len(verified_c))

        # ---- Online: inputs, per-depth decryption committees, output --------

        env.set_phase("online")
        wire_cipher: dict[int, PaillierCiphertext] = {}

        # Clients broadcast encrypted inputs with plaintext-knowledge proofs.
        client_roles = {
            segment.client: env.client(f"cdn-client:{segment.client}")
            for segment in program.input_segments
        }
        out_client_roles = {
            segment.client: env.client(f"cdn-client-out:{segment.client}")
            for segment in program.output_segments
        }
        for segment in program.input_segments:
            client = segment.client
            wires = list(segment.wires)
            supplied = list(inputs.get(client, []))
            if len(supplied) != len(wires):
                raise ProtocolAbortError(
                    f"client {client!r}: supplied {len(supplied)} inputs, "
                    f"need {len(wires)}"
                )

            def program_client(view, wires=wires, supplied=supplied, client=client):
                encs = {}
                for wire, value in zip(wires, supplied):
                    randomness = tpk.paillier.random_unit(view.rng)
                    ct = tpk.encrypt(int(value) % tpk.n, randomness=randomness)
                    proof = PlaintextKnowledgeProof.prove(
                        tpk.paillier, ct, int(value) % tpk.n, randomness,
                        proof_params, view.rng,
                        context=f"cdn-input|{wire}|{client}",
                    )
                    encs[wire] = {"ct": ct, "proof": proof}
                view.speak(f"cdn-input:{client}", {"inputs": encs})

            env.run_role(client_roles[client], program_client)
            posts = env.bulletin.payloads(f"cdn-input:{client}")
            payload = posts[-1] if posts else {}
            for wire in wires:
                entry = payload.get("inputs", {}).get(wire)
                ok = (
                    isinstance(entry, dict)
                    and isinstance(entry.get("ct"), PaillierCiphertext)
                    and isinstance(entry.get("proof"), PlaintextKnowledgeProof)
                    and entry["proof"].verify(
                        tpk.paillier, entry["ct"], proof_params,
                        context=f"cdn-input|{wire}|{client}",
                    )
                )
                # Default input 0 when the proof fails (the F_MPC default rule).
                wire_cipher[wire] = (
                    entry["ct"] if ok else tpk.encrypt(0, randomness=1)
                )

        constants = program.constants

        def propagate_linear() -> None:
            # Layer-by-layer over the compiled program, one engine batch per
            # (layer, kind) run.  Gates whose sources are not yet ciphertexts
            # (operands behind an unopened multiplication) are skipped and
            # picked up by the propagation after that depth's committee.
            for layer in program.layers:
                for run in layer.runs:
                    kind = run.kind
                    if kind is GateType.ADD or kind is GateType.SUB:
                        coeffs = [1, 1] if kind is GateType.ADD else [1, -1]
                        ready = [
                            (w, a, b)
                            for w, a, b in zip(run.wires, run.src0, run.src1)
                            if w not in wire_cipher
                            and a in wire_cipher and b in wire_cipher
                        ]
                        results = teval_many(tpk, [
                            ([wire_cipher[a], wire_cipher[b]], coeffs)
                            for _, a, b in ready
                        ])
                        for (w, _, _), ct in zip(ready, results):
                            wire_cipher[w] = ct
                    elif kind is GateType.CMUL:
                        ready = [
                            (w, a, ci)
                            for w, a, ci in zip(
                                run.wires, run.src0, run.const_index
                            )
                            if w not in wire_cipher and a in wire_cipher
                        ]
                        results = scalar_mul_many(
                            [wire_cipher[a] for _, a, _ in ready],
                            [constants[ci] for _, _, ci in ready],
                        )
                        for (w, _, _), ct in zip(ready, results):
                            wire_cipher[w] = ct
                    elif kind is GateType.CADD:
                        # ct + const is one modular multiply — no engine win.
                        for w, a, ci in zip(run.wires, run.src0, run.const_index):
                            if w not in wire_cipher and a in wire_cipher:
                                wire_cipher[w] = wire_cipher[a] + constants[ci]
                    elif kind is GateType.OUTPUT:
                        for w, a in zip(run.wires, run.src0):
                            if w not in wire_cipher and a in wire_cipher:
                                wire_cipher[w] = wire_cipher[a]

        propagate_linear()

        epoch = 0
        for hop, depth in enumerate(mul_depths):
            name = f"Cdn-eval-{depth}"
            committee = committees[name]
            contributor_set = verified_contributors(
                tpk, resharings, verifications[epoch],
                committee.public_keys(), proof_params,
            )
            verifications[epoch + 1] = next_verifications(
                tpk, resharings, contributor_set
            )
            gates_here = by_depth[depth]
            # One engine batch per masked-opening kind instead of a teval
            # per gate (teval_many is value-identical to the teval loop).
            eps_cipher = dict(zip(gates_here, teval_many(tpk, [
                ([wire_cipher[circuit.gates[w].inputs[0]], beaver_a[w]], [1, 1])
                for w in gates_here
            ])))
            delta_cipher = dict(zip(gates_here, teval_many(tpk, [
                ([wire_cipher[circuit.gates[w].inputs[1]], beaver_b[w]], [1, 1])
                for w in gates_here
            ])))
            next_name = chain[chain.index(name) + 1]
            hop_pks = committees[next_name].public_keys()
            local_resharings = resharings
            local_set = contributor_set
            local_epoch = epoch

            def program_eval(view):
                share = receive_share(
                    tpk, view.index, view.secret_key, local_resharings,
                    local_set, previous_epoch=local_epoch,
                )
                partials = {
                    w: {
                        "eps": public_decrypt_contribution(
                            tpk, share, eps_cipher[w], proof_params, view.rng
                        ),
                        "delta": public_decrypt_contribution(
                            tpk, share, delta_cipher[w], proof_params, view.rng
                        ),
                    }
                    for w in gates_here
                }
                resharing = build_resharing(
                    tpk, share, hop_pks, proof_params, view.rng
                )
                view.speak(name, {"partials": partials, "tsk": resharing})

            env.run_committee(committee, program_eval)
            posts = env.bulletin.by_sender(name)
            resharings = {
                role.id.index: posts[str(role.id)]["tsk"]
                for role in committee
                if isinstance(
                    posts.get(str(role.id), {}).get("tsk"), EncryptedResharing
                )
            }
            epoch += 1

            opened: list[tuple[int, int, int]] = []
            for w in gates_here:
                eps_list = [
                    p["partials"][w]["eps"]
                    for p in posts.values()
                    if isinstance(
                        p.get("partials", {}).get(w, {}).get("eps"), PublicPartial
                    )
                ]
                delta_list = [
                    p["partials"][w]["delta"]
                    for p in posts.values()
                    if isinstance(
                        p.get("partials", {}).get(w, {}).get("delta"), PublicPartial
                    )
                ]
                eps = combine_public(
                    tpk, eps_cipher[w], eps_list, verifications[epoch], proof_params
                )
                delta = combine_public(
                    tpk, delta_cipher[w], delta_list, verifications[epoch],
                    proof_params,
                )
                opened.append((w, eps, delta))
            # z = εδ − ε·b − δ·a + c, one engine batch across the depth.
            z_cts = teval_many(tpk, [
                ([tpk.encrypt(eps * delta % tpk.n, randomness=1),
                  beaver_b[w], beaver_a[w], beaver_c[w]],
                 [1, -eps, -delta, 1])
                for w, eps, delta in opened
            ])
            for (w, _, _), ct in zip(opened, z_cts):
                wire_cipher[w] = ct
            propagate_linear()

        # ---- Output: Re-encrypt* each output ciphertext to its client -------

        out_committee = committees["Cdn-out"]
        contributor_set = verified_contributors(
            tpk, resharings, verifications[epoch],
            out_committee.public_keys(), proof_params,
        )
        verifications[epoch + 1] = next_verifications(tpk, resharings, contributor_set)
        output_wires = list(circuit.output_wires)
        final_resharings = resharings
        final_set = contributor_set
        final_epoch = epoch

        def program_out(view):
            share = receive_share(
                tpk, view.index, view.secret_key, final_resharings, final_set,
                previous_epoch=final_epoch,
            )
            bundle = {
                w: reencrypt_contribution(
                    tpk, share, wire_cipher[w],
                    out_client_roles[circuit.gates[w].client].public_key,
                    proof_params, view.rng,
                )
                for w in output_wires
            }
            view.speak("Cdn-out", {"output": bundle})

        env.run_committee(out_committee, program_out)
        posts_out = env.bulletin.by_sender("Cdn-out")

        outputs: dict[str, list[int]] = {}
        for w in output_wires:
            client = circuit.gates[w].client
            contributions = [
                p["output"][w]
                for p in posts_out.values()
                if isinstance(p.get("output", {}).get(w), EncryptedPartial)
            ]
            value = recover_reencrypted(
                tpk, wire_cipher[w], contributions,
                out_client_roles[client].secret_key,
                verifications[epoch + 1], proof_params,
            )
            outputs.setdefault(client, []).append(value)

        result = CdnResult(
            outputs=outputs, n=self.n, t=self.t, circuit=circuit,
            meter=env.meter, modulus=tpk.n,
            te_bits=self.te_bits, role_key_bits=self.role_key_bits,
            bulletin=env.bulletin,
        )
        # The baseline runs honestly, so every metered envelope must
        # match its closed-form size formula (repro.accounting.symbolic).
        from repro.accounting.symbolic import (
            cost_check_enabled,
            verify_cost_exactness,
        )

        if cost_check_enabled():
            verify_cost_exactness(result)
        return result
