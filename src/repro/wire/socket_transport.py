"""Cross-process delivery: every post round-trips through worker processes.

:class:`SocketTransport` is the transport the ROADMAP's "separate OS
processes" item asks for.  The coordinator (the protocol process) spawns
``workers`` decoder processes and hands every encoded envelope to all of
them — the bulletin board is public, so every party sees every frame.
Exactly one worker *owns* each post (stable hash of the sender's
committee name) and replies with its independently re-encoded bytes; the
board stores what came back over the wire, not what the coordinator
encoded.  A worker that cannot reproduce the frame byte-for-byte reports
an error instead of silently substituting its own bytes, so byte parity
with :class:`~repro.wire.transport.InMemoryTransport` is enforced, not
assumed.

Workers share *no* interpreter state with the coordinator.  Each starts
with an empty :class:`~repro.wire.codec.KeyRing` and learns public keys
the two ways a real deployment would: role-key moduli broadcast via
``announce_keys`` (the ideal role assignment's public output), and
:class:`~repro.wire.codec.KeyAnnouncement` objects embedded in the
``setup-keys`` envelope itself.

Frames are length-prefixed over localhost TCP (``mode="tcp"``); where
the sandbox forbids sockets, ``mode="pipe"`` carries the same frames
over :func:`multiprocessing.Pipe`, and ``mode="auto"`` tries TCP first.
The transport is asynchronous (``is_async``): ``begin_deliver`` fans a
frame out and returns a handle; ``collect`` waits until a quorum of
replies arrived, then a short straggler grace, and resolves the rest as
drops — the :class:`~repro.yoso.scheduler.AsyncRoundScheduler` turns
those drops into §5.4 fail-stop crashes.
"""

from __future__ import annotations

import hashlib
import socket
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as connection_wait
from typing import Any, Iterable

from repro.errors import ParameterError, WireError
from repro.observability import hooks as _hooks
from repro.wire.codec import WireCodec, read_varint, write_varint
from repro.wire.envelope import Envelope, decode_envelope, encode_envelope
from repro.wire.registry import ensure_standard_kinds, kind_by_name
from repro.wire.transport import Transport

OP_HELLO = 0x01     # worker → coordinator: varint worker index
OP_SEND = 0x02      # coordinator → worker: varint handle, want-reply byte, envelope
OP_POST = 0x03      # worker → coordinator: varint handle, re-encoded envelope
OP_ANNOUNCE = 0x04  # coordinator → worker: codec-encoded list of key moduli
OP_SHUTDOWN = 0x05  # coordinator → worker: no body
OP_ERROR = 0x06     # worker → coordinator: varint handle, utf-8 message

_MAX_FRAME = 1 << 28
_HANDSHAKE_TIMEOUT_S = 20.0
_LEN_BYTES = 4


def _committee_of(sender: str) -> str:
    """``"Con-mul-1[3]"`` → ``"Con-mul-1"`` (role names index into committees)."""
    return sender.split("[", 1)[0]


def _stable_index(name: str, buckets: int) -> int:
    """Deterministic committee → worker assignment (stable across processes)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % buckets


def _reencode(codec: WireCodec, envelope: Envelope, raw: bytes) -> bytes:
    """Decode ``raw`` and re-encode it from scratch; demand byte identity."""
    payload = codec.decode(envelope.body)
    body, _ = codec.encode_payload(payload)
    kind = kind_by_name(envelope.kind)
    frame = encode_envelope(
        Envelope(
            envelope.kind, envelope.sender, envelope.round,
            envelope.phase, envelope.tag, body,
        ),
        kind=kind,
    )
    if frame != raw:
        raise WireError(
            f"re-encoded envelope for {envelope.tag!r} from {envelope.sender!r} "
            f"differs from the wire bytes ({len(frame)} vs {len(raw)} bytes)"
        )
    return frame


# -- framed channels (coordinator side) ---------------------------------------


class _PipeChannel:
    """Frames over a duplex :func:`multiprocessing.Pipe` (self-framing)."""

    def __init__(self, conn: Connection) -> None:
        self.conn = conn

    def send_frame(self, frame: bytes) -> None:
        self.conn.send_bytes(frame)

    def waitable(self) -> Any:
        return self.conn

    def recv_ready_frames(self) -> list[bytes]:
        frames: list[bytes] = []
        try:
            while self.conn.poll(0):
                frames.append(self.conn.recv_bytes())
        except (EOFError, OSError):
            pass
        return frames

    def close(self) -> None:
        self.conn.close()


class _SocketChannel:
    """Length-prefixed frames over a connected localhost TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buf = bytearray()

    def send_frame(self, frame: bytes) -> None:
        self.sock.sendall(len(frame).to_bytes(_LEN_BYTES, "big") + frame)

    def waitable(self) -> Any:
        return self.sock

    def recv_ready_frames(self) -> list[bytes]:
        try:
            while True:
                chunk = self.sock.recv(1 << 16, socket.MSG_DONTWAIT)
                if not chunk:
                    break
                self._buf += chunk
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass
        frames: list[bytes] = []
        while len(self._buf) >= _LEN_BYTES:
            length = int.from_bytes(self._buf[:_LEN_BYTES], "big")
            if length > _MAX_FRAME:
                raise WireError(f"socket frame of {length} bytes exceeds limit")
            if len(self._buf) < _LEN_BYTES + length:
                break
            frames.append(bytes(self._buf[_LEN_BYTES:_LEN_BYTES + length]))
            del self._buf[:_LEN_BYTES + length]
        return frames

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def _recv_exact(sock: socket.socket, length: int) -> bytes | None:
    """Read exactly ``length`` bytes from a blocking socket (None on EOF)."""
    buf = bytearray()
    while len(buf) < length:
        chunk = sock.recv(length - len(buf))
        if not chunk:
            return None
        buf += chunk
    return bytes(buf)


def _read_frame_blocking(sock: socket.socket, timeout_s: float) -> bytes | None:
    sock.settimeout(timeout_s)
    try:
        header = _recv_exact(sock, _LEN_BYTES)
        if header is None:
            return None
        length = int.from_bytes(header, "big")
        if length > _MAX_FRAME:
            raise WireError(f"socket frame of {length} bytes exceeds limit")
        return _recv_exact(sock, length)
    finally:
        sock.settimeout(None)


# -- worker process -----------------------------------------------------------


def _worker_main(index: int, channel_spec: tuple, mute: frozenset) -> None:
    """Decoder party: fresh interpreter, empty key ring, own codec.

    Receives every envelope, decodes it with locally bootstrapped state,
    and — when it owns the post — replies with its re-encoded bytes.  A
    muted sender makes this worker fall silent for that post, which the
    coordinator's quorum timeout converts into a fail-stop crash.
    """
    if channel_spec[0] == "pipe":
        conn: Connection = channel_spec[1]

        def send(frame: bytes) -> None:
            conn.send_bytes(frame)

        def recv() -> bytes | None:
            try:
                return conn.recv_bytes()
            except (EOFError, OSError):
                return None

    else:
        sock = socket.create_connection((channel_spec[1], channel_spec[2]))

        def send(frame: bytes) -> None:
            sock.sendall(len(frame).to_bytes(_LEN_BYTES, "big") + frame)

        def recv() -> bytes | None:
            header = _recv_exact(sock, _LEN_BYTES)
            if header is None:
                return None
            length = int.from_bytes(header, "big")
            if length > _MAX_FRAME:
                return None
            return _recv_exact(sock, length)

    ensure_standard_kinds()
    codec = WireCodec()

    hello = bytearray([OP_HELLO])
    write_varint(hello, index)
    send(bytes(hello))

    from repro.paillier.paillier import PaillierPublicKey

    while True:
        frame = recv()
        if frame is None or not frame or frame[0] == OP_SHUTDOWN:
            return
        op = frame[0]
        if op == OP_ANNOUNCE:
            for modulus in codec.decode(bytes(frame[1:])):
                codec.keyring.add(PaillierPublicKey(modulus))
        elif op == OP_SEND:
            handle, pos = read_varint(frame, 1)
            want_reply = frame[pos]
            raw = bytes(frame[pos + 1:])
            try:
                envelope = decode_envelope(raw)
                reencoded = _reencode(codec, envelope, raw)
            except Exception as exc:  # report, never guess
                out = bytearray([OP_ERROR])
                write_varint(out, handle)
                out += f"worker {index}: {exc}".encode("utf-8")
                send(bytes(out))
                continue
            if want_reply and envelope.sender not in mute:
                out = bytearray([OP_POST])
                write_varint(out, handle)
                out += reencoded
                send(bytes(out))


# -- coordinator --------------------------------------------------------------


@dataclass
class _Pending:
    envelope: Envelope
    encoded: bytes
    reply: bytes | None = None


class SocketTransport(Transport):
    """Parties in separate OS processes behind a framed message channel.

    ``mute`` names senders whose owning worker withholds its reply — the
    test hook for "a party went silent": the coordinator genuinely waits,
    times out, and accounts a fail-stop crash, exercising the same path a
    crashed worker would.
    """

    name = "socket"
    is_async = True

    def __init__(
        self,
        workers: int = 2,
        mode: str = "auto",
        mute: frozenset[str] | Iterable[str] = frozenset(),
        reply_timeout_s: float = 30.0,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise ParameterError(f"socket transport needs >= 1 worker, got {workers}")
        if mode not in ("tcp", "pipe", "auto"):
            raise ParameterError(f"socket mode must be tcp|pipe|auto, got {mode!r}")
        if reply_timeout_s <= 0:
            raise ParameterError("reply timeout must be positive")
        self.workers = workers
        self.mode = mode
        self.mute = frozenset(mute)
        self.reply_timeout_s = reply_timeout_s
        self.mode_used: str | None = None
        self._procs: list = []
        self._channels: list = []
        self._started = False
        self._closed = False
        self._pending: dict[int, _Pending] = {}
        self._next_handle = 0
        self._announced: list[int] = []
        self._announced_set: set[int] = set()
        self._announce_codec = WireCodec()

    # -- lifecycle ------------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        if self._closed:
            raise WireError("socket transport is closed")
        ctx = get_context("spawn")
        if self.mode == "pipe":
            self._procs, self._channels = self._start_pipe(ctx)
            self.mode_used = "pipe"
        elif self.mode == "tcp":
            self._procs, self._channels = self._start_tcp(ctx)
            self.mode_used = "tcp"
        else:
            try:
                self._procs, self._channels = self._start_tcp(ctx)
                self.mode_used = "tcp"
            except OSError:
                self._procs, self._channels = self._start_pipe(ctx)
                self.mode_used = "pipe"
        self._started = True
        _hooks.note(_hooks.WIRE_SOCKET_WORKERS, len(self._channels))
        if self._announced:
            self._broadcast_announce(self._announced)

    def _start_tcp(self, ctx: Any) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        procs: list = []
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(self.workers)
            host, port = listener.getsockname()
            for index in range(self.workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(index, ("tcp", host, port), self.mute),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            channels: list = [None] * self.workers
            listener.settimeout(_HANDSHAKE_TIMEOUT_S)
            for _ in range(self.workers):
                sock, _addr = listener.accept()
                hello = _read_frame_blocking(sock, _HANDSHAKE_TIMEOUT_S)
                if hello is None or hello[0] != OP_HELLO:
                    raise OSError("socket worker handshake failed")
                index, _pos = read_varint(hello, 1)
                channels[index] = _SocketChannel(sock)
        except OSError:
            for proc in procs:
                proc.terminate()
            raise
        finally:
            listener.close()
        return procs, channels

    def _start_pipe(self, ctx: Any) -> None:
        procs: list = []
        channels: list = []
        for index in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(index, ("pipe", child_conn), self.mute),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            if not parent_conn.poll(_HANDSHAKE_TIMEOUT_S):
                proc.terminate()
                raise WireError("pipe worker handshake timed out")
            hello = parent_conn.recv_bytes()
            if not hello or hello[0] != OP_HELLO:
                proc.terminate()
                raise WireError("pipe worker handshake failed")
            procs.append(proc)
            channels.append(_PipeChannel(parent_conn))
        return procs, channels

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        shutdown = bytes([OP_SHUTDOWN])
        for channel in self._channels:
            try:
                channel.send_frame(shutdown)
            except (OSError, ValueError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for channel in self._channels:
            channel.close()

    # -- key bootstrap --------------------------------------------------------

    def announce_keys(self, moduli: Iterable[int]) -> None:
        fresh = []
        for modulus in moduli:
            if modulus not in self._announced_set:
                self._announced_set.add(modulus)
                self._announced.append(modulus)
                fresh.append(modulus)
        if fresh and self._started:
            self._broadcast_announce(fresh)

    def _broadcast_announce(self, moduli: list[int]) -> None:
        frame = bytes([OP_ANNOUNCE]) + self._announce_codec.encode(list(moduli))
        for channel in self._channels:
            channel.send_frame(frame)
            _hooks.note(_hooks.WIRE_SOCKET_FRAMES_OUT)
            _hooks.note(_hooks.WIRE_SOCKET_BYTES_OUT, len(frame))

    # -- delivery -------------------------------------------------------------

    def begin_deliver(self, envelope: Envelope, encoded: bytes) -> int:
        """Fan one frame out to every worker; returns a collect handle."""
        self._ensure_started()
        handle = self._next_handle
        self._next_handle += 1
        owner = _stable_index(_committee_of(envelope.sender), len(self._channels))
        header = bytearray([OP_SEND])
        write_varint(header, handle)
        for index, channel in enumerate(self._channels):
            frame = bytes(header) + bytes([1 if index == owner else 0]) + encoded
            channel.send_frame(frame)
            _hooks.note(_hooks.WIRE_SOCKET_FRAMES_OUT)
            _hooks.note(_hooks.WIRE_SOCKET_BYTES_OUT, len(frame))
        self._pending[handle] = _Pending(envelope, encoded)
        return handle

    def deliver(self, envelope: Envelope, encoded: bytes) -> bytes | None:
        """Synchronous path: fan out and wait for this one post's reply."""
        handle = self.begin_deliver(envelope, encoded)
        return self.collect([handle])[handle]

    def collect(
        self,
        handles: list[int],
        quorum: int | None = None,
        timeout_s: float | None = None,
        grace_s: float | None = None,
    ) -> dict[int, bytes | None]:
        """Wait for replies; quorum first, then a straggler grace window.

        Returns ``{handle: delivered bytes | None}``.  ``None`` means the
        owning worker never replied inside the window — the scheduler
        maps that onto a §5.4 fail-stop crash.  A reply whose bytes
        differ from the coordinator's encoding raises :class:`WireError`.
        """
        if not handles:
            return {}
        timeout = timeout_s if timeout_s is not None else self.reply_timeout_s
        if grace_s is None:
            grace_s = max(0.05, timeout / 10.0)
        if quorum is None:
            quorum = len(handles)
        quorum = max(1, min(quorum, len(handles)))
        start = time.monotonic()
        hard_deadline = start + timeout
        quorum_at: float | None = None
        while True:
            self._drain_channels()
            done = sum(
                1 for h in handles if self._pending[h].reply is not None
            )
            if done == len(handles):
                break
            now = time.monotonic()
            if done >= quorum and quorum_at is None:
                quorum_at = now
            deadline = hard_deadline
            if quorum_at is not None:
                deadline = min(hard_deadline, quorum_at + grace_s)
            remaining = deadline - now
            if remaining <= 0:
                break
            connection_wait(
                [channel.waitable() for channel in self._channels],
                timeout=remaining,
            )
        elapsed = time.monotonic() - start
        self.stats.real_wait_s += elapsed
        phase = self._pending[handles[0]].envelope.phase
        per_phase = self.stats.real_s_by_phase
        per_phase[phase] = per_phase.get(phase, 0.0) + elapsed
        results: dict[int, bytes | None] = {}
        for handle in handles:
            pending = self._pending.pop(handle)
            if pending.reply is None:
                _hooks.note(_hooks.WIRE_SOCKET_TIMEOUTS)
                self._note_dropped(pending.encoded)
                results[handle] = None
            else:
                if pending.reply != pending.encoded:
                    raise WireError(
                        f"worker reply for {pending.envelope.tag!r} from "
                        f"{pending.envelope.sender!r} is not byte-identical "
                        "to the coordinator's encoding"
                    )
                results[handle] = self._note_delivered(pending.reply)
        return results

    def _drain_channels(self) -> None:
        for channel in self._channels:
            for frame in channel.recv_ready_frames():
                self._process_frame(frame)

    def _process_frame(self, frame: bytes) -> None:
        _hooks.note(_hooks.WIRE_SOCKET_FRAMES_IN)
        _hooks.note(_hooks.WIRE_SOCKET_BYTES_IN, len(frame))
        op = frame[0]
        if op == OP_POST:
            handle, pos = read_varint(frame, 1)
            pending = self._pending.get(handle)
            if pending is not None:
                pending.reply = bytes(frame[pos:])
        elif op == OP_ERROR:
            handle, pos = read_varint(frame, 1)
            message = bytes(frame[pos:]).decode("utf-8", "replace")
            raise WireError(f"socket worker error on post #{handle}: {message}")

    def describe(self) -> str:
        mode = self.mode_used or self.mode
        return f"socket(workers={self.workers}, mode={mode})"
