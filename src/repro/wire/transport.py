"""Pluggable delivery of encoded envelopes.

The bulletin hands every encoded post to a :class:`Transport`; whatever
comes back is what the board (and therefore every reader) sees.  A
transport may return the bytes unchanged (delivery), or ``None`` (loss).
Loss surfaces exactly like the existing fail-stop machinery: the runtime
marks the silent role crashed, and reconstruction proceeds iff the
remaining contributions clear the §5.4 crash budget.

Transports draw randomness only from their *own* seeded generator — never
from the protocol RNG — so a zero-loss :class:`SimTransport` produces a
bulletin byte-identical to :class:`InMemoryTransport` at the same seed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ParameterError
from repro.wire.envelope import Envelope


@dataclass
class TransportStats:
    """Delivery counters plus the two wall clocks.

    ``sim_clock_s`` accrues *modeled* waiting (SimTransport's latency and
    bandwidth math); ``real_wait_s`` accrues *measured* waiting (how long
    an asynchronous transport actually blocked for replies).  The per-phase
    dicts split both by protocol phase, so a report can put the simulated
    and the real wall time of each phase side by side.
    """

    delivered: int = 0
    dropped: int = 0
    delivered_bytes: int = 0
    dropped_bytes: int = 0
    sim_clock_s: float = 0.0
    real_wait_s: float = 0.0
    sim_s_by_phase: dict[str, float] = field(default_factory=dict)
    real_s_by_phase: dict[str, float] = field(default_factory=dict)


class Transport(ABC):
    """Delivery policy for encoded bulletin posts."""

    name: str = "transport"

    #: Asynchronous transports resolve deliveries out of band (via
    #: ``begin_deliver``/``collect``); the runtime drives them through the
    #: :class:`~repro.yoso.scheduler.AsyncRoundScheduler` instead of the
    #: inline post path.
    is_async: bool = False

    def __init__(self) -> None:
        self.stats = TransportStats()

    @abstractmethod
    def deliver(self, envelope: Envelope, encoded: bytes) -> bytes | None:
        """Deliver one encoded post; ``None`` means the message is lost."""

    def announce_keys(self, moduli: Iterable[int]) -> None:
        """Publish public role-key moduli to any remote decoders.

        Role keys are public information the ideal role assignment hands
        out off-board; same-process transports resolve them through the
        shared encode-time ring, so the default is a no-op.  Cross-process
        transports broadcast them to their decoder processes.
        """

    def close(self) -> None:
        """Release any resources (worker processes, sockets); idempotent."""

    def describe(self) -> str:
        return self.name

    def _note_delivered(self, encoded: bytes) -> bytes:
        self.stats.delivered += 1
        self.stats.delivered_bytes += len(encoded)
        return encoded

    def _note_dropped(self, encoded: bytes) -> None:
        self.stats.dropped += 1
        self.stats.dropped_bytes += len(encoded)


class InMemoryTransport(Transport):
    """Perfect same-process delivery — the board's historical semantics."""

    name = "memory"

    def deliver(self, envelope: Envelope, encoded: bytes) -> bytes | None:
        return self._note_delivered(encoded)


@dataclass(frozen=True)
class DropSpec:
    """Seeded loss schedule for :class:`SimTransport`.

    A post is dropped when its phase matches (``phase is None`` = all),
    the drop budget ``max_drops`` is not exhausted, and either its sender
    is explicitly listed in ``senders`` or an independent coin with
    probability ``rate`` comes up loss.  Listing senders gives tests the
    §5.4 shape directly: exactly these roles fall silent.
    """

    rate: float = 0.0
    senders: frozenset[str] = frozenset()
    phase: str | None = None
    max_drops: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ParameterError(f"drop rate must be in [0, 1], got {self.rate}")

    def wants_drop(
        self, envelope: Envelope, rng: random.Random, drops_so_far: int
    ) -> bool:
        if self.max_drops is not None and drops_so_far >= self.max_drops:
            return False
        if self.phase is not None and envelope.phase != self.phase:
            return False
        if envelope.sender in self.senders:
            return True
        return self.rate > 0.0 and rng.random() < self.rate


class SimTransport(Transport):
    """Simulated network: seeded latency and loss over perfect bytes.

    Latency accrues on a simulated clock (``stats.sim_clock_s``) — the
    round model stays synchronous, so latency never reorders posts; it
    models what a deployment would *wait*, not what it would see.  With
    the default ``DropSpec()`` (zero loss) delivery is bit-identical to
    :class:`InMemoryTransport`.
    """

    name = "sim"

    def __init__(
        self,
        seed: int = 0,
        drop: DropSpec | None = None,
        latency_s: float = 0.0,
        jitter_s: float = 0.0,
        bandwidth_bytes_per_s: float | None = None,
    ) -> None:
        super().__init__()
        if latency_s < 0 or jitter_s < 0:
            raise ParameterError("latency/jitter must be non-negative")
        if bandwidth_bytes_per_s is not None and bandwidth_bytes_per_s <= 0:
            raise ParameterError("bandwidth must be positive")
        self.seed = seed
        self.drop = drop if drop is not None else DropSpec()
        self.latency_s = latency_s
        self.jitter_s = jitter_s
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self._rng = random.Random(seed)

    def deliver(self, envelope: Envelope, encoded: bytes) -> bytes | None:
        delay = self.latency_s
        if self.jitter_s:
            delay += self._rng.random() * self.jitter_s
        if self.bandwidth_bytes_per_s is not None:
            delay += len(encoded) / self.bandwidth_bytes_per_s
        self.stats.sim_clock_s += delay
        if delay:
            per_phase = self.stats.sim_s_by_phase
            per_phase[envelope.phase] = per_phase.get(envelope.phase, 0.0) + delay
        if self.drop.wants_drop(envelope, self._rng, self.stats.dropped):
            self._note_dropped(encoded)
            return None
        return self._note_delivered(encoded)

    def describe(self) -> str:
        return (
            f"sim(seed={self.seed}, rate={self.drop.rate}, "
            f"latency={self.latency_s}s)"
        )


def make_transport(spec: str | Transport | None) -> Transport:
    """Build a transport from a CLI-style spec string.

    ``"memory"`` or ``None`` → :class:`InMemoryTransport`;
    ``"sim"`` → zero-loss :class:`SimTransport`;
    ``"sim:drop=0.1,seed=3,latency=0.05,jitter=0.01,phase=online,max-drops=2"``
    → a configured :class:`SimTransport`;
    ``"socket[:workers=K,mode=tcp|pipe|auto,timeout=S,mute=A|B]"`` → a
    :class:`~repro.wire.socket_transport.SocketTransport` with its decoder
    parties in separate OS processes.  An already-built transport passes
    through unchanged.
    """
    if spec is None:
        return InMemoryTransport()
    if isinstance(spec, Transport):
        return spec
    name, _, options = spec.partition(":")
    if name == "memory":
        if options:
            raise ParameterError("memory transport takes no options")
        return InMemoryTransport()
    if name == "socket":
        return _make_socket_transport(options)
    if name != "sim":
        raise ParameterError(f"unknown transport {name!r} (memory|sim|socket)")
    kwargs: dict[str, float | int] = {}
    drop_kwargs: dict[str, object] = {}
    for part in filter(None, options.split(",")):
        key, sep, value = part.partition("=")
        if not sep:
            raise ParameterError(f"malformed transport option {part!r}")
        if key == "seed":
            kwargs["seed"] = int(value)
        elif key == "latency":
            kwargs["latency_s"] = float(value)
        elif key == "jitter":
            kwargs["jitter_s"] = float(value)
        elif key == "bandwidth":
            kwargs["bandwidth_bytes_per_s"] = float(value)
        elif key == "drop":
            drop_kwargs["rate"] = float(value)
        elif key == "phase":
            drop_kwargs["phase"] = value
        elif key == "max-drops":
            drop_kwargs["max_drops"] = int(value)
        else:
            raise ParameterError(f"unknown transport option {key!r}")
    drop = DropSpec(**drop_kwargs) if drop_kwargs else None
    return SimTransport(drop=drop, **kwargs)


def _make_socket_transport(options: str) -> Transport:
    """Parse ``socket:...`` options (lazy import keeps sim/memory light)."""
    from repro.wire.socket_transport import SocketTransport

    kwargs: dict[str, object] = {}
    for part in filter(None, options.split(",")):
        key, sep, value = part.partition("=")
        if not sep:
            raise ParameterError(f"malformed transport option {part!r}")
        if key == "workers":
            kwargs["workers"] = int(value)
        elif key == "mode":
            kwargs["mode"] = value
        elif key == "timeout":
            kwargs["reply_timeout_s"] = float(value)
        elif key == "mute":
            kwargs["mute"] = frozenset(filter(None, value.split("|")))
        else:
            raise ParameterError(f"unknown transport option {key!r}")
    return SocketTransport(**kwargs)
