"""Canonical value codec for bulletin-board payloads.

A single self-describing binary format covers everything the protocol
posts: a one-byte type tag, then a minimal big-endian body.  The encoding
is *canonical* — each value has exactly one valid byte string, and the
decoder rejects everything else (non-minimal integers, unsorted dict
entries, trailing bytes) — so ``encode(decode(b)) == b`` for any accepted
``b`` and seeded transcripts are byte-identical across runs.

Scalars and containers are built in.  Domain objects come in two forms:

* :class:`~repro.paillier.paillier.PaillierCiphertext` has its own tag —
  it is the dominant object on the wire, so it ships as an 8-byte key id
  plus the fixed-width group element, with moduli resolved through the
  codec's :class:`KeyRing` instead of being repeated in every message;
* every other payload dataclass (proofs, partial decryptions, resharing
  messages) registers through :func:`register_wire_dataclass` at its
  definition site and is framed as ``OBJECT code · field values``.

:class:`KeyAnnouncement` is the bridge between the two worlds: a tiny
registered dataclass carrying a public Paillier modulus whose decode
registers the key into the decoder's ring *mid-stream*.  Because the
canonical dict order is deterministic, a payload can be arranged so every
announcement decodes before the first ciphertext that needs it — which is
how a fresh process (a socket-transport worker) bootstraps an empty
:class:`KeyRing` from nothing but the bytes of the ``setup-keys`` post.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from typing import Any

from repro.errors import EncryptionError, WireDecodeError, WireEncodeError
from repro.paillier.paillier import PaillierCiphertext, PaillierPublicKey

# -- type tags ---------------------------------------------------------------

TAG_NONE = 0x00
TAG_FALSE = 0x01
TAG_TRUE = 0x02
TAG_INT_ZERO = 0x03
TAG_INT_POS = 0x04
TAG_INT_NEG = 0x05
TAG_BYTES = 0x06
TAG_STR = 0x07
TAG_LIST = 0x08
TAG_TUPLE = 0x09
TAG_DICT = 0x0A
TAG_OBJECT = 0x0B
TAG_CIPHERTEXT = 0x0C

#: Bytes of SHA-256(modulus) identifying a Paillier key on the wire.
KEY_ID_BYTES = 8

_VARINT_MAX_LEN = 9


# -- varints -----------------------------------------------------------------

def write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint (canonical: no padding continuation bytes)."""
    if value < 0:
        raise WireEncodeError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        out.append(byte | (0x80 if value else 0x00))
        if not value:
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    start = pos
    while True:
        if pos >= len(data):
            raise WireDecodeError("truncated varint")
        if pos - start >= _VARINT_MAX_LEN:
            raise WireDecodeError("varint too long")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if byte == 0 and pos - start > 1:
                raise WireDecodeError("non-minimal varint")
            return result, pos
        shift += 7


# -- key ring ----------------------------------------------------------------

def key_id(modulus: int) -> bytes:
    """Stable 8-byte wire identifier of a Paillier modulus."""
    n_bytes = modulus.to_bytes((modulus.bit_length() + 7) // 8, "big")
    return hashlib.sha256(n_bytes).digest()[:KEY_ID_BYTES]


class KeyRing:
    """The key directory resolving ciphertext key ids during decode.

    Encoding a ciphertext registers its public key; decoding looks the id
    back up.  Within one protocol session (one bulletin board) every key
    is seen at encode time before any decode needs it.  A cross-process
    decoder bootstraps the ring from the wire instead: role-key moduli
    announced by the transport plus the :class:`KeyAnnouncement` objects
    inside the ``setup-keys`` post.
    """

    def __init__(self) -> None:
        self._by_id: dict[bytes, PaillierPublicKey] = {}
        self._id_by_n: dict[int, bytes] = {}

    def add(self, public: PaillierPublicKey) -> bytes:
        kid = self._id_by_n.get(public.n)
        if kid is None:
            kid = key_id(public.n)
            self._id_by_n[public.n] = kid
            self._by_id[kid] = public
        return kid

    def resolve(self, kid: bytes) -> PaillierPublicKey:
        public = self._by_id.get(kid)
        if public is None:
            raise WireDecodeError(f"unknown key id {kid.hex()}")
        return public

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, kid: bytes) -> bool:
        return kid in self._by_id

    def known_ids(self) -> frozenset[bytes]:
        """The key ids currently resolvable (cross-process parity checks)."""
        return frozenset(self._by_id)


# -- object registry ---------------------------------------------------------

@dataclass(frozen=True)
class ObjectCodec:
    """Wire registration of one payload dataclass."""

    code: int
    cls: type
    field_names: tuple[str, ...]


_BY_CLASS: dict[type, ObjectCodec] = {}
_BY_CODE: dict[int, ObjectCodec] = {}
_domain_loaded = False


def register_wire_dataclass(code: int, cls: type) -> type:
    """Register ``cls`` (a dataclass) under a stable wire ``code``.

    Called at class-definition site, so any instance that exists in the
    process is guaranteed to be encodable.  Re-registration of the same
    class under the same code is a no-op; conflicting registrations raise.
    """
    if not (isinstance(cls, type) and is_dataclass(cls)):
        raise WireEncodeError(f"{cls!r} is not a dataclass type")
    names = tuple(f.name for f in dataclass_fields(cls))
    entry = ObjectCodec(code, cls, names)
    existing = _BY_CODE.get(code)
    if existing is not None and existing.cls is not cls:
        raise WireEncodeError(
            f"wire code {code} already taken by {existing.cls.__name__}"
        )
    previous = _BY_CLASS.get(cls)
    if previous is not None and previous.code != code:
        raise WireEncodeError(
            f"{cls.__name__} already registered under code {previous.code}"
        )
    _BY_CODE[code] = entry
    _BY_CLASS[cls] = entry
    return cls


@dataclass(frozen=True)
class KeyAnnouncement:
    """A public Paillier modulus announced into the decode stream.

    Travels as an ordinary registered dataclass, but decoding one has a
    side effect: the key registers into the decoding codec's ring, so any
    later ciphertext in the same stream resolves without shared state.
    The ``setup-keys`` payload places its announcements ahead of every
    dependent ciphertext (canonical dict order makes that arrangement
    stable), which is what lets a fresh process decode the post with an
    empty ring — the cross-process KeyRing bootstrap.
    """

    modulus: int

    def __post_init__(self) -> None:
        PaillierPublicKey(self.modulus)  # validate: same rules as a real key

    def public_key(self) -> PaillierPublicKey:
        return PaillierPublicKey(self.modulus)


#: Wire object code of :class:`KeyAnnouncement` (1–6 are the Σ-protocol
#: objects in ``repro.wire.domain``, 16–19 the re-encryption/resharing
#: messages).
KEY_ANNOUNCEMENT_CODE = 7

register_wire_dataclass(KEY_ANNOUNCEMENT_CODE, KeyAnnouncement)


def _ensure_domain_codecs() -> None:
    """Import the modules that register protocol payload codecs.

    Lazy so the wire package stays import-cycle-free: only a decoder that
    actually meets an unknown object code pays for it.
    """
    global _domain_loaded
    if _domain_loaded:
        return
    _domain_loaded = True
    import repro.wire.domain  # noqa: F401
    import repro.core.reencrypt  # noqa: F401
    import repro.core.resharing  # noqa: F401
    import repro.service.wire  # noqa: F401


# -- the codec ---------------------------------------------------------------

class WireCodec:
    """Encoder/decoder pair sharing one :class:`KeyRing`."""

    def __init__(self, keyring: KeyRing | None = None) -> None:
        self.keyring = keyring if keyring is not None else KeyRing()

    # -- encoding ------------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        out = bytearray()
        self._encode(value, out)
        return bytes(out)

    def encode_payload(
        self, payload: Any
    ) -> tuple[bytes, list[tuple[str, int]] | None]:
        """Encode a post payload, returning per-section byte spans.

        A non-empty dict with string keys is the standard *sectioned*
        message shape (a role's bundled single utterance); the returned
        spans let the meter attribute each section's exact bytes to
        ``tag.section`` while the envelope framing stays separate.
        """
        if (
            isinstance(payload, dict)
            and payload
            and all(type(k) is str for k in payload)
        ):
            pairs = sorted(
                (self.encode(k), self.encode(v), k) for k, v in payload.items()
            )
            out = bytearray([TAG_DICT])
            write_varint(out, len(pairs))
            sections = []
            for enc_key, enc_value, key in pairs:
                out += enc_key
                out += enc_value
                sections.append((key, len(enc_key) + len(enc_value)))
            return bytes(out), sections
        return self.encode(payload), None

    def _encode(self, value: Any, out: bytearray) -> None:
        if value is None:
            out.append(TAG_NONE)
        elif value is True:
            out.append(TAG_TRUE)
        elif value is False:
            out.append(TAG_FALSE)
        elif isinstance(value, int):
            self._encode_int(value, out)
        elif isinstance(value, (bytes, bytearray)):
            out.append(TAG_BYTES)
            write_varint(out, len(value))
            out += value
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(TAG_STR)
            write_varint(out, len(raw))
            out += raw
        elif isinstance(value, list):
            out.append(TAG_LIST)
            write_varint(out, len(value))
            for item in value:
                self._encode(item, out)
        elif isinstance(value, tuple):
            out.append(TAG_TUPLE)
            write_varint(out, len(value))
            for item in value:
                self._encode(item, out)
        elif isinstance(value, dict):
            pairs = sorted(
                (self.encode(k), self.encode(v)) for k, v in value.items()
            )
            out.append(TAG_DICT)
            write_varint(out, len(pairs))
            for enc_key, enc_value in pairs:
                out += enc_key
                out += enc_value
        elif isinstance(value, PaillierCiphertext):
            self._encode_ciphertext(value, out)
        else:
            entry = _BY_CLASS.get(type(value))
            if entry is None:
                raise WireEncodeError(
                    f"no wire codec for payload type {type(value).__name__}"
                )
            out.append(TAG_OBJECT)
            write_varint(out, entry.code)
            write_varint(out, len(entry.field_names))
            for name in entry.field_names:
                self._encode(getattr(value, name), out)
            if type(value) is KeyAnnouncement:
                # Mirror the decode-side registration so both ends of a
                # stream end up with the same ring.
                self.keyring.add(value.public_key())

    @staticmethod
    def _encode_int(value: int, out: bytearray) -> None:
        if value == 0:
            out.append(TAG_INT_ZERO)
            return
        magnitude = value if value > 0 else -value
        raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
        out.append(TAG_INT_POS if value > 0 else TAG_INT_NEG)
        write_varint(out, len(raw))
        out += raw

    def _encode_ciphertext(self, ct: PaillierCiphertext, out: bytearray) -> None:
        out.append(TAG_CIPHERTEXT)
        out += self.keyring.add(ct.public)
        width = (ct.public.n_squared.bit_length() + 7) // 8
        out += ct.value.to_bytes(width, "big")

    # -- decoding ------------------------------------------------------------

    def decode(self, data: bytes) -> Any:
        value, pos = self._decode(data, 0)
        if pos != len(data):
            raise WireDecodeError(
                f"{len(data) - pos} trailing bytes after value"
            )
        return value

    def _decode(self, data: bytes, pos: int) -> tuple[Any, int]:
        if pos >= len(data):
            raise WireDecodeError("truncated value: missing type tag")
        tag = data[pos]
        pos += 1
        if tag == TAG_NONE:
            return None, pos
        if tag == TAG_TRUE:
            return True, pos
        if tag == TAG_FALSE:
            return False, pos
        if tag == TAG_INT_ZERO:
            return 0, pos
        if tag in (TAG_INT_POS, TAG_INT_NEG):
            length, pos = read_varint(data, pos)
            raw = self._take(data, pos, length, "integer")
            pos += length
            if length == 0 or raw[0] == 0:
                raise WireDecodeError("non-minimal integer encoding")
            magnitude = int.from_bytes(raw, "big")
            return (magnitude if tag == TAG_INT_POS else -magnitude), pos
        if tag == TAG_BYTES:
            length, pos = read_varint(data, pos)
            raw = self._take(data, pos, length, "bytes")
            return bytes(raw), pos + length
        if tag == TAG_STR:
            length, pos = read_varint(data, pos)
            raw = self._take(data, pos, length, "string")
            try:
                return raw.decode("utf-8"), pos + length
            except UnicodeDecodeError as exc:
                raise WireDecodeError(f"invalid utf-8 string: {exc}") from exc
        if tag in (TAG_LIST, TAG_TUPLE):
            count, pos = read_varint(data, pos)
            self._check_count(data, pos, count)
            items = []
            for _ in range(count):
                item, pos = self._decode(data, pos)
                items.append(item)
            return (items if tag == TAG_LIST else tuple(items)), pos
        if tag == TAG_DICT:
            count, pos = read_varint(data, pos)
            self._check_count(data, pos, count)
            out: dict[Any, Any] = {}
            previous_key_bytes: bytes | None = None
            for _ in range(count):
                key_start = pos
                key, pos = self._decode(data, pos)
                key_bytes = data[key_start:pos]
                if previous_key_bytes is not None and key_bytes <= previous_key_bytes:
                    raise WireDecodeError("dict entries not in canonical order")
                previous_key_bytes = key_bytes
                value, pos = self._decode(data, pos)
                out[key] = value
            return out, pos
        if tag == TAG_CIPHERTEXT:
            kid = bytes(self._take(data, pos, KEY_ID_BYTES, "key id"))
            pos += KEY_ID_BYTES
            public = self.keyring.resolve(kid)
            width = (public.n_squared.bit_length() + 7) // 8
            raw = self._take(data, pos, width, "ciphertext")
            pos += width
            value = int.from_bytes(raw, "big")
            if not 0 < value < public.n_squared:
                raise WireDecodeError("ciphertext value outside Z*_{N²}")
            try:
                return PaillierCiphertext(public, value), pos
            except EncryptionError as exc:
                raise WireDecodeError(str(exc)) from exc
        if tag == TAG_OBJECT:
            code, pos = read_varint(data, pos)
            entry = _BY_CODE.get(code)
            if entry is None:
                _ensure_domain_codecs()
                entry = _BY_CODE.get(code)
            if entry is None:
                raise WireDecodeError(f"unregistered wire object code {code}")
            count, pos = read_varint(data, pos)
            if count != len(entry.field_names):
                raise WireDecodeError(
                    f"{entry.cls.__name__} expects {len(entry.field_names)} "
                    f"fields, wire carries {count}"
                )
            values = []
            for _ in range(count):
                value, pos = self._decode(data, pos)
                values.append(value)
            try:
                value = entry.cls(*values)
            except Exception as exc:
                raise WireDecodeError(
                    f"invalid {entry.cls.__name__} on the wire: {exc}"
                ) from exc
            if type(value) is KeyAnnouncement:
                # Mid-stream bootstrap: later ciphertexts in this same
                # decode may already reference the announced key.
                self.keyring.add(value.public_key())
            return value, pos
        raise WireDecodeError(f"unknown wire type tag 0x{tag:02x}")

    @staticmethod
    def _take(data: bytes, pos: int, length: int, what: str) -> bytes:
        if pos + length > len(data):
            raise WireDecodeError(f"truncated {what}")
        return data[pos:pos + length]

    @staticmethod
    def _check_count(data: bytes, pos: int, count: int) -> None:
        # Every element costs at least one byte: a cheap bomb guard.
        if count > len(data) - pos:
            raise WireDecodeError(f"container count {count} exceeds input")


def roundtrip_check(codec: WireCodec, value: Any) -> bytes:
    """Encode → decode → re-encode; raise unless byte-identical.

    The self-check behind the canonical-format guarantee; cheap enough for
    tests and debug posts, returns the canonical encoding on success.
    """
    encoded = codec.encode(value)
    again = codec.encode(codec.decode(encoded))
    if again != encoded:
        raise WireEncodeError(
            f"round-trip not canonical for {type(value).__name__}"
        )
    return encoded
