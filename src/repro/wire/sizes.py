"""Per-kind size arithmetic for the canonical wire format.

Every byte the codec (:mod:`repro.wire.codec`) and the envelope framing
(:mod:`repro.wire.envelope`) emit is a deterministic function of the value
being encoded.  This module states that function *next to the encoders*,
in two interchangeable forms:

* **exact** helpers (``varint_len``, ``int_wire_len``, ``ct_wire_len``,
  ``envelope_wire_len``) compute the encoded length of a concrete value
  without encoding it — pure integer arithmetic, used by the byte-walker
  that validates metered runs;
* **nominal** helpers (``int_nominal``, ``ct_nominal``, ``seq_nominal``)
  compute the length of a value declared only by its *bit width*.  They
  accept plain ints or sympy expressions, so the same arithmetic yields
  the closed-form formulas of :mod:`repro.accounting.symbolic`.

The difference ``nominal − exact`` is the *value slack*: minimal integer
encodings drop leading zero bytes, so an encoded run sits a few bytes
under the structural nominal.  The symbolic cost model carries that slack
as an explicit per-kind symbol and the cross-check recomputes it from the
decoded values — see docs/COSTMODEL.md for the exactness contract.

Sympy is imported lazily: the exact helpers (used on every metered run)
work without it; building symbolic expressions requires it.
"""

from __future__ import annotations

from typing import Any

from repro.wire.codec import KEY_ID_BYTES

#: magic(2) + version(1) + crc32(4): the fixed envelope framing bytes.
ENVELOPE_FIXED_BYTES = 7

_sympy = None


def _sym() -> Any:
    """The sympy module (lazy; raises a clear error when unavailable)."""
    global _sympy
    if _sympy is None:
        try:
            import sympy
        except ImportError as exc:  # pragma: no cover - sympy ships with dev env
            raise ImportError(
                "symbolic wire sizes need sympy (install the project "
                "dependencies); exact helpers work without it"
            ) from exc
        _sympy = sympy
    return _sympy


def _is_number(x: Any) -> bool:
    return isinstance(x, int) and not isinstance(x, bool)


# -- exact sizes of concrete values ------------------------------------------

def varint_len(value: int) -> int:
    """Bytes of the LEB128 varint of ``value`` (mirrors ``write_varint``)."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    length = 1
    value >>= 7
    while value:
        length += 1
        value >>= 7
    return length


def int_wire_len(value: int) -> int:
    """Exact wire bytes of an int (mirrors ``WireCodec._encode_int``)."""
    if value == 0:
        return 1
    magnitude = value if value > 0 else -value
    raw_len = (magnitude.bit_length() + 7) // 8
    return 1 + varint_len(raw_len) + raw_len


def str_wire_len(value: str) -> int:
    raw = len(value.encode("utf-8"))
    return 1 + varint_len(raw) + raw


def bytes_wire_len(value: bytes) -> int:
    return 1 + varint_len(len(value)) + len(value)


def ct_wire_len(ct: Any) -> int:
    """Exact wire bytes of a PaillierCiphertext (key id + fixed width)."""
    width = (ct.public.n_squared.bit_length() + 7) // 8
    return 1 + KEY_ID_BYTES + width


def envelope_wire_len(
    kind_id: int,
    kind_version: int,
    round_: int,
    sender: str,
    phase: str,
    tag: str,
    body_len: int,
) -> int:
    """Exact framing bytes around a body (mirrors ``encode_envelope``)."""
    total = ENVELOPE_FIXED_BYTES
    total += varint_len(kind_id) + varint_len(kind_version) + varint_len(round_)
    for text in (sender, phase, tag):
        raw = len(text.encode("utf-8"))
        total += varint_len(raw) + raw
    total += varint_len(body_len)
    return total


# -- dual-mode (int | sympy) arithmetic --------------------------------------

def cdiv(a: Any, b: Any) -> Any:
    """``ceil(a / b)`` for ints or sympy expressions."""
    if _is_number(a) and _is_number(b):
        return -(-a // b)
    sympy = _sym()
    return sympy.ceiling(sympy.Rational(1, 1) * a / b)


def vlen(x: Any) -> Any:
    """Varint length of ``x``: exact for ints, ``Vlen(x)`` symbolically."""
    if _is_number(x):
        return varint_len(x)
    return _vlen_function()(x)


_VLEN_FN = None
_DIGITSUM_FN = None


def _vlen_function() -> Any:
    """The sympy ``Vlen`` function (evaluates on integer arguments)."""
    global _VLEN_FN
    if _VLEN_FN is None:
        sympy = _sym()

        class Vlen(sympy.Function):
            """LEB128 varint byte length of a non-negative integer."""

            nargs = (1,)

            @classmethod
            def eval(cls, x: Any) -> Any:
                if getattr(x, "is_Integer", False):
                    return sympy.Integer(varint_len(int(x)))
                return None

        _VLEN_FN = Vlen
    return _VLEN_FN


def digit_sum(n: int) -> int:
    """``Σ_{i=1}^{n} len(str(i))`` — decimal digits of committee indices."""
    total = 0
    low = 1
    digits = 1
    while low <= n:
        high = min(n, low * 10 - 1)
        total += (high - low + 1) * digits
        low *= 10
        digits += 1
    return total


def digit_sum_expr(x: Any) -> Any:
    """Dual-mode :func:`digit_sum`: exact for ints, ``DigitSum(x)`` symbolically."""
    if _is_number(x):
        return digit_sum(x)
    return _digitsum_function()(x)


def _digitsum_function() -> Any:
    global _DIGITSUM_FN
    if _DIGITSUM_FN is None:
        sympy = _sym()

        class DigitSum(sympy.Function):
            """Total decimal-digit count of the integers 1..n."""

            nargs = (1,)

            @classmethod
            def eval(cls, x: Any) -> Any:
                if getattr(x, "is_Integer", False):
                    return sympy.Integer(digit_sum(int(x)))
                return None

        _DIGITSUM_FN = DigitSum
    return _DIGITSUM_FN


# -- nominal sizes from declared bit widths ----------------------------------

def int_nominal(bits: Any) -> Any:
    """Nominal wire bytes of an integer of at most ``bits`` bits."""
    raw = cdiv(bits, 8)
    return 1 + vlen(raw) + raw


def ct_nominal(modulus_bits: Any) -> Any:
    """Nominal wire bytes of a ciphertext under a ``modulus_bits`` key.

    The Z_{N²} element has fixed width ``ceil(bitlen(N²)/8)``; for the
    byte-aligned moduli the protocol uses (64/128/.../2048 bits) that
    width equals ``ceil(2·bits/8)`` whatever the concrete modulus, so the
    nominal is exact, not a bound.
    """
    return 1 + KEY_ID_BYTES + cdiv(2 * modulus_bits, 8)


def str_nominal(s: str) -> int:
    """Wire bytes of a known string literal (exact, not a bound)."""
    return str_wire_len(s)


def bytes_nominal(length: Any) -> Any:
    """Nominal wire bytes of a byte string of ``length`` bytes."""
    return 1 + vlen(length) + length


def seq_nominal(count: Any) -> Any:
    """List/tuple/dict header: tag byte + count varint."""
    return 1 + vlen(count)


def obj_nominal(code: int, n_fields: int) -> int:
    """Registered-object header: tag + code varint + field-count varint."""
    return 1 + varint_len(code) + varint_len(n_fields)


def envelope_nominal(
    kind_id: Any,
    kind_version: Any,
    round_: Any,
    sender_len: Any,
    phase_len: Any,
    tag_len: Any,
    body_len: Any,
) -> Any:
    """Nominal framing bytes (header strings given by their lengths)."""
    return (
        ENVELOPE_FIXED_BYTES
        + vlen(kind_id)
        + vlen(kind_version)
        + vlen(round_)
        + vlen(sender_len) + sender_len
        + vlen(phase_len) + phase_len
        + vlen(tag_len) + tag_len
        + vlen(body_len)
    )


def kind_size_formula(kind: str, **kw: Any) -> Any:
    """Closed-form per-envelope size formula of a registered kind.

    Convenience re-export so formulas live next to the encoders; the
    model itself is :mod:`repro.accounting.symbolic` (which depends on
    this module, hence the lazy import).
    """
    from repro.accounting.symbolic import envelope_formula

    return envelope_formula(kind, **kw)
