"""Versioned registry of envelope kinds.

Every envelope carries a *kind* — a stable numeric id naming the payload
family it transports (``offline.beaver_a``, ``online.mu_shares`` ...).
Kinds are registered by the protocol module that owns the payload (the
five ``repro.core`` phase modules, the baselines, the extensions), keyed
to the bulletin tag(s) that family posts under; tags nobody claimed fall
back to :data:`GENERIC_KIND`.

The numeric id and the per-kind version travel in the envelope header, so
a future cross-process deployment can reject or migrate messages from a
different protocol revision instead of mis-decoding them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WireError


@dataclass(frozen=True)
class WireKind:
    """One registered envelope kind."""

    name: str
    kind_id: int
    version: int = 1
    tag: str | None = None          # exact bulletin tag match
    tag_prefix: str | None = None   # prefix match (e.g. "Con-mul-")
    description: str = ""


GENERIC_KIND = WireKind(
    "generic", 0, description="unregistered tag; payload is self-describing"
)

_BY_NAME: dict[str, WireKind] = {GENERIC_KIND.name: GENERIC_KIND}
_BY_ID: dict[int, WireKind] = {GENERIC_KIND.kind_id: GENERIC_KIND}
_BY_TAG: dict[str, WireKind] = {}
_BY_PREFIX: list[WireKind] = []
_standard_loaded = False


def ensure_standard_kinds() -> None:
    """Import the protocol modules that register the standard kinds.

    A protocol run registers kinds as an import side effect of the phase
    modules it executes.  A fresh decoding process (a socket-transport
    worker) runs no phase, so it calls this instead — the same modules,
    the same registrations.  Lazy for the usual reason: the wire package
    must stay importable without the protocol layers above it.
    """
    global _standard_loaded
    if _standard_loaded:
        return
    _standard_loaded = True
    import repro.core.offline  # noqa: F401
    import repro.core.online  # noqa: F401
    import repro.core.setup  # noqa: F401
    import repro.baselines.cdn  # noqa: F401
    import repro.extensions.it_yoso  # noqa: F401
    import repro.service.wire  # noqa: F401


def register_kind(
    name: str,
    kind_id: int,
    version: int = 1,
    tag: str | None = None,
    tag_prefix: str | None = None,
    description: str = "",
) -> WireKind:
    """Register (idempotently) an envelope kind.

    Re-registering an identical spec is a no-op — phase modules register
    at import time and may be imported repeatedly.  Conflicting specs
    (same id or name with different meaning) raise :class:`WireError`.
    """
    kind = WireKind(name, kind_id, version, tag, tag_prefix, description)
    existing = _BY_ID.get(kind_id) or _BY_NAME.get(name)
    if existing is not None:
        if existing == kind:
            return existing
        raise WireError(
            f"wire kind conflict: {kind} vs already-registered {existing}"
        )
    _BY_NAME[name] = kind
    _BY_ID[kind_id] = kind
    if tag is not None:
        if tag in _BY_TAG:
            raise WireError(f"tag {tag!r} already claimed by {_BY_TAG[tag]}")
        _BY_TAG[tag] = kind
    if tag_prefix is not None:
        _BY_PREFIX.append(kind)
        _BY_PREFIX.sort(key=lambda k: -len(k.tag_prefix or ""))
    return kind


def kind_for_tag(tag: str) -> WireKind:
    """The registered kind posting under ``tag`` (generic if unclaimed)."""
    kind = _BY_TAG.get(tag)
    if kind is not None:
        return kind
    for candidate in _BY_PREFIX:
        if tag.startswith(candidate.tag_prefix):  # longest prefix first
            return candidate
    return GENERIC_KIND


def kind_by_id(kind_id: int) -> WireKind:
    kind = _BY_ID.get(kind_id)
    if kind is None:
        ensure_standard_kinds()
        kind = _BY_ID.get(kind_id)
    if kind is None:
        raise WireError(f"unknown wire kind id {kind_id}")
    return kind


def kind_by_name(name: str) -> WireKind:
    kind = _BY_NAME.get(name)
    if kind is None:
        ensure_standard_kinds()
        kind = _BY_NAME.get(name)
    if kind is None:
        raise WireError(f"unknown wire kind {name!r}")
    return kind


def registered_kinds() -> tuple[WireKind, ...]:
    """All registered kinds, ordered by id (the WIRE.md kind table)."""
    return tuple(_BY_ID[i] for i in sorted(_BY_ID))
