"""The typed envelope every bulletin post travels in.

Layout (all integers varint unless noted)::

    magic   b"YW"                      2 bytes
    version 0x02                       1 byte
    kind id                            varint
    kind version                       varint
    round                              varint
    sender  len + utf-8
    phase   len + utf-8
    tag     len + utf-8
    body    len + canonical codec bytes
    crc32(frame so far)                4 bytes big-endian

The CRC covers the *entire* frame before it, header included (wire
version 2 — version 1 checksummed only the body, which let a corrupted
header field occasionally re-parse as a different valid header; the fuzz
suite flips every bit and demands a loud error).  It is an integrity
tripwire for transports, not an authenticity mechanism; the
bulletin-board model already gives every reader the same bytes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import WireDecodeError, WireError
from repro.wire.codec import read_varint, write_varint
from repro.wire.registry import WireKind, kind_by_id, kind_for_tag

WIRE_MAGIC = b"YW"
WIRE_VERSION = 2

_CRC_BYTES = 4


@dataclass(frozen=True)
class Envelope:
    """One decoded bulletin message: typed header + canonical body bytes."""

    kind: str
    sender: str
    round: int
    phase: str
    tag: str
    body: bytes


def encode_envelope(envelope: Envelope, kind: WireKind | None = None) -> bytes:
    """Serialize ``envelope``; ``kind`` defaults to the tag's registration."""
    if kind is None:
        kind = kind_for_tag(envelope.tag)
    out = bytearray(WIRE_MAGIC)
    out.append(WIRE_VERSION)
    write_varint(out, kind.kind_id)
    write_varint(out, kind.version)
    write_varint(out, envelope.round)
    for text in (envelope.sender, envelope.phase, envelope.tag):
        raw = text.encode("utf-8")
        write_varint(out, len(raw))
        out += raw
    write_varint(out, len(envelope.body))
    out += envelope.body
    out += zlib.crc32(bytes(out)).to_bytes(_CRC_BYTES, "big")
    return bytes(out)


def decode_envelope(data: bytes) -> Envelope:
    """Parse and integrity-check one envelope (rejects any malformation)."""
    if data[: len(WIRE_MAGIC)] != WIRE_MAGIC:
        raise WireDecodeError("not a wire envelope (bad magic)")
    pos = len(WIRE_MAGIC)
    if pos >= len(data):
        raise WireDecodeError("truncated envelope header")
    version = data[pos]
    pos += 1
    if version != WIRE_VERSION:
        raise WireDecodeError(f"unsupported wire version {version}")
    kind_id, pos = read_varint(data, pos)
    try:
        kind = kind_by_id(kind_id)
    except WireError as exc:
        raise WireDecodeError(str(exc)) from exc
    kind_version, pos = read_varint(data, pos)
    if kind_version != kind.version:
        raise WireDecodeError(
            f"kind {kind.name!r} version mismatch: "
            f"wire {kind_version}, registry {kind.version}"
        )
    round_, pos = read_varint(data, pos)
    texts = []
    for what in ("sender", "phase", "tag"):
        length, pos = read_varint(data, pos)
        if pos + length > len(data):
            raise WireDecodeError(f"truncated envelope {what}")
        try:
            texts.append(data[pos:pos + length].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise WireDecodeError(f"invalid utf-8 in {what}: {exc}") from exc
        pos += length
    body_len, pos = read_varint(data, pos)
    if pos + body_len + _CRC_BYTES != len(data):
        raise WireDecodeError("envelope length does not match frame")
    body = data[pos:pos + body_len]
    pos += body_len
    crc = int.from_bytes(data[pos:pos + _CRC_BYTES], "big")
    if crc != zlib.crc32(data[:pos]):
        raise WireDecodeError("envelope checksum mismatch")
    sender, phase, tag = texts
    return Envelope(kind.name, sender, round_, phase, tag, body)
