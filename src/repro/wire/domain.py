"""Wire registrations for the leaf crypto payload types.

The Σ-protocol proofs and threshold-decryption records are frozen
dataclasses of integers; registering them here (codes 1–15) keeps the
crypto modules free of any wire dependency.  Protocol-level payload
dataclasses (re-encryption, resharing — codes 16+) register next to their
definitions in :mod:`repro.core`, which *may* depend on the wire layer.

``PaillierCiphertext`` is not here: it has a dedicated type tag inside
the codec (key-id + fixed-width group element).
"""

from __future__ import annotations

from repro.nizk.sigma import (
    MultiplicationProof,
    PartialDecryptionProof,
    PlaintextDlogEqualityProof,
    PlaintextKnowledgeProof,
)
from repro.paillier.paillier import PaillierPublicKey
from repro.paillier.threshold import PartialDecryption
from repro.wire.codec import register_wire_dataclass

register_wire_dataclass(1, PaillierPublicKey)
register_wire_dataclass(2, PlaintextKnowledgeProof)
register_wire_dataclass(3, MultiplicationProof)
register_wire_dataclass(4, PartialDecryptionProof)
register_wire_dataclass(5, PlaintextDlogEqualityProof)
register_wire_dataclass(6, PartialDecryption)
