"""Wire layer: canonical byte encoding + transports for the bulletin board.

Everything a role posts crosses this subsystem as real bytes:

* :mod:`repro.wire.codec` — the canonical self-describing value codec
  (ints, strings, containers, Paillier ciphertexts, proofs, resharing
  messages ...) with a :class:`~repro.wire.codec.KeyRing` resolving
  ciphertext key ids;
* :mod:`repro.wire.envelope` — the versioned ``Envelope`` framing
  (kind, sender, round, phase, tag, body, checksum);
* :mod:`repro.wire.registry` — the versioned kind registry mapping
  bulletin tags to envelope kinds;
* :mod:`repro.wire.transport` — the ``Transport`` ABC with the in-memory
  and simulated (latency/drop) implementations;
* :mod:`repro.wire.socket_transport` — cross-process delivery: worker
  processes decode and re-encode every envelope, bootstrapping their
  key rings from announcements instead of shared state.

The byte lengths produced here are what the communication meter records:
the comm report measures the wire, it does not model it.
"""

from repro.wire.codec import (
    KeyAnnouncement,
    KeyRing,
    WireCodec,
    key_id,
    register_wire_dataclass,
    roundtrip_check,
)
from repro.wire.envelope import Envelope, decode_envelope, encode_envelope
from repro.wire.registry import (
    GENERIC_KIND,
    WireKind,
    ensure_standard_kinds,
    kind_by_id,
    kind_by_name,
    kind_for_tag,
    register_kind,
    registered_kinds,
)
from repro.wire.socket_transport import SocketTransport
from repro.wire.transport import (
    DropSpec,
    InMemoryTransport,
    SimTransport,
    Transport,
    TransportStats,
    make_transport,
)

# Codecs for the leaf crypto types (ciphertext keys, proofs, partial
# decryptions) register as an import side effect; the core phase modules
# register their own payload dataclasses the same way at definition site.
from repro.wire import domain as _domain  # noqa: F401  (registration)

__all__ = [
    "KeyAnnouncement",
    "KeyRing",
    "WireCodec",
    "key_id",
    "register_wire_dataclass",
    "roundtrip_check",
    "Envelope",
    "decode_envelope",
    "encode_envelope",
    "GENERIC_KIND",
    "WireKind",
    "ensure_standard_kinds",
    "kind_by_id",
    "kind_by_name",
    "kind_for_tag",
    "register_kind",
    "registered_kinds",
    "DropSpec",
    "InMemoryTransport",
    "SimTransport",
    "SocketTransport",
    "Transport",
    "TransportStats",
    "make_transport",
]
