"""The epoch state machine: announce, seal, evaluate, publish, reshare.

One :class:`EpochCoordinator` drives the whole service lifetime on a
single bulletin board::

    open_epoch() ── OPEN ──► seal() ── SEALED ──► evaluate() ── PUBLISHED
         ▲                                                          │
         └────────────────── RESHARED ◄── reshare() ◄───────────────┘

Every epoch has its own committee of ``n`` freshly sampled parties (the
YOSO discipline: nobody serves twice), each holding a Shamir share of
the *same* long-lived threshold Paillier key.  ``reshare()`` moves the
key to the next committee through the core protocol's proven resharing
path — :func:`repro.core.resharing.build_resharing` messages posted on
the board under ``svc-reshare-*`` tags, publicly verified with
:func:`verified_contributors`, recombined by each recipient with
:func:`receive_share`.  A fail-stop crash (:meth:`crash`) simply means
that member posts nothing: as long as at least ``t+1`` resharings
verify, the key survives; its partial decryptions are likewise just
absent from the combine set.

Committee sizing comes from the sortition planner via
:meth:`repro.core.params.ProtocolParams.from_gap` — the service reuses
the exact (n, t) the paper's analysis assigns to a corruption gap ε.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

from repro.core.resharing import (
    build_resharing,
    next_verifications,
    receive_share,
    verified_contributors,
)
from repro.engine.batch import partial_decrypt_many
from repro.errors import ParameterError, ServiceError
from repro.nizk.params import ProofParams
from repro.paillier.paillier import PaillierKeyPair, _keypair_from_primes
from repro.paillier.primes import random_prime
from repro.paillier.threshold import ThresholdPaillier
from repro.rng import fresh_rng
from repro.service.ingest import EpochLedger
from repro.service.wire import (
    EpochAnnouncement,
    EpochResult,
    epoch_tag,
    reshare_tag,
    result_tag,
)
from repro.service.workloads import ServiceWorkload
from repro.wire.codec import KeyAnnouncement

__all__ = [
    "CommitteeMember",
    "EpochCoordinator",
    "EpochState",
    "ServiceCommittee",
]


class EpochState(str, Enum):
    OPEN = "open"
    SEALED = "sealed"
    PUBLISHED = "published"
    RESHARED = "reshared"


@dataclass
class CommitteeMember:
    """One epoch-committee seat: an index, a role keypair, a liveness bit."""

    index: int
    keypair: PaillierKeyPair
    crashed: bool = False


@dataclass
class ServiceCommittee:
    """The n parties holding this epoch's threshold-key shares."""

    epoch: int
    members: list[CommitteeMember]

    def public_keys(self):
        return [m.keypair.public for m in self.members]

    def member(self, index: int) -> CommitteeMember:
        for m in self.members:
            if m.index == index:
                return m
        raise ParameterError(f"no committee member with index {index}")

    def surviving(self) -> list[CommitteeMember]:
        return [m for m in self.members if not m.crashed]


class EpochCoordinator:
    """Drives epochs of one workload over one board and one threshold key."""

    def __init__(
        self,
        board,
        workload: ServiceWorkload,
        *,
        n: int,
        t: int,
        te_bits: int = 64,
        role_key_bits: int = 64,
        rng: random.Random | None = None,
        input_window: int = 1,
        inner_kwargs: dict | None = None,
        sender: str = "coordinator",
    ):
        if t + 1 > n:
            raise ParameterError(f"t+1={t + 1} shares cannot come from n={n}")
        self.board = board
        self.workload = workload
        self.n = n
        self.t = t
        self.role_key_bits = role_key_bits
        self.rng = rng if rng is not None else fresh_rng()
        self.input_window = input_window
        self.inner_kwargs = dict(inner_kwargs or {})
        self.sender = sender

        self.tpk, shares = ThresholdPaillier.keygen(
            n, t, bits=te_bits, rng=self.rng
        )
        # Both sides of every Σ-proof (client submissions here, resharing
        # proofs below) derive challenge sizes from the announced modulus
        # itself, so clients need no out-of-band parameter channel.
        self.proof_params = ProofParams.for_modulus_bits(
            self.tpk.n.bit_length()
        )
        self.shares = {s.index: s for s in shares}
        self.verifications = {s.index: s.verification for s in shares}
        self.committee = self._fresh_committee(0)
        self.epoch = 0
        self.state: EpochState | None = None
        self.announcement: EpochAnnouncement | None = None
        # Workload circuits depend only on the population size; successive
        # epochs with the same head-count reuse the built circuit (the
        # inner MPC's compiled program and packed-sharing matrices are
        # likewise reused via their own caches keyed on the circuit and
        # the scheme geometry).
        self._circuit_cache: dict[int, object] = {}

    # -- committee sampling ---------------------------------------------------

    def _fresh_keypair(self) -> PaillierKeyPair:
        half = self.role_key_bits // 2
        p = random_prime(half, rng=self.rng)
        q = random_prime(half, rng=self.rng)
        while q == p:
            q = random_prime(half, rng=self.rng)
        return _keypair_from_primes(p, q)

    def _fresh_committee(self, epoch: int) -> ServiceCommittee:
        return ServiceCommittee(
            epoch,
            [
                CommitteeMember(i, self._fresh_keypair())
                for i in range(1, self.n + 1)
            ],
        )

    def _require(self, *states) -> None:
        if self.state not in states:
            wanted = " or ".join(str(s) for s in states)
            raise ServiceError(
                f"epoch {self.epoch} is in state {self.state}, need {wanted}"
            )

    # -- lifecycle ------------------------------------------------------------

    def open_epoch(self) -> EpochAnnouncement:
        """Announce the epoch: workload, window, and the epoch key."""
        self._require(None, EpochState.RESHARED)
        announcement = EpochAnnouncement(
            epoch=self.epoch,
            workload=self.workload.name,
            slots=self.workload.slots(),
            input_window=self.input_window,
            key=KeyAnnouncement(self.tpk.n),
            verification_base=self.tpk.verification_base,
        )
        self.board.advance_round()
        # Cross-process decoders learn the epoch key both ways: in-stream
        # (decoding the KeyAnnouncement registers it) and via the
        # transport's own key broadcast (a no-op in memory/sim).
        self.board.transport.announce_keys([self.tpk.n])
        self.board.post(
            "epoch", self.sender, epoch_tag(self.epoch), announcement
        )
        self.board.advance_round()  # all ingest posts share this round
        self.state = EpochState.OPEN
        self.announcement = announcement
        return announcement

    def seal(self) -> None:
        """Close the input window; late submissions miss this epoch."""
        self._require(EpochState.OPEN)
        self.board.advance_round()
        self.state = EpochState.SEALED

    def crash(self, index: int) -> None:
        """Fail-stop one committee member (it posts nothing from now on)."""
        member = self.committee.member(index)
        if member.crashed:
            return
        if len(self.committee.surviving()) - 1 < self.t + 1:
            raise ServiceError(
                f"crashing member {index} would leave fewer than "
                f"t+1={self.t + 1} live shares"
            )
        member.crashed = True

    def evaluate(self, ledger: EpochLedger, seed: int | None = None):
        """Aggregate, threshold-decrypt, run the committee MPC, publish.

        Returns ``(EpochResult, inner MpcResult)``; the result is also
        posted on the board under the epoch's ``svc-result-*`` tag.
        """
        from repro.core import run_mpc

        self._require(EpochState.SEALED)
        accepted = list(ledger.accepted.values())
        if not accepted:
            raise ServiceError(
                f"epoch {self.epoch} sealed with no accepted submissions"
            )
        columns = [
            [payload.ciphertexts[slot] for payload in accepted]
            for slot in range(self.workload.slots())
        ]
        aggregates = self.workload.aggregate(self.tpk, columns)
        contributors, totals = self._threshold_decrypt(aggregates)

        population = len(accepted)
        circuit = self._circuit_cache.get(population)
        if circuit is None:
            circuit = self.workload.circuit(population)
            self._circuit_cache[population] = circuit
        inner = run_mpc(
            circuit,
            self.workload.panel_inputs(totals, population),
            seed=seed if seed is not None else self.rng.randrange(1 << 30),
            **self.inner_kwargs,
        )
        outputs = inner.outputs[self.workload.recipient]

        result = EpochResult(
            epoch=self.epoch,
            workload=self.workload.name,
            outputs=tuple(int(v) for v in outputs),
            contributors=tuple(contributors),
        )
        self.board.advance_round()
        self.board.post(
            "publish", self.sender, result_tag(self.epoch), result
        )
        self.state = EpochState.PUBLISHED
        return result, inner

    def _threshold_decrypt(self, aggregates):
        """TDec of the aggregate vector by the surviving committee."""
        survivors = self.committee.surviving()
        if len(survivors) < self.t + 1:
            raise ServiceError(
                f"only {len(survivors)} live members, need t+1={self.t + 1}"
            )
        by_member = {
            m.index: partial_decrypt_many(
                self.tpk, self.shares[m.index], aggregates
            )
            for m in survivors
        }
        contributors = sorted(by_member)
        totals = [
            ThresholdPaillier.combine(
                self.tpk, [by_member[i][j] for i in contributors]
            )
            for j in range(len(aggregates))
        ]
        return contributors, totals

    def reshare(self) -> list[int]:
        """Hand the key to a fresh committee; returns the contributor set.

        Crashed members contribute nothing; the handoff succeeds from any
        ``t+1`` publicly verified resharings.  Afterwards the coordinator
        holds the next epoch's committee, shares, and verification keys,
        and the epoch counter advances.
        """
        self._require(EpochState.PUBLISHED)
        next_committee = self._fresh_committee(self.epoch + 1)
        recipient_pks = next_committee.public_keys()
        # Cross-process decoders must know the recipient role keys before
        # the first resharing envelope arrives — the same contract as
        # YosoNetwork.sample_committee for the core protocol's committees.
        self.board.transport.announce_keys([pk.n for pk in recipient_pks])
        previous_epoch = next(iter(self.shares.values())).epoch

        self.board.advance_round()
        for member in self.committee.surviving():
            message = build_resharing(
                self.tpk,
                self.shares[member.index],
                recipient_pks,
                self.proof_params,
                rng=self.rng,
            )
            self.board.post(
                "reshare",
                f"member-{member.index}",
                reshare_tag(self.epoch, member.index),
                {"tsk": message},
            )

        # Read back from the board (the byte-real record is authoritative).
        resharings = {
            member.index: self.board.latest(
                reshare_tag(self.epoch, member.index)
            )["tsk"]
            for member in self.committee.surviving()
        }
        contributor_set = verified_contributors(
            self.tpk,
            resharings,
            self.verifications,
            recipient_pks,
            self.proof_params,
        )
        self.shares = {
            member.index: receive_share(
                self.tpk,
                member.index,
                member.keypair.secret,
                resharings,
                contributor_set,
                previous_epoch,
            )
            for member in next_committee.members
        }
        self.verifications = next_verifications(
            self.tpk, resharings, contributor_set
        )
        self.committee = next_committee
        self.epoch += 1
        self.state = EpochState.RESHARED
        self.announcement = None
        return contributor_set
