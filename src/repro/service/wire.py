"""Wire kinds and payload dataclasses for the client-aided service.

The service speaks four envelope kinds on top of the existing bulletin
format (docs/SERVICE.md):

* ``service.client_input`` — a client's single utterance: slot
  ciphertexts under the epoch key plus one plaintext-knowledge Σ-proof
  per slot, bound to the epoch and client id through the proof context;
* ``service.epoch`` — the coordinator opens an epoch: workload name,
  slot count, input window, the epoch public key as a mid-stream
  :class:`KeyAnnouncement`, and the threshold verification base;
* ``service.result`` — the published aggregate outputs plus the
  committee members whose partial decryptions produced them;
* ``service.reshare`` — one committee member's encrypted resharing of
  its threshold key share to the next epoch's committee (the payload is
  the existing :class:`repro.core.resharing.EncryptedResharing`).

Everything here depends only on the wire/crypto layers below it, so the
registry and codec can lazy-import this module from a fresh decoding
process without pulling in the service runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MalformedSubmissionError
from repro.nizk.sigma import PlaintextKnowledgeProof
from repro.paillier.paillier import PaillierCiphertext
from repro.wire.codec import KeyAnnouncement, register_wire_dataclass
from repro.wire.registry import register_kind

# -- bulletin tags -----------------------------------------------------------

CLIENT_INPUT_PREFIX = "svc-input:"
EPOCH_PREFIX = "svc-epoch-"
RESULT_PREFIX = "svc-result-"
RESHARE_PREFIX = "svc-reshare-"


def client_input_tag(epoch: int, client_id: str) -> str:
    return f"{CLIENT_INPUT_PREFIX}{epoch}:{client_id}"


def epoch_tag(epoch: int) -> str:
    return f"{EPOCH_PREFIX}{epoch}"


def result_tag(epoch: int) -> str:
    return f"{RESULT_PREFIX}{epoch}"


def reshare_tag(epoch: int, sender_index: int) -> str:
    return f"{RESHARE_PREFIX}{epoch}-{sender_index}"


def proof_context(epoch: int, client_id: str, slot: int) -> str:
    """Fiat–Shamir context binding a slot proof to (epoch, client, slot).

    Replaying another epoch's ciphertext+proof pair, or another client's,
    changes the context and therefore the challenge — the proof fails
    verification instead of needing a bespoke replay rule.
    """
    return f"svc:{epoch}:{client_id}:{slot}"


# -- payload dataclasses -----------------------------------------------------

@dataclass(frozen=True)
class ClientInput:
    """One client's complete submission for one epoch."""

    client_id: str
    epoch: int
    ciphertexts: tuple[PaillierCiphertext, ...]
    proofs: tuple[PlaintextKnowledgeProof, ...]

    def __post_init__(self):
        if not isinstance(self.client_id, str) or not self.client_id:
            raise MalformedSubmissionError("client id must be non-empty text")
        if not isinstance(self.epoch, int) or self.epoch < 0:
            raise MalformedSubmissionError("epoch must be a natural number")
        if not (
            isinstance(self.ciphertexts, tuple)
            and self.ciphertexts
            and all(isinstance(c, PaillierCiphertext) for c in self.ciphertexts)
        ):
            raise MalformedSubmissionError(
                "ciphertexts must be a non-empty tuple of Paillier ciphertexts"
            )
        if not (
            isinstance(self.proofs, tuple)
            and all(isinstance(p, PlaintextKnowledgeProof) for p in self.proofs)
        ):
            raise MalformedSubmissionError(
                "proofs must be a tuple of plaintext-knowledge proofs"
            )
        if len(self.proofs) != len(self.ciphertexts):
            raise MalformedSubmissionError(
                f"{len(self.ciphertexts)} ciphertexts but "
                f"{len(self.proofs)} proofs"
            )


@dataclass(frozen=True)
class EpochAnnouncement:
    """The coordinator's opening post for one epoch."""

    epoch: int
    workload: str
    slots: int
    input_window: int
    key: KeyAnnouncement
    verification_base: int

    def __post_init__(self):
        if not isinstance(self.epoch, int) or self.epoch < 0:
            raise MalformedSubmissionError("epoch must be a natural number")
        if not isinstance(self.workload, str) or not self.workload:
            raise MalformedSubmissionError("workload name must be non-empty")
        if not isinstance(self.slots, int) or self.slots < 1:
            raise MalformedSubmissionError("slot count must be positive")
        if not isinstance(self.input_window, int) or self.input_window < 1:
            raise MalformedSubmissionError("input window must be positive")
        if not isinstance(self.key, KeyAnnouncement):
            raise MalformedSubmissionError("epoch key must be a KeyAnnouncement")
        if not isinstance(self.verification_base, int) or (
            self.verification_base < 1
        ):
            raise MalformedSubmissionError("verification base must be positive")


@dataclass(frozen=True)
class EpochResult:
    """The published outcome of one epoch's aggregate evaluation."""

    epoch: int
    workload: str
    outputs: tuple[int, ...]
    contributors: tuple[int, ...]

    def __post_init__(self):
        if not isinstance(self.epoch, int) or self.epoch < 0:
            raise MalformedSubmissionError("epoch must be a natural number")
        if not isinstance(self.workload, str) or not self.workload:
            raise MalformedSubmissionError("workload name must be non-empty")
        if not (
            isinstance(self.outputs, tuple)
            and all(isinstance(v, int) for v in self.outputs)
        ):
            raise MalformedSubmissionError("outputs must be a tuple of ints")
        if not (
            isinstance(self.contributors, tuple)
            and all(isinstance(v, int) for v in self.contributors)
        ):
            raise MalformedSubmissionError("contributors must be int indices")


# -- registrations -----------------------------------------------------------

#: Codec object codes (16–19 are the re-encryption/resharing payloads).
CLIENT_INPUT_CODE = 20
EPOCH_ANNOUNCEMENT_CODE = 21
EPOCH_RESULT_CODE = 22

register_wire_dataclass(CLIENT_INPUT_CODE, ClientInput)
register_wire_dataclass(EPOCH_ANNOUNCEMENT_CODE, EpochAnnouncement)
register_wire_dataclass(EPOCH_RESULT_CODE, EpochResult)

register_kind(
    "service.client_input", 30, tag_prefix=CLIENT_INPUT_PREFIX,
    description="client submission: slot ciphertexts + knowledge proofs",
)
register_kind(
    "service.epoch", 31, tag_prefix=EPOCH_PREFIX,
    description="epoch opening: workload, window, epoch key announcement",
)
register_kind(
    "service.result", 32, tag_prefix=RESULT_PREFIX,
    description="published aggregate outputs for one epoch",
)
register_kind(
    "service.reshare", 33, tag_prefix=RESHARE_PREFIX,
    description="encrypted threshold-share resharing to the next committee",
)
