"""The long-lived MPC service: one façade over queue, board, and epochs.

:class:`MpcService` wires the pieces together the way ``repro serve``
runs them: a bounded ingest queue feeding the validation pipeline, a
byte-real bulletin board over a pluggable transport, and an
:class:`~repro.service.epoch.EpochCoordinator` holding the threshold key
and its committees.  Committee parameters (n, t) come from the sortition
planner via :meth:`ProtocolParams.from_gap`, exactly as the core
protocol sizes its own committees.

After every epoch the service cross-checks its own bulletin board
against the symbolic cost model (``verify_cost_exactness`` with
:func:`~repro.accounting.symbolic.space_for_service`): every
``ClientInput``, announcement, result, and resharing envelope must match
its closed-form byte formula exactly.  The inner MPC run performs the
same check on its own board.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any

from repro.accounting.symbolic import (
    cost_check_enabled,
    space_for_service,
    verify_cost_exactness,
)
from repro.core.params import ProtocolParams
from repro.errors import ServiceError
from repro.service.epoch import EpochCoordinator
from repro.service.ingest import EpochLedger, IngestPipeline, IngestQueue
from repro.service.wire import ClientInput, EpochAnnouncement, EpochResult
from repro.service.workloads import make_workload
from repro.wire.transport import Transport, make_transport
from repro.yoso.bulletin import BulletinBoard

__all__ = ["EpochSummary", "MpcService", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to stand the service up."""

    workload: str = "statistics"
    n: int = 5                      # committee size (inner MPC uses it too)
    epsilon: float = 0.25           # sortition corruption gap -> (t, k)
    te_bits: int = 64
    role_key_bits: int = 64
    statistics_groups: int = 4
    auction_levels: int = 8
    queue_capacity: int = 8192
    batch_size: int = 512
    input_window: int = 1
    seed: int = 2026
    transport: Any = "memory"       # spec string or a Transport instance
    cost_check: bool = True


@dataclass
class EpochSummary:
    """What one closed epoch produced, and what it cost."""

    epoch: int
    workload: str
    population: int
    rejections: dict[str, int]
    result: EpochResult
    decoded: dict[str, Any]
    contributors: tuple[int, ...]
    reshare_contributors: tuple[int, ...]
    ingest_seconds: float
    ingest_rate: float              # processed submissions per second
    evaluate_seconds: float
    reshare_seconds: float
    online_bytes_per_gate: float
    board_bytes: int
    inner_result: Any = field(repr=False, default=None)


class MpcService:
    """A client-aided MPC service with epoch lifecycle and resharing."""

    def __init__(self, config: ServiceConfig | None = None, **overrides):
        cfg = config if config is not None else ServiceConfig()
        for key, value in overrides.items():
            if not hasattr(cfg, key):
                raise ServiceError(f"unknown service option {key!r}")
            setattr(cfg, key, value)
        self.config = cfg

        planned = ProtocolParams.from_gap(
            cfg.n, cfg.epsilon,
            te_bits=cfg.te_bits, role_key_bits=cfg.role_key_bits,
        )
        self.t = planned.t

        self._owns_transport = not isinstance(cfg.transport, Transport)
        transport = (
            make_transport(cfg.transport)
            if self._owns_transport
            else cfg.transport
        )
        self.board = BulletinBoard(transport=transport)
        self.rng = random.Random(cfg.seed)
        self.workload = make_workload(
            cfg.workload,
            statistics_groups=cfg.statistics_groups,
            auction_levels=cfg.auction_levels,
        )
        self.coordinator = EpochCoordinator(
            self.board,
            self.workload,
            n=cfg.n,
            t=self.t,
            te_bits=cfg.te_bits,
            role_key_bits=cfg.role_key_bits,
            rng=self.rng,
            input_window=cfg.input_window,
            inner_kwargs={
                "n": cfg.n,
                "epsilon": cfg.epsilon,
                "te_bits": cfg.te_bits,
                "role_key_bits": cfg.role_key_bits,
            },
        )
        self.queue = IngestQueue(cfg.queue_capacity)
        self.ledgers: dict[int, EpochLedger] = {}
        self._pipeline: IngestPipeline | None = None
        self._ingest_seconds = 0.0
        self._ingest_processed = 0

    # -- plumbing -------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.coordinator.epoch

    @property
    def announcement(self) -> EpochAnnouncement | None:
        return self.coordinator.announcement

    def ledger(self, epoch: int | None = None) -> EpochLedger:
        epoch = self.epoch if epoch is None else epoch
        if epoch not in self.ledgers:
            raise ServiceError(f"no ledger for epoch {epoch}")
        return self.ledgers[epoch]

    def close(self) -> None:
        if self._owns_transport:
            self.board.transport.close()

    def __enter__(self) -> "MpcService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- lifecycle ------------------------------------------------------------

    def open_epoch(self) -> EpochAnnouncement:
        announcement = self.coordinator.open_epoch()
        ledger = EpochLedger(announcement.epoch)
        self.ledgers[announcement.epoch] = ledger
        self._pipeline = IngestPipeline(
            self.board,
            announcement,
            ledger,
            params=self.coordinator.proof_params,
        )
        self._ingest_seconds = 0.0
        self._ingest_processed = 0
        return announcement

    def submit(self, item: ClientInput | bytes) -> None:
        """Enqueue one submission; raises ``ServiceOverloaded`` when full."""
        if self._pipeline is None:
            raise ServiceError("no open epoch; call open_epoch() first")
        self.queue.submit(item)

    def ingest(self) -> int:
        """Drain and validate everything queued; returns accepted count."""
        if self._pipeline is None:
            raise ServiceError("no open epoch; call open_epoch() first")
        pending = len(self.queue)
        started = time.perf_counter()  # repro-lint: disable=DET002 -- ingest-rate metric
        accepted = self._pipeline.drain(self.queue, self.config.batch_size)
        # repro-lint: disable=DET002 -- ingest-rate metric, never on the wire
        self._ingest_seconds += time.perf_counter() - started
        self._ingest_processed += pending
        return accepted

    def close_epoch(
        self, *, crash: int | None = None, seed: int | None = None
    ) -> EpochSummary:
        """Seal, evaluate, publish, and reshare the current epoch.

        ``crash`` fail-stops that committee member before evaluation: it
        contributes neither partial decryptions nor a resharing.
        """
        coordinator = self.coordinator
        epoch = self.epoch
        self.ingest()
        ledger = self.ledger(epoch)
        coordinator.seal()
        if crash is not None:
            coordinator.crash(crash)

        started = time.perf_counter()  # repro-lint: disable=DET002 -- phase timing metric
        result, inner = coordinator.evaluate(ledger, seed=seed)
        # repro-lint: disable=DET002 -- phase timing metric, never on the wire
        evaluate_seconds = time.perf_counter() - started

        started = time.perf_counter()  # repro-lint: disable=DET002 -- phase timing metric
        reshare_contributors = coordinator.reshare()
        # repro-lint: disable=DET002 -- phase timing metric, never on the wire
        reshare_seconds = time.perf_counter() - started

        self._pipeline = None
        if self.config.cost_check and cost_check_enabled():
            self.verify_costs()

        circuit = inner.circuit
        processed = self._ingest_processed
        return EpochSummary(
            epoch=epoch,
            workload=self.workload.name,
            population=ledger.population,
            rejections=ledger.rejection_counts(),
            result=result,
            decoded=self.workload.decode_outputs(
                result.outputs, ledger.population
            ),
            contributors=result.contributors,
            reshare_contributors=tuple(reshare_contributors),
            ingest_seconds=self._ingest_seconds,
            ingest_rate=(
                processed / self._ingest_seconds
                if self._ingest_seconds > 0
                else 0.0
            ),
            evaluate_seconds=evaluate_seconds,
            reshare_seconds=reshare_seconds,
            online_bytes_per_gate=(
                inner.online_mul_bytes() / circuit.n_multiplications
                if circuit.n_multiplications
                else 0.0
            ),
            board_bytes=self.board.encoded_total_bytes(),
            inner_result=inner,
        )

    def verify_costs(self):
        """Byte-exactness of every envelope on the service's own board."""
        return verify_cost_exactness(
            bulletin=self.board,
            space=space_for_service(
                n=self.config.n,
                t=self.t,
                te_bits=self.config.te_bits,
                role_key_bits=self.config.role_key_bits,
                proof_params=self.coordinator.proof_params,
            ),
        )
