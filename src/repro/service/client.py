"""The client side of the service: build one submission from one post.

A service client never joins the MPC.  It reads the epoch announcement
from the bulletin board (everything it needs — epoch number, workload,
slot count, and the epoch public key as a wire
:class:`~repro.wire.codec.KeyAnnouncement` — is in that single payload),
encrypts its slot values under the epoch key, attaches one
plaintext-knowledge Σ-proof per slot, and posts the resulting
:class:`~repro.service.wire.ClientInput`.  That one utterance is its
whole participation, the client-aided division of labour the paper
inherits from Ohata–Nuida.

Proof contexts bind each proof to ``(epoch, client id, slot)``; the
challenge parameters derive from the announced modulus itself
(``ProofParams.for_modulus_bits(modulus.bit_length())``), so client and
service agree on them with no side channel.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.engine.batch import encrypt_many
from repro.errors import MalformedSubmissionError
from repro.nizk.params import ProofParams
from repro.nizk.sigma import PlaintextKnowledgeProof
from repro.service.wire import (
    ClientInput,
    EpochAnnouncement,
    client_input_tag,
    proof_context,
)
from repro.service.workloads import encode_slots

__all__ = ["ServiceClient"]


class ServiceClient:
    """Builds epoch-bound submissions from the epoch announcement alone."""

    def __init__(
        self,
        client_id: str,
        announcement: EpochAnnouncement,
        rng: random.Random | None = None,
        params: ProofParams | None = None,
    ):
        if not isinstance(client_id, str) or not client_id:
            raise MalformedSubmissionError("client id must be non-empty text")
        self.client_id = client_id
        self.announcement = announcement
        self.public = announcement.key.public_key()
        self.rng = rng
        self.params = (
            params
            if params is not None
            else ProofParams.for_modulus_bits(self.public.n.bit_length())
        )

    @property
    def tag(self) -> str:
        """The bulletin tag this client's submission travels under."""
        return client_input_tag(self.announcement.epoch, self.client_id)

    def build_input(self, value: int) -> ClientInput:
        """Encode ``value`` for the announced workload, encrypt, and prove."""
        return self.build_from_slots(
            encode_slots(
                self.announcement.workload, self.announcement.slots, value
            )
        )

    def build_from_slots(self, slot_values: Sequence[int]) -> ClientInput:
        """A submission from already-encoded slot plaintexts."""
        if len(slot_values) != self.announcement.slots:
            raise MalformedSubmissionError(
                f"workload {self.announcement.workload!r} expects "
                f"{self.announcement.slots} slots, got {len(slot_values)}"
            )
        epoch = self.announcement.epoch
        randomizers = [
            self.public.random_unit(self.rng) for _ in slot_values
        ]
        ciphertexts = encrypt_many(self.public, list(slot_values), randomizers)
        proofs = tuple(
            PlaintextKnowledgeProof.prove(
                self.public,
                ciphertext,
                message,
                randomness,
                self.params,
                rng=self.rng,
                context=proof_context(epoch, self.client_id, slot),
            )
            for slot, (ciphertext, message, randomness) in enumerate(
                zip(ciphertexts, slot_values, randomizers)
            )
        )
        return ClientInput(
            client_id=self.client_id,
            epoch=epoch,
            ciphertexts=tuple(ciphertexts),
            proofs=proofs,
        )
