"""Service-side workload adapters: slot encoding, aggregation, evaluation.

A :class:`ServiceWorkload` describes one aggregate computation end to end:

* ``encode`` — how a client turns its private value into the slot
  plaintexts it encrypts (also exposed as :func:`encode_slots` so the
  lightweight :class:`~repro.service.client.ServiceClient` needs nothing
  but the epoch announcement);
* ``aggregate`` — how the coordinator collapses the accepted slot
  ciphertext columns homomorphically (this is where 10^4–10^6 client
  submissions shrink to a panel-sized vector, entirely in Z*_{N²});
* ``panel_inputs`` / ``circuit`` — how the threshold-decrypted aggregates
  feed the committee-evaluated MPC circuit from
  :mod:`repro.circuits.workloads`;
* ``decode_outputs`` — how the published circuit outputs read back as the
  workload's answer.

Trust note (docs/SERVICE.md): the per-group aggregates are threshold-
decrypted before the final MPC, so the service reveals partial sums
(statistics) or the bid histogram (auction) — coarse aggregates, never an
individual submission.  The Σ-proof guarantees plaintext *knowledge*, not
slot consistency (a statistics client could submit x² ≠ x·x); both are
documented simplifications of the client-aided model, not silent gaps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from repro.circuits.workloads import (
    grouped_statistics_circuit,
    histogram_second_price_circuit,
)
from repro.errors import MalformedSubmissionError, ParameterError, ServiceError
from repro.paillier.paillier import PaillierCiphertext
from repro.paillier.threshold import ThresholdPublicKey

__all__ = [
    "AuctionWorkload",
    "ServiceWorkload",
    "StatisticsWorkload",
    "WORKLOAD_NAMES",
    "encode_slots",
    "make_workload",
]

WORKLOAD_NAMES = ("statistics", "auction")

#: Statistics inputs must stay below this so (population · max)² fits the
#: inner MPC ring for populations up to ~10^6 (see class docstring).
STATISTICS_MAX_VALUE = 1024


def encode_slots(workload: str, slots: int, value: int) -> list[int]:
    """Client-side slot plaintexts for ``value`` under ``workload``.

    Everything a client needs is in the epoch announcement: the workload
    name and the slot count (which, for the auction, *is* the number of
    bid levels).
    """
    if not isinstance(value, int):
        raise MalformedSubmissionError("submission value must be an int")
    if workload == "statistics":
        if not 0 <= value < STATISTICS_MAX_VALUE:
            raise MalformedSubmissionError(
                f"statistics value must be in [0, {STATISTICS_MAX_VALUE})"
            )
        return [value, value * value]
    if workload == "auction":
        if not 0 <= value < slots:
            raise MalformedSubmissionError(
                f"bid must be a level in [0, {slots})"
            )
        return [1 if j == value else 0 for j in range(slots)]
    raise ParameterError(f"unknown workload {workload!r}")


def _column_sum(
    tpk: ThresholdPublicKey, ciphertexts: Sequence[PaillierCiphertext]
) -> PaillierCiphertext:
    """Homomorphic sum of a ciphertext column (Enc(0;1) when empty)."""
    n2 = tpk.n_squared
    acc = 1  # = (1 + 0·N) · 1^N, the deterministic encryption of zero
    for ciphertext in ciphertexts:
        acc = acc * ciphertext.value % n2
    return PaillierCiphertext(tpk.paillier, acc)


class ServiceWorkload(ABC):
    """One aggregate computation the service can run every epoch."""

    name: str
    recipient: str

    @abstractmethod
    def slots(self) -> int:
        """Ciphertext slots per client submission."""

    def encode(self, value: int) -> list[int]:
        return encode_slots(self.name, self.slots(), value)

    @abstractmethod
    def aggregate(
        self,
        tpk: ThresholdPublicKey,
        columns: Sequence[Sequence[PaillierCiphertext]],
    ) -> list[PaillierCiphertext]:
        """Collapse per-slot ciphertext columns into the decryption vector."""

    @abstractmethod
    def panel_inputs(
        self, totals: Sequence[int], population: int
    ) -> dict[str, list[int]]:
        """Decrypted aggregates → per-panel-member MPC inputs."""

    @abstractmethod
    def circuit(self, population: int):
        """The committee-evaluated aggregate circuit."""

    @abstractmethod
    def decode_outputs(
        self, outputs: Sequence[int], population: int
    ) -> dict[str, Any]:
        """Published circuit outputs → the workload's answer."""


class StatisticsWorkload(ServiceWorkload):
    """Population mean/variance over one private measurement per client.

    Clients submit ``[x, x²]``; the coordinator splits the accepted
    submissions into ``groups`` slices and homomorphically sums each
    slice's two columns, so the committee threshold-decrypts just ``2G``
    values however many clients took part.  The decrypted partial sums
    feed :func:`grouped_statistics_circuit`, whose outputs (S, Q, V)
    post-process to mean and variance in the clear.

    Value bound: with x < 2^10 and population ≤ 10^6, both Q = N·Σx² and
    S² stay below ~2^60 < N_TE, so nothing wraps in either ring.
    """

    name = "statistics"
    recipient = "analyst"

    def __init__(self, groups: int = 4):
        if groups < 1:
            raise ParameterError("need at least one aggregation group")
        self.groups = groups

    def slots(self) -> int:
        return 2

    def effective_groups(self, population: int) -> int:
        return max(1, min(self.groups, population))

    def aggregate(self, tpk, columns):
        population = len(columns[0])
        g_count = self.effective_groups(population)
        bounds = [population * g // g_count for g in range(g_count + 1)]
        out = []
        for g in range(g_count):
            lo, hi = bounds[g], bounds[g + 1]
            out.append(_column_sum(tpk, columns[0][lo:hi]))
            out.append(_column_sum(tpk, columns[1][lo:hi]))
        return out

    def panel_inputs(self, totals, population):
        g_count = self.effective_groups(population)
        return {
            f"panel{g}": [totals[2 * g], totals[2 * g + 1]]
            for g in range(g_count)
        }

    def circuit(self, population: int):
        return grouped_statistics_circuit(
            self.effective_groups(population), population,
            recipient=self.recipient,
        )

    def decode_outputs(self, outputs, population):
        s, q, v = outputs
        return {
            "population": population,
            "sum": s,
            "scaled_second_moment": q,
            "mean": s / population,
            "variance": v / population**2,
        }


class AuctionWorkload(ServiceWorkload):
    """Sealed-bid Vickrey auction over a fixed grid of bid levels.

    Clients one-hot encode their bid over ``levels`` slots; the
    coordinator homomorphically sums each level's column into a bid
    histogram, the committee decrypts the ``levels`` counts, and
    :func:`histogram_second_price_circuit` resolves winner level, winner
    count, and the Vickrey price.  The MPC cost scales with the histogram
    width, not the number of bidders.
    """

    name = "auction"
    recipient = "auctioneer"

    def __init__(self, levels: int = 8):
        if levels < 2:
            raise ParameterError("need at least two bid levels")
        self.levels = levels

    def slots(self) -> int:
        return self.levels

    def aggregate(self, tpk, columns):
        return [_column_sum(tpk, column) for column in columns]

    def panel_inputs(self, totals, population):
        return {
            f"level{j}": [c, 1 if c > 0 else 0, 1 if c > 1 else 0]
            for j, c in enumerate(totals)
        }

    def circuit(self, population: int):
        return histogram_second_price_circuit(
            self.levels, recipient=self.recipient
        )

    def decode_outputs(self, outputs, population):
        price, winner_level, winner_count = outputs
        return {
            "population": population,
            "price": price,
            "winner_level": winner_level,
            "winner_count": winner_count,
        }


def make_workload(
    name: str, *, statistics_groups: int = 4, auction_levels: int = 8
) -> ServiceWorkload:
    """Instantiate a workload by its announced name."""
    if name == "statistics":
        return StatisticsWorkload(groups=statistics_groups)
    if name == "auction":
        return AuctionWorkload(levels=auction_levels)
    raise ServiceError(
        f"unknown workload {name!r}; known: {', '.join(WORKLOAD_NAMES)}"
    )
