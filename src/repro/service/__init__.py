"""The client-aided MPC service (docs/SERVICE.md).

Clients post encrypted inputs once and disappear; epoch committees
aggregate homomorphically, evaluate the workload circuit under YOSO MPC,
publish the result, and reshare the threshold key to the next committee
— the long-lived-service shape of the paper's client-aided model.
"""

from repro.service.client import ServiceClient
from repro.service.epoch import (
    CommitteeMember,
    EpochCoordinator,
    EpochState,
    ServiceCommittee,
)
from repro.service.ingest import (
    EpochLedger,
    IngestPipeline,
    IngestQueue,
    Rejection,
)
from repro.service.service import EpochSummary, MpcService, ServiceConfig
from repro.service.wire import (
    ClientInput,
    EpochAnnouncement,
    EpochResult,
    client_input_tag,
    epoch_tag,
    proof_context,
    reshare_tag,
    result_tag,
)
from repro.service.workloads import (
    AuctionWorkload,
    ServiceWorkload,
    StatisticsWorkload,
    encode_slots,
    make_workload,
)

__all__ = [
    "AuctionWorkload",
    "ClientInput",
    "CommitteeMember",
    "EpochAnnouncement",
    "EpochCoordinator",
    "EpochLedger",
    "EpochResult",
    "EpochState",
    "EpochSummary",
    "IngestPipeline",
    "IngestQueue",
    "MpcService",
    "Rejection",
    "ServiceClient",
    "ServiceCommittee",
    "ServiceConfig",
    "ServiceWorkload",
    "StatisticsWorkload",
    "client_input_tag",
    "encode_slots",
    "epoch_tag",
    "make_workload",
    "proof_context",
    "reshare_tag",
    "result_tag",
]
