"""Batched, backpressured ingest: queue → validation ladder → bulletin.

Submissions (in-process :class:`~repro.service.wire.ClientInput` objects
or raw codec bytes from another process) land in a bounded
:class:`IngestQueue`; when it is full the service *sheds* the submission
with an explicit :class:`~repro.errors.ServiceOverloaded` instead of
growing without bound.  The :class:`IngestPipeline` then drains the
queue in batches and walks each candidate down a ladder of checks, each
failure mapped to a distinct :class:`~repro.errors.SubmissionRejected`
subclass (the adversarial-ingest tests pin these down one by one):

1. undecodable / wrong shape        → ``MalformedSubmissionError``
2. ciphertext under a foreign key   → ``OversizedCiphertextError``
3. wrong epoch tag                  → ``EpochMismatchError``
4. duplicate client id              → ``ReplayedClientError``
5. Σ-proof fails                    → ``InvalidProofError``

Only survivors are posted to the bulletin board — a rejected submission
never reaches evaluation, and never costs wire bytes.  The proof check
(the only expensive step) runs through the engine's batched verifier, so
one ingest batch costs one ``pow_many`` sweep.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.engine.batch import verify_plaintext_knowledge_many
from repro.errors import (
    EpochMismatchError,
    InvalidProofError,
    MalformedSubmissionError,
    OversizedCiphertextError,
    ParameterError,
    ReplayedClientError,
    ReproError,
    ServiceOverloaded,
    SubmissionRejected,
)
from repro.nizk.params import ProofParams
from repro.service.wire import (
    ClientInput,
    EpochAnnouncement,
    client_input_tag,
    proof_context,
)

__all__ = ["EpochLedger", "IngestPipeline", "IngestQueue", "Rejection"]


@dataclass(frozen=True)
class Rejection:
    """One rejected submission: who, which rung of the ladder, and why."""

    client_id: str | None
    error: str
    detail: str


@dataclass
class EpochLedger:
    """The per-epoch record of what got in and what was turned away."""

    epoch: int
    accepted: dict[str, ClientInput] = field(default_factory=dict)
    rejections: list[Rejection] = field(default_factory=list)

    @property
    def population(self) -> int:
        return len(self.accepted)

    def reject(self, client_id: str | None, exc: SubmissionRejected) -> None:
        self.rejections.append(
            Rejection(client_id, type(exc).__name__, str(exc))
        )

    def rejection_counts(self) -> dict[str, int]:
        return dict(Counter(r.error for r in self.rejections))


class IngestQueue:
    """Bounded FIFO of pending submissions; full means shed, not queued."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ParameterError("ingest queue needs capacity >= 1")
        self.capacity = capacity
        self._items: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    def submit(self, item: Any) -> None:
        if len(self._items) >= self.capacity:
            raise ServiceOverloaded(
                f"ingest queue at capacity ({self.capacity}); "
                "submission shed — retry after the next drain"
            )
        self._items.append(item)

    def drain(self, limit: int | None = None) -> list:
        count = len(self._items) if limit is None else min(limit, len(self._items))
        return [self._items.popleft() for _ in range(count)]


class IngestPipeline:
    """Validates submission batches for one epoch and posts survivors."""

    def __init__(
        self,
        board,
        announcement: EpochAnnouncement,
        ledger: EpochLedger,
        *,
        params: ProofParams | None = None,
        engine=None,
        phase: str = "ingest",
    ):
        self.board = board
        self.announcement = announcement
        self.ledger = ledger
        self.public = announcement.key.public_key()
        self.params = (
            params
            if params is not None
            else ProofParams.for_modulus_bits(self.public.n.bit_length())
        )
        self.engine = engine
        self.phase = phase

    # -- the validation ladder ------------------------------------------------

    def _decode(self, item: Any) -> ClientInput:
        if isinstance(item, (bytes, bytearray)):
            try:
                item = self.board.codec.decode(bytes(item))
            except SubmissionRejected:
                raise
            except (ReproError, ValueError) as exc:
                raise MalformedSubmissionError(
                    f"undecodable submission: {exc}"
                ) from exc
        if not isinstance(item, ClientInput):
            raise MalformedSubmissionError(
                f"expected a ClientInput payload, got {type(item).__name__}"
            )
        return item

    def _screen(self, payload: ClientInput, seen: set) -> None:
        ann = self.announcement
        if len(payload.ciphertexts) != ann.slots:
            raise MalformedSubmissionError(
                f"workload {ann.workload!r} expects {ann.slots} slots, "
                f"got {len(payload.ciphertexts)}"
            )
        for ciphertext in payload.ciphertexts:
            if ciphertext.public != self.public:
                raise OversizedCiphertextError(
                    "ciphertext under a foreign modulus "
                    f"({ciphertext.public.n.bit_length()} bits, epoch key is "
                    f"{self.public.n.bit_length()}); refusing oversized or "
                    "misdirected ciphertexts"
                )
        if payload.epoch != ann.epoch:
            raise EpochMismatchError(
                f"submission tagged for epoch {payload.epoch} "
                f"during epoch {ann.epoch}"
            )
        if payload.client_id in self.ledger.accepted or payload.client_id in seen:
            raise ReplayedClientError(
                f"client {payload.client_id!r} already submitted this epoch"
            )

    def process(self, items: Iterable[Any]) -> list[ClientInput]:
        """Run one batch down the ladder; returns the accepted payloads."""
        candidates: list[ClientInput] = []
        seen: set[str] = set()
        for item in items:
            client_id = getattr(item, "client_id", None)
            try:
                payload = self._decode(item)
                client_id = payload.client_id
                self._screen(payload, seen)
            except SubmissionRejected as exc:
                self.ledger.reject(client_id, exc)
                continue
            seen.add(payload.client_id)
            candidates.append(payload)

        triples = [
            (
                ciphertext,
                proof,
                proof_context(payload.epoch, payload.client_id, slot),
            )
            for payload in candidates
            for slot, (ciphertext, proof) in enumerate(
                zip(payload.ciphertexts, payload.proofs)
            )
        ]
        verdicts = verify_plaintext_knowledge_many(
            self.public, triples, self.params, engine=self.engine
        )

        accepted: list[ClientInput] = []
        cursor = 0
        for payload in candidates:
            width = len(payload.ciphertexts)
            ok = all(verdicts[cursor:cursor + width])
            cursor += width
            if not ok:
                self.ledger.reject(
                    payload.client_id,
                    InvalidProofError(
                        "plaintext-knowledge proof failed for "
                        f"client {payload.client_id!r}"
                    ),
                )
                continue
            self.ledger.accepted[payload.client_id] = payload
            self.board.post(
                self.phase,
                payload.client_id,
                client_input_tag(payload.epoch, payload.client_id),
                payload,
            )
            accepted.append(payload)
        return accepted

    def drain(self, queue: IngestQueue, batch_size: int = 512) -> int:
        """Drain the queue in batches; returns how many were accepted."""
        total = 0
        while len(queue):
            total += len(self.process(queue.drain(batch_size)))
        return total
