"""Lagrange interpolation coefficients, modular and integer-scaled variants.

Two flavours are needed:

* :func:`lagrange_coefficients` — ordinary coefficients in a ring Z_m, used
  by the sharing layer (all evaluation-point differences are tiny integers,
  so they are invertible even when m is an RSA modulus).

* :func:`integer_lagrange_scaled` — *integer* coefficients ``Δ·λ_i`` with
  the Δ = n! clearing trick, used by the threshold-Paillier key layer where
  recombination happens in the exponent of an unknown-order group and no
  modular inverse of the denominators is available.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

from repro.errors import InterpolationError
from repro.fields.ring import Zmod, ZmodElement
from repro.observability import hooks as _hooks


def _check_distinct(xs: Sequence[int]) -> None:
    if len(set(xs)) != len(xs):
        raise InterpolationError(f"evaluation points must be distinct: {list(xs)}")
    if not xs:
        raise InterpolationError("need at least one evaluation point")


def lagrange_coefficients(
    ring: Zmod, xs: Sequence[int], at: int = 0
) -> list[ZmodElement]:
    """Coefficients ``λ_i`` such that ``f(at) = Σ λ_i · f(x_i)``.

    ``xs`` are integer evaluation points (they may be negative; they are
    interpreted as integers, not ring elements, so differences stay small and
    invertible).  Runs in O(len(xs)^2).
    """
    _check_distinct(xs)
    _hooks.note(_hooks.LAGRANGE_INTERPOLATION)
    coeffs: list[ZmodElement] = []
    for i, xi in enumerate(xs):
        num = 1
        den = 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            num *= at - xj
            den *= xi - xj
        coeffs.append(ring.element(num) / ring.element(den))
    return coeffs


def lagrange_basis_rows(
    ring: Zmod, xs: Sequence[int], targets: Sequence[int]
) -> list[list[ZmodElement]]:
    """Matrix ``M[r][i] = λ_i`` evaluating interpolant of ``xs`` at ``targets[r]``.

    Used to re-evaluate a polynomial known at points ``xs`` onto many new
    points at once (the homomorphic packing step of the offline phase).
    """
    return [lagrange_coefficients(ring, xs, at=target) for target in targets]


def falling_factorial_delta(n: int) -> int:
    """Δ = n!, the universal denominator-clearing factor for points 1..n."""
    return math.factorial(n)


def integer_lagrange_scaled(
    xs: Sequence[int], at: int = 0, delta: int | None = None
) -> tuple[list[int], int]:
    """Integer coefficients ``(Δ·λ_i, Δ)`` for interpolation at ``at``.

    The λ_i are rationals; scaling by Δ = max(|x|)! (or a caller-provided Δ)
    makes every ``Δ·λ_i`` an integer whenever the points are distinct
    integers whose pairwise differences divide Δ.  Raises
    :class:`InterpolationError` if the provided Δ does not clear all
    denominators.
    """
    _check_distinct(xs)
    _hooks.note(_hooks.LAGRANGE_INTEGER)
    if delta is None:
        delta = falling_factorial_delta(max(abs(x) for x in xs) or 1)
    scaled: list[int] = []
    for i, xi in enumerate(xs):
        lam = Fraction(1)
        for j, xj in enumerate(xs):
            if i == j:
                continue
            lam *= Fraction(at - xj, xi - xj)
        value = lam * delta
        if value.denominator != 1:
            raise InterpolationError(
                f"delta={delta} does not clear denominator of lambda_{i}={lam}"
            )
        scaled.append(int(value))
    return scaled, delta
