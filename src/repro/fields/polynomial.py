"""Dense univariate polynomials over a :class:`~repro.fields.ring.Zmod`.

The sharing layer needs three things from polynomials: evaluation, exact
interpolation, and *constrained random sampling* (a uniformly random
polynomial of degree d passing through a prescribed set of points — the
heart of both standard and packed Shamir sharing).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InterpolationError, ParameterError, RingMismatchError
from repro.fields.lagrange import lagrange_coefficients
from repro.fields.ring import Zmod, ZmodElement


class Polynomial:
    """An immutable polynomial ``c_0 + c_1 x + ... + c_d x^d`` over a ring.

    The coefficient list never has trailing zeros (the zero polynomial has
    an empty list and degree -1 by convention).
    """

    __slots__ = ("ring", "coefficients")

    def __init__(self, ring: Zmod, coefficients: Sequence[int | ZmodElement]):
        coeffs = [ring.element(c) for c in coefficients]
        while coeffs and coeffs[-1].is_zero():
            coeffs.pop()
        object.__setattr__(self, "ring", ring)
        object.__setattr__(self, "coefficients", tuple(coeffs))

    def __setattr__(self, name, value):  # pragma: no cover - guard rail
        raise AttributeError("Polynomial is immutable")

    # -- basic queries -------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; -1 for the zero polynomial."""
        return len(self.coefficients) - 1

    def is_zero(self) -> bool:
        return not self.coefficients

    def __call__(self, x: int | ZmodElement) -> ZmodElement:
        """Evaluate via Horner's rule."""
        xe = self.ring.element(x)
        acc = self.ring.zero
        for c in reversed(self.coefficients):
            acc = acc * xe + c
        return acc

    def evaluate_many(self, xs: Sequence[int | ZmodElement]) -> list[ZmodElement]:
        return [self(x) for x in xs]

    # -- arithmetic ------------------------------------------------------------

    def _require_same_ring(self, other: "Polynomial") -> None:
        if other.ring != self.ring:
            raise RingMismatchError("polynomials over different rings")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._require_same_ring(other)
        n = max(len(self.coefficients), len(other.coefficients))
        coeffs = []
        for i in range(n):
            a = self.coefficients[i] if i < len(self.coefficients) else self.ring.zero
            b = other.coefficients[i] if i < len(other.coefficients) else self.ring.zero
            coeffs.append(a + b)
        return Polynomial(self.ring, coeffs)

    def __neg__(self) -> "Polynomial":
        return Polynomial(self.ring, [-c for c in self.coefficients])

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __mul__(self, other):
        if isinstance(other, (int, ZmodElement)):
            scalar = self.ring.element(other)
            return Polynomial(self.ring, [c * scalar for c in self.coefficients])
        self._require_same_ring(other)
        if self.is_zero() or other.is_zero():
            return Polynomial(self.ring, [])
        out = [self.ring.zero] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            for j, b in enumerate(other.coefficients):
                out[i + j] = out[i + j] + a * b
        return Polynomial(self.ring, out)

    __rmul__ = __mul__

    def divmod(self, divisor: "Polynomial") -> tuple["Polynomial", "Polynomial"]:
        """Quotient and remainder; requires an invertible leading coefficient.

        Used by Berlekamp–Welch decoding (the divisor there is monic, so
        the inversion is always possible even over Z_N).
        """
        self._require_same_ring(divisor)
        if divisor.is_zero():
            raise ParameterError("polynomial division by zero")
        lead_inv = self.ring.inverse(divisor.coefficients[-1])
        remainder = list(self.coefficients)
        quotient = [self.ring.zero] * max(len(remainder) - divisor.degree, 1)
        for i in range(len(remainder) - divisor.degree - 1, -1, -1):
            factor = remainder[i + divisor.degree] * lead_inv
            quotient[i] = factor
            if factor.is_zero():
                continue
            for j, c in enumerate(divisor.coefficients):
                remainder[i + j] = remainder[i + j] - factor * c
        return Polynomial(self.ring, quotient), Polynomial(self.ring, remainder)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and other.ring == self.ring
            and other.coefficients == self.coefficients
        )

    def __hash__(self) -> int:
        return hash((self.ring.modulus, self.coefficients))

    def __repr__(self) -> str:
        if self.is_zero():
            return "Polynomial(0)"
        terms = " + ".join(
            f"{int(c)}x^{i}" if i else f"{int(c)}"
            for i, c in enumerate(self.coefficients)
            if not c.is_zero()
        )
        return f"Polynomial({terms})"


def interpolate(
    ring: Zmod, points: Sequence[tuple[int, int | ZmodElement]]
) -> Polynomial:
    """The unique polynomial of degree < len(points) through ``points``.

    ``points`` is a sequence of ``(x, y)`` with distinct integer x.  Uses the
    Newton form for O(n^2) construction.
    """
    xs = [x for x, _ in points]
    if len(set(xs)) != len(xs):
        raise InterpolationError(f"repeated x coordinates in {xs}")
    if not points:
        raise InterpolationError("cannot interpolate zero points")
    ys = [ring.element(y) for _, y in points]

    # Newton divided differences.
    divided = list(ys)
    for level in range(1, len(points)):
        for i in range(len(points) - 1, level - 1, -1):
            dx = ring.element(xs[i] - xs[i - level])
            divided[i] = (divided[i] - divided[i - 1]) / dx
    # Expand Newton form into monomial coefficients.
    poly = Polynomial(ring, [])
    basis = Polynomial(ring, [1])
    for i, coeff in enumerate(divided):
        poly = poly + basis * coeff
        basis = basis * Polynomial(ring, [-xs[i], 1])
    return poly


def evaluate_from_points(
    ring: Zmod,
    points: Sequence[tuple[int, int | ZmodElement]],
    at: int,
) -> ZmodElement:
    """Evaluate the interpolant of ``points`` at ``at`` without expanding it."""
    xs = [x for x, _ in points]
    coeffs = lagrange_coefficients(ring, xs, at=at)
    acc = ring.zero
    for lam, (_, y) in zip(coeffs, points):
        acc = acc + lam * ring.element(y)
    return acc


def random_polynomial(
    ring: Zmod,
    degree: int,
    constraints: Sequence[tuple[int, int | ZmodElement]] = (),
    rng=None,
) -> Polynomial:
    """A random polynomial of exactly the given degree bound with constraints.

    Returns a polynomial of degree <= ``degree`` that is uniformly random
    among those satisfying ``f(x) = y`` for every ``(x, y)`` constraint.
    Requires ``len(constraints) <= degree + 1``; with equality the polynomial
    is fully determined (no randomness left).

    This is the sharing primitive: Shamir shares a secret ``s`` with
    ``random_polynomial(ring, t, [(0, s)])``; packed Shamir shares a vector
    with one constraint per packed slot.
    """
    if degree < -1:
        raise ParameterError(f"degree must be >= -1, got {degree}")
    n_constraints = len(constraints)
    xs = [x for x, _ in constraints]
    if len(set(xs)) != len(xs):
        raise InterpolationError(f"repeated constraint points: {xs}")
    if n_constraints > degree + 1:
        raise ParameterError(
            f"{n_constraints} constraints over-determine a degree-{degree} polynomial"
        )
    free = degree + 1 - n_constraints
    # Choose `free` extra points at fresh x coordinates with random values;
    # the interpolant through constraints+extras is then uniform among
    # degree-<=degree polynomials meeting the constraints.
    used = set(xs)
    extra_x: list[int] = []
    candidate = 1
    while len(extra_x) < free:
        while candidate in used or -candidate in used:
            candidate += 1
        extra_x.append(candidate)
        used.add(candidate)
        candidate += 1
    points = list(constraints) + [(x, ring.random(rng)) for x in extra_x]
    if not points:
        return Polynomial(ring, [])
    return interpolate(ring, points)
