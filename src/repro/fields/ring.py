"""The ring Z_m and its elements.

:class:`Zmod` is a lightweight context object describing the ring; elements
are :class:`ZmodElement` instances holding a canonical representative in
``[0, modulus)``.  When the modulus is prime the ring is the field GF(p) and
every nonzero element is invertible; when it is an RSA modulus N = pq the
sharing layers only ever invert integers far smaller than p and q, so
division still succeeds (a failure would expose a factor of N and raises
:class:`~repro.errors.NonInvertibleError`).

Elements are immutable and hashable; arithmetic between elements of
different rings raises :class:`~repro.errors.RingMismatchError` rather than
silently coercing.
"""

from __future__ import annotations

import math
import secrets
from typing import Iterable, Iterator, Sequence

from repro.errors import NonInvertibleError, ParameterError, RingMismatchError


class Zmod:
    """The ring of integers modulo ``modulus``.

    Parameters
    ----------
    modulus:
        Any integer >= 2.
    assume_prime:
        Optional hint.  ``True`` marks the ring as a field without running a
        primality test (used for RSA moduli where we *know* it is composite,
        pass ``False``).  ``None`` performs a cheap deterministic check for
        small moduli and otherwise leaves the flag unknown.
    """

    __slots__ = ("modulus", "_is_prime")

    def __init__(self, modulus: int, assume_prime: bool | None = None):
        if modulus < 2:
            raise ParameterError(f"modulus must be >= 2, got {modulus}")
        self.modulus = int(modulus)
        if assume_prime is None and modulus < 1 << 20:
            assume_prime = _is_small_prime(modulus)
        self._is_prime = assume_prime

    # -- construction -----------------------------------------------------

    def __call__(self, value: int | ZmodElement) -> ZmodElement:
        """Coerce ``value`` into this ring (alias for :meth:`element`)."""
        return self.element(value)

    def element(self, value: int | ZmodElement) -> ZmodElement:
        """Return the element with representative ``value mod modulus``."""
        if isinstance(value, ZmodElement):
            if value.ring is not self and value.ring != self:
                raise RingMismatchError(
                    f"cannot coerce element of {value.ring} into {self}"
                )
            return value
        return ZmodElement(self, int(value) % self.modulus)

    def elements(self, values: Iterable[int]) -> list[ZmodElement]:
        """Vector version of :meth:`element`."""
        return [self.element(v) for v in values]

    @property
    def zero(self) -> ZmodElement:
        return ZmodElement(self, 0)

    @property
    def one(self) -> ZmodElement:
        return ZmodElement(self, 1)

    def random(self, rng: secrets.SystemRandom | None = None) -> ZmodElement:
        """Sample a uniformly random element.

        ``rng`` may be any object with ``randrange`` (e.g. ``random.Random``
        for reproducible tests); defaults to a CSPRNG.
        """
        if rng is None:
            return ZmodElement(self, secrets.randbelow(self.modulus))
        return ZmodElement(self, rng.randrange(self.modulus))

    def random_vector(self, length: int, rng=None) -> list[ZmodElement]:
        return [self.random(rng) for _ in range(length)]

    # -- arithmetic helpers ------------------------------------------------

    def inverse(self, value: int | ZmodElement) -> ZmodElement:
        """Multiplicative inverse; raises NonInvertibleError if none exists."""
        v = int(value) % self.modulus
        g = math.gcd(v, self.modulus)
        if g != 1:
            raise NonInvertibleError(v, self.modulus, g)
        return ZmodElement(self, pow(v, -1, self.modulus))

    def is_field(self) -> bool:
        """Best-effort: True iff the modulus is known to be prime."""
        return bool(self._is_prime)

    @property
    def bit_length(self) -> int:
        return self.modulus.bit_length()

    # -- protocol ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Zmod) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("Zmod", self.modulus))

    def __repr__(self) -> str:
        kind = "GF" if self._is_prime else "Z"
        return f"{kind}({self.modulus})"

    def __iter__(self) -> Iterator[ZmodElement]:
        """Iterate all elements (only sensible for tiny rings in tests)."""
        if self.modulus > 1 << 16:
            raise ParameterError("refusing to iterate a large ring")
        return (ZmodElement(self, v) for v in range(self.modulus))


class ZmodElement:
    """An immutable element of a :class:`Zmod` ring."""

    __slots__ = ("ring", "value")

    def __init__(self, ring: Zmod, value: int):
        object.__setattr__(self, "ring", ring)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # pragma: no cover - guard rail
        raise AttributeError("ZmodElement is immutable")

    # -- coercion ----------------------------------------------------------

    def _coerce(self, other) -> "ZmodElement":
        if isinstance(other, ZmodElement):
            if other.ring != self.ring:
                raise RingMismatchError(
                    f"operands from different rings: {self.ring} vs {other.ring}"
                )
            return other
        if isinstance(other, int):
            return self.ring.element(other)
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ZmodElement(self.ring, (self.value + o.value) % self.ring.modulus)

    __radd__ = __add__

    def __neg__(self):
        return ZmodElement(self.ring, (-self.value) % self.ring.modulus)

    def __sub__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ZmodElement(self.ring, (self.value - o.value) % self.ring.modulus)

    def __rsub__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return o - self

    def __mul__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return ZmodElement(self.ring, (self.value * o.value) % self.ring.modulus)

    __rmul__ = __mul__

    def __truediv__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self * self.ring.inverse(o)

    def __rtruediv__(self, other):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return o / self

    def __pow__(self, exponent: int):
        if exponent < 0:
            return self.ring.inverse(self) ** (-exponent)
        return ZmodElement(
            self.ring, pow(self.value, exponent, self.ring.modulus)
        )

    def inverse(self) -> "ZmodElement":
        return self.ring.inverse(self)

    # -- predicates & protocol ----------------------------------------------

    def is_zero(self) -> bool:
        return self.value == 0

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __index__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ZmodElement):
            return other.ring == self.ring and other.value == self.value
        if isinstance(other, int):
            return self.value == other % self.ring.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.ring.modulus, self.value))

    def __repr__(self) -> str:
        return f"{self.value}"


def dot(xs: Sequence[ZmodElement], ys: Sequence[ZmodElement]) -> ZmodElement:
    """Inner product of two equal-length element vectors."""
    if len(xs) != len(ys):
        raise ParameterError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if not xs:
        raise ParameterError("dot product of empty vectors is undefined")
    ring = xs[0].ring
    total = 0
    for x, y in zip(xs, ys):
        if x.ring != ring or y.ring != ring:
            raise RingMismatchError("dot product operands from different rings")
        total += x.value * y.value
    return ring.element(total)


def _is_small_prime(m: int) -> bool:
    if m < 2:
        return False
    if m % 2 == 0:
        return m == 2
    f = 3
    while f * f <= m:
        if m % f == 0:
            return False
        f += 2
    return True
