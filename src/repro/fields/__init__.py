"""Modular-arithmetic substrate: rings Z_m, polynomials, Lagrange machinery.

The MPC layers operate either over a prime field GF(p) or over the Paillier
plaintext ring Z_N (N an RSA modulus).  Both are served by :class:`Zmod`,
which exposes field-like operations and raises
:class:`~repro.errors.NonInvertibleError` when a division is impossible
(this never happens for the small evaluation-point differences used by the
sharing layer; see DESIGN.md §5).
"""

from repro.fields.ring import Zmod, ZmodElement
from repro.fields.polynomial import Polynomial, interpolate, random_polynomial
from repro.fields.lagrange import (
    lagrange_coefficients,
    integer_lagrange_scaled,
    falling_factorial_delta,
)

__all__ = [
    "Zmod",
    "ZmodElement",
    "Polynomial",
    "interpolate",
    "random_polynomial",
    "lagrange_coefficients",
    "integer_lagrange_scaled",
    "falling_factorial_delta",
]
