"""Extensions beyond the paper's core protocol (its §7 future-work list).

* :mod:`repro.extensions.it_yoso` — a feasibility prototype for the
  *information-theoretic* gap setting (§7, third bullet): a statistically
  secure, semi-honest YOSO MPC with packed secret-sharing and no
  computational assumptions, built on cross-committee share transfer.
"""

from repro.extensions.it_yoso import ItYosoMpc, ItYosoResult

__all__ = ["ItYosoMpc", "ItYosoResult"]
