"""Information-theoretic YOSO MPC with packed sharing (paper §7, bullet 3).

The paper leaves open "what the impact of the gap is in the context of
information-theoretic security".  This module is that feasibility
prototype: a *statistically secure, semi-honest* YOSO protocol with the
same packed-sharing online phase as the main construction, but **no
computational assumptions at the protocol level** — no encryption, no
proofs.  Corrupted roles follow the protocol; privacy holds against any t
of them per committee with the same gap arithmetic (degree d = t+k−1,
online reconstruction from t+2(k−1)+1 shares, n > 2(t+k−1)).

Structure (each committee speaks once):

* **P1 (contribution committee).**  Every member picks an additive
  contribution ``m_i^w`` to the mask of each input/multiplication wire and
  *locally* propagates its contributions through linear gates (mask rules
  are linear, so λ^w = Σ_i m_i^w holds on every wire).  It then deals, to
  P2, degree-d packed sharings of its contribution vectors for each batch
  (left, right, output masks at degrees d and 2d) — and sends its raw
  contributions for input/output wires privately to the owning clients.
* **P2 (multiplication committee).**  Summing the received deals gives P2
  packed sharings of the true batch masks.  Each member locally computes
  its degree-2d share of ``Γ = λ^α*λ^β − λ^γ`` and *transfers* the
  sharings to the online committees with the Lagrange-recombination trick:
  a member holding share σ_i of a degree-D sharing deals a fresh degree-d
  packed sharing of the public-vector multiple ``σ_i·L_i`` (L_i = the
  Lagrange basis row evaluating point i at the secret slots); the
  receiving committee sums any D+1 such deals and holds a fresh degree-d
  sharing of the same secrets.  One message, degree reduction included —
  the IT analogue of "re-encrypt to the future".
* **Online committees** (one per multiplicative depth) and clients run the
  identical μ machinery as the main protocol: one broadcast scalar per
  member per batch of k gates — O(1) communication per gate, so the gap's
  online benefit carries over to the IT setting unchanged.

Fail-stop tolerance carries over too (reconstruction needs t+2(k−1)+1 of
the n posted shares).  Active security would additionally need
error-corrected reconstruction — exactly the open question the paper
points at; see ``tests/test_it_yoso.py`` for the boundary.

Private point-to-point messages are modelled as bulletin posts addressed
to a recipient (the YOSO P2P functionality); the meter counts their field
elements like everything else.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.accounting.comm import CommMeter
from repro.circuits.circuit import Circuit, GateType
from repro.circuits.program import compile_circuit
from repro.errors import ParameterError, ProtocolAbortError
from repro.fields.ring import Zmod, ZmodElement
from repro.rng import fresh_rng
from repro.sharing.packed import PackedShare, packed_scheme, secret_slots
from repro.wire.registry import register_kind
from repro.yoso.adversary import Adversary, honest_adversary
from repro.yoso.assignment import IdealRoleAssignment
from repro.yoso.network import ProtocolEnvironment

#: Envelope kind of every IT-YOSO post ("It-P1", "It-P2", "It-input",
#: and the "It-mul-{depth}" committee tags).
register_kind(
    "it.messages", 24, tag_prefix="It-",
    description="information-theoretic prototype messages (field elements)",
)


@dataclass
class ItYosoResult:
    outputs: dict[str, list[int]]
    n: int
    t: int
    k: int
    meter: CommMeter
    field_bits: int = 0
    #: The run's bulletin board, for the symbolic cost cross-check.
    bulletin: Any = None

    def online_mul_bytes(self) -> int:
        """Delivered μ-share bytes including per-post envelope framing."""
        return sum(
            v for tag, v in self.meter.by_tag("online").items()
            if tag.startswith("It-mul")
        )

    def online_mul_payload_bytes(self) -> int:
        """μ-share section bytes only — the paper's O(1)-per-gate quantity.

        Envelope framing is a constant per member per depth, independent of
        the batch payload; it amortizes away on wide circuits but dominates
        tiny test instances, so flatness claims compare payload bytes.
        """
        return sum(
            v for tag, v in self.meter.by_tag("online").items()
            if tag.startswith("It-mul") and tag.endswith(".mu_shares")
        )


class ItYosoMpc:
    """Semi-honest, statistically secure YOSO MPC over a prime field."""

    def __init__(
        self,
        n: int,
        t: int,
        k: int,
        modulus: int = (1 << 61) - 1,
        rng: random.Random | None = None,
        adversary: Adversary | None = None,
    ):
        if 2 * (t + k - 1) >= n:
            raise ParameterError(
                f"need n > 2(t+k-1) for the degree-2d products, got "
                f"n={n}, t={t}, k={k}"
            )
        self.n = n
        self.t = t
        self.k = k
        self.d = t + k - 1
        self.ring = Zmod(modulus)
        self.rng = rng if rng is not None else fresh_rng()
        self._honest = adversary is None
        self.adversary = adversary if adversary is not None else honest_adversary()
        # Memoized per geometry: the kernel matrices survive across runs.
        self.scheme = packed_scheme(self.ring, n, k)

    # -- share-transfer helper (the IT re-encrypt-to-the-future) -----------

    def _transfer_row(self, source_degree: int, index: int) -> list[ZmodElement]:
        """L_i: the public vector a share at ``index`` contributes per slot.

        For a degree-``source_degree`` sharing known at points 1..D+1, the
        secret at slot s is Σ_i λ_i(s)·σ_i; member ``index`` contributes
        σ_i·(λ_i(slot_0), ..., λ_i(slot_{k-1})).  The λ rows come from the
        scheme's cached evaluation matrices (one Lagrange pass per degree,
        shared by every member and every batch).
        """
        points = tuple(range(1, source_degree + 2))
        rows = self.scheme.evaluation_rows(points, tuple(secret_slots(self.k)))
        return [self.ring.element(row[index - 1]) for row in rows]

    # -- main entry ----------------------------------------------------------

    def run(
        self, circuit: Circuit, inputs: Mapping[str, Sequence[int]]
    ) -> ItYosoResult:
        program = compile_circuit(circuit, self.k)
        env = ProtocolEnvironment(
            assignment=IdealRoleAssignment(key_bits=32, rng=self.rng),
            adversary=self.adversary,
            rng=self.rng,
        )
        ring, scheme, n, k, d = self.ring, self.scheme, self.n, self.k, self.d
        batches = list(program.plan.mul_batches)
        depths = list(program.mul_depths)
        const_cache = [ring.element(c) for c in program.constants]

        p1 = env.sample_committee("It-P1", n)
        p2 = env.sample_committee("It-P2", n)
        mul_committees = {
            depth: env.sample_committee(f"It-mul-{depth}", n)
            for depth in depths
        }

        # ---- P1: mask contributions ------------------------------------------

        env.set_phase("offline")
        mask_wires = list(program.mask_wires)

        def propagate_contribution(contrib: dict[int, ZmodElement]) -> None:
            """Extend one member's mask contributions through linear gates.

            Every input/mul wire already has a contribution, so one pass over
            the compiled layers resolves all remaining wires — tight loops
            over the run arrays, no per-gate dispatch.
            """
            for layer in program.layers:
                for run in layer.runs:
                    kind = run.kind
                    if kind is GateType.ADD:
                        for w, a, b in zip(run.wires, run.src0, run.src1):
                            contrib[w] = contrib[a] + contrib[b]
                    elif kind is GateType.SUB:
                        for w, a, b in zip(run.wires, run.src0, run.src1):
                            contrib[w] = contrib[a] - contrib[b]
                    elif kind is GateType.CMUL:
                        for w, a, ci in zip(run.wires, run.src0, run.const_index):
                            contrib[w] = contrib[a] * const_cache[ci]
                    elif kind is GateType.CADD or kind is GateType.OUTPUT:
                        for w, a in zip(run.wires, run.src0):
                            contrib[w] = contrib[a]

        def pad(values: list[ZmodElement]) -> list[ZmodElement]:
            return values + [ring.zero] * (k - len(values))

        def program_p1(view) -> None:
            contrib: dict[int, ZmodElement] = {
                w: ring.random(view.rng) for w in mask_wires
            }
            propagate_contribution(contrib)
            # One batched dealing for all (batch, kind) vectors: the rng
            # stream and the share values match the historical per-sharing
            # loop exactly (degrees d, d, 2d interleave per batch).
            keys: list[tuple[int, str]] = []
            vectors: list[list[ZmodElement]] = []
            degrees: list[int] = []
            for batch in batches:
                for kind, vector in (
                    ("left", pad([contrib[w] for w in batch.left_wires])),
                    ("right", pad([contrib[w] for w in batch.right_wires])),
                    ("out_2d", pad([contrib[w] for w in batch.gate_wires])),
                ):
                    keys.append((batch.batch_id, kind))
                    vectors.append(vector)
                    degrees.append(2 * d if kind == "out_2d" else d)
            deals: dict[tuple[int, str], list[int]] = {
                key: [int(s.value) for s in sharing]
                for key, sharing in zip(
                    keys, scheme.share_many(vectors, degree=degrees, rng=view.rng)
                )
            }
            client_masks = {
                w: int(contrib[w])
                for w in list(circuit.input_wires) + list(circuit.output_wires)
            }
            view.speak("It-P1", {"deals": deals, "client_masks": client_masks})

        env.run_committee(p1, program_p1)
        posts_p1 = env.bulletin.by_sender("It-P1")
        p1_payloads = [
            posts_p1[str(role.id)] for role in p1 if str(role.id) in posts_p1
        ]
        if len(p1_payloads) < n:
            raise ProtocolAbortError("semi-honest IT protocol lost a P1 message")

        # λ^w for client-facing wires (the functionality delivers privately).
        client_lambda = {
            w: sum(
                (ring.element(p["client_masks"][w]) for p in p1_payloads),
                ring.zero,
            )
            for w in list(circuit.input_wires) + list(circuit.output_wires)
        }

        # P2 member shares of each batch sharing: sums of the P1 deals.
        def p2_share(batch_id: int, kind: str, index: int) -> ZmodElement:
            return sum(
                (
                    ring.element(p["deals"][(batch_id, kind)][index - 1])
                    for p in p1_payloads
                ),
                ring.zero,
            )

        # ---- P2: multiply and transfer to the online committees ---------------

        def program_p2(view) -> None:
            i = view.index
            # The member's λ rows depend only on (degree, i): hoist them out
            # of the batch loop.
            rows = {
                deg: self._transfer_row(deg, i) if i <= deg + 1 else None
                for deg in (d, 2 * d)
            }
            keys: list[tuple[int, str]] = []
            vectors: list[list[ZmodElement]] = []
            for batch in batches:
                left = p2_share(batch.batch_id, "left", i)
                right = p2_share(batch.batch_id, "right", i)
                out2d = p2_share(batch.batch_id, "out_2d", i)
                gamma_share = left * right - out2d  # degree-2d share of Γ
                for kind, sigma, source_degree in (
                    ("left", left, d),
                    ("right", right, d),
                    ("gamma", gamma_share, 2 * d),
                ):
                    row = rows[source_degree]
                    if row is None:
                        continue  # only D+1 contributors are needed
                    keys.append((batch.batch_id, kind))
                    vectors.append([sigma * c for c in row])
            transfers: dict[tuple[int, str], list[int]] = {
                key: [int(s.value) for s in sharing]
                for key, sharing in zip(
                    keys, scheme.share_many(vectors, degree=d, rng=view.rng)
                )
            }
            view.speak("It-P2", {"transfers": transfers})

        env.run_committee(p2, program_p2)
        posts_p2 = env.bulletin.by_sender("It-P2")
        p2_payloads = {
            role.id.index: posts_p2[str(role.id)]
            for role in p2
            if str(role.id) in posts_p2
        }

        def online_share(batch_id: int, kind: str, index: int) -> ZmodElement:
            source_degree = 2 * d if kind == "gamma" else d
            contributors = range(1, source_degree + 2)
            total = ring.zero
            for i in contributors:
                payload = p2_payloads.get(i)
                if payload is None:
                    raise ProtocolAbortError(
                        "semi-honest IT protocol lost a P2 transfer"
                    )
                total = total + ring.element(
                    payload["transfers"][(batch_id, kind)][index - 1]
                )
            return total

        # ---- Online: inputs, μ evaluation, outputs ---------------------------

        env.set_phase("online")
        mu: dict[int, ZmodElement] = {}

        def propagate_mu() -> None:
            # Availability-checked: wires behind an unopened multiplication
            # stay unknown until that depth's committee reconstructs them.
            for layer in program.layers:
                for run in layer.runs:
                    kind = run.kind
                    if kind is GateType.ADD:
                        for w, a, b in zip(run.wires, run.src0, run.src1):
                            if w not in mu and a in mu and b in mu:
                                mu[w] = mu[a] + mu[b]
                    elif kind is GateType.SUB:
                        for w, a, b in zip(run.wires, run.src0, run.src1):
                            if w not in mu and a in mu and b in mu:
                                mu[w] = mu[a] - mu[b]
                    elif kind is GateType.CADD:
                        for w, a, ci in zip(run.wires, run.src0, run.const_index):
                            if w not in mu and a in mu:
                                mu[w] = mu[a] + const_cache[ci]
                    elif kind is GateType.CMUL:
                        for w, a, ci in zip(run.wires, run.src0, run.const_index):
                            if w not in mu and a in mu:
                                mu[w] = mu[a] * const_cache[ci]
                    elif kind is GateType.OUTPUT:
                        for w, a in zip(run.wires, run.src0):
                            if w not in mu and a in mu:
                                mu[w] = mu[a]

        for segment in program.input_segments:
            client = segment.client
            wires = list(segment.wires)
            supplied = list(inputs.get(client, []))
            if len(supplied) != len(wires):
                raise ProtocolAbortError(
                    f"client {client!r} supplied {len(supplied)} inputs, "
                    f"needs {len(wires)}"
                )
            role = env.client(f"it-client:{client}")

            def program_client(view, wires=wires, supplied=supplied):
                view.speak(
                    "It-input",
                    {
                        "mu": {
                            w: int(ring.element(v) - client_lambda[w])
                            for w, v in zip(wires, supplied)
                        }
                    },
                )

            env.run_role(role, program_client)
            payload = env.bulletin.payloads("It-input")[-1]
            for w, value in payload["mu"].items():
                mu[w] = ring.element(value)
        propagate_mu()

        product_degree = self.t + 2 * (self.k - 1)
        by_depth = program.depth_batches

        for depth in depths:
            committee = mul_committees[depth]

            def program_mul(view, depth=depth) -> None:
                i = view.index
                # Both canonical μ shares of every batch at this depth come
                # out of one cached-matrix product.
                mu_vectors: list[list[ZmodElement]] = []
                for batch in by_depth[depth]:
                    mu_vectors.append(pad([mu[w] for w in batch.left_wires]))
                    mu_vectors.append(pad([mu[w] for w in batch.right_wires]))
                canonical = scheme.canonical_many(mu_vectors, index=i)
                shares_out = {}
                for pos, batch in enumerate(by_depth[depth]):
                    ml = canonical[2 * pos].value
                    mr = canonical[2 * pos + 1].value
                    ll = online_share(batch.batch_id, "left", i)
                    rr = online_share(batch.batch_id, "right", i)
                    gg = online_share(batch.batch_id, "gamma", i)
                    shares_out[batch.batch_id] = int(
                        ml * mr + ml * rr + mr * ll + gg
                    )
                view.speak(committee.name, {"mu_shares": shares_out})

            env.run_committee(committee, program_mul)
            posts = env.bulletin.by_sender(committee.name)
            bases: list[list[PackedShare]] = []
            for batch in by_depth[depth]:
                collected = []
                for role in committee:
                    payload = posts.get(str(role.id))
                    if payload is None:
                        continue
                    value = payload["mu_shares"].get(batch.batch_id)
                    if isinstance(value, int):
                        collected.append(
                            PackedShare(
                                role.id.index, ring.element(value),
                                product_degree, k,
                            )
                        )
                if len(collected) < product_degree + 1:
                    raise ProtocolAbortError(
                        f"batch {batch.batch_id}: {len(collected)} shares < "
                        f"{product_degree + 1}"
                    )
                bases.append(collected[: product_degree + 1])
            # One matrix product reconstructs every batch of the depth.
            for batch, reconstructed in zip(
                by_depth[depth],
                scheme.reconstruct_many(bases, degree=product_degree),
            ):
                for slot, w in enumerate(batch.gate_wires):
                    mu[w] = reconstructed[slot]
            propagate_mu()

        outputs: dict[str, list[int]] = {}
        for w in circuit.output_wires:
            client = circuit.gates[w].client
            if w not in mu:
                raise ProtocolAbortError(f"μ unresolved for output wire {w}")
            outputs.setdefault(client, []).append(int(mu[w] + client_lambda[w]))

        result = ItYosoResult(
            outputs=outputs, n=n, t=self.t, k=k, meter=env.meter,
            field_bits=self.ring.modulus.bit_length(),
            bulletin=env.bulletin,
        )
        # Honest runs double as validation oracles for the symbolic
        # cost model; adversarial transforms void the structural contract.
        if self._honest:
            from repro.accounting.symbolic import (
                cost_check_enabled,
                verify_cost_exactness,
            )

            if cost_check_enabled():
                verify_cost_exactness(result)
        return result
