"""repro.engine — the parallel crypto execution engine.

A job-based bulk-arithmetic layer for the Paillier-heavy offline path:

* :class:`~repro.engine.engine.CryptoEngine` — the interface (ordered,
  bit-deterministic ``pow_many`` over picklable ``(base, exp, mod)`` jobs);
* :class:`~repro.engine.engine.SerialEngine` — in-process, the default;
* :class:`~repro.engine.engine.ProcessPoolEngine` — chunks batches across
  a ``multiprocessing`` pool with graceful serial fallback;
* batch APIs (:func:`~repro.engine.batch.encrypt_many`,
  :func:`~repro.engine.batch.partial_decrypt_many`,
  :func:`~repro.engine.batch.teval_many`,
  :func:`~repro.engine.batch.scalar_mul_many`) adopted by the protocol's
  offline / re-encryption / threshold-combine layers;
* :class:`~repro.engine.fixedbase.FixedBaseCache` — shared square chains
  for bases that repeat within a batch.

See docs/PERFORMANCE.md for the execution model and when the pool wins.

The batch APIs import the Paillier layer, which itself routes through
:mod:`repro.engine.engine` — they are exposed lazily here (PEP 562) so
``repro.paillier.threshold`` can import this package without a cycle.
"""

from repro.engine.engine import (
    CryptoEngine,
    ProcessPoolEngine,
    SerialEngine,
    activated,
    active,
    install,
    make_engine,
)
from repro.engine.fixedbase import FixedBaseCache
from repro.engine.jobs import PowJob, chunk_jobs, compute_pows, run_pow_chunk

_BATCH_EXPORTS = (
    "encrypt_many",
    "partial_decrypt_many",
    "teval_many",
    "scalar_mul_many",
)

__all__ = [
    "CryptoEngine",
    "SerialEngine",
    "ProcessPoolEngine",
    "FixedBaseCache",
    "PowJob",
    "chunk_jobs",
    "compute_pows",
    "run_pow_chunk",
    "activated",
    "active",
    "install",
    "make_engine",
    *_BATCH_EXPORTS,
]


def __getattr__(name: str):
    if name in _BATCH_EXPORTS:
        from repro.engine import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
