"""The crypto execution engine: serial and process-pool backends.

The offline phase of the protocol spends essentially all of its wall-clock
in big-integer modular exponentiation (threshold-Paillier encryptions,
partial decryptions, TEval products, verification values).  These are
*independent* operations produced in bulk, so they parallelize perfectly —
what this module provides is the machinery to do that without giving up
the repo's determinism guarantees:

* :class:`SerialEngine` evaluates jobs in order in-process (the default —
  zero new failure modes, zero IPC).
* :class:`ProcessPoolEngine` chunks a batch across a ``multiprocessing``
  pool.  Chunks are contiguous and results are flattened back in input
  order, so the output is bit-identical to the serial engine's.  Pool
  construction or dispatch failure degrades gracefully to the serial
  kernel (counted under ``engine.fallbacks``).

Engine selection is process-global, mirroring
:mod:`repro.observability.hooks`: deep crypto layers call :func:`active`
rather than threading an engine argument through every signature, and
:class:`~repro.core.protocol.YosoMpc` scopes its engine with
:func:`activated` for the duration of a run.

Determinism: engines never draw randomness — they evaluate exponentiations
whose operands the caller already fixed.  A seeded run therefore produces
byte-identical transcripts whatever the engine or worker count.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.engine.jobs import PowJob, chunk_jobs, compute_pows, run_pow_chunk
from repro.observability import hooks as _hooks
from repro.observability.tracer import KIND_BATCH, maybe_span

#: Batches smaller than this stay in-process even on a pool engine: the
#: pickle + dispatch round-trip costs more than the exponentiations.
MIN_PARALLEL_JOBS = 32

#: Chunks per worker when no explicit chunk size is configured.  Mild
#: oversubscription smooths out uneven chunk costs (exponent sizes vary).
CHUNKS_PER_WORKER = 4


class CryptoEngine:
    """Interface: evaluate a batch of independent modular exponentiations.

    Implementations must return results in job order and must be
    bit-identical to ``[pow(b, e, m) for b, e, m in jobs]``.
    """

    name = "abstract"
    workers = 0

    def pow_many(self, jobs: Sequence[PowJob]) -> list[int]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "CryptoEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def describe(self) -> str:
        return self.name


class SerialEngine(CryptoEngine):
    """Current behaviour: evaluate in-process, in order (the default)."""

    name = "serial"

    def pow_many(self, jobs: Sequence[PowJob]) -> list[int]:
        jobs = list(jobs)
        _note_batch(len(jobs))
        return compute_pows(jobs)


class ProcessPoolEngine(CryptoEngine):
    """Chunk batches across a ``multiprocessing`` pool, order-preserving.

    The pool is created lazily on the first batch large enough to ship;
    any failure to create it (sandboxes without semaphores, exotic
    platforms) or to dispatch to it permanently degrades this engine to
    the serial kernel — correctness is never at stake, only speed.
    """

    name = "pool"

    def __init__(
        self,
        workers: int,
        chunk_size: int | None = None,
        min_parallel: int = MIN_PARALLEL_JOBS,
        start_method: str | None = None,
    ):
        self.workers = max(1, int(workers))
        self.chunk_size = chunk_size
        self.min_parallel = min_parallel
        self.start_method = start_method
        self._pool = None
        self._broken = False

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None and not self._broken:
            try:
                import multiprocessing

                context = multiprocessing.get_context(self.start_method)
                self._pool = context.Pool(processes=self.workers)
            except Exception:
                self._broken = True
                _hooks.note(_hooks.ENGINE_FALLBACKS)
        return self._pool

    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    # -- execution ----------------------------------------------------------

    def _n_chunks(self, n_jobs: int) -> int:
        if self.chunk_size is not None and self.chunk_size > 0:
            return -(-n_jobs // self.chunk_size)
        return self.workers * CHUNKS_PER_WORKER

    def pow_many(self, jobs: Sequence[PowJob]) -> list[int]:
        jobs = list(jobs)
        _note_batch(len(jobs))
        if len(jobs) < self.min_parallel:
            return compute_pows(jobs)
        pool = self._ensure_pool()
        if pool is None:
            return compute_pows(jobs)
        chunks = chunk_jobs(jobs, self._n_chunks(len(jobs)))
        _hooks.note(_hooks.ENGINE_POOL_BATCHES)
        _hooks.note(_hooks.ENGINE_POOL_JOBS, len(jobs))
        _hooks.note(_hooks.ENGINE_CHUNKS, len(chunks))
        tracer = _hooks.active()
        with maybe_span(
            tracer, "engine-batch", kind=KIND_BATCH, engine=self.name,
            jobs=len(jobs), chunks=len(chunks), workers=self.workers,
        ):
            try:
                results = pool.map(run_pow_chunk, chunks)
            except Exception:
                self._broken = True
                self.close()
                _hooks.note(_hooks.ENGINE_FALLBACKS)
                return compute_pows(jobs)
        return [value for chunk in results for value in chunk]

    def describe(self) -> str:
        state = "broken" if self._broken else "ok"
        return f"pool(workers={self.workers}, {state})"


def _note_batch(n_jobs: int) -> None:
    _hooks.note(_hooks.ENGINE_BATCHES)
    _hooks.note(_hooks.ENGINE_JOBS, n_jobs)


# -- the process-global active engine ---------------------------------------

_DEFAULT = SerialEngine()
_active: CryptoEngine = _DEFAULT


def active() -> CryptoEngine:
    """The engine the crypto layers currently route bulk work through."""
    return _active


def install(engine: CryptoEngine | None) -> None:
    """Make ``engine`` the global engine (None restores the serial default)."""
    global _active
    _active = engine if engine is not None else _DEFAULT


@contextmanager
def activated(engine: CryptoEngine | None) -> Iterator[CryptoEngine]:
    """Install ``engine`` for the block, restoring the previous one after."""
    global _active
    previous = _active
    _active = engine if engine is not None else _DEFAULT
    try:
        yield _active
    finally:
        _active = previous


def make_engine(
    workers: int = 0, chunk_size: int | None = None
) -> CryptoEngine:
    """Engine for a worker count: 0 → serial, N > 0 → N-process pool."""
    if workers and workers > 0:
        return ProcessPoolEngine(workers, chunk_size=chunk_size)
    return SerialEngine()
