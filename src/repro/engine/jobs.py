"""Picklable job specs and the worker kernel for bulk modular arithmetic.

A *job* is the smallest unit the execution engine understands: one modular
exponentiation ``(base, exponent, modulus)`` as a plain tuple of ints.
Tuples of ints pickle cheaply and unambiguously, which is what lets
:class:`~repro.engine.engine.ProcessPoolEngine` ship chunks of them to
worker processes without dragging any protocol object graph along.

:func:`compute_pows` is the shared kernel: both the serial engine and the
pool workers run it, so serial and parallel execution are bit-identical by
construction.  It transparently builds a :class:`~repro.engine.fixedbase.
FixedBaseCache` for bases that repeat within a batch, when the modulus is
large enough for the cache to beat CPython's native ``pow``.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.fixedbase import FixedBaseCache

#: One modular exponentiation: (base, exponent, modulus).
PowJob = tuple  # tuple[int, int, int]

#: Below this modulus size native ``pow`` always wins (its loop runs in C,
#: so Python-level bookkeeping dominates for small integers).
FIXEDBASE_MIN_BITS = 256

#: A base must repeat at least this often in a batch before the square
#: chain is worth building (the chain costs ~bits(e) squarings once).
FIXEDBASE_MIN_GROUP = 4


def compute_pows(
    jobs: Sequence[PowJob],
    min_cache_bits: int = FIXEDBASE_MIN_BITS,
    min_group: int = FIXEDBASE_MIN_GROUP,
) -> list[int]:
    """Evaluate every job in order; results match ``pow(b, e, m)`` exactly.

    Bases repeating ``min_group``+ times over a ``min_cache_bits``+ modulus
    share one :class:`FixedBaseCache` (built lazily, scoped to this call —
    nothing leaks between batches or processes).
    """
    counts: dict[tuple[int, int], int] = {}
    for base, _exponent, modulus in jobs:
        if modulus.bit_length() >= min_cache_bits:
            key = (base, modulus)
            counts[key] = counts.get(key, 0) + 1
    caches = {
        key: FixedBaseCache(*key)
        for key, count in counts.items()
        if count >= min_group
    }
    if not caches:
        return [pow(base, exponent, modulus) for base, exponent, modulus in jobs]
    out = []
    for base, exponent, modulus in jobs:
        cache = caches.get((base, modulus))
        if cache is not None:
            out.append(cache.pow(exponent))
        else:
            out.append(pow(base, exponent, modulus))
    return out


def run_pow_chunk(jobs: Sequence[PowJob]) -> list[int]:
    """The pool worker entry point (module-level, hence picklable)."""
    return compute_pows(jobs)


def chunk_jobs(jobs: Sequence[PowJob], n_chunks: int) -> list[list[PowJob]]:
    """Split ``jobs`` into ``n_chunks`` contiguous, size-balanced chunks.

    Contiguity + the fixed chunk count make the parallel result order (and
    any per-chunk fixed-base grouping) deterministic for a given job list.
    """
    jobs = list(jobs)
    n = len(jobs)
    if n == 0:
        return []
    n_chunks = max(1, min(n_chunks, n))
    size, extra = divmod(n, n_chunks)
    chunks: list[list[PowJob]] = []
    start = 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(jobs[start:end])
        start = end
    return chunks
