"""Batch crypto APIs over the execution engine.

These are the bulk counterparts of the single-value operations in
:mod:`repro.paillier.paillier` and :mod:`repro.paillier.threshold`: each
validates like the single-value API, flattens its modular exponentiations
into one engine batch, and reassembles results in input order.  Outputs
are bit-identical to a loop over the single-value calls — the protocol
uses that to guarantee identical transcripts whatever the engine.

Randomness never enters this layer: callers draw encryption randomizers
(in a fixed order) before batching, which is what keeps seeded runs
deterministic across worker counts.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.engine import CryptoEngine, active
from repro.errors import EncryptionError, ParameterError
from repro.observability import hooks as _hooks
from repro.paillier.paillier import PaillierCiphertext, PaillierPublicKey, _gcd
from repro.paillier.threshold import (
    PartialDecryption,
    ThresholdCiphertext,
    ThresholdKeyShare,
    ThresholdPublicKey,
)

#: One TEval instance: (ciphertexts, coefficients).
TevalGroup = tuple  # tuple[Sequence[ThresholdCiphertext], Sequence[int]]


def _engine(engine: CryptoEngine | None) -> CryptoEngine:
    return engine if engine is not None else active()


def encrypt_many(
    public: PaillierPublicKey,
    messages: Sequence[int],
    randomizers: Sequence[int],
    engine: CryptoEngine | None = None,
) -> list[PaillierCiphertext]:
    """Batch Paillier encryption with caller-supplied randomizers.

    Equivalent to ``[public.encrypt(m, randomness=r) ...]`` — the ``r^N``
    exponentiations (the entire cost) run as one engine batch.
    """
    if len(messages) != len(randomizers):
        raise ParameterError(
            f"{len(messages)} messages vs {len(randomizers)} randomizers"
        )
    n, n2 = public.n, public.n_squared
    for r in randomizers:
        if _gcd(r, n) != 1:
            raise EncryptionError("encryption randomness not a unit mod N")
    rpow = _engine(engine).pow_many([(r, n, n2) for r in randomizers])
    out = []
    for message, masked in zip(messages, rpow):
        value = (1 + (int(message) % n) * n) % n2 * masked % n2
        out.append(PaillierCiphertext(public, value))
    _hooks.note(_hooks.PAILLIER_ENCRYPT, len(out))
    _hooks.note(_hooks.PAILLIER_EXP, len(out))
    return out


def partial_decrypt_many(
    tpk: ThresholdPublicKey,
    share: ThresholdKeyShare,
    ciphertexts: Sequence[ThresholdCiphertext],
    engine: CryptoEngine | None = None,
) -> list[PartialDecryption]:
    """TPDec over many ciphertexts with one key share, one engine batch."""
    for ciphertext in ciphertexts:
        if ciphertext.public != tpk.paillier:
            raise EncryptionError("ciphertext under a different threshold key")
    exponent = 2 * tpk.delta * share.value
    n2 = tpk.n_squared
    values = _engine(engine).pow_many(
        [(c.value, exponent, n2) for c in ciphertexts]
    )
    _hooks.note(_hooks.PAILLIER_PARTIAL_DECRYPT, len(values))
    _hooks.note(_hooks.PAILLIER_EXP, len(values))
    return [PartialDecryption(share.index, v, share.epoch) for v in values]


def teval_many(
    tpk: ThresholdPublicKey,
    groups: Sequence[TevalGroup],
    engine: CryptoEngine | None = None,
) -> list[ThresholdCiphertext]:
    """TEval over many (ciphertexts, coefficients) groups at once.

    All groups' exponentiations flatten into a single engine batch; the
    per-group homomorphic products are then reassembled in order.  This is
    the workhorse of the packing step, where every batch evaluates the
    same ciphertext column against n Lagrange rows.
    """
    jobs = []
    sizes = []
    n, n2 = tpk.n, tpk.n_squared
    for ciphertexts, coefficients in groups:
        if len(ciphertexts) != len(coefficients):
            raise ParameterError(
                f"{len(ciphertexts)} ciphertexts vs {len(coefficients)} coefficients"
            )
        if not ciphertexts:
            raise ParameterError("TEval of an empty combination")
        for ciphertext, lam in zip(ciphertexts, coefficients):
            if ciphertext.public != tpk.paillier:
                raise EncryptionError("ciphertext under a different key in TEval")
            jobs.append((ciphertext.value, int(lam) % n, n2))
        sizes.append(len(ciphertexts))
    powers = _engine(engine).pow_many(jobs)
    _hooks.note(_hooks.PAILLIER_EXP, len(jobs))
    out = []
    index = 0
    for size in sizes:
        acc = 1
        for _ in range(size):
            acc = acc * powers[index] % n2
            index += 1
        out.append(ThresholdCiphertext(tpk.paillier, acc))
    return out


def verify_plaintext_knowledge_many(
    public: PaillierPublicKey,
    items: Sequence[tuple],
    params=None,
    engine: CryptoEngine | None = None,
) -> list[bool]:
    """Batch-verify plaintext-knowledge proofs; one engine batch of pows.

    ``items`` is a sequence of ``(ciphertext, proof, context)`` triples.
    Equivalent to ``[proof.verify(public, ct, params, context) ...]`` —
    the two Z_{N²} exponentiations per proof (the entire cost) flatten
    into a single :meth:`CryptoEngine.pow_many` call.  Items failing the
    cheap range checks are reported False without costing a pow, exactly
    as the single-value path short-circuits.
    """
    from repro.nizk.params import DEFAULT_PARAMS
    from repro.nizk.sigma import PlaintextKnowledgeProof

    if params is None:
        params = DEFAULT_PARAMS
    n, n2 = public.n, public.n_squared
    results: list[bool] = [False] * len(items)
    jobs = []
    pending = []  # (item index, proof, lhs factor of the (1+zN) term)
    for index, (ciphertext, proof, context) in enumerate(items):
        if ciphertext.public != public:
            raise EncryptionError("ciphertext under a different public key")
        if not (0 < proof.commitment < n2 and 0 < proof.response_unit < n):
            continue
        e = PlaintextKnowledgeProof._challenge(
            public, ciphertext, proof.commitment, params, context
        )
        jobs.append((proof.response_unit, n, n2))
        jobs.append((ciphertext.value, e, n2))
        pending.append((index, proof))
    powers = _engine(engine).pow_many(jobs)
    _hooks.note(_hooks.PAILLIER_EXP, len(jobs))
    for slot, (index, proof) in enumerate(pending):
        unit_pow = powers[2 * slot]
        ct_pow = powers[2 * slot + 1]
        lhs = (1 + proof.response_exponent % n2 * n) % n2 * unit_pow % n2
        rhs = proof.commitment * ct_pow % n2
        results[index] = lhs == rhs
    return results


def scalar_mul_many(
    ciphertexts: Sequence[PaillierCiphertext],
    scalars: Sequence[int],
    engine: CryptoEngine | None = None,
) -> list[PaillierCiphertext]:
    """Batch homomorphic scalar multiplication, ``[c * s ...]``."""
    if len(ciphertexts) != len(scalars):
        raise ParameterError(
            f"{len(ciphertexts)} ciphertexts vs {len(scalars)} scalars"
        )
    jobs = [
        (c.value, int(s) % c.public.n, c.public.n_squared)
        for c, s in zip(ciphertexts, scalars)
    ]
    values = _engine(engine).pow_many(jobs)
    _hooks.note(_hooks.PAILLIER_EXP, len(jobs))
    return [
        PaillierCiphertext(c.public, v) for c, v in zip(ciphertexts, values)
    ]
