"""Fixed-base precomputation for repeated modular exponentiation.

Several protocol hot spots exponentiate *one* base many times with varying
exponents: the verification base ``v`` (and its Δ-power ``v^Δ``) during
resharing and verification-key derivation, and the Lagrange-packing rows
where every row exponentiates the same ciphertext column.  Naive
square-and-multiply recomputes the square chain ``base^(2^i)`` for every
call; :class:`FixedBaseCache` computes it once and reuses it, so each
subsequent exponentiation costs only the *multiply* half of the work
(~popcount(e) modular multiplications instead of ~bits(e) squarings plus
~popcount(e) multiplications).

The cache only pays off when the modular arithmetic dominates the Python
bookkeeping — CPython's native ``pow`` runs its whole loop in C, so for
small moduli it wins regardless.  Callers gate cache use on the modulus
size (see :data:`repro.engine.jobs.FIXEDBASE_MIN_BITS`).
"""

from __future__ import annotations


class FixedBaseCache:
    """Cached square chain ``base^(2^i) mod modulus`` for one fixed base.

    Results are bit-identical to ``pow(base, e, modulus)`` for every
    integer exponent ``e`` (negative exponents require the base to be
    invertible, exactly like the builtin).
    """

    __slots__ = ("base", "modulus", "_squares")

    def __init__(self, base: int, modulus: int):
        if modulus <= 0:
            raise ValueError(f"modulus must be positive, got {modulus}")
        self.base = base % modulus
        self.modulus = modulus
        self._squares = [self.base]

    def _grow(self, bits: int) -> None:
        squares, m = self._squares, self.modulus
        while len(squares) < bits:
            last = squares[-1]
            squares.append(last * last % m)

    def pow(self, exponent: int) -> int:
        """``base**exponent mod modulus`` using the shared square chain."""
        m = self.modulus
        if exponent < 0:
            return pow(self.pow(-exponent), -1, m)
        if exponent == 0:
            return 1 % m
        self._grow(exponent.bit_length())
        squares = self._squares
        acc = 1
        i = 0
        e = exponent
        while e:
            if e & 1:
                acc = acc * squares[i] % m
            e >>= 1
            i += 1
        return acc

    def __repr__(self) -> str:
        return (
            f"FixedBaseCache(bits={self.modulus.bit_length()}, "
            f"chain={len(self._squares)})"
        )
