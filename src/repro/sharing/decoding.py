"""Reed–Solomon (Berlekamp–Welch) decoding for Shamir sharings.

Shamir shares are a Reed–Solomon codeword, so up to ``e`` *wrong* shares
can be corrected outright — no proofs needed — whenever
``m ≥ degree + 1 + 2e`` shares are available.  This gives the protocol a
second, proof-free road to guaranteed output delivery (the classic
honest-majority-MPC route), exposed as
:meth:`~repro.sharing.packed.PackedShamirScheme` ``.robust_reconstruct``
and as the ``robust_reconstruction`` protocol option; it also answers the
active-security half of the paper's §7 information-theoretic question.

The Berlekamp–Welch system: find an error locator ``E`` (monic, degree e)
and ``Q`` (degree ≤ d+e) with ``Q(x_i) = y_i·E(x_i)`` for every received
point; then the codeword polynomial is ``Q / E`` exactly.  Everything runs
over :class:`~repro.fields.ring.Zmod` with invertible-pivot Gaussian
elimination, so it works over prime fields and (with overwhelming
probability) over the protocol's RSA ring.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NonInvertibleError, ParameterError, ReconstructionError
from repro.fields.polynomial import Polynomial
from repro.fields.ring import Zmod, ZmodElement


def gaussian_solve(
    ring: Zmod,
    matrix: list[list[ZmodElement]],
    rhs: list[ZmodElement],
) -> list[ZmodElement] | None:
    """Solve ``A·x = b`` over the ring; None if singular.

    Partial pivoting searches for an *invertible* pivot (over Z_N a nonzero
    non-unit would factor N; treated as singular).  The matrix is consumed.
    """
    rows, cols = len(matrix), len(matrix[0]) if matrix else 0
    if len(rhs) != rows:
        raise ParameterError("matrix/vector shape mismatch")
    augmented = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    pivot_cols: list[int] = []
    r = 0
    for c in range(cols):
        pivot_row = None
        for candidate in range(r, rows):
            entry = augmented[candidate][c]
            if entry.is_zero():
                continue
            try:
                ring.inverse(entry)
            except NonInvertibleError:
                continue
            pivot_row = candidate
            break
        if pivot_row is None:
            continue
        augmented[r], augmented[pivot_row] = augmented[pivot_row], augmented[r]
        inv = ring.inverse(augmented[r][c])
        augmented[r] = [v * inv for v in augmented[r]]
        for other in range(rows):
            if other != r and not augmented[other][c].is_zero():
                factor = augmented[other][c]
                augmented[other] = [
                    a - factor * b for a, b in zip(augmented[other], augmented[r])
                ]
        pivot_cols.append(c)
        r += 1
        if r == rows:
            break
    # Inconsistent system?
    for row in augmented[r:]:
        if all(v.is_zero() for v in row[:-1]) and not row[-1].is_zero():
            return None
    solution = [ring.zero] * cols
    for row_idx, c in enumerate(pivot_cols):
        solution[c] = augmented[row_idx][-1]
    return solution


def berlekamp_welch(
    ring: Zmod,
    points: Sequence[tuple[int, ZmodElement]],
    degree: int,
    max_errors: int,
) -> Polynomial:
    """Decode the unique degree-``degree`` polynomial through ``points``
    assuming at most ``max_errors`` of them are wrong.

    Raises :class:`ReconstructionError` when decoding fails (more errors
    than promised, or too few points: need ``len(points) >= degree+1+2e``).
    """
    m = len(points)
    if len({x for x, _ in points}) != m:
        raise ReconstructionError("repeated x coordinates")
    if max_errors < 0:
        raise ParameterError("max_errors must be >= 0")
    for e in range(min(max_errors, (m - degree - 1) // 2), -1, -1):
        if m < degree + 1 + 2 * e:
            continue
        candidate = _try_decode(ring, points, degree, e)
        if candidate is not None:
            # Accept only if consistent with all but <= max_errors points.
            wrong = sum(
                1 for x, y in points if candidate(x) != y
            )
            if wrong <= max_errors:
                return candidate
    raise ReconstructionError(
        f"Berlekamp–Welch failed: degree={degree}, points={m}, "
        f"max_errors={max_errors}"
    )


def _try_decode(
    ring: Zmod,
    points: Sequence[tuple[int, ZmodElement]],
    degree: int,
    e: int,
) -> Polynomial | None:
    """One BW attempt at a fixed error budget e."""
    if e == 0:
        from repro.fields.polynomial import interpolate

        try:
            poly = interpolate(ring, list(points[: degree + 1]))
        except Exception:
            return None
        return poly if poly.degree <= degree else None
    # Unknowns: Q coefficients (degree+e+1 of them), E coefficients (e of
    # them; E is monic with leading coefficient 1).
    n_q = degree + e + 1
    matrix: list[list[ZmodElement]] = []
    rhs: list[ZmodElement] = []
    for x, y in points:
        xe = ring.element(x)
        row: list[ZmodElement] = []
        power = ring.one
        for _ in range(n_q):          # +Q(x) terms
            row.append(power)
            power = power * xe
        power = ring.one
        for _ in range(e):            # −y·E_low(x) terms
            row.append(-(y * power))
            power = power * xe
        matrix.append(row)
        rhs.append(y * power)         # y·x^e (the monic term, moved right)
    solution = gaussian_solve(ring, matrix, rhs)
    if solution is None:
        return None
    q = Polynomial(ring, solution[:n_q])
    e_poly = Polynomial(ring, solution[n_q:] + [ring.one])
    try:
        quotient, remainder = q.divmod(e_poly)
    except Exception:
        return None
    if not remainder.is_zero() or quotient.degree > degree:
        return None
    return quotient
