"""Packed Shamir secret sharing (Franklin–Yung), as used by the paper.

A degree-``d`` packed sharing ``[[x]]_d`` of a vector ``x ∈ R^k`` is a
polynomial ``f`` with ``f(-(j)) = x_j`` for slot ``j ∈ 0..k-1`` and shares
``f(i)`` for parties ``i ∈ 1..n``, where ``k-1 <= d <= n-1``:

* ``d+1`` shares reconstruct the whole sharing;
* any ``d-k+1`` shares are independent of the secrets;
* sharings are linear: ``[[x+y]]_d = [[x]]_d + [[y]]_d``;
* share-wise products multiply secrets slot-wise and add degrees:
  ``[[x*y]]_{d1+d2} = [[x]]_{d1} * [[y]]_{d2}`` for ``d1+d2 < n``;
* *multiplication-friendliness*: a public vector ``c`` can be multiplied in
  locally via the canonical degree-(k-1) sharing of ``c``
  (:meth:`PackedShamirScheme.public_product`).

The packing factor ``k ≈ nε`` is exactly the online-communication saving the
paper claims (DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ParameterError, ReconstructionError, SharingError
from repro.fields import Zmod, ZmodElement, random_polynomial
from repro.fields.polynomial import evaluate_from_points, interpolate
from repro.observability import hooks as _hooks


def secret_slots(k: int) -> list[int]:
    """Evaluation points ``0, -1, ..., -(k-1)`` holding the k packed secrets."""
    if k < 1:
        raise ParameterError(f"packing factor must be >= 1, got {k}")
    return [-j for j in range(k)]


@dataclass(frozen=True)
class PackedShare:
    """Party ``index``'s share of a packed sharing, tagged with its degree.

    Tagging shares with ``(degree, k)`` lets the scheme enforce the degree
    discipline (``d1 + d2 < n`` for products) at the type level instead of
    silently producing garbage.
    """

    index: int
    value: ZmodElement
    degree: int
    k: int

    def __post_init__(self):
        if self.index < 1:
            raise ParameterError(f"share index must be >= 1, got {self.index}")
        if self.degree < self.k - 1:
            raise ParameterError(
                f"degree {self.degree} below minimum {self.k - 1} for k={self.k}"
            )

    def _require_compatible(self, other: "PackedShare") -> None:
        if other.index != self.index:
            raise SharingError(
                f"shares of different parties: {self.index} vs {other.index}"
            )
        if other.k != self.k:
            raise SharingError(f"packing mismatch: k={self.k} vs k={other.k}")

    def __add__(self, other: "PackedShare") -> "PackedShare":
        if not isinstance(other, PackedShare):
            return NotImplemented
        self._require_compatible(other)
        if other.degree != self.degree:
            raise SharingError(
                f"cannot add sharings of degree {self.degree} and {other.degree}"
            )
        return PackedShare(self.index, self.value + other.value, self.degree, self.k)

    def __sub__(self, other: "PackedShare") -> "PackedShare":
        if not isinstance(other, PackedShare):
            return NotImplemented
        self._require_compatible(other)
        if other.degree != self.degree:
            raise SharingError(
                f"cannot subtract sharings of degree {self.degree} and {other.degree}"
            )
        return PackedShare(self.index, self.value - other.value, self.degree, self.k)

    def __mul__(self, other: "PackedShare") -> "PackedShare":
        """Share-wise product; degrees add (caller must keep d1+d2 < n)."""
        if not isinstance(other, PackedShare):
            return NotImplemented
        self._require_compatible(other)
        return PackedShare(
            self.index, self.value * other.value, self.degree + other.degree, self.k
        )

    def scale(self, scalar: int | ZmodElement) -> "PackedShare":
        return PackedShare(self.index, self.value * scalar, self.degree, self.k)


PackedSharing = list[PackedShare]


class PackedShamirScheme:
    """Packed Shamir sharing for ``n`` parties, packing factor ``k``.

    ``default_degree`` is the degree used by :meth:`share` when none is
    given; the paper's protocol uses ``d = t + k - 1`` for preprocessing
    sharings (``t`` privacy against ``t`` corruptions) and ``k - 1`` for
    canonical public-vector sharings.
    """

    def __init__(self, ring: Zmod, n: int, k: int, default_degree: int | None = None):
        if k < 1:
            raise ParameterError(f"packing factor must be >= 1, got {k}")
        if n < k:
            raise ParameterError(f"need n >= k, got n={n}, k={k}")
        if n + k >= ring.modulus:
            raise ParameterError("modulus too small for n+k distinct points")
        self.ring = ring
        self.n = n
        self.k = k
        # Default to the largest multiplication-friendly degree (n−k), but
        # never below the minimum valid degree k−1 (possible when n < 2k−1).
        self.default_degree = (
            default_degree if default_degree is not None else max(n - k, k - 1)
        )
        if not (k - 1 <= self.default_degree <= n - 1):
            raise ParameterError(
                f"default degree {self.default_degree} outside [{k-1}, {n-1}]"
            )

    # -- dealing --------------------------------------------------------------

    def share(
        self,
        secrets: Sequence[int | ZmodElement],
        degree: int | None = None,
        rng=None,
    ) -> PackedSharing:
        """Deal a fresh degree-``degree`` packed sharing of ``secrets``."""
        d = self.default_degree if degree is None else degree
        self._check_degree(d)
        vec = self._check_secrets(secrets)
        constraints = list(zip(secret_slots(self.k), vec))
        poly = random_polynomial(self.ring, d, constraints, rng=rng)
        _hooks.note(_hooks.SHARING_DEALT)
        return [PackedShare(i, poly(i), d, self.k) for i in range(1, self.n + 1)]

    def canonical_sharing(self, secrets: Sequence[int | ZmodElement]) -> PackedSharing:
        """The unique degree-(k-1) sharing of ``secrets`` (no randomness).

        Every share is a deterministic public function of the secrets; this
        is the "all shares are determined by the secrets" sharing used for
        multiplying in public vectors (paper §3.2).
        """
        vec = self._check_secrets(secrets)
        points = list(zip(secret_slots(self.k), vec))
        poly = interpolate(self.ring, points)
        return [PackedShare(i, poly(i), self.k - 1, self.k) for i in range(1, self.n + 1)]

    def canonical_share_for(
        self, secrets: Sequence[int | ZmodElement], index: int
    ) -> PackedShare:
        """A single party's canonical degree-(k-1) share (local computation)."""
        vec = self._check_secrets(secrets)
        points = list(zip(secret_slots(self.k), vec))
        value = evaluate_from_points(self.ring, points, at=index)
        _hooks.note(_hooks.SHARING_CANONICAL)
        return PackedShare(index, value, self.k - 1, self.k)

    # -- reconstruction ---------------------------------------------------------

    def reconstruct(
        self, shares: Iterable[PackedShare], degree: int | None = None
    ) -> list[ZmodElement]:
        """Recover the packed secret vector from ``degree+1`` shares.

        With more shares than needed, the extras are checked against the
        interpolant (error detection).  The shares' own degree tags must
        agree; ``degree`` overrides for callers reconstructing raw points.
        """
        share_list = _dedupe(shares)
        if not share_list:
            raise ReconstructionError("no shares supplied")
        d = degree if degree is not None else share_list[0].degree
        for s in share_list:
            if s.degree != d:
                raise ReconstructionError(
                    f"mixed degrees in reconstruction: {s.degree} vs {d}"
                )
            if s.k != self.k:
                raise ReconstructionError(f"share with k={s.k} in k={self.k} scheme")
        if len(share_list) < d + 1:
            raise ReconstructionError(
                f"need {d + 1} shares for degree {d}, got {len(share_list)}"
            )
        base = share_list[: d + 1]
        points = [(s.index, s.value) for s in base]
        if len(share_list) > d + 1:
            poly = interpolate(self.ring, points)
            for s in share_list[d + 1 :]:
                if poly(s.index) != s.value:
                    raise ReconstructionError(
                        f"share of party {s.index} inconsistent with the others"
                    )
        _hooks.note(_hooks.SHARING_RECONSTRUCTED)
        return [
            evaluate_from_points(self.ring, points, at=slot)
            for slot in secret_slots(self.k)
        ]

    def robust_reconstruct(
        self,
        shares: Iterable[PackedShare],
        degree: int | None = None,
        max_errors: int = 0,
    ) -> list[ZmodElement]:
        """Error-corrected reconstruction: tolerates ``max_errors`` *wrong*
        shares outright (Berlekamp–Welch), given
        ``len(shares) >= degree + 1 + 2·max_errors``.

        This is the proof-free route to robustness: no verification of who
        lied is needed, the code corrects them silently.
        """
        from repro.sharing.decoding import berlekamp_welch

        share_list = _dedupe(shares)
        if not share_list:
            raise ReconstructionError("no shares supplied")
        d = degree if degree is not None else share_list[0].degree
        points = [(s.index, s.value) for s in share_list]
        poly = berlekamp_welch(self.ring, points, d, max_errors)
        _hooks.note(_hooks.SHARING_RECONSTRUCTED)
        _hooks.note(_hooks.SHARING_ROBUST_RECONSTRUCTED)
        return [poly(slot) for slot in secret_slots(self.k)]

    # -- local operations ----------------------------------------------------

    def add(self, a: PackedSharing, b: PackedSharing) -> PackedSharing:
        return [x + y for x, y in _zip_by_index(a, b)]

    def sub(self, a: PackedSharing, b: PackedSharing) -> PackedSharing:
        return [x - y for x, y in _zip_by_index(a, b)]

    def multiply(self, a: PackedSharing, b: PackedSharing) -> PackedSharing:
        """Share-wise product ``[[x*y]]_{d1+d2}``; requires ``d1+d2 < n``."""
        out = [x * y for x, y in _zip_by_index(a, b)]
        if out and out[0].degree >= self.n:
            raise SharingError(
                f"product degree {out[0].degree} >= n={self.n}: unreconstructable"
            )
        return out

    def public_product(
        self, public: Sequence[int | ZmodElement], sharing: PackedSharing
    ) -> PackedSharing:
        """Multiplication-friendly product ``c * [[x]]_d -> [[c*x]]_{d+k-1}``.

        Each party locally multiplies its share by its canonical share of
        the public vector ``c`` (paper §3.2: requires ``d <= n-k``).
        """
        if not sharing:
            raise SharingError("empty sharing")
        if sharing[0].degree > self.n - self.k:
            raise SharingError(
                f"public_product needs degree <= n-k={self.n - self.k}, "
                f"got {sharing[0].degree}"
            )
        return [
            self.canonical_share_for(public, s.index) * s
            for s in sharing
        ]

    def scale(self, sharing: PackedSharing, scalar) -> PackedSharing:
        return [s.scale(scalar) for s in sharing]

    # -- internals -----------------------------------------------------------

    def _check_degree(self, d: int) -> None:
        if not (self.k - 1 <= d <= self.n - 1):
            raise ParameterError(
                f"degree {d} outside valid range [{self.k - 1}, {self.n - 1}]"
            )

    def _check_secrets(self, secrets: Sequence[int | ZmodElement]) -> list[ZmodElement]:
        if len(secrets) != self.k:
            raise ParameterError(
                f"expected {self.k} packed secrets, got {len(secrets)}"
            )
        return [self.ring.element(s) for s in secrets]


def _dedupe(shares: Iterable[PackedShare]) -> list[PackedShare]:
    seen: dict[int, PackedShare] = {}
    for s in shares:
        if s.index in seen and seen[s.index].value != s.value:
            raise ReconstructionError(f"conflicting shares for party {s.index}")
        seen[s.index] = s
    return list(seen.values())


def _zip_by_index(a: PackedSharing, b: PackedSharing):
    bmap = {s.index: s for s in b}
    for s in a:
        if s.index not in bmap:
            raise SharingError(f"missing counterpart share for party {s.index}")
        yield s, bmap[s.index]
