"""Packed Shamir secret sharing (Franklin–Yung), as used by the paper.

A degree-``d`` packed sharing ``[[x]]_d`` of a vector ``x ∈ R^k`` is a
polynomial ``f`` with ``f(-(j)) = x_j`` for slot ``j ∈ 0..k-1`` and shares
``f(i)`` for parties ``i ∈ 1..n``, where ``k-1 <= d <= n-1``:

* ``d+1`` shares reconstruct the whole sharing;
* any ``d-k+1`` shares are independent of the secrets;
* sharings are linear: ``[[x+y]]_d = [[x]]_d + [[y]]_d``;
* share-wise products multiply secrets slot-wise and add degrees:
  ``[[x*y]]_{d1+d2} = [[x]]_{d1} * [[y]]_{d2}`` for ``d1+d2 < n``;
* *multiplication-friendliness*: a public vector ``c`` can be multiplied in
  locally via the canonical degree-(k-1) sharing of ``c``
  (:meth:`PackedShamirScheme.public_product`).

The packing factor ``k ≈ nε`` is exactly the online-communication saving the
paper claims (DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ParameterError, ReconstructionError, SharingError
from repro.fields import Zmod, ZmodElement, random_polynomial
from repro.fields.lagrange import lagrange_coefficients
from repro.fields.polynomial import evaluate_from_points, interpolate
from repro.observability import hooks as _hooks
from repro.sharing.kernel import matmul_mod, resolve_backend


def secret_slots(k: int) -> list[int]:
    """Evaluation points ``0, -1, ..., -(k-1)`` holding the k packed secrets."""
    if k < 1:
        raise ParameterError(f"packing factor must be >= 1, got {k}")
    return [-j for j in range(k)]


@dataclass(frozen=True)
class PackedShare:
    """Party ``index``'s share of a packed sharing, tagged with its degree.

    Tagging shares with ``(degree, k)`` lets the scheme enforce the degree
    discipline (``d1 + d2 < n`` for products) at the type level instead of
    silently producing garbage.
    """

    index: int
    value: ZmodElement
    degree: int
    k: int

    def __post_init__(self):
        if self.index < 1:
            raise ParameterError(f"share index must be >= 1, got {self.index}")
        if self.degree < self.k - 1:
            raise ParameterError(
                f"degree {self.degree} below minimum {self.k - 1} for k={self.k}"
            )

    def _require_compatible(self, other: "PackedShare") -> None:
        if other.index != self.index:
            raise SharingError(
                f"shares of different parties: {self.index} vs {other.index}"
            )
        if other.k != self.k:
            raise SharingError(f"packing mismatch: k={self.k} vs k={other.k}")

    def __add__(self, other: "PackedShare") -> "PackedShare":
        if not isinstance(other, PackedShare):
            return NotImplemented
        self._require_compatible(other)
        if other.degree != self.degree:
            raise SharingError(
                f"cannot add sharings of degree {self.degree} and {other.degree}"
            )
        return PackedShare(self.index, self.value + other.value, self.degree, self.k)

    def __sub__(self, other: "PackedShare") -> "PackedShare":
        if not isinstance(other, PackedShare):
            return NotImplemented
        self._require_compatible(other)
        if other.degree != self.degree:
            raise SharingError(
                f"cannot subtract sharings of degree {self.degree} and {other.degree}"
            )
        return PackedShare(self.index, self.value - other.value, self.degree, self.k)

    def __mul__(self, other: "PackedShare") -> "PackedShare":
        """Share-wise product; degrees add (caller must keep d1+d2 < n)."""
        if not isinstance(other, PackedShare):
            return NotImplemented
        self._require_compatible(other)
        return PackedShare(
            self.index, self.value * other.value, self.degree + other.degree, self.k
        )

    def scale(self, scalar: int | ZmodElement) -> "PackedShare":
        return PackedShare(self.index, self.value * scalar, self.degree, self.k)


PackedSharing = list[PackedShare]

#: Precomputed Lagrange rows as plain ints (reduced mod the scheme modulus).
_IntRows = tuple[tuple[int, ...], ...]


class PackedShamirScheme:
    """Packed Shamir sharing for ``n`` parties, packing factor ``k``.

    ``default_degree`` is the degree used by :meth:`share` when none is
    given; the paper's protocol uses ``d = t + k - 1`` for preprocessing
    sharings (``t`` privacy against ``t`` corruptions) and ``k - 1`` for
    canonical public-vector sharings.
    """

    def __init__(self, ring: Zmod, n: int, k: int, default_degree: int | None = None):
        if k < 1:
            raise ParameterError(f"packing factor must be >= 1, got {k}")
        if n < k:
            raise ParameterError(f"need n >= k, got n={n}, k={k}")
        if n + k >= ring.modulus:
            raise ParameterError("modulus too small for n+k distinct points")
        self.ring = ring
        self.n = n
        self.k = k
        # Default to the largest multiplication-friendly degree (n−k), but
        # never below the minimum valid degree k−1 (possible when n < 2k−1).
        self.default_degree = (
            default_degree if default_degree is not None else max(n - k, k - 1)
        )
        if not (k - 1 <= self.default_degree <= n - 1):
            raise ParameterError(
                f"default degree {self.default_degree} outside [{k-1}, {n-1}]"
            )
        # Batched-kernel matrix caches (instance-level on purpose: a fresh
        # scheme for a different (n, d, k) geometry starts empty, so stale
        # matrices can never leak across geometries).
        self._dealing_cache: dict[int, tuple[tuple[int, ...], "_IntRows"]] = {}
        self._eval_cache: dict[tuple[tuple[int, ...], tuple[int, ...]], "_IntRows"] = {}

    # -- dealing --------------------------------------------------------------

    def share(
        self,
        secrets: Sequence[int | ZmodElement],
        degree: int | None = None,
        rng=None,
    ) -> PackedSharing:
        """Deal a fresh degree-``degree`` packed sharing of ``secrets``."""
        d = self.default_degree if degree is None else degree
        self._check_degree(d)
        vec = self._check_secrets(secrets)
        constraints = list(zip(secret_slots(self.k), vec))
        poly = random_polynomial(self.ring, d, constraints, rng=rng)
        _hooks.note(_hooks.SHARING_DEALT)
        return [PackedShare(i, poly(i), d, self.k) for i in range(1, self.n + 1)]

    def canonical_sharing(self, secrets: Sequence[int | ZmodElement]) -> PackedSharing:
        """The unique degree-(k-1) sharing of ``secrets`` (no randomness).

        Every share is a deterministic public function of the secrets; this
        is the "all shares are determined by the secrets" sharing used for
        multiplying in public vectors (paper §3.2).
        """
        vec = self._check_secrets(secrets)
        points = list(zip(secret_slots(self.k), vec))
        poly = interpolate(self.ring, points)
        return [PackedShare(i, poly(i), self.k - 1, self.k) for i in range(1, self.n + 1)]

    def canonical_share_for(
        self, secrets: Sequence[int | ZmodElement], index: int
    ) -> PackedShare:
        """A single party's canonical degree-(k-1) share (local computation)."""
        vec = self._check_secrets(secrets)
        points = list(zip(secret_slots(self.k), vec))
        value = evaluate_from_points(self.ring, points, at=index)
        _hooks.note(_hooks.SHARING_CANONICAL)
        return PackedShare(index, value, self.k - 1, self.k)

    # -- batched kernel APIs (ISSUE 10) --------------------------------------

    def share_many(
        self,
        secret_vectors: Sequence[Sequence[int | ZmodElement]],
        degree: int | Sequence[int] | None = None,
        rng=None,
    ) -> list[PackedSharing]:
        """Deal many packed sharings through one cached dealing matrix.

        ``degree`` is a single degree for every vector or one degree per
        vector (protocols interleave degrees d and 2d in a single rng
        stream, so per-vector degrees are needed to keep the stream
        identical to sequential :meth:`share` calls).  Bit-for-bit
        equivalent to ``[self.share(v, d, rng) for v, d in ...]`` on every
        backend: the random coefficients are drawn per vector in dealing
        order, then the shares come out of one matrix product per degree.
        """
        vectors = [self._check_secrets(v) for v in secret_vectors]
        degrees = self._check_degrees(degree, len(vectors))
        backend = self._backend()
        if backend == "legacy":
            return [
                self.share(v, degree=d, rng=rng)
                for v, d in zip(vectors, degrees)
            ]
        # Draw the random columns first, in vector order: this is exactly
        # the rng consumption of sequential share() calls.
        columns: list[list[int]] = []
        for vec, d in zip(vectors, degrees):
            free = d + 1 - self.k
            columns.append(
                [int(v) for v in vec]
                + [int(self.ring.random(rng)) for _ in range(free)]
            )
        out: list[PackedSharing | None] = [None] * len(vectors)
        by_degree: dict[int, list[int]] = {}
        for pos, d in enumerate(degrees):
            by_degree.setdefault(d, []).append(pos)
        for d, positions in by_degree.items():
            _, rows = self._dealing_matrix(d)
            shares = matmul_mod(
                rows, [columns[p] for p in positions], self.ring.modulus, backend
            )
            for pos, values in zip(positions, shares):
                _hooks.note(_hooks.SHARING_DEALT)
                out[pos] = [
                    PackedShare(i, ZmodElement(self.ring, v), d, self.k)
                    for i, v in enumerate(values, start=1)
                ]
        return [sharing for sharing in out if sharing is not None]

    def canonical_many(
        self,
        public_vectors: Sequence[Sequence[int | ZmodElement]],
        index: int | None = None,
    ) -> list[PackedSharing] | list[PackedShare]:
        """Canonical degree-(k-1) sharings of many public vectors at once.

        With ``index`` the result is one :class:`PackedShare` per vector
        (party ``index``'s canonical share, as :meth:`canonical_share_for`
        returns); without it, full canonical sharings.  One cached k-column
        matrix serves every call on this geometry.
        """
        vectors = [self._check_secrets(v) for v in public_vectors]
        backend = self._backend()
        if backend == "legacy":
            if index is None:
                return [self.canonical_sharing(v) for v in vectors]
            return [self.canonical_share_for(v, index) for v in vectors]
        _, rows = self._dealing_matrix(self.k - 1)
        if index is not None:
            if not 1 <= index <= self.n:
                raise ParameterError(f"party index {index} outside 1..{self.n}")
            rows = (rows[index - 1],)
        columns = [[int(v) for v in vec] for vec in vectors]
        values = matmul_mod(rows, columns, self.ring.modulus, backend)
        if index is not None:
            # Mirror canonical_share_for's per-share counter (the full-
            # sharing path mirrors canonical_sharing, which notes nothing).
            _hooks.note(_hooks.SHARING_CANONICAL, len(vectors))
            return [
                PackedShare(index, ZmodElement(self.ring, vals[0]), self.k - 1, self.k)
                for vals in values
            ]
        return [
            [
                PackedShare(i, ZmodElement(self.ring, v), self.k - 1, self.k)
                for i, v in enumerate(vals, start=1)
            ]
            for vals in values
        ]

    # -- reconstruction ---------------------------------------------------------

    def reconstruct(
        self, shares: Iterable[PackedShare], degree: int | None = None
    ) -> list[ZmodElement]:
        """Recover the packed secret vector from ``degree+1`` shares.

        With more shares than needed, the extras are checked against the
        interpolant (error detection).  The shares' own degree tags must
        agree; ``degree`` overrides for callers reconstructing raw points.
        """
        share_list = _dedupe(shares)
        if not share_list:
            raise ReconstructionError("no shares supplied")
        d = degree if degree is not None else share_list[0].degree
        for s in share_list:
            if s.degree != d:
                raise ReconstructionError(
                    f"mixed degrees in reconstruction: {s.degree} vs {d}"
                )
            if s.k != self.k:
                raise ReconstructionError(f"share with k={s.k} in k={self.k} scheme")
        if len(share_list) < d + 1:
            raise ReconstructionError(
                f"need {d + 1} shares for degree {d}, got {len(share_list)}"
            )
        base = share_list[: d + 1]
        points = [(s.index, s.value) for s in base]
        if len(share_list) > d + 1:
            poly = interpolate(self.ring, points)
            for s in share_list[d + 1 :]:
                if poly(s.index) != s.value:
                    raise ReconstructionError(
                        f"share of party {s.index} inconsistent with the others"
                    )
        _hooks.note(_hooks.SHARING_RECONSTRUCTED)
        return [
            evaluate_from_points(self.ring, points, at=slot)
            for slot in secret_slots(self.k)
        ]

    def robust_reconstruct(
        self,
        shares: Iterable[PackedShare],
        degree: int | None = None,
        max_errors: int = 0,
    ) -> list[ZmodElement]:
        """Error-corrected reconstruction: tolerates ``max_errors`` *wrong*
        shares outright (Berlekamp–Welch), given
        ``len(shares) >= degree + 1 + 2·max_errors``.

        This is the proof-free route to robustness: no verification of who
        lied is needed, the code corrects them silently.
        """
        from repro.sharing.decoding import berlekamp_welch

        share_list = _dedupe(shares)
        if not share_list:
            raise ReconstructionError("no shares supplied")
        d = degree if degree is not None else share_list[0].degree
        points = [(s.index, s.value) for s in share_list]
        poly = berlekamp_welch(self.ring, points, d, max_errors)
        _hooks.note(_hooks.SHARING_RECONSTRUCTED)
        _hooks.note(_hooks.SHARING_ROBUST_RECONSTRUCTED)
        return [poly(slot) for slot in secret_slots(self.k)]

    def reconstruct_many(
        self,
        sharings: Sequence[Iterable[PackedShare]],
        degree: int | None = None,
    ) -> list[list[ZmodElement]]:
        """Reconstruct many sharings through cached slot-evaluation matrices.

        Semantics per sharing are identical to :meth:`reconstruct` —
        deduplication with conflict detection, degree/packing checks,
        redundant shares verified against the interpolant of the first
        ``degree+1`` — but the Lagrange rows are computed once per distinct
        base-point tuple and applied as one matrix product per group.
        Validation runs in two passes (all sharings are deduped and
        shape-checked before any consistency check fires), so when several
        sharings are bad, which one raises first can differ from a
        sequential loop; the error types and messages are the same.
        """
        backend = self._backend()
        if backend == "legacy":
            return [self.reconstruct(s, degree=degree) for s in sharings]
        slots = secret_slots(self.k)
        prepared: list[tuple[list[PackedShare], list[PackedShare], int]] = []
        for sharing in sharings:
            share_list = _dedupe(sharing)
            if not share_list:
                raise ReconstructionError("no shares supplied")
            d = degree if degree is not None else share_list[0].degree
            for s in share_list:
                if s.degree != d:
                    raise ReconstructionError(
                        f"mixed degrees in reconstruction: {s.degree} vs {d}"
                    )
                if s.k != self.k:
                    raise ReconstructionError(
                        f"share with k={s.k} in k={self.k} scheme"
                    )
            if len(share_list) < d + 1:
                raise ReconstructionError(
                    f"need {d + 1} shares for degree {d}, got {len(share_list)}"
                )
            prepared.append((share_list[: d + 1], share_list[d + 1 :], d))
        # Group by base-point tuple: committees post in a fixed order, so
        # in practice every sharing of a batch shares one matrix.
        by_points: dict[tuple[int, ...], list[int]] = {}
        for pos, (base, _, _) in enumerate(prepared):
            by_points.setdefault(tuple(s.index for s in base), []).append(pos)
        results: list[list[ZmodElement] | None] = [None] * len(prepared)
        modulus = self.ring.modulus
        for xs, positions in by_points.items():
            columns = [
                [int(s.value) for s in prepared[pos][0]] for pos in positions
            ]
            # Redundant shares: evaluate the base interpolant at the extra
            # indices and compare (the matrix analogue of poly(s.index)).
            extra_targets = sorted(
                {s.index for pos in positions for s in prepared[pos][1]}
            )
            if extra_targets:
                check_rows = self.evaluation_rows(xs, tuple(extra_targets))
                predicted = matmul_mod(check_rows, columns, modulus, backend)
                at_index = {x: r for r, x in enumerate(extra_targets)}
                for pos, values in zip(positions, predicted):
                    for s in prepared[pos][1]:
                        if values[at_index[s.index]] != int(s.value):
                            raise ReconstructionError(
                                f"share of party {s.index} inconsistent "
                                f"with the others"
                            )
            slot_rows = self.evaluation_rows(xs, tuple(slots))
            opened = matmul_mod(slot_rows, columns, modulus, backend)
            for pos, values in zip(positions, opened):
                _hooks.note(_hooks.SHARING_RECONSTRUCTED)
                results[pos] = [ZmodElement(self.ring, v) for v in values]
        return [r for r in results if r is not None]

    # -- local operations ----------------------------------------------------

    def add(self, a: PackedSharing, b: PackedSharing) -> PackedSharing:
        return [x + y for x, y in _zip_by_index(a, b)]

    def sub(self, a: PackedSharing, b: PackedSharing) -> PackedSharing:
        return [x - y for x, y in _zip_by_index(a, b)]

    def multiply(self, a: PackedSharing, b: PackedSharing) -> PackedSharing:
        """Share-wise product ``[[x*y]]_{d1+d2}``; requires ``d1+d2 < n``."""
        out = [x * y for x, y in _zip_by_index(a, b)]
        if out and out[0].degree >= self.n:
            raise SharingError(
                f"product degree {out[0].degree} >= n={self.n}: unreconstructable"
            )
        return out

    def public_product(
        self, public: Sequence[int | ZmodElement], sharing: PackedSharing
    ) -> PackedSharing:
        """Multiplication-friendly product ``c * [[x]]_d -> [[c*x]]_{d+k-1}``.

        Each party locally multiplies its share by its canonical share of
        the public vector ``c`` (paper §3.2: requires ``d <= n-k``).
        """
        if not sharing:
            raise SharingError("empty sharing")
        if sharing[0].degree > self.n - self.k:
            raise SharingError(
                f"public_product needs degree <= n-k={self.n - self.k}, "
                f"got {sharing[0].degree}"
            )
        # One canonical sharing of the public vector serves every party
        # (historically this re-interpolated per share).
        canonical = {s.index: s for s in self.canonical_many([public])[0]}
        return [
            (
                canonical[s.index]
                if s.index in canonical
                else self.canonical_share_for(public, s.index)
            )
            * s
            for s in sharing
        ]

    def scale(self, sharing: PackedSharing, scalar) -> PackedSharing:
        return [s.scale(scalar) for s in sharing]

    # -- kernel matrices ------------------------------------------------------

    def dealing_points(self, degree: int) -> list[int]:
        """Interpolation points of a degree-``degree`` dealing, legacy order.

        The ``k`` secret slots first, then the ``degree+1-k`` extra points
        where :func:`~repro.fields.polynomial.random_polynomial` places the
        random values — reproducing its candidate scan exactly, so the
        matrix path consumes and positions randomness identically.
        """
        slots = secret_slots(self.k)
        used = set(slots)
        extras: list[int] = []
        candidate = 1
        while len(extras) < degree + 1 - self.k:
            while candidate in used or -candidate in used:
                candidate += 1
            extras.append(candidate)
            used.add(candidate)
            candidate += 1
        return slots + extras

    def _dealing_matrix(self, degree: int) -> tuple[tuple[int, ...], "_IntRows"]:
        """``(points, rows)``: share_i = Σ_c rows[i-1][c] · column[c].

        ``column`` is the k secrets followed by the random extra values;
        the rows are Lagrange basis evaluations at the party points 1..n,
        built once per degree and cached on the scheme instance.
        """
        cached = self._dealing_cache.get(degree)
        if cached is None:
            points = tuple(self.dealing_points(degree))
            rows = self.evaluation_rows(points, tuple(range(1, self.n + 1)))
            cached = (points, rows)
            self._dealing_cache[degree] = cached
        else:
            # Count the interpolations this matrix stands in for, so traced
            # counter totals do not depend on whether the process-wide
            # scheme cache happens to be warm (cross-run determinism).
            _hooks.note(_hooks.LAGRANGE_INTERPOLATION, self.n)
        return cached

    def evaluation_rows(
        self, points: tuple[int, ...], targets: tuple[int, ...]
    ) -> "_IntRows":
        """Cached matrix evaluating the interpolant of ``points`` at ``targets``.

        Row ``r`` holds the Lagrange coefficients λ_i(targets[r]) as plain
        ints — the shared currency of the dealing, reconstruction and
        canonical kernels (and of the offline phase's homomorphic packing).
        """
        key = (points, targets)
        rows = self._eval_cache.get(key)
        if rows is None:
            rows = tuple(
                tuple(
                    int(c)
                    for c in lagrange_coefficients(self.ring, points, at=target)
                )
                for target in targets
            )
            self._eval_cache[key] = rows
        else:
            # Cache hits stand in for one coefficient vector per target;
            # note them so counters are identical on warm and cold caches.
            _hooks.note(_hooks.LAGRANGE_INTERPOLATION, len(targets))
        return rows

    # -- internals -----------------------------------------------------------

    def _backend(self) -> str:
        # The widest matrix product on this geometry has inner dimension n
        # (a degree-(n-1) dealing column, or a full reconstruction base).
        return resolve_backend(self.ring.modulus, self.n)

    def _check_degree(self, d: int) -> None:
        if not (self.k - 1 <= d <= self.n - 1):
            raise ParameterError(
                f"degree {d} outside valid range [{self.k - 1}, {self.n - 1}]"
            )

    def _check_degrees(
        self, degree: int | Sequence[int] | None, count: int
    ) -> list[int]:
        if degree is None:
            degrees = [self.default_degree] * count
        elif isinstance(degree, int):
            degrees = [degree] * count
        else:
            degrees = [int(d) for d in degree]
            if len(degrees) != count:
                raise ParameterError(
                    f"{len(degrees)} degrees for {count} secret vectors"
                )
        for d in degrees:
            self._check_degree(d)
        return degrees

    def _check_secrets(self, secrets: Sequence[int | ZmodElement]) -> list[ZmodElement]:
        if len(secrets) != self.k:
            raise ParameterError(
                f"expected {self.k} packed secrets, got {len(secrets)}"
            )
        return [self.ring.element(s) for s in secrets]


_SCHEME_CACHE: dict[tuple[int, int, int, int], PackedShamirScheme] = {}


def packed_scheme(
    ring: Zmod, n: int, k: int, default_degree: int | None = None
) -> PackedShamirScheme:
    """A process-wide memoized scheme for ``(modulus, n, k)``.

    Schemes are stateless apart from their precomputed-matrix caches, so
    repeated runs over the same geometry — every epoch of the client-aided
    service, every resharing hop — reuse the kernels instead of rebuilding
    them.  Distinct geometries get distinct instances (and therefore
    distinct caches).
    """
    key = (ring.modulus, n, k, -1 if default_degree is None else default_degree)
    scheme = _SCHEME_CACHE.get(key)
    if scheme is None:
        scheme = PackedShamirScheme(ring, n, k, default_degree)
        _SCHEME_CACHE[key] = scheme
    return scheme


def _dedupe(shares: Iterable[PackedShare]) -> list[PackedShare]:
    seen: dict[int, PackedShare] = {}
    for s in shares:
        if s.index in seen and seen[s.index].value != s.value:
            raise ReconstructionError(f"conflicting shares for party {s.index}")
        seen[s.index] = s
    return list(seen.values())


def _zip_by_index(a: PackedSharing, b: PackedSharing):
    bmap = {s.index: s for s in b}
    for s in a:
        if s.index not in bmap:
            raise SharingError(f"missing counterpart share for party {s.index}")
        yield s, bmap[s.index]
