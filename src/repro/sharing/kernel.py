"""Batched packed-sharing kernel: exact modular matrix products.

Every packed-Shamir operation over a fixed ``(n, degree, k)`` geometry is
a linear map: dealing is "evaluate the interpolant through the slot
constraints and the random extra points at the party points 1..n",
reconstruction is "evaluate the interpolant through ``degree+1`` shares at
the secret slots".  Once the evaluation points are fixed, both maps are
matrices whose rows are Lagrange coefficient vectors — and those matrices
only depend on the geometry, not on the secrets.  This module provides the
matrix-vector engine behind
:meth:`~repro.sharing.packed.PackedShamirScheme.share_many` /
``reconstruct_many`` / ``canonical_many``:

* **numpy backend** — exact Z_p arithmetic for moduli up to 63 bits (the
  IT variant's Mersenne field): operands are split into three 26-bit
  limbs, the nine limb-pair products run as ``uint64`` matmuls (safe for
  inner dimensions up to 4096 because ``4096 · (2^26)^2 ≤ 2^64``), the
  partial sums are reduced mod p, and the limb weights are folded back in
  with exact Python-int (object-dtype) arithmetic.
* **blocked int backend** — pure-int rows for 2048-bit moduli (the core
  protocol's Z_N): one big-int accumulation per output element with a
  single final reduction, processed in bounded blocks so transient
  products never pile up.
* **legacy** — the callers fall back to the historical per-sharing
  polynomial path (``random_polynomial``/``interpolate``); the fast
  backends must match it bit for bit, which the equivalence suite in
  ``tests/test_sharing_batched.py`` pins on every backend.

Backend selection is automatic (numpy when available and the modulus
fits) and can be forced through the ``REPRO_SHARING_BACKEND`` environment
variable: ``auto`` (default), ``numpy``, ``int``, or ``legacy``.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.errors import ParameterError

try:  # numpy ships with the repo, but the kernel must degrade gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_SHARING_BACKEND=int
    _np = None  # type: ignore[assignment]

#: Environment knob forcing a backend (``auto`` / ``numpy`` / ``int`` / ``legacy``).
BACKEND_ENV = "REPRO_SHARING_BACKEND"

#: Largest modulus bit-length the uint64 limb kernel handles exactly.
NUMPY_MODULUS_BITS = 63

#: Largest inner dimension for which the limb matmul cannot overflow:
#: every limb product is < 2^52, and uint64 holds 4096 of them.
NUMPY_MAX_INNER = 4096

#: Vectors per block on the pure-int path (bounds transient big-int memory).
INT_BLOCK = 256

_LIMB_BITS = 26
_LIMB_MASK = (1 << _LIMB_BITS) - 1
_BACKENDS = ("auto", "numpy", "int", "legacy")

IntMatrix = tuple[tuple[int, ...], ...]


def selected_backend() -> str:
    """The backend requested via ``REPRO_SHARING_BACKEND`` (default ``auto``)."""
    value = os.environ.get(BACKEND_ENV, "auto").strip().lower() or "auto"
    if value not in _BACKENDS:
        raise ParameterError(
            f"{BACKEND_ENV}={value!r} unknown; expected one of {_BACKENDS}"
        )
    return value


def numpy_available() -> bool:
    return _np is not None


def numpy_supports(modulus: int, inner: int) -> bool:
    """Whether the uint64 limb kernel is exact for this modulus/shape."""
    return (
        _np is not None
        and modulus.bit_length() <= NUMPY_MODULUS_BITS
        and inner <= NUMPY_MAX_INNER
    )


def resolve_backend(modulus: int, inner: int) -> str:
    """Concrete backend (``numpy`` / ``int`` / ``legacy``) for one shape."""
    choice = selected_backend()
    if choice in ("legacy", "int"):
        return choice
    if choice == "numpy":
        if not numpy_supports(modulus, inner):
            raise ParameterError(
                f"{BACKEND_ENV}=numpy but the kernel cannot run exactly: "
                f"modulus has {modulus.bit_length()} bits "
                f"(limit {NUMPY_MODULUS_BITS}), inner dimension {inner} "
                f"(limit {NUMPY_MAX_INNER})"
                + ("" if _np is not None else ", numpy not importable")
            )
        return "numpy"
    return "numpy" if numpy_supports(modulus, inner) else "int"


def matmul_mod(
    rows: IntMatrix,
    vectors: Sequence[Sequence[int]],
    modulus: int,
    backend: str,
) -> list[list[int]]:
    """``[rows @ v mod modulus for v in vectors]`` on the chosen backend.

    ``rows`` is an ``r × c`` integer matrix with entries already reduced
    mod ``modulus``; every vector has length ``c`` with entries in
    ``[0, modulus)``.  Returns one length-``r`` list per input vector.
    """
    if not vectors:
        return []
    if backend == "numpy":
        return _matmul_numpy(rows, vectors, modulus)
    if backend == "int":
        return _matmul_int(rows, vectors, modulus)
    raise ParameterError(f"matmul_mod got non-matrix backend {backend!r}")


def _matmul_int(
    rows: IntMatrix, vectors: Sequence[Sequence[int]], modulus: int
) -> list[list[int]]:
    """Blocked big-int path: exact for any modulus (2048-bit Z_N included)."""
    out: list[list[int]] = []
    for start in range(0, len(vectors), INT_BLOCK):
        for vec in vectors[start : start + INT_BLOCK]:
            out.append(
                [
                    sum(m * v for m, v in zip(row, vec) if v) % modulus
                    for row in rows
                ]
            )
    return out


def _matmul_numpy(
    rows: IntMatrix, vectors: Sequence[Sequence[int]], modulus: int
) -> list[list[int]]:
    """Exact Z_p matmul via 26-bit limb decomposition over uint64."""
    assert _np is not None
    matrix = _np.array(rows, dtype=_np.uint64)  # r × c
    stack = _np.array(vectors, dtype=_np.uint64).T  # c × B
    # Partial products grouped by limb weight t = i + j, reduced mod p so
    # every intermediate stays strictly below 2^63 (sums below 2^64).
    partials: dict[int, object] = {}
    for i in range(3):
        m_limb = (matrix >> _np.uint64(_LIMB_BITS * i)) & _np.uint64(_LIMB_MASK)
        if not m_limb.any():
            continue
        for j in range(3):
            v_limb = (stack >> _np.uint64(_LIMB_BITS * j)) & _np.uint64(_LIMB_MASK)
            if not v_limb.any():
                continue
            part = (m_limb @ v_limb) % _np.uint64(modulus)
            t = i + j
            if t in partials:
                partials[t] = (partials[t] + part) % _np.uint64(modulus)
            else:
                partials[t] = part
    if not partials:
        return [[0] * len(rows) for _ in vectors]
    # Fold the 2^(26t) limb weights back in with exact Python-int
    # arithmetic (object dtype): the heavy O(r·c·B) work already happened
    # in uint64, this is O(r·B·len(partials)).
    total = None
    for t, arr in partials.items():
        term = arr.astype(object) * ((1 << (_LIMB_BITS * t)) % modulus)
        total = term if total is None else total + term
    reduced = total % modulus
    return [[int(v) for v in col] for col in reduced.T.tolist()]
