"""Shamir and packed-Shamir secret sharing over a ring.

Packed Shamir (Franklin–Yung) stores a vector of ``k`` secrets at the
evaluation points ``0, -1, ..., -(k-1)`` of a single degree-``d`` polynomial
with shares at points ``1..n``; it is the communication-saving engine of the
paper (DESIGN.md §3).
"""

from repro.sharing.decoding import berlekamp_welch, gaussian_solve
from repro.sharing.shamir import Share, ShamirScheme
from repro.sharing.packed import (
    PackedShare,
    PackedSharing,
    PackedShamirScheme,
    secret_slots,
)

__all__ = [
    "berlekamp_welch",
    "gaussian_solve",
    "Share",
    "ShamirScheme",
    "PackedShare",
    "PackedSharing",
    "PackedShamirScheme",
    "secret_slots",
]
