"""Shamir and packed-Shamir secret sharing over a ring.

Packed Shamir (Franklin–Yung) stores a vector of ``k`` secrets at the
evaluation points ``0, -1, ..., -(k-1)`` of a single degree-``d`` polynomial
with shares at points ``1..n``; it is the communication-saving engine of the
paper (DESIGN.md §3).
"""

from repro.sharing.decoding import berlekamp_welch, gaussian_solve
from repro.sharing.shamir import Share, ShamirScheme
from repro.sharing.kernel import (
    BACKEND_ENV,
    NUMPY_MODULUS_BITS,
    matmul_mod,
    resolve_backend,
    selected_backend,
)
from repro.sharing.packed import (
    PackedShare,
    PackedSharing,
    PackedShamirScheme,
    packed_scheme,
    secret_slots,
)

__all__ = [
    "berlekamp_welch",
    "gaussian_solve",
    "Share",
    "ShamirScheme",
    "PackedShare",
    "PackedSharing",
    "PackedShamirScheme",
    "packed_scheme",
    "secret_slots",
    "BACKEND_ENV",
    "NUMPY_MODULUS_BITS",
    "matmul_mod",
    "resolve_backend",
    "selected_backend",
]
