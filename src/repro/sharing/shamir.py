"""Standard (k = 1) Shamir secret sharing.

A degree-``t`` sharing of ``s`` is a random polynomial ``f`` with
``f(0) = s``; party ``i`` holds the share ``f(i)`` for ``i ∈ 1..n``.  Any
``t+1`` shares reconstruct; any ``t`` shares are independent of ``s``.

Reconstruction supports *error detection*: when more than ``t+1`` shares are
supplied, every share is checked against the interpolant of the first
``t+1`` and an inconsistency raises
:class:`~repro.errors.ReconstructionError`.  (Error *correction* is not
needed by the protocol — bad contributions are excluded upstream via NIZK
verification — but detection guards the honest path in tests.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ParameterError, ReconstructionError, SharingError
from repro.fields import Polynomial, Zmod, ZmodElement, random_polynomial
from repro.fields.polynomial import evaluate_from_points, interpolate


@dataclass(frozen=True)
class Share:
    """Party ``index``'s evaluation of the sharing polynomial."""

    index: int
    value: ZmodElement

    def __post_init__(self):
        if self.index < 1:
            raise ParameterError(f"share index must be >= 1, got {self.index}")

    def __add__(self, other: "Share") -> "Share":
        if not isinstance(other, Share):
            return NotImplemented
        if other.index != self.index:
            raise SharingError(
                f"cannot add shares of different parties ({self.index} vs {other.index})"
            )
        return Share(self.index, self.value + other.value)

    def __sub__(self, other: "Share") -> "Share":
        if not isinstance(other, Share):
            return NotImplemented
        if other.index != self.index:
            raise SharingError(
                f"cannot subtract shares of different parties ({self.index} vs {other.index})"
            )
        return Share(self.index, self.value - other.value)

    def scale(self, scalar: int | ZmodElement) -> "Share":
        return Share(self.index, self.value * scalar)


class ShamirScheme:
    """Shamir sharing context for ``n`` parties with threshold ``t``.

    ``t`` is the polynomial degree: ``t+1`` shares reconstruct, ``t`` leak
    nothing.  Honest-majority protocols use ``t < n/2``.
    """

    def __init__(self, ring: Zmod, n: int, t: int):
        if n < 1:
            raise ParameterError(f"need at least one party, got n={n}")
        if not 0 <= t < n:
            raise ParameterError(f"threshold t={t} out of range for n={n}")
        if n >= ring.modulus:
            raise ParameterError(
                f"n={n} parties need n distinct nonzero points; modulus too small"
            )
        self.ring = ring
        self.n = n
        self.t = t

    # -- dealing -----------------------------------------------------------

    def share(self, secret: int | ZmodElement, rng=None) -> list[Share]:
        """Deal a fresh degree-``t`` sharing of ``secret`` to parties 1..n."""
        poly = random_polynomial(
            self.ring, self.t, [(0, self.ring.element(secret))], rng=rng
        )
        return self.shares_of_polynomial(poly)

    def shares_of_polynomial(self, poly: Polynomial) -> list[Share]:
        """Shares induced by a caller-supplied polynomial (degree <= t)."""
        if poly.degree > self.t:
            raise SharingError(
                f"polynomial degree {poly.degree} exceeds threshold {self.t}"
            )
        return [Share(i, poly(i)) for i in range(1, self.n + 1)]

    # -- reconstruction ------------------------------------------------------

    def reconstruct(self, shares: Iterable[Share]) -> ZmodElement:
        """Recover the secret; detects inconsistent shares when redundant."""
        share_list = _dedupe(shares)
        if len(share_list) < self.t + 1:
            raise ReconstructionError(
                f"need {self.t + 1} shares to reconstruct, got {len(share_list)}"
            )
        base = share_list[: self.t + 1]
        points = [(s.index, s.value) for s in base]
        secret = evaluate_from_points(self.ring, points, at=0)
        if len(share_list) > self.t + 1:
            poly = interpolate(self.ring, points)
            for s in share_list[self.t + 1 :]:
                if poly(s.index) != s.value:
                    raise ReconstructionError(
                        f"share of party {s.index} is inconsistent with the others"
                    )
        return secret

    # -- local linear algebra -------------------------------------------------

    @staticmethod
    def add(a: Sequence[Share], b: Sequence[Share]) -> list[Share]:
        """Local share-wise addition (linearity of Shamir sharing)."""
        return [x + y for x, y in _zip_by_index(a, b)]

    @staticmethod
    def scale(shares: Sequence[Share], scalar) -> list[Share]:
        return [s.scale(scalar) for s in shares]


def _dedupe(shares: Iterable[Share]) -> list[Share]:
    seen: dict[int, Share] = {}
    for s in shares:
        if s.index in seen and seen[s.index].value != s.value:
            raise ReconstructionError(
                f"conflicting shares supplied for party {s.index}"
            )
        seen[s.index] = s
    return list(seen.values())


def _zip_by_index(a: Sequence[Share], b: Sequence[Share]):
    bmap = {s.index: s for s in b}
    for s in a:
        if s.index not in bmap:
            raise SharingError(f"missing counterpart share for party {s.index}")
        yield s, bmap[s.index]
