"""Π_YOSO-Setup: threshold key generation, Keys-For-Future, proof CRS.

The paper assumes a trusted setup (§5.1); here a setup functionality

1. runs ``TKGen`` and earmarks the shares ``tsk_i`` for the first offline
   committee (delivered as role *gifts* when that committee is sampled);
2. generates a **Key-For-Future** (KFF) Paillier keypair for every future
   online-committee role and every input client, publishes the public keys,
   and posts the secret keys *encrypted under tpk* (the prime ``p`` of the
   KFF modulus, chunked — ``q = N/p`` is recomputed by the recipient);
3. fixes the Fiat–Shamir proof parameters (our CRS substitute).

Everything public is posted to the bulletin in the ``setup`` phase so the
meter sees the (one-time) setup communication too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.circuits.program import CircuitProgram
from repro.core.params import ProtocolParams
from repro.errors import ParameterError
from repro.fields.ring import Zmod
from repro.nizk.params import ProofParams
from repro.paillier.encoding import chunk_integer, safe_chunk_bits
from repro.paillier.paillier import (
    PaillierCiphertext,
    PaillierKeyPair,
    PaillierPublicKey,
    PaillierSecretKey,
    _keypair_from_primes,
)
from repro.paillier.primes import random_prime
from repro.paillier.threshold import (
    ThresholdKeyShare,
    ThresholdPaillier,
    ThresholdPublicKey,
)
from repro.wire.codec import KeyAnnouncement
from repro.wire.registry import register_kind
from repro.yoso.network import ProtocolEnvironment

#: Committee naming scheme shared by the offline/online orchestrators.
OFFLINE_A = "Coff-A"
OFFLINE_B = "Coff-B"
OFFLINE_R = "Coff-R"
OFFLINE_DEC = "Coff-dec"
OFFLINE_REENC = "Coff-reenc"
ONLINE_KEYS = "Con-keys"
ONLINE_OUT = "Con-out"

#: The bulletin tag of the one setup post.
SETUP_KEYS_TAG = "setup-keys"

#: Envelope kind of the setup functionality's single public post.  v2
#: restructured the payload for cross-process bootstrap: public keys ride
#: as KeyAnnouncements, ordered (by the codec's canonical dict sort) ahead
#: of every ciphertext compressed against them.
SETUP_KEYS_KIND = register_kind(
    "setup.keys", 1, version=2, tag=SETUP_KEYS_TAG,
    description="tpk + KFF key announcements, verification values, "
    "encrypted KFF primes",
)


def mul_committee_name(depth: int) -> str:
    return f"Con-mul-{depth}"


def role_tag(committee: str, index: int) -> str:
    """The KFF registry key for a future role."""
    return f"{committee}[{index}]"


def client_tag(client: str) -> str:
    return f"client:{client}"


@dataclass(frozen=True)
class KffEntry:
    """One future role's Key-For-Future."""

    public_key: PaillierPublicKey
    encrypted_prime: tuple[PaillierCiphertext, ...]  # p chunked under tpk

    def recover_secret(self, prime: int) -> PaillierSecretKey:
        """Rebuild the KFF secret key from the decrypted prime."""
        n = self.public_key.n
        if prime <= 1 or n % prime != 0:
            raise ParameterError("recovered KFF prime does not divide the modulus")
        return PaillierSecretKey(self.public_key, prime, n // prime)


@dataclass
class SetupArtifacts:
    """Everything Π_YOSO-Setup produces."""

    params: ProtocolParams
    proof_params: ProofParams
    tpk: ThresholdPublicKey
    ring: Zmod                                   # the plaintext ring Z_N
    kff: dict[str, KffEntry]                      # role tag -> KFF
    tsk_shares: list[ThresholdKeyShare]           # gifts for Coff-A
    tsk_verifications: dict[int, int]             # epoch-0 verification keys
    mul_depths: tuple[int, ...]                   # online committee schedule

    def kff_for(self, tag: str) -> KffEntry:
        if tag not in self.kff:
            raise ParameterError(f"no KFF registered for {tag!r}")
        return self.kff[tag]


def run_setup(
    env: ProtocolEnvironment,
    params: ProtocolParams,
    program: CircuitProgram,
    rng: random.Random,
) -> SetupArtifacts:
    """Execute the setup functionality and publish its outputs.

    ``program`` is the compiled circuit (:func:`compile_circuit` /
    :meth:`Circuit.program`); setup reads its depth schedule and client
    segments.
    """
    env.set_phase("setup")
    proof_params = ProofParams.for_modulus_bits(
        min(params.te_bits, params.role_key_bits)
    )
    tpk, tsk_shares = ThresholdPaillier.keygen(
        params.n, params.t, bits=params.te_bits, rng=rng
    )
    ring = Zmod(tpk.n, assume_prime=False)
    chunk_bits = safe_chunk_bits(tpk.n)

    depths = program.mul_depths
    kff: dict[str, KffEntry] = {}

    def make_kff(tag: str) -> None:
        keypair = _fresh_keypair(params.role_key_bits, rng)
        encrypted = tuple(
            tpk.encrypt(limb, rng=rng)
            for limb in chunk_integer(keypair.secret.p, chunk_bits)
        )
        kff[tag] = KffEntry(keypair.public, encrypted)

    for depth in depths:
        for i in range(1, params.n + 1):
            make_kff(role_tag(mul_committee_name(depth), i))
    for segment in program.input_segments:
        make_kff(client_tag(segment.client))

    # Publish: tpk, verification keys, and the KFF registry (public parts +
    # tpk-encrypted secrets).  Posted by the setup functionality itself.
    # Public keys travel as KeyAnnouncements, and the payload shape leans
    # on the codec's canonical dict order ("te" encodes before "kff",
    # "public_key" before "encrypted_prime"): every announcement is decoded
    # — and registered into the reader's KeyRing — before any ciphertext
    # compressed against it, so a fresh process bootstraps from the bytes
    # alone.
    env.bulletin.post(
        "setup", "F-setup", "setup-keys",
        {
            "te": {
                "tpk": KeyAnnouncement(tpk.n),
                "verification_base": tpk.verification_base,
                "tsk_verifications": {
                    s.index: s.verification for s in tsk_shares
                },
            },
            "kff": {
                tag: {
                    "public_key": KeyAnnouncement(entry.public_key.n),
                    "encrypted_prime": list(entry.encrypted_prime),
                }
                for tag, entry in kff.items()
            },
        },
    )
    env.bulletin.advance_round()

    return SetupArtifacts(
        params=params,
        proof_params=proof_params,
        tpk=tpk,
        ring=ring,
        kff=kff,
        tsk_shares=tsk_shares,
        tsk_verifications={s.index: s.verification for s in tsk_shares},
        mul_depths=depths,
    )


def trivial_zero_ciphertext(tpk: ThresholdPublicKey) -> PaillierCiphertext:
    """The deterministic encryption of 0 with randomness 1 (value 1 in Z_{N²}).

    Used for padding slots of under-full batches: everyone can derive it, so
    it carries no communication and no secrets.
    """
    return PaillierCiphertext(tpk.paillier, 1)


def _fresh_keypair(bits: int, rng: random.Random) -> PaillierKeyPair:
    p = random_prime(bits // 2, rng=rng)
    q = random_prime(bits // 2, rng=rng)
    while q == p:
        q = random_prime(bits // 2, rng=rng)
    return _keypair_from_primes(p, q)
