"""Ideal NIZK oracle for the online μ-share correctness proofs.

The paper attaches a simulation-extractable SNARK to each published
μ-share, proving it was derived from the preprocessed (encrypted) mask
shares (§3.3/§5.3).  A SNARK over that statement is far outside a
pure-Python reproduction, so we substitute an *ideal* proof functionality,
the standard move in UC-style simulations (documented in DESIGN.md's
substitution table):

* when an honest role computes its share, the honest protocol code calls
  :meth:`MuShareOracle.attest`, obtaining a constant-size token (a keyed
  MAC over the statement — the oracle's key plays the CRS trapdoor);
* verification recomputes the MAC, so any adversarial mutation of the
  share value (or a token forged without the key) fails exactly as an
  unsound SNARK proof would;
* the token is constant-size (like a SNARK proof), keeping the
  communication accounting faithful.

Soundness inside the simulation is perfect, zero-knowledge is trivial
(tokens are independent of the witness), and the *online communication
pattern is identical* to the SNARK-based protocol.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

#: Size of a proof token — the ballpark of a Groth16/Groth–Maller proof.
PROOF_TOKEN_BYTES = 192


class MuShareOracle:
    """Per-protocol-run attestation authority for online μ-shares."""

    def __init__(self, key: bytes | None = None):
        self._key = key if key is not None else secrets.token_bytes(32)

    def _mac(self, statement: bytes) -> bytes:
        digest = hmac.new(self._key, statement, hashlib.sha256).digest()
        # Stretch to a realistic SNARK-proof size for the meter.
        out = b""
        counter = 0
        while len(out) < PROOF_TOKEN_BYTES:
            out += hashlib.sha256(digest + counter.to_bytes(2, "big")).digest()
            counter += 1
        return out[:PROOF_TOKEN_BYTES]

    @staticmethod
    def _statement(batch_id: int, index: int, value: int) -> bytes:
        return f"mu-share|{batch_id}|{index}|{value}".encode()

    def attest(self, batch_id: int, index: int, value: int) -> bytes:
        """Issue a proof token for role ``index``'s share of batch ``batch_id``."""
        return self._mac(self._statement(batch_id, index, value))

    def verify(self, batch_id: int, index: int, value: int, token: bytes) -> bool:
        """Check a posted (share, token) pair; False on any mutation."""
        if not isinstance(token, (bytes, bytearray)):
            return False
        expected = self._mac(self._statement(batch_id, index, value))
        return hmac.compare_digest(bytes(token), expected)
