"""Π_YOSO-Online: input, evaluation, and output (paper §5.3, Protocol 5).

Per-depth flow once inputs are known:

* **Future key distribution** — the first online committee (Con-keys) uses
  its tsk shares to re-encrypt every Key-For-Future secret key to the
  now-known YOSO role key of its owner, and passes tsk on to the output
  committee.  After this, tsk is never needed for multiplications.
* **Input** — each client recovers its KFF, decrypts its wire masks
  ``λ^α``, and broadcasts ``μ^α = v^α − λ^α``.
* **Addition/linear gates** — public local computation on μ values.
* **Multiplication** — for each batch of k gates, each member of the
  depth's committee decrypts its preprocessed packed shares
  (λ^α, λ^β, Γ^γ), forms its degree-(k−1) canonical shares of the public
  μ vectors, and broadcasts the single scalar
  ``μ^γ_i = μ^α_i·μ^β_i + μ^α_i·λ^β_i + μ^β_i·λ^α_i + Γ^γ_i``
  with a constant-size correctness proof.  Anyone reconstructs μ^γ from
  any ``t + 2(k−1) + 1`` verified shares — GOD with O(1) amortized
  communication per gate.
* **Output** — the last committee re-encrypts each output-wire mask to the
  receiving client (Re-encrypt*, no further tsk resharing); the client
  computes ``v = μ + λ``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.circuits.circuit import Circuit, GateType
from repro.circuits.program import CircuitProgram, compile_circuit
from repro.core.offline import PACK_KINDS, OfflineState, _posts_by_index
from repro.core.oracle import MuShareOracle
from repro.core.reencrypt import (
    EncryptedPartial,
    recover_reencrypted,
    reencrypt_contributions,
)
from repro.core.resharing import (
    EncryptedResharing,
    build_resharing,
    next_verifications,
    receive_share,
    verified_contributors,
)
from repro.core.setup import (
    ONLINE_KEYS,
    ONLINE_OUT,
    SetupArtifacts,
    client_tag,
    mul_committee_name,
    role_tag,
)
from repro.errors import ProtocolAbortError
from repro.fields.ring import ZmodElement
from repro.observability.tracer import KIND_BATCH, maybe_span
from repro.paillier.encoding import safe_chunk_bits, unchunk_integer
from repro.paillier.paillier import PaillierSecretKey
from repro.sharing.packed import PackedShare, packed_scheme
from repro.wire.registry import register_kind
from repro.yoso.committees import Committee
from repro.yoso.network import ProtocolEnvironment
from repro.yoso.roles import Role

#: Envelope kinds of the online phase's posts.
register_kind(
    "online.keys", 7, tag=ONLINE_KEYS,
    description="KFF secrets re-encrypted to role keys, plus the tsk resharing",
)
register_kind(
    "online.input", 8, tag_prefix="input:",
    description="a client's broadcast μ = v − λ per input wire",
)
register_kind(
    "online.mu_shares", 9, tag_prefix="Con-mul-",
    description="one member's μ^γ canonical shares with correctness proofs",
)
register_kind(
    "online.output", 10, tag=ONLINE_OUT,
    description="output-wire masks re-encrypted to the receiving clients",
)


class MuTracker:
    """Public μ bookkeeping: every observer can maintain this identically.

    Backed by a wire-indexed array driven by the compiled program's
    layer/run structure, so :meth:`propagate` is one tight loop per
    (layer, kind) run rather than a per-gate dict walk.  Accepts a bare
    :class:`Circuit` (compiled at k=1) for unit tests and tooling.
    """

    def __init__(self, setup: SetupArtifacts, circuit: Circuit | CircuitProgram):
        self.ring = setup.ring
        program = (
            circuit if isinstance(circuit, CircuitProgram)
            else compile_circuit(circuit, 1)
        )
        self.program = program
        self.circuit = program.circuit
        self._mu: list[ZmodElement | None] = [None] * program.n_gates
        self._constants = [self.ring.element(c) for c in program.constants]

    def set(self, wire: int, value: int | ZmodElement) -> None:
        self._mu[wire] = self.ring.element(value)

    def known(self, wire: int) -> bool:
        return self._mu[wire] is not None

    def get(self, wire: int) -> ZmodElement:
        value = self._mu[wire]
        if value is None:
            raise ProtocolAbortError(f"μ for wire {wire} not yet public")
        return value

    def propagate(self) -> None:
        """Push μ through linear gates as far as currently possible."""
        mu = self._mu
        constants = self._constants
        for layer in self.program.layers:
            for run in layer.runs:
                kind = run.kind
                if kind is GateType.ADD:
                    for w, a, b in zip(run.wires, run.src0, run.src1):
                        if mu[w] is None:
                            va, vb = mu[a], mu[b]
                            if va is not None and vb is not None:
                                mu[w] = va + vb
                elif kind is GateType.SUB:
                    for w, a, b in zip(run.wires, run.src0, run.src1):
                        if mu[w] is None:
                            va, vb = mu[a], mu[b]
                            if va is not None and vb is not None:
                                mu[w] = va - vb
                elif kind is GateType.CADD:
                    # v+c − λ = μ + c: constants land in μ, λ is unchanged.
                    for w, a, ci in zip(run.wires, run.src0, run.const_index):
                        if mu[w] is None and mu[a] is not None:
                            mu[w] = mu[a] + constants[ci]
                elif kind is GateType.CMUL:
                    for w, a, ci in zip(run.wires, run.src0, run.const_index):
                        if mu[w] is None and mu[a] is not None:
                            mu[w] = mu[a] * constants[ci]
                elif kind is GateType.OUTPUT:
                    for w, a in zip(run.wires, run.src0):
                        if mu[w] is None and mu[a] is not None:
                            mu[w] = mu[a]


@dataclass
class OnlineState:
    """Committees and intermediate results of one online execution.

    Input and output client roles are distinct (the paper's Role^In vs
    Role^Out): an input role erases its state after speaking, so output
    delivery must target a fresh role of the same machine.
    """

    committees: dict[str, Committee]
    client_roles: dict[str, Role]
    output_client_roles: dict[str, Role]
    tracker: MuTracker
    oracle: MuShareOracle
    kff_bundles: dict[str, list[list[EncryptedPartial]]] = field(default_factory=dict)
    out_resharings: dict[int, EncryptedResharing] = field(default_factory=dict)
    verifications_out: dict[int, int] = field(default_factory=dict)
    outputs: dict[str, list[int]] = field(default_factory=dict)


def sample_online_committees(
    env: ProtocolEnvironment,
    setup: SetupArtifacts,
    program: Circuit | CircuitProgram,
) -> OnlineState:
    """Sample every online committee and client role (keys now known)."""
    if isinstance(program, Circuit):
        program = compile_circuit(program, setup.params.k)
    committees = {ONLINE_KEYS: env.sample_committee(ONLINE_KEYS, setup.params.n)}
    for depth in setup.mul_depths:
        name = mul_committee_name(depth)
        committees[name] = env.sample_committee(name, setup.params.n)
    committees[ONLINE_OUT] = env.sample_committee(ONLINE_OUT, setup.params.n)
    clients = {
        segment.client: env.client(client_tag(segment.client))
        for segment in program.input_segments
    }
    out_clients = {
        segment.client: env.client(f"client-out:{segment.client}")
        for segment in program.output_segments
    }
    return OnlineState(
        committees=committees,
        client_roles=clients,
        output_client_roles=out_clients,
        tracker=MuTracker(setup, program),
        oracle=MuShareOracle(),
    )


def run_online(
    env: ProtocolEnvironment,
    setup: SetupArtifacts,
    offline: OfflineState,
    online: OnlineState,
    program: CircuitProgram,
    inputs: Mapping[str, Sequence[int]],
    rng: random.Random,
) -> dict[str, list[int]]:
    """Execute the full online phase; returns outputs per client."""
    env.set_phase("online")
    params = setup.params
    tpk = setup.tpk
    proof_params = setup.proof_params
    circuit = program.circuit

    # ---- Future key distribution (committee Con-keys) -----------------------

    keys_committee = online.committees[ONLINE_KEYS]
    out_pks = online.committees[ONLINE_OUT].public_keys()

    kff_targets: dict[str, object] = {}
    for depth in setup.mul_depths:
        name = mul_committee_name(depth)
        for i in range(1, params.n + 1):
            kff_targets[role_tag(name, i)] = online.committees[name].role(i).public_key
    for segment in program.input_segments:
        kff_targets[client_tag(segment.client)] = online.client_roles[
            segment.client
        ].public_key

    bridge_set = verified_contributors(
        tpk, offline.bridge_resharings, offline.verifications[2],
        keys_committee.public_keys(), proof_params,
    )

    def program_keys(view) -> None:
        share = receive_share(
            tpk, view.index, view.secret_key, offline.bridge_resharings,
            bridge_set, previous_epoch=2,
        )
        # Flatten every KFF chunk of every tag into one batched Re-encrypt,
        # then reassemble the per-tag chunk lists in order.
        items = [
            (chunk_ct, target_pk)
            for tag, target_pk in kff_targets.items()
            for chunk_ct in setup.kff_for(tag).encrypted_prime
        ]
        bundles = reencrypt_contributions(
            tpk, share, items, proof_params, view.rng
        )
        kff = {}
        index = 0
        for tag in kff_targets:
            n_chunks = len(setup.kff_for(tag).encrypted_prime)
            kff[tag] = bundles[index:index + n_chunks]
            index += n_chunks
        resharing = build_resharing(tpk, share, out_pks, proof_params, view.rng)
        view.speak(ONLINE_KEYS, {"kff": kff, "tsk": resharing})

    env.run_committee(keys_committee, program_keys)
    posts_keys = _posts_by_index(env, keys_committee)

    for tag in kff_targets:
        n_chunks = len(setup.kff_for(tag).encrypted_prime)
        online.kff_bundles[tag] = [
            [
                p["kff"][tag][chunk]
                for p in posts_keys.values()
                if isinstance(p.get("kff", {}).get(tag), list)
                and len(p["kff"][tag]) == n_chunks
                and isinstance(p["kff"][tag][chunk], EncryptedPartial)
            ]
            for chunk in range(n_chunks)
        ]
    online.out_resharings = {
        i: p["tsk"]
        for i, p in posts_keys.items()
        if isinstance(p.get("tsk"), EncryptedResharing)
    }
    out_set = verified_contributors(
        tpk, online.out_resharings, offline.verifications[3], out_pks, proof_params
    )
    online.verifications_out = next_verifications(
        tpk, online.out_resharings, out_set
    )

    # ---- Input step (clients broadcast μ for their wires) --------------------

    def recover_kff_secret(tag: str, sk: PaillierSecretKey) -> PaillierSecretKey:
        entry = setup.kff_for(tag)
        chunk_bits = safe_chunk_bits(tpk.n)
        limbs = [
            recover_reencrypted(
                tpk, chunk_ct, online.kff_bundles[tag][idx], sk,
                offline.verifications[3], proof_params,
            )
            for idx, chunk_ct in enumerate(entry.encrypted_prime)
        ]
        return entry.recover_secret(unchunk_integer(limbs, chunk_bits))

    for segment in program.input_segments:
        client = segment.client
        wires = list(segment.wires)
        supplied = list(inputs.get(client, []))
        if len(supplied) != len(wires):
            raise ProtocolAbortError(
                f"client {client!r} supplied {len(supplied)} inputs, "
                f"circuit needs {len(wires)}"
            )

        def program_client(view, client=client, wires=wires, supplied=supplied):
            kff_sk = recover_kff_secret(client_tag(client), view.secret_key)
            mu = {}
            for wire, value in zip(wires, supplied):
                lam = recover_reencrypted(
                    tpk, offline.wire_cipher[wire], offline.input_bundles[wire],
                    kff_sk, offline.verifications[2], proof_params,
                )
                mu[wire] = (int(value) - lam) % tpk.n
            view.speak(f"input:{client}", {"mu": mu})

        env.run_role(online.client_roles[client], program_client)
        posts = env.bulletin.payloads(f"input:{client}")
        if posts and isinstance(posts[-1], dict):
            for wire, value in posts[-1].get("mu", {}).items():
                if wire in wires and isinstance(value, int):
                    online.tracker.set(wire, value)
        # A crashed/silent client's inputs default to the ⊥-style default 0:
        # μ = −λ is unknowable publicly, so the functionality's default-input
        # rule is approximated by aborting only that client's wires.
        for wire in wires:
            if not online.tracker.known(wire):
                raise ProtocolAbortError(
                    f"input client {client!r} failed to publish μ for wire {wire}"
                )

    online.tracker.propagate()

    # ---- Multiplication committees, one per depth -----------------------------

    # Memoized per (modulus, n, k): the service's epoch loop reuses the
    # precomputed sharing matrices across inner MPC runs.
    scheme = packed_scheme(setup.ring, params.n, params.k)

    for depth in setup.mul_depths:
        name = mul_committee_name(depth)
        committee = online.committees[name]
        batches = program.depth_batches[depth]

        def program_mul(view, name=name, batches=batches, depth=depth):
            kff_sk = recover_kff_secret(
                role_tag(name, view.index), view.secret_key
            )
            shares = {}
            for batch in batches:
                # The per-gate online work (recover packed λ/Γ shares, form
                # the single μ^γ scalar) gets its own "online.mul" span so
                # traces separate it from one-time key distribution.
                with maybe_span(
                    env.tracer, f"mul-batch-{batch.batch_id}", kind=KIND_BATCH,
                    phase="online.mul", batch=batch.batch_id, depth=depth,
                    member=view.index, gates=len(batch.gate_wires),
                ):
                    lam = {}
                    for kind in PACK_KINDS:
                        key = (batch.batch_id, view.index, kind)
                        ciphertext = offline.packed_cipher[(batch.batch_id, kind)][
                            view.index - 1
                        ]
                        lam[kind] = setup.ring.element(
                            recover_reencrypted(
                                tpk, ciphertext, offline.packed_bundles[key], kff_sk,
                                offline.verifications[2], proof_params,
                            )
                        )
                    mu_left = _padded_mu(online.tracker, batch.left_wires, params.k)
                    mu_right = _padded_mu(online.tracker, batch.right_wires, params.k)
                    # Cached canonical matrix row: no re-interpolation over
                    # the 2048-bit ring per batch.
                    mu_l_i, mu_r_i = (
                        s.value
                        for s in scheme.canonical_many(
                            [mu_left, mu_right], index=view.index
                        )
                    )
                    value = (
                        mu_l_i * mu_r_i
                        + mu_l_i * lam["right"]
                        + mu_r_i * lam["left"]
                        + lam["gamma"]
                    )
                    if params.robust_reconstruction:
                        # Proof-free mode: bad shares are *corrected*, not
                        # excluded, so no token rides along.
                        shares[batch.batch_id] = {"value": int(value)}
                    else:
                        token = online.oracle.attest(
                            batch.batch_id, view.index, int(value)
                        )
                        shares[batch.batch_id] = {"value": int(value), "proof": token}
            view.speak(name, {"mu_shares": shares})

        env.run_committee(committee, program_mul)
        posts = _posts_by_index(env, committee)

        for batch in batches:
            with maybe_span(
                env.tracer, f"mul-reconstruct-{batch.batch_id}", kind=KIND_BATCH,
                phase="online.mul", batch=batch.batch_id, depth=depth,
                stage="reconstruct", gates=len(batch.gate_wires),
            ):
                collected: list[PackedShare] = []
                for sender, payload in sorted(posts.items()):
                    entry = payload.get("mu_shares", {}).get(batch.batch_id)
                    if not isinstance(entry, Mapping):
                        continue
                    value = entry.get("value")
                    if not isinstance(value, int):
                        continue
                    if params.robust_reconstruction:
                        collected.append(
                            PackedShare(
                                sender, setup.ring.element(value),
                                params.product_degree, params.k,
                            )
                        )
                    elif online.oracle.verify(
                        batch.batch_id, sender, value, entry.get("proof")
                    ):
                        collected.append(
                            PackedShare(
                                sender, setup.ring.element(value),
                                params.product_degree, params.k,
                            )
                        )
                if params.robust_reconstruction:
                    if len(collected) < params.reconstruction_threshold + 2 * params.t:
                        raise ProtocolAbortError(
                            f"batch {batch.batch_id}: {len(collected)} shares "
                            f"cannot correct {params.t} errors at degree "
                            f"{params.product_degree}"
                        )
                    mu_gamma = scheme.robust_reconstruct(
                        collected, degree=params.product_degree,
                        max_errors=params.t,
                    )
                else:
                    if len(collected) < params.reconstruction_threshold:
                        raise ProtocolAbortError(
                            f"batch {batch.batch_id}: only {len(collected)} "
                            f"verified μ shares, need "
                            f"{params.reconstruction_threshold}"
                        )
                    mu_gamma = scheme.reconstruct_many(
                        [collected[: params.reconstruction_threshold]],
                        degree=params.product_degree,
                    )[0]
                for slot, wire in enumerate(batch.gate_wires):
                    online.tracker.set(wire, mu_gamma[slot])
        online.tracker.propagate()

    # ---- Output step -----------------------------------------------------------

    out_committee = online.committees[ONLINE_OUT]
    output_wires = list(circuit.output_wires)

    def program_out(view) -> None:
        share = receive_share(
            tpk, view.index, view.secret_key, online.out_resharings,
            out_set, previous_epoch=3,
        )
        items = [
            (
                offline.wire_cipher[wire],
                online.output_client_roles[circuit.gates[wire].client].public_key,
            )
            for wire in output_wires
        ]
        bundles = reencrypt_contributions(
            tpk, share, items, proof_params, view.rng
        )
        view.speak(ONLINE_OUT, {"output": dict(zip(output_wires, bundles))})

    env.run_committee(out_committee, program_out)
    posts_out = _posts_by_index(env, out_committee)

    outputs: dict[str, list[int]] = {}
    for wire in output_wires:
        client = circuit.gates[wire].client
        contributions = [
            p["output"][wire]
            for p in posts_out.values()
            if isinstance(p.get("output", {}).get(wire), EncryptedPartial)
        ]
        lam = recover_reencrypted(
            tpk, offline.wire_cipher[wire], contributions,
            online.output_client_roles[client].secret_key,
            online.verifications_out, proof_params,
        )
        value = (int(online.tracker.get(wire)) + lam) % tpk.n
        outputs.setdefault(client, []).append(value)
    online.outputs = outputs
    return outputs


def _padded_mu(
    tracker: MuTracker, wires: Sequence[int], k: int
) -> list[ZmodElement]:
    """Public μ vector of a batch, zero-padded to the packing width."""
    values = [tracker.get(w) for w in wires]
    values += [tracker.ring.zero] * (k - len(values))
    return values
